"""Cross-module property-based tests (hypothesis).

These pin down structural invariants that unit tests exercise only
pointwise: event ordering in the kernel, DAG execution-order validity,
rescue-DAG conservation, matchmaker admissibility, and batch-scheduler
conservation of jobs.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.job import Job, JobSpec
from repro.middleware.mds import GIIS, GRIS
from repro.scheduling.batch import BatchScheduler
from repro.scheduling.matchmaking import SiteSelector
from repro.sim import DAY, Engine, GB, HOUR, RngRegistry, TB
from repro.workflow.dag import DAG, NodeState

from .conftest import make_site


# --- kernel ordering -----------------------------------------------------------

@settings(max_examples=40, deadline=None)
@given(delays=st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=40))
def test_property_events_fire_in_time_order(delays):
    """Completion order is non-decreasing in scheduled time, with FIFO
    tie-breaking by submission order."""
    eng = Engine()
    fired = []

    def proc(i, delay):
        yield eng.timeout(delay)
        fired.append((eng.now, i))

    for i, delay in enumerate(delays):
        eng.process(proc(i, delay))
    eng.run()
    times = [t for t, _i in fired]
    assert times == sorted(times)
    # FIFO among equal times.
    for (t1, i1), (t2, i2) in zip(fired, fired[1:]):
        if t1 == t2:
            assert i1 < i2
    assert len(fired) == len(delays)


@settings(max_examples=30, deadline=None)
@given(
    layers=st.lists(
        st.integers(min_value=1, max_value=4), min_size=1, max_size=5
    )
)
def test_property_layered_dag_topological_execution(layers):
    """Execute a random layered DAG by hand-promoting nodes; every node
    runs only after all parents, and everything runs exactly once."""
    dag = DAG("layered")
    previous: list = []
    rng = RngRegistry(0)
    for depth, width in enumerate(layers):
        current = []
        for w in range(width):
            node = dag.add_job(
                f"n{depth}-{w}",
                JobSpec(name="x", vo="sdss", user="u", runtime=1.0),
            )
            current.append(node)
            for parent in previous:
                if rng.bernoulli(f"edge{depth}{w}{parent.node_id}", 0.6):
                    dag.add_edge(parent.node_id, node.node_id)
        previous = current

    executed = []
    while not dag.finished:
        ready = dag.refresh_ready()
        assert ready, "non-finished DAG must always have ready nodes"
        for node in ready:
            for parent in dag.parents(node.node_id):
                assert parent.state is NodeState.DONE
            node.state = NodeState.DONE
            executed.append(node.node_id)
    assert sorted(executed) == sorted(n.node_id for n in dag.nodes())
    assert dag.succeeded


@settings(max_examples=30, deadline=None)
@given(
    n_nodes=st.integers(min_value=2, max_value=12),
    fail_idx=st.integers(min_value=0, max_value=11),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_property_rescue_dag_conserves_undone_work(n_nodes, fail_idx, seed):
    """Rescue DAG = exactly the non-DONE nodes, with internal edges
    preserved and no dangling references."""
    fail_idx = fail_idx % n_nodes
    rng = RngRegistry(seed)
    dag = DAG("prop")
    for i in range(n_nodes):
        dag.add_job(f"n{i}", JobSpec(name="x", vo="sdss", user="u", runtime=1.0))
    for i in range(n_nodes):
        for j in range(i + 1, n_nodes):
            if rng.bernoulli(f"e{i}{j}", 0.3):
                dag.add_edge(f"n{i}", f"n{j}")
    # Simulate partial execution: everything before fail_idx done, the
    # failing node FAILED, descendants unreachable.
    for i in range(fail_idx):
        dag.node(f"n{i}").state = NodeState.DONE
    dag.node(f"n{fail_idx}").state = NodeState.FAILED
    dag.mark_unreachable_descendants(f"n{fail_idx}")

    rescue = dag.rescue_dag()
    undone = {n.node_id for n in dag.nodes() if n.state is not NodeState.DONE}
    assert {n.node_id for n in rescue.nodes()} == undone
    for node in rescue.nodes():
        assert node.state is NodeState.WAITING
        for parent in rescue.parents(node.node_id):
            assert parent.node_id in undone


# --- matchmaking admissibility ----------------------------------------------------

@settings(max_examples=30, deadline=None)
@given(
    outbound=st.booleans(),
    disk_gb=st.floats(min_value=0, max_value=5000),
    walltime_h=st.floats(min_value=1, max_value=300),
    seed=st.integers(min_value=0, max_value=100),
)
def test_property_selected_site_is_always_admissible(outbound, disk_gb, walltime_h, seed):
    """Whatever the requirements, a selected site satisfies all four
    §6.4 criteria (or None is returned)."""
    eng = Engine()
    from repro.fabric import Network
    net = Network(eng)
    giis = GIIS(eng, "g")
    rng = RngRegistry(seed)
    params = [
        ("A", dict(disk=1 * TB, outbound_connectivity=True, max_walltime=72 * HOUR)),
        ("B", dict(disk=100 * GB, outbound_connectivity=False, max_walltime=24 * HOUR)),
        ("C", dict(disk=4 * TB, outbound_connectivity=True, max_walltime=200 * HOUR)),
    ]
    sites = {}
    for name, kw in params:
        site = make_site(eng, net, name, **kw)
        giis.register(name, GRIS(eng, site, ttl=0.0))
        sites[name] = site
    selector = SiteSelector(giis, rng)
    spec = JobSpec(
        name="prop", vo="usatlas", user="u",
        runtime=walltime_h * HOUR / 2,
        walltime_request=walltime_h * HOUR,
        requires_outbound=outbound,
        disk_needed=disk_gb * GB,
    )
    choice = selector.select(spec)
    if choice is None:
        # Verify that genuinely nothing qualifies.
        for name, site in sites.items():
            admissible = (
                (not outbound or site.config.outbound_connectivity)
                and site.storage.free >= spec.local_disk_footprint
                and spec.walltime_request <= site.config.max_walltime
            )
            assert not admissible
    else:
        site = sites[choice]
        assert not outbound or site.config.outbound_connectivity
        assert site.storage.free >= spec.local_disk_footprint
        assert spec.walltime_request <= site.config.max_walltime


# --- batch scheduler conservation -------------------------------------------------

@settings(max_examples=25, deadline=None)
@given(
    runtimes=st.lists(
        st.floats(min_value=1.0, max_value=10 * HOUR), min_size=1, max_size=25
    ),
    cpus=st.integers(min_value=1, max_value=6),
)
def test_property_scheduler_conserves_jobs(runtimes, cpus):
    """Every submitted job terminates exactly once, slots never leak,
    and total CPU time equals the sum of runtimes."""
    eng = Engine()
    from repro.fabric import Network
    net = Network(eng)
    site = make_site(eng, net, "S", cpus=cpus, max_walltime=100 * HOUR)
    sched = BatchScheduler(eng, site)
    jobs = []
    for i, runtime in enumerate(runtimes):
        job = Job(spec=JobSpec(
            name=f"j{i}", vo="usatlas", user="u",
            runtime=runtime, walltime_request=50 * HOUR,
        ))
        jobs.append(job)
        sched.submit(job)
    eng.run()
    assert all(j.succeeded for j in jobs)
    assert len(sched.completed) == len(jobs)
    assert sched.running_count == 0 and sched.queue_length == 0
    assert site.cluster.busy_cpus == 0
    total_cpu = sum(j.run_time for j in jobs)
    assert total_cpu == pytest.approx(sum(runtimes), rel=1e-9)
    # Makespan lower bound: work / machines.
    assert eng.now >= sum(runtimes) / cpus - 1e-6
