"""Integration tests: the full Grid3 stack wired together.

These run heavily scaled-down (scale 400-800, days <= 21) so the whole
suite stays fast, and they assert the *shapes* the paper reports rather
than absolute numbers.
"""

import pytest

from repro import APP_CLASSES, Grid3, Grid3Config
from repro.failures import FailureProfile
from repro.fabric import GRID3_VOS
from repro.middleware.gram import Gatekeeper
from repro.middleware.gridftp import GridFTPServer
from repro.scheduling.batch import BatchScheduler
from repro.sim import DAY, HOUR, TB, bytes_to_tb


@pytest.fixture(scope="module")
def small_grid():
    """One deployed + 14-day run shared across this module's tests."""
    grid = Grid3(Grid3Config(
        seed=5, scale=400, duration_days=14,
        failures=FailureProfile.calm(),
    ))
    grid.run_full()
    return grid


def test_deploy_builds_27_wired_sites(small_grid):
    grid = small_grid
    assert len(grid.sites) == 27
    for site in grid.sites.values():
        assert isinstance(site.service("gatekeeper"), Gatekeeper)
        assert isinstance(site.service("gridftp"), GridFTPServer)
        assert isinstance(site.service("lrm"), BatchScheduler)
        assert site.service("gatekeeper").lrm is site.service("lrm")
        assert "grid3-site" in site.installed_packages


def test_deploy_is_idempotent(small_grid):
    before = len(small_grid.sites)
    small_grid.deploy()
    assert len(small_grid.sites) == before


def test_gridmaps_cover_all_registered_users(small_grid):
    grid = small_grid
    a_site = grid.sites["BNL_ATLAS"]
    gridmap = a_site.service("gridmap")
    assert len(gridmap) == grid.registered_users()


def test_users_milestone_is_102(small_grid):
    # §7: "Number of users (target = 10, actual = 102)".
    assert small_grid.registered_users() == 102


def test_all_eight_demonstrators_started(small_grid):
    assert set(small_grid.apps) == set(APP_CLASSES)


def test_jobs_ran_and_were_harvested(small_grid):
    db = small_grid.acdc_db
    assert len(db) > 50
    assert 0.3 < db.success_rate() <= 1.0


def test_multiple_vos_consumed_cpu(small_grid):
    db = small_grid.acdc_db
    assert len(db.vos()) >= 3
    assert db.total_cpu_days() > 0


def test_site_failures_dominate_failure_mix(small_grid):
    """§6.1: ~90 % of failures are site problems (we assert dominance,
    not the exact split, at this tiny scale)."""
    breakdown = small_grid.acdc_db.failure_breakdown()
    if sum(breakdown.values()) >= 10:
        site = breakdown.get("site", 0)
        assert site >= sum(breakdown.values()) * 0.5


def test_ledger_recorded_transfers(small_grid):
    grid = small_grid
    assert len(grid.ledger) > 0
    by_vo = grid.ledger.bytes_by_vo()
    # The GridFTP demo (under ivdgl) moves the bulk (Fig. 5).
    assert by_vo.get("ivdgl", 0) > 0


def test_monitoring_stack_collected(small_grid):
    grid = small_grid
    repo = grid.monitors["monalisa"]
    assert len(repo) > 0
    ganglia = grid.monitors["ganglia"]
    assert ganglia.latest("BNL_ATLAS", "cpu.total") is not None
    status = grid.monitors["status"]
    assert len(status.status_page()) == 27


def test_viewer_produces_figure_data(small_grid):
    grid = small_grid
    viewer = grid.viewer()
    fig2 = viewer.integrated_cpu_by_vo(0.0, grid.engine.now)
    assert fig2  # someone consumed CPU
    fig6 = viewer.jobs_by_month()
    assert "10-2003" in fig6 or "11-2003" in fig6


def test_milestones_table_renders(small_grid):
    tracker = small_grid.milestones()
    text = tracker.render()
    assert "Number of CPUs" in text
    # CPU milestone rescales to the full catalog's ballpark.
    cpus = tracker.milestone("cpus")
    assert cpus.achieved > 400  # beats the §7 target after rescale
    assert tracker.milestone("users").achieved == 102


def test_exerciser_probed_many_sites(small_grid):
    exerciser = small_grid.apps["exerciser"]
    probed_sites = {j.site_name for j in exerciser.stats.jobs if j.site_name}
    assert len(probed_sites) >= 8  # Table 1: 14 at full scale


def test_ops_team_kept_sites_alive(small_grid):
    grid = small_grid
    online = sum(1 for s in grid.sites.values() if s.online)
    assert online == 27
    # Tickets were actually opened and resolved if anything broke.
    tickets = grid.igoc.tickets
    if len(tickets) > 0:
        assert tickets.mean_time_to_resolve() >= 0


def test_local_load_occupies_shared_sites(small_grid):
    grid = small_grid
    shared_busy = [
        s.cluster.busy_cpus
        for spec, s in zip(grid.catalog, grid.sites.values())
        if spec.shared
    ]
    assert sum(shared_busy) > 0


# --- configuration variants (cheap, separate grids) ----------------------

def test_srm_variant_attaches_srm():
    grid = Grid3(Grid3Config(scale=800, duration_days=1, use_srm=True,
                             apps=["exerciser"]))
    grid.deploy()
    assert all("srm" in s.services for s in grid.sites.values())


def test_random_matchmaking_variant():
    from repro.scheduling import RandomSelector
    grid = Grid3(Grid3Config(scale=800, duration_days=1, matchmaking="random",
                             apps=["exerciser"]))
    grid.deploy()
    assert isinstance(grid.selector, RandomSelector)


def test_app_subset_config():
    grid = Grid3(Grid3Config(scale=800, duration_days=2, apps=["btev"]))
    grid.run_full()
    assert set(grid.apps) == {"btev"}


def test_determinism_same_seed_same_outcome():
    def run(seed):
        grid = Grid3(Grid3Config(seed=seed, scale=800, duration_days=5,
                                 apps=["ivdgl", "exerciser"]))
        grid.run_full()
        db = grid.acdc_db
        return (len(db), round(db.success_rate(), 6),
                round(db.total_cpu_days(), 6))

    assert run(99) == run(99)


def test_different_seeds_differ():
    def run(seed):
        grid = Grid3(Grid3Config(seed=seed, scale=800, duration_days=5,
                                 apps=["ivdgl"]))
        grid.run_full()
        return grid.acdc_db.total_cpu_days()

    assert run(1) != run(2)
