"""Tests for the JobSpec/Job model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.job import STAGING_LOAD_FACTOR, Job, JobSpec, JobState
from repro.errors import ApplicationError, StorageFullError
from repro.sim import GB, HOUR


def spec(**kw):
    defaults = dict(name="test", vo="usatlas", user="alice", runtime=HOUR)
    defaults.update(kw)
    return JobSpec(**defaults)


def test_spec_validation():
    with pytest.raises(ValueError):
        spec(runtime=-1)
    with pytest.raises(ValueError):
        spec(walltime_request=0)
    with pytest.raises(ValueError):
        spec(staging="extreme")
    with pytest.raises(ValueError):
        spec(app_failure_probability=1.5)


def test_spec_data_volumes():
    s = spec(
        inputs=(("/in/a", 2 * GB), ("/in/b", 1 * GB)),
        outputs=(("/out/x", 4 * GB),),
        disk_needed=1 * GB,
    )
    assert s.input_bytes == 3 * GB
    assert s.output_bytes == 4 * GB
    assert s.local_disk_footprint == 8 * GB


def test_staging_factors_match_paper():
    # §6.4: base, "factor of two", "three or four".
    assert STAGING_LOAD_FACTOR["none"] == 1.0
    assert STAGING_LOAD_FACTOR["minimal"] == 2.0
    assert 3.0 <= STAGING_LOAD_FACTOR["heavy"] <= 4.0
    assert spec(staging="heavy").staging_load_factor == STAGING_LOAD_FACTOR["heavy"]


def test_job_ids_unique():
    a, b = Job(spec()), Job(spec())
    assert a.job_id != b.job_id


def test_job_lifecycle_timestamps():
    job = Job(spec(), site_name="SiteA")
    job.mark(JobState.PENDING, 10.0)
    job.mark(JobState.ACTIVE, 25.0)
    job.mark(JobState.DONE, 100.0)
    assert job.submitted_at == 10.0
    assert job.started_at == 25.0
    assert job.finished_at == 100.0
    assert job.queue_time == 15.0
    assert job.run_time == 75.0
    assert job.cpu_time == 75.0
    assert job.succeeded and job.finished and not job.failed


def test_job_stage_in_counts_as_start():
    job = Job(spec())
    job.mark(JobState.PENDING, 0.0)
    job.mark(JobState.STAGE_IN, 5.0)
    job.mark(JobState.ACTIVE, 8.0)  # started_at not overwritten
    assert job.started_at == 5.0


def test_job_failure_category():
    job = Job(spec())
    assert job.failure_category is None
    job.error = StorageFullError("disk full")
    assert job.failure_category == "site"
    job.error = ApplicationError("segfault")
    assert job.failure_category == "application"


def test_job_never_started_times_are_zero():
    job = Job(spec())
    job.mark(JobState.PENDING, 5.0)
    job.mark(JobState.FAILED, 9.0)
    assert job.run_time == 0.0
    assert job.queue_time == 0.0
    assert job.failed


def test_vo_delegation_and_repr():
    job = Job(spec(), site_name="BNL_ATLAS")
    assert job.vo == "usatlas"
    assert "BNL_ATLAS" in repr(job)


@settings(max_examples=50, deadline=None)
@given(
    submitted=st.floats(min_value=0, max_value=1e6),
    queue=st.floats(min_value=0, max_value=1e5),
    run=st.floats(min_value=0, max_value=1e6),
)
def test_property_time_accounting(submitted, queue, run):
    """Property: queue_time + run_time == finished - submitted."""
    job = Job(spec())
    job.mark(JobState.PENDING, submitted)
    job.mark(JobState.ACTIVE, submitted + queue)
    job.mark(JobState.DONE, submitted + queue + run)
    assert job.queue_time == pytest.approx(queue, abs=1e-6)
    assert job.run_time == pytest.approx(run, abs=1e-6)
    assert job.queue_time + job.run_time == pytest.approx(
        job.finished_at - job.submitted_at, abs=1e-6
    )
