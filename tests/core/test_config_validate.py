"""Grid3Config.validate(): typos and contradictions fail loudly."""

import pytest

from repro import ConfigurationError, Grid3, Grid3Config


def test_default_config_validates():
    Grid3Config().validate()


def test_unknown_knob_suggests_the_real_one():
    config = Grid3Config()
    config.fair_shar = True  # typo'd attribute assignment
    with pytest.raises(ConfigurationError, match="fair_shar.*fair_share"):
        config.validate()


def test_unknown_matchmaking_value():
    with pytest.raises(ConfigurationError, match="smartt.*did you mean"):
        Grid3Config(matchmaking="smartt").validate()


def test_unknown_policy_set():
    with pytest.raises(ConfigurationError, match="site_policies"):
        Grid3Config(site_policies="strict").validate()


def test_contradictory_watermarks():
    with pytest.raises(ConfigurationError, match="low must be <= high"):
        Grid3Config(
            data_low_watermark=0.9, data_high_watermark=0.5
        ).validate()


def test_out_of_range_scalars():
    with pytest.raises(ConfigurationError, match="scale must be positive"):
        Grid3Config(scale=0).validate()
    with pytest.raises(ConfigurationError, match="probability"):
        Grid3Config(misconfig_probability=1.5).validate()
    with pytest.raises(ConfigurationError, match="disk-fill fraction"):
        Grid3Config(data_high_watermark=0.0).validate()
    with pytest.raises(ConfigurationError, match="per_site_throttle"):
        Grid3Config(per_site_throttle=0).validate()


def test_unknown_app_name():
    with pytest.raises(ConfigurationError, match="uscmss.*did you mean"):
        Grid3Config(apps=["uscmss"]).validate()


def test_bad_fair_share_targets():
    with pytest.raises(ConfigurationError, match="positive"):
        Grid3Config(fair_share_targets={"uscms": 0.0}).validate()


def test_grid3_init_validates():
    with pytest.raises(ConfigurationError):
        Grid3(Grid3Config(matchmaking="greedy"))
