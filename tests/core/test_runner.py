"""Tests for the Grid3 job wrapper (pre-stage/execute/post-stage/register)."""

import pytest

from repro.core.job import Job, JobSpec
from repro.core.runner import Grid3Runner
from repro.errors import (
    ApplicationError,
    ReservationError,
    SiteMisconfigurationError,
    StorageFullError,
)
from repro.middleware.rls import LocalReplicaCatalog, ReplicaLocationIndex
from repro.middleware.srm import attach_srm
from repro.scheduling.batch import BatchScheduler
from repro.sim import GB, HOUR, RngRegistry, TB

from ..conftest import make_site


@pytest.fixture
def grid(eng, net, rng):
    """Two wired sites (exec + archive), an RLS, and a runner factory."""
    exec_site = make_site(eng, net, "ExecSite", disk=1 * TB)
    archive = make_site(eng, net, "Tier1", disk=10 * TB)
    sites = {"ExecSite": exec_site, "Tier1": archive}
    rls = ReplicaLocationIndex(eng)
    for name in sites:
        rls.attach_lrc(LocalReplicaCatalog(name))
    return sites, rls


def run_job(eng, sites, rls, rng, spec, use_srm=False):
    runner = Grid3Runner(sites, rls, rng, use_srm=use_srm)
    sched = BatchScheduler(eng, sites["ExecSite"], runner=runner)
    job = Job(spec=spec)
    sched.submit(job)
    eng.run()
    return job, runner


def spec(**kw):
    defaults = dict(
        name="atlas-sim", vo="usatlas", user="prod", runtime=2 * HOUR,
        walltime_request=10 * HOUR,
    )
    defaults.update(kw)
    return JobSpec(**defaults)


def test_full_lifecycle_with_staging(eng, rng, grid):
    sites, rls = grid
    # An input dataset lives at the Tier1.
    sites["Tier1"].storage.store("/atlas/gen", 0.5 * GB)
    rls.register("Tier1", "/atlas/gen", 0.5 * GB)
    s = spec(
        inputs=(("/atlas/gen", 0.5 * GB),),
        outputs=(("/atlas/sim", 2 * GB),),
        archive_site="Tier1",
    )
    job, runner = run_job(eng, sites, rls, rng, s)
    assert job.succeeded
    assert job.bytes_staged_in == 0.5 * GB
    assert job.bytes_staged_out == 2 * GB
    # Output archived at the Tier1 and registered in RLS.
    assert "/atlas/sim" in sites["Tier1"].storage
    assert "Tier1" in rls.sites_with("/atlas/sim")
    # Scratch hygiene: the exec site keeps no residue of a clean job.
    assert "/atlas/gen" not in sites["ExecSite"].storage
    assert "/atlas/sim" not in sites["ExecSite"].storage


def test_local_output_registration_without_archive(eng, rng, grid):
    sites, rls = grid
    s = spec(outputs=(("/atlas/local-out", 1 * GB),), archive_site=None)
    job, _runner = run_job(eng, sites, rls, rng, s)
    assert job.succeeded
    assert "/atlas/local-out" in sites["ExecSite"].storage
    assert rls.sites_with("/atlas/local-out") == ["ExecSite"]


def test_input_already_local_skips_staging(eng, rng, grid):
    sites, rls = grid
    sites["ExecSite"].storage.store("/cached", 1 * GB)
    rls.register("ExecSite", "/cached", 1 * GB)
    s = spec(inputs=(("/cached", 1 * GB),))
    job, _runner = run_job(eng, sites, rls, rng, s)
    assert job.succeeded
    assert job.bytes_staged_in == 0.0


def test_missing_replica_fails_prestage(eng, rng, grid):
    sites, rls = grid
    s = spec(inputs=(("/ghost", 1 * GB),))
    job, runner = run_job(eng, sites, rls, rng, s)
    assert job.failed
    assert runner.failures_by_phase["pre-stage"] == 1
    # Failed before consuming compute.
    assert job.run_time < s.runtime


def test_disk_full_at_output_write(eng, rng, grid):
    sites, rls = grid
    sites["ExecSite"].storage.store("/filler", 0.999 * TB)
    s = spec(outputs=(("/atlas/big", 5 * GB),))
    job, runner = run_job(eng, sites, rls, rng, s)
    assert job.failed
    assert isinstance(job.error, StorageFullError)
    assert job.failure_category == "site"
    assert runner.failures_by_phase["execute"] == 1


def test_archive_full_at_poststage_leaves_residue(eng, net, rng):
    exec_site = make_site(eng, net, "ExecSite", disk=1 * TB)
    archive = make_site(eng, net, "Tier1", disk=1 * GB)  # tiny archive
    sites = {"ExecSite": exec_site, "Tier1": archive}
    rls = ReplicaLocationIndex(eng)
    for name in sites:
        rls.attach_lrc(LocalReplicaCatalog(name))
    s = spec(outputs=(("/atlas/out", 2 * GB),), archive_site="Tier1")
    job, runner = run_job(eng, sites, rls, rng, s)
    assert job.failed
    assert runner.failures_by_phase["post-stage"] == 1
    # The failed job left its output on the exec site (real residue).
    assert "/atlas/out" in exec_site.storage


def test_app_failure_probability(eng, rng, grid):
    sites, rls = grid
    s = spec(app_failure_probability=1.0)
    job, runner = run_job(eng, sites, rls, rng, s)
    assert job.failed
    assert isinstance(job.error, ApplicationError)
    assert job.failure_category == "application"
    # Application failures burn the full compute time (§6.1's expensive
    # failures).
    assert job.run_time >= s.runtime


def test_outbound_requirement_enforced(eng, net, rng):
    site = make_site(eng, net, "ExecSite", outbound_connectivity=False)
    sites = {"ExecSite": site}
    rls = ReplicaLocationIndex(eng)
    rls.attach_lrc(LocalReplicaCatalog("ExecSite"))
    s = spec(requires_outbound=True)
    job, runner = run_job(eng, sites, rls, rng, s)
    assert job.failed
    assert isinstance(job.error, SiteMisconfigurationError)


def test_misconfigured_site_fails_jobs(eng, rng, grid):
    sites, rls = grid
    sites["ExecSite"].attach_service("misconfigured", True)
    job, _runner = run_job(eng, sites, rls, rng, spec())
    assert job.failed
    assert isinstance(job.error, SiteMisconfigurationError)


def test_srm_reserves_and_releases(eng, rng, grid):
    sites, rls = grid
    attach_srm(eng, sites["ExecSite"])
    attach_srm(eng, sites["Tier1"])
    s = spec(outputs=(("/atlas/out", 2 * GB),), archive_site="Tier1")
    job, _runner = run_job(eng, sites, rls, rng, s, use_srm=True)
    assert job.succeeded
    assert sites["ExecSite"].storage.reserved == pytest.approx(0.0)
    assert sites["Tier1"].storage.reserved == pytest.approx(0.0)
    assert "/atlas/out" in sites["Tier1"].storage


def test_srm_turns_disk_full_into_early_rejection(eng, rng, grid):
    sites, rls = grid
    attach_srm(eng, sites["ExecSite"])
    sites["ExecSite"].storage.store("/filler", 0.999 * TB)
    s = spec(outputs=(("/atlas/big", 5 * GB),))
    job, runner = run_job(eng, sites, rls, rng, s, use_srm=True)
    assert job.failed
    assert isinstance(job.error, ReservationError)
    # Crucially: rejected before computing, not after (the §6.2 win).
    assert job.run_time < 1.0
    assert runner.failures_by_phase["pre-stage"] == 1


def test_walltime_covers_staging_time(eng, net, rng):
    """Walltime is wall-clock: slow staging counts against it."""
    exec_site = make_site(eng, net, "ExecSite", bw=1e6)  # 1 MB/s: slow
    tier1 = make_site(eng, net, "Tier1", bw=1e6)
    sites = {"ExecSite": exec_site, "Tier1": tier1}
    rls = ReplicaLocationIndex(eng)
    for name in sites:
        rls.attach_lrc(LocalReplicaCatalog(name))
    tier1.storage.store("/in", 10 * GB)
    rls.register("Tier1", "/in", 10 * GB)
    # 10 GB at 1 MB/s = 10 000 s of staging; walltime only 1 h.
    s = spec(inputs=(("/in", 10 * GB),), runtime=10.0, walltime_request=1 * HOUR)
    job, _runner = run_job(eng, sites, rls, rng, s)
    assert job.failed
    from repro.errors import WalltimeExceededError
    assert isinstance(job.error, WalltimeExceededError)
