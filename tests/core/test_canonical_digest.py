"""Grid3Config.canonical_digest: the cache key's stability contract.

The grid-as-a-service result cache keys on this digest, so two spellings
of the same run must collide and any semantic difference must not.
"""

import pytest

from repro import ConfigurationError, Grid3Config
from repro.failures import FailureProfile, FailureSchedule


def test_digest_is_deterministic():
    assert Grid3Config().canonical_digest() == Grid3Config().canonical_digest()


def test_digest_is_hex_sha256():
    digest = Grid3Config().canonical_digest()
    assert len(digest) == 64
    int(digest, 16)  # parses as hex


def test_digest_differs_on_any_knob():
    base = Grid3Config().canonical_digest()
    assert Grid3Config(seed=43).canonical_digest() != base
    assert Grid3Config(scale=99.0).canonical_digest() != base
    assert Grid3Config(fair_share=True).canonical_digest() != base


def test_digest_is_container_order_insensitive_where_semantics_are():
    # Sets canonicalise sorted; list order is semantic and preserved.
    a = Grid3Config(apps=["uscms", "usatlas"]).canonical_digest()
    b = Grid3Config(apps=["usatlas", "uscms"]).canonical_digest()
    assert a != b  # app list order is meaningful (round-robin order)
    # Dict key order never matters (canonical JSON sorts keys).
    one = Grid3Config(fair_share=True,
                      fair_share_targets={"uscms": 0.6, "sdss": 0.4})
    two = Grid3Config(fair_share=True,
                      fair_share_targets={"sdss": 0.4, "uscms": 0.6})
    assert one.canonical_digest() == two.canonical_digest()


def test_digest_handles_failure_profile_and_schedule():
    calm = Grid3Config(failures=FailureProfile.calm()).canonical_digest()
    early = Grid3Config(failures=FailureProfile.early()).canonical_digest()
    assert calm != early
    schedule = FailureSchedule([(0.0, FailureProfile.early()),
                                (100.0, FailureProfile.calm())])
    scheduled = Grid3Config(failures=schedule).canonical_digest()
    assert scheduled not in (calm, early)
    # Era insertion order does not matter (the schedule sorts).
    flipped = FailureSchedule([(100.0, FailureProfile.calm()),
                               (0.0, FailureProfile.early())])
    assert Grid3Config(failures=flipped).canonical_digest() == scheduled


def test_digest_rejects_non_plain_values_with_knob_path():
    config = Grid3Config()
    config.failures = object()  # passes validate, cannot be a cache key
    with pytest.raises(ConfigurationError, match="failures"):
        config.canonical_digest()


def test_digest_validates_first():
    with pytest.raises(ConfigurationError):
        Grid3Config(scale=-1.0).canonical_digest()
