"""ReportPage/paginate: the service's wire-format slice convention."""

import dataclasses
import json

import pytest

from repro import ReportPage, ReportRecord, paginate


@dataclasses.dataclass(frozen=True)
class Row(ReportRecord):
    site: str
    jobs: int


ROWS = [Row(site=f"site-{i}", jobs=i) for i in range(7)]


def test_paginate_slices_and_counts():
    page = paginate(ROWS, offset=2, limit=3)
    assert isinstance(page, ReportPage)
    assert page.total == 7
    shape = page.as_dict()
    assert shape["slice"] == {"offset": 2, "limit": 3, "returned": 3}
    assert [row["site"] for row in shape["items"]] == \
        ["site-2", "site-3", "site-4"]


def test_paginate_past_the_end_is_empty_not_an_error():
    page = paginate(ROWS, offset=100, limit=10)
    assert page.as_dict()["items"] == []
    assert page.total == 7


def test_paginate_accepts_plain_dict_rows():
    page = paginate([{"a": 1}, {"a": 2}], offset=0, limit=10)
    assert page.as_dict()["items"] == [{"a": 1}, {"a": 2}]


def test_paginated_walk_reassembles_the_full_report():
    walked = []
    offset = 0
    while True:
        shape = paginate(ROWS, offset=offset, limit=2).as_dict()
        walked += shape["items"]
        offset += shape["slice"]["returned"]
        if offset >= shape["total"]:
            break
    assert walked == [row.as_dict() for row in ROWS]


def test_page_json_is_sorted_and_stable():
    text = paginate(ROWS, offset=0, limit=2).to_json()
    parsed = json.loads(text)
    assert list(parsed) == sorted(parsed)
    assert text == paginate(ROWS, offset=0, limit=2).to_json()


@pytest.mark.parametrize("offset,limit", [(-1, 5), (0, 0), (0, -3)])
def test_paginate_rejects_bad_bounds(offset, limit):
    with pytest.raises(ValueError):
        paginate(ROWS, offset=offset, limit=limit)


def test_span_stays_slotted():
    """ROADMAP item: Span must hold no per-instance __dict__ — traces
    dominate heap at scale, so this is pinned against regression."""
    from repro.trace.spans import Span
    assert hasattr(Span, "__slots__")
    assert not hasattr(
        Span(None, 1, 1, None, "job", "compute", 0.0, {}), "__dict__",
    )
