"""Tests for the canned scenario library."""

import pytest

from repro import SCENARIOS, Grid3, build_scenario
from repro.scenarios import (
    chaos_deployment,
    full_observation_window,
    lesson_applied,
    sc2003_week,
    stabilized_2004,
)
from repro.sim import DAY


def test_all_scenarios_registered():
    assert set(SCENARIOS) == {
        "sc2003", "full-window", "stabilized-2004",
        "chaos-deployment", "lesson-applied", "paper-timeline",
        "disk-pressure", "contention", "scale-out",
    }


def test_scenario_configs_are_distinct():
    sc = sc2003_week()
    full = full_observation_window()
    calm = stabilized_2004()
    chaos = chaos_deployment()
    lesson = lesson_applied()
    assert full.duration_days == 183.0
    assert sc.duration_days == 37.0
    # Chaos is genuinely harsher than the stabilised regime.
    assert (chaos.failures.service_failure_interval
            < calm.failures.service_failure_interval)
    assert chaos.misconfig_probability > calm.misconfig_probability
    assert not chaos.ops_team
    assert lesson.use_srm and not sc.use_srm


def test_build_scenario_overrides():
    grid = build_scenario("stabilized-2004", seed=7, scale=900)
    assert isinstance(grid, Grid3)
    assert grid.config.seed == 7
    assert grid.config.scale == 900


def test_build_scenario_unknown():
    with pytest.raises(KeyError):
        build_scenario("nope")


def test_paper_timeline_stabilises():
    """The era schedule produces the §7 arc: worse early efficiency,
    better late efficiency, within one run."""
    from repro.scenarios import paper_timeline
    grid = Grid3(paper_timeline(seed=6, scale=400))
    grid.config.duration_days = 80.0
    grid.duration = 80.0 * DAY
    grid.config.apps = ["ivdgl", "exerciser"]
    grid.run_full()
    db = grid.acdc_db
    early = db.records(until=50 * DAY)
    late = db.records(since=55 * DAY)
    if len(early) >= 30 and len(late) >= 30:
        early_rate = sum(r.succeeded for r in early) / len(early)
        late_rate = sum(r.succeeded for r in late) / len(late)
        assert late_rate >= early_rate


def test_chaos_vs_stabilized_outcomes():
    """The scenario library's core claim: the chaotic deployment era has
    measurably worse job success than the stabilised 2004 regime."""
    def run(name):
        grid = build_scenario(name, seed=3, scale=500)
        grid.config.duration_days = 10.0
        grid.duration = 10.0 * DAY
        grid.config.apps = ["ivdgl", "exerciser"]
        grid.run_full()
        return grid.acdc_db.success_rate()

    chaos = run("chaos-deployment")
    stable = run("stabilized-2004")
    assert stable > chaos
    assert stable > 0.85
