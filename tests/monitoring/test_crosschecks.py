"""Cross-check tests: the §5.2 redundancy argument, verified.

"The Grid3 monitoring and analysis system allows similar information to
be collected by different paths ... it has the advantage of permitting
crosschecks on the data collected."  These tests assert that the
independent measurement paths in this reproduction agree with each other
and with ground truth.
"""

import pytest

from repro import Grid3, Grid3Config
from repro.failures import FailureProfile
from repro.sim import DAY, HOUR, bytes_to_tb


@pytest.fixture(scope="module")
def grid():
    g = Grid3(Grid3Config(
        seed=21, scale=400, duration_days=10,
        apps=["ivdgl", "btev", "gridftp-demo"],
        failures=FailureProfile.disabled(),
        misconfig_probability=0.0,
    ))
    g.run_full()
    return g


def test_fig2_integral_equals_acdc_cpu_days(grid):
    """MDViewer's Figure 2 computation over the whole window must equal
    the ACDC database's total CPU-days: same records, two code paths."""
    viewer = grid.viewer()
    fig2 = viewer.integrated_cpu_by_vo(0.0, grid.engine.now)
    assert sum(fig2.values()) == pytest.approx(
        grid.acdc_db.total_cpu_days(), rel=1e-9
    )
    for vo in fig2:
        assert fig2[vo] == pytest.approx(
            grid.acdc_db.total_cpu_days(vo=vo), rel=1e-9
        )


def test_fig3_integral_equals_fig2(grid):
    """Integrating the differential series (Fig. 3) recovers the
    integrated usage (Fig. 2) — the two figures are consistent views."""
    viewer = grid.viewer()
    t1 = grid.engine.now
    fig2 = viewer.integrated_cpu_by_vo(0.0, t1)
    fig3 = viewer.differential_cpu_series(0.0, t1, bin_width=DAY)
    for vo, series in fig3.items():
        integral_days = sum(cpus for _t, cpus in series) * (DAY / DAY)
        assert integral_days == pytest.approx(fig2[vo], rel=1e-6)


def test_fig4_totals_equal_fig2_for_vo(grid):
    viewer = grid.viewer()
    t1 = grid.engine.now
    fig2 = viewer.integrated_cpu_by_vo(0.0, t1)
    for vo in fig2:
        fig4 = viewer.cumulative_cpu_by_site(vo, 0.0, t1)
        assert sum(fig4.values()) == pytest.approx(fig2[vo], rel=1e-9)


def test_ledger_stageout_matches_acdc_bytes(grid):
    """Transfer-ledger stage-out volume equals the ACDC records' summed
    bytes_out — two independent accounting paths for Fig. 5."""
    ledger_out = grid.ledger.total_bytes(kind="stage-out")
    acdc_out = sum(r.bytes_out for r in grid.acdc_db.records())
    assert ledger_out == pytest.approx(acdc_out, rel=1e-9)


def test_ledger_stagein_matches_acdc_bytes(grid):
    ledger_in = grid.ledger.total_bytes(kind="stage-in")
    acdc_in = sum(r.bytes_in for r in grid.acdc_db.records())
    assert ledger_in == pytest.approx(acdc_in, rel=1e-9)


def test_gridftp_counters_bound_network_totals(grid):
    """Per-server GridFTP byte counters sum to at least the network's
    delivered total for storage-bound traffic (demo traffic streams
    through both, so server totals >= job traffic)."""
    sent = sum(
        s.service("gridftp").bytes_sent for s in grid.sites.values()
    )
    job_bytes = grid.ledger.total_bytes(kind="stage-in") + grid.ledger.total_bytes(kind="stage-out")
    assert sent >= job_bytes - 1e-6


def test_jobs_by_month_total_equals_record_count(grid):
    viewer = grid.viewer()
    fig6 = viewer.jobs_by_month()
    assert sum(fig6.values()) == len(grid.acdc_db)


def test_peak_concurrent_bounded_by_cpus(grid):
    viewer = grid.viewer()
    peak = viewer.peak_concurrent_jobs(0.0, grid.engine.now)
    assert 0 < peak <= grid.total_cpus()
