"""Prometheus exposition: grammar, latest-per-series, grid rendering."""

from repro.monitoring.core import MetricSample, MetricStore, make_tags
from repro.monitoring.prometheus import (
    escape_label_value,
    format_value,
    grid_exposition,
    grid_stores,
    render_flat,
    render_line,
    render_store,
    sanitize_name,
)


def test_sanitize_name():
    assert sanitize_name("service.gatekeeper.up") == "service_gatekeeper_up"
    assert sanitize_name("9lives") == "_9lives"
    assert sanitize_name("ok_name:x") == "ok_name:x"
    assert sanitize_name("") == "_"


def test_escape_label_value():
    assert escape_label_value('a"b\\c\nd') == 'a\\"b\\\\c\\nd'


def test_format_value():
    assert format_value(3.0) == "3"
    assert format_value(0.25) == "0.25"
    assert format_value(float("nan")) == "NaN"
    assert format_value(float("inf")) == "+Inf"
    assert format_value(float("-inf")) == "-Inf"


def test_render_line_with_and_without_labels():
    assert render_line("a.b", 1.0) == "a_b 1"
    line = render_line("up", 0.0, (("site", "UBuffalo-CCR"), ("role", "gk")))
    assert line == 'up{site="UBuffalo-CCR",role="gk"} 0'


def test_latest_per_series_takes_newest_per_tag_set():
    store = MetricStore()
    tags_a = make_tags(site="A")
    tags_b = make_tags(site="B")
    store.append(MetricSample(1.0, "up", 1.0, tags_a))
    store.append(MetricSample(2.0, "up", 0.0, tags_a))
    store.append(MetricSample(3.0, "up", 1.0, tags_b))
    per = store.latest_per_series("up")
    assert len(per) == 2
    assert per[tags_a].value == 0.0 and per[tags_a].time == 2.0
    assert per[tags_b].value == 1.0
    assert store.latest_per_series("missing") == {}


def test_render_store_groups_families_consecutively():
    store = MetricStore()
    store.append(MetricSample(1.0, "svc.up", 1.0, make_tags(site="A")))
    store.append(MetricSample(1.0, "svc.up", 0.0, make_tags(site="B")))
    store.append(MetricSample(1.0, "svc.load", 0.5))
    lines = render_store(store, prefix="x_")
    # Every family: one # TYPE header immediately followed by its lines.
    type_idx = [i for i, l in enumerate(lines) if l.startswith("# TYPE")]
    assert len(type_idx) == 2
    for i, l in enumerate(lines):
        if not l.startswith("# TYPE"):
            family = l.split("{")[0].split(" ")[0]
            assert f"# TYPE {family} gauge" in lines[:i]
    assert 'x_svc_up{site="A"} 1' in lines
    assert 'x_svc_up{site="B"} 0' in lines


def test_render_flat_sorted_with_headers():
    lines = render_flat({"b": 2.0, "a": 1.0})
    assert lines == [
        "# TYPE a gauge", "a 1", "# TYPE b gauge", "b 2",
    ]


def test_grid_exposition_on_tiny_run():
    from repro.core.grid3 import Grid3, Grid3Config
    # 0.25 sim-days: enough for several hourly service-health polls, so
    # the estate stores actually carry samples.
    grid = Grid3(Grid3Config(scale=3000.0, duration_days=0.25,
                             apps=["exerciser"], seed=7))
    events = []
    grid.run_full(progress=lambda e: events.append(e))
    text = grid_exposition(grid, progress=events[-1].as_dict())
    lines = text.splitlines()
    assert text.endswith("\n")

    stores = grid_stores(grid)
    assert "service-health" in stores and "acdc" not in stores

    # Kernel + fabric + per-VO jobs + progress + estate stores.
    assert any(l.startswith("repro_engine_events_dispatched ")
               for l in lines)
    assert "repro_sites 27" in lines
    assert any(l.startswith('repro_jobs_completed{vo="ivdgl"} ')
               for l in lines)
    assert "repro_run_progress_frac 1" in lines
    assert any(l.startswith("repro_service_health_service_gatekeeper_up{")
               for l in lines)

    # Valid v0.0.4: every sample line's family has a TYPE header, and
    # family lines are consecutive (Prometheus rejects interleaving).
    seen_types = set()
    last_family = None
    families_done = set()
    for line in lines:
        if line.startswith("# TYPE"):
            family = line.split()[2]
            assert family not in seen_types, f"duplicate TYPE {family}"
            seen_types.add(family)
            if last_family is not None:
                families_done.add(last_family)
            last_family = family
        elif line:
            family = line.split("{")[0].split(" ")[0]
            assert family == last_family, f"interleaved family {family}"
            assert family not in families_done
