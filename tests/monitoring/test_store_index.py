"""Property tests: the indexed MetricStore must be behaviorally
identical to the legacy linear-scan implementation.

The reference model below is a verbatim transcription of the seed
``MetricStore`` (deque ring + full scan per query); hypothesis drives
both through random append/query interleavings — including ring
eviction and out-of-order appends — and every observable must agree.
"""

from collections import deque

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.monitoring.core import MetricSample, MetricStore, make_tags


class LinearScanStore:
    """The seed implementation, kept as the behavioral oracle."""

    def __init__(self, max_samples=None):
        self._samples = {}
        self.max_samples = max_samples

    def append(self, sample):
        series = self._samples.get(sample.name)
        if series is None:
            series = deque(maxlen=self.max_samples)
            self._samples[sample.name] = series
        series.append(sample)

    def names(self):
        return sorted(self._samples)

    def query(self, name, since=-float("inf"), until=float("inf"), **tag_filter):
        out = []
        for sample in self._samples.get(name, ()):
            if not since <= sample.time <= until:
                continue
            if all(sample.tag(k) == str(v) for k, v in tag_filter.items()):
                out.append(sample)
        return out

    def latest(self, name, **tag_filter):
        for sample in reversed(self._samples.get(name, ())):
            if all(sample.tag(k) == str(v) for k, v in tag_filter.items()):
                return sample
        return None

    def __len__(self):
        return sum(len(v) for v in self._samples.values())


NAMES = ["cpu", "net", "disk"]
SITES = ["A", "B", "C"]
VOS = ["atlas", "cms"]

sample_strategy = st.builds(
    lambda t, name, value, site, vo, tagged: MetricSample(
        t, name, value, make_tags(site=site, vo=vo) if tagged else ()
    ),
    t=st.floats(min_value=0, max_value=1000, allow_nan=False),
    name=st.sampled_from(NAMES),
    value=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    site=st.sampled_from(SITES),
    vo=st.sampled_from(VOS),
    tagged=st.booleans(),
)


def _fill(samples, max_samples, monotone):
    """Both stores loaded with the same stream."""
    if monotone:
        samples = sorted(samples, key=lambda s: s.time)
    store = MetricStore(max_samples=max_samples)
    oracle = LinearScanStore(max_samples=max_samples)
    for s in samples:
        store.append(s)
        oracle.append(s)
    return store, oracle


def _check_agreement(store, oracle, windows):
    assert len(store) == len(oracle)
    assert store.names() == oracle.names()
    filters = [{}, {"site": "A"}, {"site": "B", "vo": "atlas"}, {"vo": "cms"},
               {"site": "nope"}]
    for name in NAMES + ["absent"]:
        for tf in filters:
            assert store.latest(name, **tf) == oracle.latest(name, **tf), (
                name, tf)
        for since, until in windows:
            for tf in filters:
                assert store.query(name, since, until, **tf) == oracle.query(
                    name, since, until, **tf
                ), (name, since, until, tf)


@settings(max_examples=60, deadline=None)
@given(
    samples=st.lists(sample_strategy, max_size=80),
    max_samples=st.sampled_from([None, 1, 7, 25]),
    monotone=st.booleans(),
    windows=st.lists(
        st.tuples(
            st.floats(min_value=-10, max_value=1100, allow_nan=False),
            st.floats(min_value=-10, max_value=1100, allow_nan=False),
        ),
        min_size=1,
        max_size=4,
    ),
)
def test_indexed_store_matches_linear_scan(samples, max_samples, monotone, windows):
    """Random streams, random windows/filters, ring eviction, and both
    time-ordered and out-of-order arrival orders."""
    store, oracle = _fill(samples, max_samples, monotone)
    _check_agreement(store, oracle, windows)


@settings(max_examples=30, deadline=None)
@given(
    samples=st.lists(sample_strategy, min_size=5, max_size=60),
    max_samples=st.sampled_from([None, 9]),
)
def test_queries_interleaved_with_appends(samples, max_samples):
    """Querying mid-stream (forcing early index builds) must not
    disturb later results."""
    samples = sorted(samples, key=lambda s: s.time)
    store = MetricStore(max_samples=max_samples)
    oracle = LinearScanStore(max_samples=max_samples)
    mid = len(samples) // 2
    for s in samples[:mid]:
        store.append(s)
        oracle.append(s)
    # Touch every series with an indexed query so the index exists
    # while the back half streams in.
    for name in NAMES:
        assert store.query(name, 0.0, 500.0, site="A") == oracle.query(
            name, 0.0, 500.0, site="A"
        )
    for s in samples[mid:]:
        store.append(s)
        oracle.append(s)
    _check_agreement(store, oracle, [(0.0, 1000.0), (250.0, 750.0)])


def test_heavy_eviction_keeps_index_consistent():
    """Long monotone stream through a tiny ring: postings and the time
    column must track the survivors exactly."""
    store = MetricStore(max_samples=16)
    oracle = LinearScanStore(max_samples=16)
    for i in range(3000):
        s = MetricSample(float(i), "cpu", float(i % 13),
                         make_tags(site=SITES[i % 3]))
        store.append(s)
        oracle.append(s)
        if i % 97 == 0:  # keep the index live through evictions
            store.query("cpu", since=i - 50, until=i, site="A")
    _check_agreement(store, oracle, [(2980, 3000), (0, 3000), (2990, 2991)])


def test_series_columnar_accessor():
    store = MetricStore()
    for i in range(10):
        store.append(MetricSample(float(i), "cpu", float(i * 2)))
    times, values = store.series("cpu")
    assert isinstance(times, np.ndarray) and isinstance(values, np.ndarray)
    np.testing.assert_allclose(times, np.arange(10.0))
    np.testing.assert_allclose(values, np.arange(10.0) * 2)
    empty_t, empty_v = store.series("absent")
    assert empty_t.size == 0 and empty_v.size == 0


def test_len_is_constant_time_counter():
    store = MetricStore(max_samples=5)
    for i in range(37):
        store.append(MetricSample(float(i), "m", 1.0))
        store.append(MetricSample(float(i), "n", 1.0))
    assert len(store) == 10  # two series, both saturated at maxlen=5


def test_out_of_order_append_falls_back():
    """A decreasing-time append flips the series to the legacy scan —
    queries must still match the oracle exactly."""
    store = MetricStore()
    oracle = LinearScanStore()
    stream = [5.0, 9.0, 2.0, 7.0, 7.0, 1.0]
    for t in stream:
        s = MetricSample(t, "cpu", t, make_tags(site="A"))
        store.append(s)
        oracle.append(s)
    assert store.query("cpu", 2.0, 8.0) == oracle.query("cpu", 2.0, 8.0)
    assert store.query("cpu", site="A") == oracle.query("cpu", site="A")
    assert store.latest("cpu", site="A") == oracle.latest("cpu", site="A")
