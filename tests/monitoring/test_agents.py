"""Tests for Ganglia, MonALISA, ACDC and the Site Status Catalog."""

import pytest

from repro.core.job import Job, JobSpec
from repro.errors import StorageFullError
from repro.monitoring.acdc import ACDCDatabase, ACDCJobMonitor, JobRecord
from repro.monitoring.ganglia import GangliaAgent, GangliaWeb
from repro.monitoring.monalisa import MonALISAAgent, MonALISARepository
from repro.monitoring.sitecatalog import SiteStatusCatalog, probe_site
from repro.scheduling.batch import BatchScheduler
from repro.sim import GB, HOUR, MINUTE

from ..conftest import make_site, wire_site


def spec(name="j", vo="usatlas", runtime=HOUR):
    return JobSpec(name=name, vo=vo, user="alice", runtime=runtime,
                   walltime_request=runtime * 4)


# --- Ganglia -----------------------------------------------------------------

def test_ganglia_agent_samples_cluster(eng, net):
    site = make_site(eng, net, "SiteA", cpus=4)
    central = GangliaWeb()
    GangliaAgent(eng, site, central, interval=5 * MINUTE)
    site.cluster.allocate("job-1")
    eng.run(until=6 * MINUTE)
    assert central.latest("SiteA", "cpu.total") == 4.0
    assert central.latest("SiteA", "cpu.busy") == 1.0
    assert central.latest("SiteA", "cpu.load") == pytest.approx(0.25)
    assert site.service("ganglia") is not None


def test_ganglia_net_bytes_are_deltas(eng, net):
    site = make_site(eng, net, "SiteA")
    central = GangliaWeb()
    agent = GangliaAgent(eng, site, central, interval=5 * MINUTE)
    gftp = site.service("gridftp")
    gftp.bytes_sent = 100.0
    eng.run(until=6 * MINUTE)
    assert central.latest("SiteA", "net.bytes") == 100.0
    eng.run(until=11 * MINUTE)
    assert central.latest("SiteA", "net.bytes") == 0.0  # no new traffic


def test_ganglia_grid_summary(eng, net):
    central = GangliaWeb()
    for i, busy in enumerate((1, 2)):
        site = make_site(eng, net, f"S{i}", cpus=4)
        for j in range(busy):
            site.cluster.allocate(f"job-{j}")
        GangliaAgent(eng, site, central, interval=MINUTE)
    eng.run(until=2 * MINUTE)
    assert central.grid_summary("cpu.busy", ["S0", "S1"]) == 3.0
    assert central.grid_summary("cpu.busy", ["S0", "S1", "Ghost"]) == 3.0


# --- MonALISA ---------------------------------------------------------------

def test_monalisa_agent_sensors(eng, net):
    site = make_site(eng, net, "SiteA", cpus=2)
    wire_site(eng, site, [("/CN=alice", "grid-usatlas")])
    repo = MonALISARepository(bin_width=MINUTE)
    MonALISAAgent(eng, site, repo, vos=["usatlas", "uscms"], interval=5 * MINUTE)
    lrm = site.service("lrm")
    lrm.submit(Job(spec=spec(runtime=30 * MINUTE)))
    lrm.submit(Job(spec=spec(name="j2", vo="uscms", runtime=30 * MINUTE)))
    eng.run(until=6 * MINUTE)
    assert repo.series("queue.running", site="SiteA")[-1][1] == 2.0
    assert repo.series("vo.cpus_in_use", site="SiteA", vo="usatlas")[-1][1] == 1.0
    assert repo.series("vo.cpus_in_use", site="SiteA", vo="uscms")[-1][1] == 1.0


def test_monalisa_gram_log_sensor_counts_new_entries(eng, net):
    site = make_site(eng, net, "SiteA", cpus=4)
    wire_site(eng, site, [("/CN=alice", "grid-usatlas")])
    repo = MonALISARepository(bin_width=MINUTE)
    MonALISAAgent(eng, site, repo, vos=["usatlas"], interval=5 * MINUTE)
    gk = site.service("gatekeeper")
    gk._record("submit", 1)
    gk._record("submit", 2)
    gk._record("done", 1)
    eng.run(until=6 * MINUTE)
    assert repo.series("gram.submits", site="SiteA")[-1][1] == 2.0
    assert repo.series("gram.completions", site="SiteA")[-1][1] == 1.0
    # Second pass sees nothing new.
    eng.run(until=11 * MINUTE)
    assert repo.series("gram.submits", site="SiteA")[-1][1] == 0.0


def test_monalisa_repository_aggregate(eng):
    repo = MonALISARepository(bin_width=MINUTE)
    from repro.monitoring.core import MetricSample, make_tags
    repo.ingest([
        MetricSample(30.0, "vo.cpus_in_use", 5.0, make_tags(site="A", vo="usatlas")),
        MetricSample(30.0, "vo.cpus_in_use", 3.0, make_tags(site="B", vo="usatlas")),
        MetricSample(30.0, "vo.cpus_in_use", 2.0, make_tags(site="A", vo="uscms")),
    ])
    assert repo.aggregate_latest("vo.cpus_in_use", vo="usatlas") == 8.0
    assert repo.aggregate_latest("vo.cpus_in_use") == 10.0
    assert len(repo) == 3


# --- ACDC -------------------------------------------------------------------

def test_job_record_from_job(eng, net):
    site = make_site(eng, net, "SiteA")
    sched = BatchScheduler(eng, site)
    job = Job(spec=spec(runtime=2 * HOUR))
    sched.submit(job)
    eng.run()
    record = JobRecord.from_job(job)
    assert record.vo == "usatlas"
    assert record.site == "SiteA"
    assert record.succeeded
    assert record.runtime == pytest.approx(2 * HOUR)
    assert record.failure_type == ""


def test_acdc_monitor_pulls_incrementally(eng, net):
    sites = []
    for i in range(2):
        site = make_site(eng, net, f"S{i}", cpus=4)
        wire_site(eng, site, [("/CN=alice", "grid-usatlas")])
        sites.append(site)
    monitor = ACDCJobMonitor(eng, sites, poll_interval=15 * MINUTE)
    for i, site in enumerate(sites):
        lrm = site.service("lrm")
        for j in range(3):
            lrm.submit(Job(spec=spec(name=f"s{i}j{j}", runtime=10 * MINUTE)))
    eng.run(until=16 * MINUTE)
    assert len(monitor.database) == 6
    # No duplicates on later polls.
    eng.run(until=46 * MINUTE)
    assert len(monitor.database) == 6
    assert monitor.database.success_rate() == 1.0


def test_acdc_database_queries():
    db = ACDCDatabase()
    for i in range(4):
        db.add(JobRecord(
            job_id=i, name=f"j{i}", vo="usatlas" if i < 3 else "uscms",
            user="alice", site="S0" if i % 2 == 0 else "S1",
            submitted_at=0.0, started_at=10.0, finished_at=100.0 + i,
            runtime=90.0, queue_time=10.0,
            succeeded=i != 1,
            failure_category="site" if i == 1 else "",
            failure_type="StorageFullError" if i == 1 else "",
            bytes_in=1.0, bytes_out=2.0,
        ))
    assert len(db.records(vo="usatlas")) == 3
    assert len(db.records(site="S0")) == 2
    assert len(db.records(succeeded=False)) == 1
    assert db.vos() == ["usatlas", "uscms"]
    assert db.sites() == ["S0", "S1"]
    assert db.success_rate(vo="usatlas") == pytest.approx(2 / 3)
    assert db.failure_breakdown() == {"site": 1}
    assert db.total_cpu_days() == pytest.approx(4 * 90.0 / 86400.0)
    assert len(db.records(since=102.5)) == 1


# --- Site Status Catalog -------------------------------------------------------

def test_probe_healthy_site(eng, net):
    site = make_site(eng, net, "SiteA")
    wire_site(eng, site, [])
    from repro.middleware.mds import GRIS
    site.attach_service("gris", GRIS(eng, site))
    result = probe_site(eng.now, site)
    assert result.ok


def test_probe_detects_problems(eng, net):
    site = make_site(eng, net, "SiteA", disk=1 * GB)
    wire_site(eng, site, [])
    from repro.middleware.mds import GRIS
    site.attach_service("gris", GRIS(eng, site))
    site.service("gatekeeper").available = False
    site.storage.store("/fill", 1 * GB)
    site.attach_service("misconfigured", True)
    result = probe_site(eng.now, site)
    assert not result.ok
    joined = " ".join(result.problems)
    assert "gatekeeper" in joined
    assert "full" in joined
    assert "configuration" in joined


def test_catalog_history_and_availability(eng, net):
    site = make_site(eng, net, "SiteA")
    wire_site(eng, site, [])
    from repro.middleware.mds import GRIS
    site.attach_service("gris", GRIS(eng, site))
    catalog = SiteStatusCatalog(eng, [site], probe_interval=HOUR)
    eng.run(until=2.5 * HOUR)  # two probes, both pass
    site.service("gridftp").available = False
    eng.run(until=4.5 * HOUR)  # two probes fail
    assert catalog.availability("SiteA") == pytest.approx(0.5)
    assert catalog.current_status("SiteA").ok is False
    page = catalog.status_page()
    assert page[0][0] == "SiteA" and page[0][1] == "FAIL"
    assert catalog.passing_sites() == []


def test_catalog_unknown_before_first_probe(eng, net):
    site = make_site(eng, net, "SiteA")
    catalog = SiteStatusCatalog(eng, [site], probe_interval=HOUR)
    assert catalog.status_page()[0][1] == "UNKNOWN"
    assert catalog.availability("SiteA") == 0.0
