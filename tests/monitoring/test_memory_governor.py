"""Tests for windowed eviction and the global MetricStore memory budget."""

from repro.monitoring.core import (
    SAMPLE_COST_BYTES,
    MemoryGovernor,
    MetricSample,
    MetricStore,
    make_tags,
)


def fill(store, n, name="cpu.busy", t0=0.0, dt=60.0):
    for i in range(n):
        store.append(MetricSample(t0 + i * dt, name, float(i), make_tags(site="S")))


def test_evict_oldest_window_folds_into_aggregates():
    store = MetricStore(window=3600.0)
    fill(store, 180, dt=60.0)  # 3 full hours
    before = store.window_stats("cpu.busy")
    evicted = store.evict_oldest_window()
    assert evicted == 60
    assert len(store) == 120
    assert store.evicted_sample_count == 60
    # Stats over the full horizon still answer identically: the folded
    # aggregates of the evicted hour are merged back in.
    after = store.window_stats("cpu.busy")
    assert after == before
    rows = store.evicted_windows("cpu.busy")
    assert len(rows) == 1
    wstart, stats = rows[0]
    assert wstart == 0.0
    assert stats["count"] == 60
    assert stats["min"] == 0.0 and stats["max"] == 59.0


def test_newest_window_never_evicted():
    store = MetricStore(window=3600.0)
    fill(store, 30, dt=60.0)  # everything inside one window
    assert store.evict_oldest_window() == 0
    assert len(store) == 30


def test_governor_keeps_aggregate_under_budget():
    budget_mb = 0.01  # ~65 samples
    governor = MemoryGovernor(budget_mb)
    stores = [MetricStore(window=600.0, governor=governor) for _ in range(3)]
    for i, store in enumerate(stores):
        fill(store, 200, name=f"m{i}", dt=30.0)
    live = sum(len(s) for s in stores)
    assert live * SAMPLE_COST_BYTES <= governor.budget_bytes
    assert governor.evicted_samples > 0
    assert governor.peak_bytes <= governor.budget_bytes
    # Nothing was lost from the windowed view: evicted samples still
    # count through the folded aggregates.
    for i, store in enumerate(stores):
        assert store.window_stats(f"m{i}")["count"] == 200


def test_governor_extend_batch_respects_budget():
    # Batches land whole, but the governor is notified *before* each
    # one and clears headroom, so sub-budget batches never overshoot.
    governor = MemoryGovernor(0.01)
    store = MetricStore(window=600.0, governor=governor)
    for start in range(0, 300, 30):
        store.extend([
            MetricSample(i * 30.0, "x", float(i), make_tags(site="S"))
            for i in range(start, start + 30)
        ])
    assert len(store) * SAMPLE_COST_BYTES <= governor.budget_bytes
    assert governor.report()["peak_bytes"] <= governor.budget_bytes


def test_governor_register_idempotent():
    governor = MemoryGovernor(1.0)
    store = MetricStore()
    governor.register(store)
    governor.register(store)
    assert governor.stores.count(store) == 1
    assert store.governor is governor


def test_governor_exhaustion_counted_not_spun():
    # One store, all samples in a single (un-evictable) window, budget
    # far too small: enforcement must record the exhaustion and stop.
    governor = MemoryGovernor(0.001, check_every=8)  # ~6 samples
    store = MetricStore(window=1e9, governor=governor)
    fill(store, 50, dt=1.0)
    assert len(store) == 50  # newest window is never evicted
    assert governor.exhausted_passes > 0


def test_window_stats_merges_live_and_evicted():
    store = MetricStore(window=100.0)
    fill(store, 30, dt=10.0)  # 3 windows of 10
    store.evict_oldest_window()
    # Query confined to the evicted hour: answered from the fold.
    first = store.window_stats("cpu.busy", since=0.0, until=99.0)
    assert first["count"] == 10
    assert first["mean"] == 4.5
    assert first["min"] == 0.0 and first["max"] == 9.0
    # Full-horizon query merges live samples and the fold.
    total = store.window_stats("cpu.busy")
    assert total["count"] == 30
    assert total["min"] == 0.0 and total["max"] == 29.0


def test_ungoverned_store_unchanged():
    # No governor: nothing evicts, no budget machinery engages.
    store = MetricStore()
    fill(store, 500)
    assert len(store) == 500
    assert store.evicted_sample_count == 0
