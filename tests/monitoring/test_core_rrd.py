"""Tests for the monitoring core (samples, store, producers) and RRD."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.monitoring.core import MetricSample, MetricStore, PeriodicProducer, make_tags
from repro.monitoring.rrd import RoundRobinDatabase
from repro.sim import Engine


def test_make_tags_canonical_order():
    assert make_tags(vo="x", site="a") == (("site", "a"), ("vo", "x"))


def test_sample_tag_lookup():
    s = MetricSample(0.0, "m", 1.0, make_tags(site="BNL"))
    assert s.tag("site") == "BNL"
    assert s.tag("vo") is None


def test_store_query_by_name_time_tags():
    store = MetricStore()
    for t in range(5):
        store.append(MetricSample(float(t), "cpu", t * 1.0, make_tags(site="A")))
        store.append(MetricSample(float(t), "cpu", t * 2.0, make_tags(site="B")))
    assert len(store) == 10
    assert store.names() == ["cpu"]
    a_mid = store.query("cpu", since=1.0, until=3.0, site="A")
    assert [s.value for s in a_mid] == [1.0, 2.0, 3.0]
    assert store.latest("cpu", site="B").value == 8.0
    assert store.latest("nope") is None
    assert store.query("cpu", site="C") == []


def test_periodic_producer_collects(eng):
    store = MetricStore()
    counter = [0]

    def collect():
        counter[0] += 1
        return [MetricSample(eng.now, "tick", float(counter[0]))]

    producer = PeriodicProducer(eng, "ticker", 10.0, collect, [store])
    eng.run(until=35.0)
    assert producer.collections == 3
    assert [s.value for s in store.query("tick")] == [1.0, 2.0, 3.0]


def test_periodic_producer_survives_exceptions(eng):
    store = MetricStore()
    calls = [0]

    def flaky():
        calls[0] += 1
        if calls[0] == 1:
            raise RuntimeError("sensor glitch")
        return [MetricSample(eng.now, "ok", 1.0)]

    producer = PeriodicProducer(eng, "flaky", 10.0, flaky, [store])
    eng.run(until=25.0)
    assert producer.errors == 1
    assert producer.collections == 1
    assert len(store.query("ok")) == 1


def test_periodic_producer_disable(eng):
    store = MetricStore()
    producer = PeriodicProducer(
        eng, "p", 10.0, lambda: [MetricSample(eng.now, "m", 1.0)], [store]
    )
    producer.enabled = False
    eng.run(until=50.0)
    assert len(store.query("m")) == 0


def test_producer_interval_validation(eng):
    with pytest.raises(ValueError):
        PeriodicProducer(eng, "bad", 0.0, lambda: [])


# --- RRD -----------------------------------------------------------------

def test_rrd_validation():
    with pytest.raises(ValueError):
        RoundRobinDatabase(0.0, 10)
    with pytest.raises(ValueError):
        RoundRobinDatabase(1.0, 0)
    with pytest.raises(ValueError):
        RoundRobinDatabase(1.0, 10, consolidation="median")


def test_rrd_consolidation_avg():
    rrd = RoundRobinDatabase(10.0, 100)
    rrd.update(1.0, 2.0)
    rrd.update(5.0, 4.0)
    rrd.update(15.0, 10.0)
    assert rrd.series() == [(0.0, 3.0), (10.0, 10.0)]
    assert rrd.value_at(5.0) == 3.0
    assert rrd.value_at(95.0) is None


def test_rrd_consolidation_max_sum_last():
    for kind, expect in (("max", 7.0), ("sum", 12.0), ("last", 2.0)):
        rrd = RoundRobinDatabase(10.0, 10, consolidation=kind)
        for v in (3.0, 7.0, 2.0):
            rrd.update(1.0, v)
        assert rrd.series() == [(0.0, expect)]


def test_rrd_ring_evicts_oldest():
    rrd = RoundRobinDatabase(10.0, capacity=3)
    for i in range(6):
        rrd.update(i * 10.0, float(i))
    assert len(rrd) == 3
    assert [t for t, _v in rrd.series()] == [30.0, 40.0, 50.0]
    assert rrd.span == 30.0


def test_rrd_drops_too_old_samples():
    rrd = RoundRobinDatabase(10.0, capacity=2)
    rrd.update(100.0, 1.0)
    rrd.update(110.0, 1.0)
    rrd.update(5.0, 99.0)  # older than the retained window
    assert rrd.samples_dropped == 1
    assert all(v != 99.0 for _t, v in rrd.series())


@settings(max_examples=40, deadline=None)
@given(
    times=st.lists(st.floats(min_value=0, max_value=1e4), min_size=1, max_size=60),
)
def test_rrd_property_series_sorted_and_bounded(times):
    """Property: the retained series is time-sorted and never exceeds
    capacity."""
    rrd = RoundRobinDatabase(50.0, capacity=5)
    for t in times:
        rrd.update(t, 1.0)
    series = rrd.series()
    assert len(series) <= 5
    assert [t for t, _ in series] == sorted(t for t, _ in series)
    assert rrd.samples_seen == len(times)
