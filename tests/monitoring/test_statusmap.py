"""Tests for the §5.2 status map page."""

import pytest

from repro.fabric import GRID3_SITES
from repro.monitoring.statusmap import (
    GLYPHS,
    SITE_LOCATIONS,
    project,
    render_status_map,
    status_map_for_catalog,
)


def test_every_catalog_site_has_coordinates():
    catalog_names = {s.name for s in GRID3_SITES}
    assert catalog_names <= set(SITE_LOCATIONS)


def test_projection_in_bounds():
    row, col = project(40.0, -100.0, width=72, height=20)
    assert 0 <= row < 20 and 0 <= col < 72
    # Corners map to corners.
    assert project(50.0, -125.0, 72, 20) == (0, 0)
    assert project(24.0, -66.0, 72, 20) == (19, 71)


def test_projection_off_viewport():
    assert project(35.89, 128.61, 72, 20) is None  # Korea


def test_render_contains_glyphs_and_key():
    statuses = {"BNL_ATLAS": "PASS", "FNAL_CMS": "FAIL", "UB_ACDC": "UNKNOWN"}
    text = render_status_map(statuses)
    assert "o" in text and "X" in text and "?" in text
    assert "key:" in text
    lines = text.splitlines()
    assert lines[0].startswith("+") and lines[0].endswith("+")


def test_render_offmap_site_listed():
    text = render_status_map({"KNU_Grid3": "PASS"})
    assert "KNU_Grid3 (off-map): PASS" in text


def test_render_unknown_site_listed():
    text = render_status_map({"Mystery": "FAIL"})
    assert "Mystery (no coordinates): FAIL" in text


def test_fail_wins_pixel_collisions():
    # CalTech_PG and CalTech_Grid3 share a pixel.
    text = render_status_map({"CalTech_PG": "PASS", "CalTech_Grid3": "FAIL"})
    assert "X" in text


def test_status_map_for_catalog_rows():
    rows = [("BNL_ATLAS", "PASS", ()), ("FNAL_CMS", "FAIL", ("gridftp down",))]
    text = status_map_for_catalog(rows)
    assert "o" in text and "X" in text


def test_full_catalog_render(eng, net):
    """The real status page renders every site without error."""
    from repro.monitoring.sitecatalog import SiteStatusCatalog
    from repro.fabric import build_sites, scaled_catalog

    sites = build_sites(eng, net, scaled_catalog(100.0))
    catalog = SiteStatusCatalog(eng, sites.values())
    catalog.probe_all()
    text = status_map_for_catalog(catalog.status_page())
    # 26 on-map sites render; KNU is listed off-map.
    assert text.count("KNU_Grid3") == 1
    assert len(text.splitlines()) >= 22
