"""Tests for the transfer ledger and the MDViewer figure queries."""

import pytest

from repro.monitoring.acdc import ACDCDatabase, JobRecord
from repro.monitoring.mdviewer import MDViewer
from repro.monitoring.transfers import TransferLedger
from repro.sim import DAY, GB, HOUR, SimCalendar, TB


def record(vo="usatlas", site="S0", start=0.0, end=DAY, user="alice", ok=True):
    return JobRecord(
        job_id=0, name="j", vo=vo, user=user, site=site,
        submitted_at=max(0.0, start - HOUR), started_at=start, finished_at=end,
        runtime=end - start, queue_time=HOUR, succeeded=ok,
        failure_category="" if ok else "site",
        failure_type="" if ok else "StorageFullError",
        bytes_in=0.0, bytes_out=0.0,
    )


# --- ledger -----------------------------------------------------------------

def test_ledger_record_and_totals():
    ledger = TransferLedger()
    ledger.record(0.0, "ivdgl", 2 * TB, "A", "B")
    ledger.record(DAY, "usatlas", 1 * TB, "B", "C", kind="stage-out")
    assert len(ledger) == 2
    assert ledger.total_bytes() == 3 * TB
    assert ledger.total_bytes(vo="ivdgl") == 2 * TB
    assert ledger.total_bytes(kind="stage-out") == 1 * TB
    assert ledger.bytes_by_vo() == {"ivdgl": 2 * TB, "usatlas": 1 * TB}


def test_ledger_validation():
    with pytest.raises(ValueError):
        TransferLedger().record(0.0, "vo", -1.0, "A", "B")


def test_ledger_daily_series_and_peak():
    ledger = TransferLedger()
    for day, tb in enumerate((1.0, 4.0, 2.0)):
        ledger.record(day * DAY + 100.0, "ivdgl", tb * TB, "A", "B")
    series = ledger.daily_series(0.0, 3 * DAY)
    assert series == [1 * TB, 4 * TB, 2 * TB]
    assert ledger.peak_daily_bytes(0.0, 3 * DAY) == 4 * TB


# --- MDViewer ----------------------------------------------------------------

@pytest.fixture
def viewer():
    db = ACDCDatabase()
    ledger = TransferLedger()
    return MDViewer(db, ledger=ledger, calendar=SimCalendar()), db, ledger


def test_integrated_cpu_by_vo(viewer):
    mdv, db, _ = viewer
    db.add(record(vo="usatlas", start=0.0, end=2 * DAY))
    db.add(record(vo="uscms", start=0.0, end=1 * DAY))
    db.add(record(vo="uscms", start=DAY, end=2 * DAY))
    fig2 = mdv.integrated_cpu_by_vo(0.0, 30 * DAY)
    assert fig2["usatlas"] == pytest.approx(2.0)
    assert fig2["uscms"] == pytest.approx(2.0)


def test_integrated_cpu_clips_to_window(viewer):
    mdv, db, _ = viewer
    db.add(record(start=0.0, end=10 * DAY))
    fig2 = mdv.integrated_cpu_by_vo(2 * DAY, 4 * DAY)
    assert fig2["usatlas"] == pytest.approx(2.0)


def test_differential_cpu_series(viewer):
    mdv, db, _ = viewer
    # Two 12 h jobs in day 0, one full-day job across days 0-1.
    db.add(record(start=0.0, end=0.5 * DAY))
    db.add(record(start=0.5 * DAY, end=DAY))
    db.add(record(start=0.0, end=2 * DAY))
    series = mdv.differential_cpu_series(0.0, 2 * DAY, bin_width=DAY)
    usatlas = dict(series["usatlas"])
    assert usatlas[0.0] == pytest.approx(2.0)   # 12h+12h+24h over 24h
    assert usatlas[DAY] == pytest.approx(1.0)


def test_cumulative_cpu_by_site(viewer):
    mdv, db, _ = viewer
    db.add(record(vo="uscms", site="FNAL", start=0.0, end=3 * DAY))
    db.add(record(vo="uscms", site="UCSD", start=0.0, end=1 * DAY))
    db.add(record(vo="usatlas", site="BNL", start=0.0, end=5 * DAY))
    fig4 = mdv.cumulative_cpu_by_site("uscms", 0.0, 150 * DAY)
    assert fig4 == {"FNAL": pytest.approx(3.0), "UCSD": pytest.approx(1.0)}


def test_data_consumed_and_cumulative(viewer):
    mdv, _db, ledger = viewer
    ledger.record(0.5 * DAY, "ivdgl", 2 * TB, "A", "B")
    ledger.record(1.5 * DAY, "ivdgl", 1 * TB, "A", "C")
    ledger.record(1.6 * DAY, "uscms", 0.5 * TB, "B", "C")
    fig5 = mdv.data_consumed_by_vo(0.0, 30 * DAY)
    assert fig5["ivdgl"] == 3 * TB
    cumulative = mdv.cumulative_data_series(0.0, 2 * DAY)
    assert cumulative[-1][1] == pytest.approx(3.5 * TB)
    assert cumulative[0][1] == pytest.approx(2 * TB)


def test_jobs_by_month(viewer):
    mdv, db, _ = viewer
    # Epoch is 2003-10-23; 10 days in is early November.
    db.add(record(start=0.0, end=DAY))                 # October 2003
    db.add(record(start=0.0, end=12 * DAY))            # November 2003
    db.add(record(start=0.0, end=12 * DAY, vo="uscms"))
    fig6 = mdv.jobs_by_month()
    assert fig6 == {"10-2003": 1, "11-2003": 2}
    by_vo = mdv.jobs_by_month_and_vo()
    assert by_vo["11-2003"] == {"usatlas": 1, "uscms": 1}


def test_peak_concurrent_jobs(viewer):
    mdv, db, _ = viewer
    # Three overlapping jobs, then one lone job.
    for start in (0.0, 0.1 * DAY, 0.2 * DAY):
        db.add(record(start=start, end=start + DAY))
    db.add(record(start=5 * DAY, end=6 * DAY))
    assert mdv.peak_concurrent_jobs(0.0, 10 * DAY) == 3


def test_utilisation_series():
    from repro.monitoring.core import MetricSample, make_tags
    from repro.monitoring.monalisa import MonALISARepository

    repo = MonALISARepository(bin_width=HOUR)
    repo.ingest([
        MetricSample(HOUR / 2, "vo.cpus_in_use", 30.0, make_tags(site="A", vo="usatlas")),
        MetricSample(HOUR / 2, "vo.cpus_in_use", 20.0, make_tags(site="B", vo="uscms")),
    ])
    mdv = MDViewer(ACDCDatabase(), repository=repo)
    series = mdv.utilisation_series(total_cpus=100)
    assert series == [(0.0, pytest.approx(0.5))]
    assert mdv.utilisation_series(0) == []
