"""The ServiceHealthAgent publishes lifecycle and counters as metrics."""

import pytest

from repro.monitoring import ServiceHealthAgent
from repro.sim.units import HOUR
from tests.conftest import make_site, wire_site


def make_monitored_site(eng, net, name="SiteA"):
    site = wire_site(eng, make_site(eng, net, name))
    agent = ServiceHealthAgent(eng, [site], interval=1 * HOUR)
    return site, agent


def test_publishes_up_and_counter_series(eng, net):
    site, agent = make_monitored_site(eng, net)
    eng.run(until=2 * HOUR)
    store = agent.store
    up = store.latest("service.gatekeeper.up", site="SiteA")
    assert up is not None and up.value == 1.0
    assert up.tag("role") == "gatekeeper"
    accepted = store.latest("service.gatekeeper.submissions_accepted", site="SiteA")
    assert accepted is not None and accepted.value == 0.0
    ftp_up = store.latest("service.gridftp.up", site="SiteA")
    assert ftp_up is not None and ftp_up.value == 1.0


def test_up_series_tracks_outages(eng, net):
    site, agent = make_monitored_site(eng, net)
    eng.run(until=1.5 * HOUR)
    site.services["gatekeeper"].fail("crash")
    eng.run(until=2.5 * HOUR)
    site.services["gatekeeper"].restore()
    eng.run(until=3.5 * HOUR)
    values = [
        s.value
        for s in agent.store.query("service.gatekeeper.up", site="SiteA")
    ]
    assert values == [1.0, 0.0, 1.0]


def test_availability_series_reflects_ledger(eng, net):
    site, agent = make_monitored_site(eng, net)
    site.services["gridftp"].fail("down from t=0")
    eng.run(until=1 * HOUR)
    sample = agent.store.latest("service.gridftp.availability", site="SiteA")
    assert sample is not None
    assert sample.value == pytest.approx(0.0)


def test_extra_services_published_under_display_site(eng, net):
    from repro.middleware.rls import ReplicaLocationIndex

    site = wire_site(eng, make_site(eng, net, "SiteA"))
    rls = ReplicaLocationIndex(eng)
    agent = ServiceHealthAgent(
        eng, [site], interval=1 * HOUR, extra_services={"igoc-rls": rls}
    )
    eng.run(until=1 * HOUR)
    sample = agent.store.latest("service.rls.up", site="igoc-rls")
    assert sample is not None and sample.value == 1.0
