"""The GridService lifecycle state machine and downtime ledger."""

import pytest

from repro.errors import ServiceUnavailableError
from repro.services import DowntimeLedger, GridService, ServiceState
from repro.sim import Engine


class Thing(GridService):
    role = "thing"
    _counter_names = ("widgets",)

    def __init__(self, engine=None):
        super().__init__(owner="TestSite", engine=engine)
        self.widgets = 0


def test_starts_up_and_available(eng):
    svc = Thing(eng)
    assert svc.state is ServiceState.UP
    assert svc.available
    assert len(svc.ledger) == 0


def test_fail_opens_outage_and_restore_closes_it(eng):
    svc = Thing(eng)
    eng.run(until=100.0)
    svc.fail("disk died")
    assert not svc.available
    assert svc.ledger.current is not None
    assert svc.ledger.current.cause == "disk died"
    eng.run(until=250.0)
    outage = svc.restore(note="fixed")
    assert svc.available
    assert outage is not None
    assert outage.start == 100.0
    assert outage.end == 250.0
    assert outage.duration() == 150.0


def test_fail_is_idempotent(eng):
    svc = Thing(eng)
    first = svc.fail("first cause")
    second = svc.fail("second cause")
    assert first is second
    assert len(svc.ledger) == 1
    assert svc.ledger.current.cause == "first cause"


def test_restore_when_up_is_a_noop(eng):
    svc = Thing(eng)
    assert svc.restore() is None
    assert len(svc.ledger) == 0


def test_available_setter_routes_through_ledger(eng):
    svc = Thing(eng)
    eng.run(until=10.0)
    svc.available = False
    assert not svc.available
    assert len(svc.ledger) == 1
    eng.run(until=30.0)
    svc.available = True
    assert svc.available
    outage = svc.ledger.outages()[0]
    assert outage.duration() == 20.0


def test_require_available_raises_uniform_error(eng):
    svc = Thing(eng)
    svc.require_available("anything")  # up: no raise
    svc.fail("gone")
    with pytest.raises(ServiceUnavailableError) as exc:
        svc.require_available("the thing")
    message = str(exc.value)
    assert "thing" in message
    assert "TestSite" in message
    assert "the thing" in message


def test_degrade_keeps_service_available_without_downtime(eng):
    svc = Thing(eng)
    svc.degrade("slow disk")
    assert svc.state is ServiceState.DEGRADED
    assert svc.available
    assert len(svc.ledger) == 0
    assert svc.health()["cause"] == "slow disk"
    svc.restore()
    assert svc.state is ServiceState.UP
    assert svc.health()["cause"] == ""


def test_degrade_does_not_mask_down(eng):
    svc = Thing(eng)
    svc.fail("dead")
    svc.degrade("irrelevant")
    assert svc.state is ServiceState.DOWN


def test_health_snapshot(eng):
    svc = Thing(eng)
    eng.run(until=50.0)
    svc.fail("kaput")
    eng.run(until=80.0)
    health = svc.health()
    assert health["role"] == "thing"
    assert health["owner"] == "TestSite"
    assert health["state"] == "down"
    assert health["available"] is False
    assert health["since"] == 50.0
    assert health["cause"] == "kaput"
    assert health["outages"] == 1
    assert health["downtime"] == 30.0  # open outage clamped to now


def test_counters_read_declared_names(eng):
    svc = Thing(eng)
    svc.widgets = 7
    assert svc.counters() == {"widgets": 7.0}


def test_engineless_service_runs_on_zero_clock_until_adopted():
    svc = Thing()
    assert svc.now == 0.0
    engine = Engine()
    engine.run(until=5.0)
    svc.adopt_engine(engine)
    assert svc.now == 5.0
    # Adoption is first-wins.
    svc.adopt_engine(Engine())
    assert svc.engine is engine


def test_availability_over_window(eng):
    svc = Thing(eng)
    eng.run(until=100.0)
    svc.fail()
    eng.run(until=150.0)
    svc.restore()
    eng.run(until=200.0)
    assert svc.availability() == pytest.approx(0.75)
    assert svc.availability(since=100.0, until=150.0) == pytest.approx(0.0)
    assert svc.availability(since=150.0, until=200.0) == pytest.approx(1.0)


def test_ledger_statistics():
    ledger = DowntimeLedger()
    ledger.open(10.0, "a")
    ledger.close(20.0)
    ledger.open(50.0, "b")
    ledger.close(80.0)
    assert ledger.downtime(0.0, 100.0) == 40.0
    assert ledger.availability(0.0, 100.0) == pytest.approx(0.6)
    assert ledger.mttr() == pytest.approx(20.0)
    assert ledger.mtbf(0.0, 100.0) == pytest.approx(30.0)
    assert DowntimeLedger().mtbf(0.0, 100.0) == float("inf")


def test_ledger_open_outage_clamps_to_horizon():
    ledger = DowntimeLedger()
    ledger.open(90.0, "open-ended")
    assert ledger.downtime(0.0, 100.0) == pytest.approx(10.0)
    assert ledger.availability(0.0, 100.0) == pytest.approx(0.9)
    # mttr without a horizon ignores the open outage...
    assert ledger.mttr() == 0.0
    # ...but counts it clamped when one is given.
    assert ledger.mttr(until=100.0) == pytest.approx(10.0)
