"""Same-seed runs are byte-identical — the substrate must not have
introduced any hidden ordering or clock dependence."""

from repro import Grid3, Grid3Config
from repro.analysis import export_database


def run_once(seed: int = 7) -> str:
    grid = Grid3(Grid3Config(
        seed=seed, scale=600.0, duration_days=2.0, apps=["exerciser"],
    ))
    grid.run_full()
    return export_database(grid.acdc_db)


def test_same_seed_acdc_export_is_byte_identical():
    first = run_once()
    second = run_once()
    assert first  # the run produced records
    assert first == second


def test_different_seed_changes_the_run():
    assert run_once(seed=7) != run_once(seed=8)
