"""Injected outage schedules reconcile exactly with the downtime ledgers.

The satellite check for the service substrate: every outage the
injector creates must land in some service's ledger with the profile's
repair time, no more and no less — the accounting is exact, not
probe-sampled.
"""

import pytest

from repro.failures import FailureInjector, FailureProfile
from repro.middleware.dcache import DCachePoolManager
from repro.fabric import Network
from repro.sim import DAY, Engine, HOUR, RngRegistry, TB
from tests.conftest import make_site, wire_site

REPAIR = 4 * HOUR
POOL_REPAIR = 6 * HOUR


def service_only_profile(**overrides):
    defaults = dict(
        service_failure_interval=2 * DAY,
        batch_crash_weight=0.0,      # victims are gridftp/gatekeeper only
        service_repair_time=REPAIR,
        network_interruption_interval=None,
        node_mtbf=None,
        nightly_rollover={},
    )
    defaults.update(overrides)
    return FailureProfile(**defaults)


def test_injected_service_outages_reconcile_with_ledgers(eng, net, rng):
    site = wire_site(eng, make_site(eng, net, "SiteA"))
    injector = FailureInjector(eng, [site], rng, service_only_profile())
    horizon = 60 * DAY
    eng.run(until=horizon)

    services = [site.services["gatekeeper"], site.services["gridftp"]]
    outages = [o for svc in services for o in svc.ledger.outages()]
    assert injector.injected["service"] > 0
    # Every injection produced exactly one ledger outage.
    assert len(outages) == injector.injected["service"]
    for outage in outages:
        if outage.closed:
            assert outage.end - outage.start == pytest.approx(REPAIR)
        else:  # run ended mid-outage: clamped, shorter than a repair
            assert horizon - outage.start < REPAIR
    # Total ledger downtime == closed outages at full repair time plus
    # the clamped open remainder.
    expected = sum(o.duration(horizon) for o in outages)
    measured = sum(svc.ledger.downtime(0.0, horizon) for svc in services)
    assert measured == pytest.approx(expected)


def test_batch_crashes_land_in_gatekeeper_ledger(eng, net, rng):
    site = wire_site(eng, make_site(eng, net, "SiteA"))
    profile = service_only_profile(batch_crash_weight=1e9)  # always batch
    injector = FailureInjector(eng, [site], rng, profile)
    eng.run(until=30 * DAY)
    gatekeeper = site.services["gatekeeper"]
    assert injector.injected["service"] > 0
    assert len(gatekeeper.ledger) == injector.injected["service"]
    assert all(
        o.cause == "injected batch system crash"
        for o in gatekeeper.ledger.outages()
    )


def make_tier1(eng, net, name="Tier1"):
    site = make_site(eng, net, name)
    site.storage = DCachePoolManager(
        eng, f"{name}-dcache", pool_count=4, pool_capacity=1 * TB
    )
    return site


def pool_only_profile():
    return FailureProfile(
        service_failure_interval=None,
        pool_failure_interval=2 * DAY,
        pool_repair_time=POOL_REPAIR,
        network_interruption_interval=None,
        node_mtbf=None,
        nightly_rollover={},
    )


def test_pool_failures_are_injectable_and_ledger_accounted(eng, net, rng):
    site = make_tier1(eng, net)
    injector = FailureInjector(eng, [site], rng, pool_only_profile())
    horizon = 40 * DAY
    eng.run(until=horizon)

    assert injector.injected["pool"] > 0
    outages = [o for pool in site.storage.pools for o in pool.ledger.outages()]
    assert len(outages) == injector.injected["pool"]
    assert all(o.cause == "injected pool failure" for o in outages)
    for outage in outages:
        if outage.closed:
            assert outage.duration() == pytest.approx(POOL_REPAIR)


def test_flat_se_sites_skip_pool_injection(eng, net, rng):
    site = wire_site(eng, make_site(eng, net, "FlatSE"))
    injector = FailureInjector(eng, [site], rng, pool_only_profile())
    eng.run(until=40 * DAY)
    assert injector.injected["pool"] == 0


def test_pool_class_does_not_perturb_service_schedule():
    """Enabling pool injection must not shift the service-failure RNG
    streams — existing schedules stay reproducible."""

    def outage_starts(enable_pool):
        engine = Engine()
        network = Network(engine)
        registry = RngRegistry(42)
        site = make_tier1(engine, network, "Tier1")
        wire_site(engine, site)
        profile = service_only_profile(
            pool_failure_interval=2 * DAY if enable_pool else None,
            pool_repair_time=POOL_REPAIR,
        )
        FailureInjector(engine, [site], registry, profile)
        engine.run(until=30 * DAY)
        return sorted(
            o.start
            for role in ("gatekeeper", "gridftp")
            for o in site.services[role].ledger.outages()
        )

    without_pool = outage_starts(enable_pool=False)
    with_pool = outage_starts(enable_pool=True)
    assert without_pool  # the schedule actually fired
    assert without_pool == with_pool
