"""Registry queries: uniform liveness and the availability report."""

import pytest

from repro.services import (
    availability_rows,
    grid_services,
    render_availability,
    service_is_up,
    total_downtime,
)
from tests.conftest import make_site, wire_site


def test_service_is_up_for_grid_services(eng, net):
    site = wire_site(eng, make_site(eng, net, "SiteA"))
    gatekeeper = site.services["gatekeeper"]
    assert service_is_up(gatekeeper)
    gatekeeper.fail("boom")
    assert not service_is_up(gatekeeper)


def test_service_is_up_duck_types_legacy_objects():
    class Legacy:
        available = False

    class NoFlag:
        pass

    assert not service_is_up(Legacy())
    assert service_is_up(NoFlag())  # defaults to up, same for every role


def test_grid_services_keyed_by_role(eng, net):
    site = wire_site(eng, make_site(eng, net, "SiteA"))
    services = grid_services(site)
    assert "gatekeeper" in services
    assert "gridftp" in services
    # Non-GridService attachments (authenticator, lrm) are excluded.
    assert "authenticator" not in services


def test_availability_rows_reflect_ledgers(eng, net):
    site = wire_site(eng, make_site(eng, net, "SiteA"))
    gridftp = site.services["gridftp"]
    eng.run(until=100.0)
    gridftp.fail("link down")
    eng.run(until=150.0)
    gridftp.restore()
    eng.run(until=200.0)
    rows = availability_rows([site], since=0.0, until=200.0)
    by_role = {r.role: r for r in rows}
    assert by_role["gridftp"].availability == pytest.approx(0.75)
    assert by_role["gridftp"].downtime == pytest.approx(50.0)
    assert by_role["gridftp"].outages == 1
    assert by_role["gridftp"].mttr == pytest.approx(50.0)
    assert by_role["gatekeeper"].availability == pytest.approx(1.0)
    assert by_role["gatekeeper"].outages == 0
    assert by_role["gatekeeper"].mtbf == float("inf")


def test_availability_rows_until_defaults_to_now(eng, net):
    site = wire_site(eng, make_site(eng, net, "SiteA"))
    site.services["gridftp"].fail("open-ended")
    eng.run(until=80.0)
    rows = availability_rows([site])
    by_role = {r.role: r for r in rows}
    assert by_role["gridftp"].downtime == pytest.approx(80.0)


def test_extra_services_appear_with_display_name(eng, net):
    from repro.middleware.rls import ReplicaLocationIndex

    site = wire_site(eng, make_site(eng, net, "SiteA"))
    rls = ReplicaLocationIndex(eng)
    rows = availability_rows([site], until=10.0, extra_services={"igoc-rls": rls})
    assert any(r.site == "igoc-rls" and r.role == "rls" for r in rows)


def test_render_and_total(eng, net):
    site = wire_site(eng, make_site(eng, net, "SiteA"))
    site.services["gatekeeper"].fail()
    eng.run(until=3600.0)
    site.services["gatekeeper"].restore()
    rows = availability_rows([site], until=7200.0)
    text = render_availability(rows)
    assert "gatekeeper" in text
    assert "SiteA" in text
    assert total_downtime(rows) == pytest.approx(3600.0)
