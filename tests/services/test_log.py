"""ServiceLog: bounded ring buffer with eviction-stable cursors."""

import pytest

from repro.services import ServiceLog


def test_append_and_list_surface():
    log = ServiceLog(capacity=10)
    assert not log
    assert log.append("a") == 0
    assert log.append("b") == 1
    log.extend(["c", "d"])
    assert len(log) == 4
    assert list(log) == ["a", "b", "c", "d"]
    assert log[0] == "a"
    assert log[-1] == "d"
    assert log[1:3] == ["b", "c"]


def test_eviction_keeps_newest():
    log = ServiceLog(capacity=3)
    for i in range(6):
        log.append(i)
    assert list(log) == [3, 4, 5]
    assert log.first_seq == 3
    assert log.end_seq == 6


def test_since_cursor_survives_eviction():
    log = ServiceLog(capacity=4)
    for i in range(3):
        log.append(i)
    entries, cursor = log.since(0)
    assert entries == [0, 1, 2]
    # Push enough to evict everything the cursor has seen and more.
    for i in range(3, 10):
        log.append(i)
    entries, cursor = log.since(cursor)
    # Entries 3..5 were evicted before the tailer returned: gone.
    assert entries == [6, 7, 8, 9]
    assert cursor == log.end_seq
    entries, cursor = log.since(cursor)
    assert entries == []


def test_capacity_setter_trims():
    log = ServiceLog(capacity=None)
    log.extend(range(100))
    assert len(log) == 100
    log.capacity = 10
    assert list(log) == list(range(90, 100))
    assert log.first_seq == 90


def test_tail():
    log = ServiceLog(capacity=5)
    log.extend("abcdefg")
    assert log.tail(2) == ["f", "g"]
    assert log.tail(100) == list("cdefg")
    assert log.tail(0) == []


def test_negative_capacity_rejected():
    with pytest.raises(ValueError):
        ServiceLog(capacity=-1)
