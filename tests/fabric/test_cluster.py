"""Tests for clusters, worker nodes, and node-failure eviction."""

import pytest

from repro.sim import Engine, Interrupt
from repro.fabric import Cluster, WorkerNode


def test_node_validation():
    with pytest.raises(ValueError):
        WorkerNode("n", 0)


def test_cluster_validation():
    with pytest.raises(ValueError):
        Cluster(Engine(), "c", 0)


def test_capacity_accounting():
    c = Cluster(Engine(), "c", nodes=4, cpus_per_node=2)
    assert c.total_cpus == 8
    assert c.free_cpus == 8
    assert c.busy_cpus == 0
    assert c.utilisation == 0.0


def test_allocate_least_loaded_first():
    c = Cluster(Engine(), "c", nodes=2, cpus_per_node=2)
    n1 = c.allocate("job1")
    n2 = c.allocate("job2")
    # Spread across nodes before stacking.
    assert n1 is not n2


def test_allocate_until_full():
    c = Cluster(Engine(), "c", nodes=2, cpus_per_node=1)
    assert c.allocate("a") is not None
    assert c.allocate("b") is not None
    assert c.allocate("c") is None
    assert c.busy_cpus == 2


def test_release_frees_slot():
    c = Cluster(Engine(), "c", nodes=1, cpus_per_node=1)
    node = c.allocate("a")
    assert c.allocate("b") is None
    c.release(node, "a")
    assert c.allocate("b") is not None


def test_release_unknown_occupant_is_noop():
    c = Cluster(Engine(), "c", nodes=1, cpus_per_node=1)
    node = c.nodes[0]
    c.release(node, "ghost")  # must not raise


def test_fail_node_interrupts_processes():
    eng = Engine()
    c = Cluster(eng, "c", nodes=1, cpus_per_node=2)
    interrupted = []

    def job(tag):
        node = c.allocate(tag, eng.active_process)
        try:
            yield eng.timeout(100.0)
            c.release(node, tag)
        except Interrupt as intr:
            interrupted.append((tag, intr.cause))

    eng.process(job("j1"))
    eng.process(job("j2"))

    def failer():
        yield eng.timeout(10.0)
        c.fail_node(c.nodes[0], cause="power cut")

    eng.process(failer())
    eng.run()
    assert sorted(t for t, _ in interrupted) == ["j1", "j2"]
    assert all(cause == "power cut" for _, cause in interrupted)
    assert not c.nodes[0].online
    assert c.nodes[0].free_cpus == 0  # offline nodes expose no slots


def test_restore_node():
    c = Cluster(Engine(), "c", nodes=1, cpus_per_node=2)
    c.fail_node(c.nodes[0])
    c.restore_node(c.nodes[0])
    assert c.nodes[0].online
    assert c.free_cpus == 2


def test_eviction_observer():
    eng = Engine()
    c = Cluster(eng, "c", nodes=1, cpus_per_node=1)
    seen = []
    c.on_eviction.append(lambda node, occ: seen.append(occ))
    c.allocate("job-x")
    c.fail_node(c.nodes[0])
    assert seen == ["job-x"]


def test_rollover_kills_fraction():
    eng = Engine()
    c = Cluster(eng, "c", nodes=10, cpus_per_node=1)
    for i in range(10):
        c.allocate(f"j{i}")
    evicted = c.rollover(fraction=0.3)
    assert len(evicted) == 3
    # Rollover brings nodes straight back.
    assert all(n.online for n in c.nodes)
    assert c.busy_cpus == 7


def test_rollover_always_at_least_one_node():
    c = Cluster(Engine(), "c", nodes=3, cpus_per_node=1)
    c.allocate("a")  # lands on the least-loaded node... all equal: node 0
    evicted = c.rollover(fraction=0.01)
    assert len(evicted) in (0, 1)  # one node rolled, may or may not be busy


def test_resize_grow():
    c = Cluster(Engine(), "c", nodes=2, cpus_per_node=2)
    c.resize(4)
    assert c.total_cpus == 8
    assert len(c.nodes) == 4


def test_resize_shrink_spares_busy_nodes():
    c = Cluster(Engine(), "c", nodes=3, cpus_per_node=1)
    busy_node = c.allocate("job")
    c.resize(1)
    assert busy_node in c.nodes  # busy node survived
    assert c.busy_cpus == 1


def test_resize_negative_rejected():
    with pytest.raises(ValueError):
        Cluster(Engine(), "c", nodes=1).resize(-1)


def test_utilisation_counts_total_not_online():
    c = Cluster(Engine(), "c", nodes=2, cpus_per_node=1)
    c.allocate("a")
    assert c.utilisation == pytest.approx(0.5)
