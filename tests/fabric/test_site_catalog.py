"""Tests for Site construction and the reconstructed 27-site catalog.

The catalog tests pin the paper's aggregate constraints (§1, §5, §7) so
any future edit that breaks fidelity fails loudly.
"""

import pytest

from repro.fabric import (
    GRID3_SITES,
    GRID3_VOS,
    VO_HOME_SITE,
    Network,
    build_sites,
    mbit,
    peak_cpus,
    scaled_catalog,
    shared_fraction,
    spec_by_name,
    typical_cpus,
)
from repro.sim import Engine, HOUR, RngRegistry


def test_catalog_has_27_sites():
    assert len(GRID3_SITES) == 27


def test_catalog_peak_cpus_is_2800():
    assert peak_cpus() == 2800


def test_catalog_typical_cpus_near_2163():
    # §7: "Number of CPUs (target = 400, actual = 2163)"
    assert abs(typical_cpus() - 2163) < 25


def test_catalog_shared_fraction_above_60_percent():
    # §7: "More than 60% of CPU resources are drawn from non-dedicated
    # facilities"
    assert shared_fraction() > 0.60


def test_exactly_two_tier1s():
    tier1s = [s for s in GRID3_SITES if s.tier1]
    assert sorted(s.name for s in tier1s) == ["BNL_ATLAS", "FNAL_CMS"]


def test_all_three_batch_systems_present():
    # §5: "OpenPBS, Condor, and LSF"
    assert {s.batch_system for s in GRID3_SITES} == {"pbs", "condor", "lsf"}


def test_six_vos_and_all_have_sites():
    assert len(GRID3_VOS) == 6
    owners = {s.owner_vo for s in GRID3_SITES}
    assert owners == set(GRID3_VOS)


def test_vo_home_sites_exist_in_catalog():
    names = {s.name for s in GRID3_SITES}
    for vo, home in VO_HOME_SITE.items():
        assert vo in GRID3_VOS
        assert home in names


def test_site_names_unique():
    names = [s.name for s in GRID3_SITES]
    assert len(names) == len(set(names))


def test_some_sites_lack_outbound_connectivity():
    # §6.4 criterion 1 only matters because some sites have private
    # worker nodes.
    assert any(not s.outbound_connectivity for s in GRID3_SITES)
    assert sum(s.outbound_connectivity for s in GRID3_SITES) > 15


def test_walltime_spread_supports_cms_validation_story():
    # §6.2: OSCAR jobs run >30 h and "not all sites have been able to
    # accommodate running them".
    long_ok = [s for s in GRID3_SITES if s.max_walltime_hours >= 48]
    short = [s for s in GRID3_SITES if s.max_walltime_hours < 48]
    assert len(long_ok) >= 11  # CMS found 11 usable sites
    assert short  # and some sites genuinely can't run them


def test_spec_by_name():
    assert spec_by_name("BNL_ATLAS").tier1
    with pytest.raises(KeyError):
        spec_by_name("NOPE")


def test_mbit_conversion():
    assert mbit(8) == pytest.approx(1e6)  # 8 Mbit/s = 1 MB/s


def test_scaled_catalog_preserves_structure():
    small = scaled_catalog(10.0)
    assert len(small) == 27
    assert {s.name for s in small} == {s.name for s in GRID3_SITES}
    assert peak_cpus(small) < peak_cpus()
    assert all(s.cpus >= 2 for s in small)
    # Shapes survive: shared fraction within a few points of full size.
    assert abs(shared_fraction(small) - shared_fraction()) < 0.15


def test_scaled_catalog_validation():
    with pytest.raises(ValueError):
        scaled_catalog(0)


def test_build_sites_constructs_everything():
    eng = Engine()
    net = Network(eng)
    sites = build_sites(eng, net, scaled_catalog(20.0))
    assert len(sites) == 27
    bnl = sites["BNL_ATLAS"]
    assert bnl.tier1 and bnl.owner_vo == "usatlas"
    assert bnl.cluster.total_cpus >= 2
    assert bnl.storage.capacity == 40e12
    # Access links were registered on the shared network.
    assert bnl.uplink.name in net.links
    assert bnl.downlink.name in net.links


def test_site_basic_behaviour():
    eng = Engine()
    net = Network(eng)
    sites = build_sites(eng, net, scaled_catalog(50.0))
    site = sites["UC_ATLAS"]
    assert site.online
    acct = site.add_account("usatlas")
    assert acct == "grid-usatlas"
    assert site.add_account("usatlas") == acct  # idempotent
    site.attach_service("gatekeeper", object())
    assert site.service("gatekeeper") is not None
    with pytest.raises(KeyError):
        site.service("missing")


def test_route_to_uses_access_links():
    eng = Engine()
    net = Network(eng)
    sites = build_sites(eng, net, scaled_catalog(50.0))
    a, b = sites["BNL_ATLAS"], sites["FNAL_CMS"]
    route = a.route_to(b)
    assert route == ["BNL_ATLAS-up", "FNAL_CMS-down"]


def test_cpu_speed_spread():
    """Hardware heterogeneity: Tier1s fast, old campus clusters slower,
    everything within the 2003-era 0.8-1.3x band around the 2 GHz
    reference."""
    speeds = {s.name: s.cpu_speed for s in GRID3_SITES}
    assert speeds["BNL_ATLAS"] > 1.0 and speeds["FNAL_CMS"] > 1.0
    assert speeds["Hampton_HU"] < 1.0
    assert all(0.7 <= v <= 1.3 for v in speeds.values())
    # The spread is roughly centred: mean near 1.
    mean = sum(speeds.values()) / len(speeds)
    assert 0.95 <= mean <= 1.05


def test_cpu_speed_scales_runtime(eng, net, rng):
    """A job's wall-clock shrinks on faster nodes."""
    from repro.core.job import Job, JobSpec
    from repro.core.runner import Grid3Runner
    from repro.middleware.gridftp import attach_gridftp
    from repro.middleware.rls import LocalReplicaCatalog, ReplicaLocationIndex
    from repro.scheduling.batch import BatchScheduler
    from repro.fabric import Site

    results = {}
    for speed in (0.8, 1.25):
        e = Engine()
        n = Network(e)
        site = Site(e, f"S{speed}", "U", "usatlas", nodes=2, cpus_per_node=1,
                    disk_capacity=1e12, network=n, cpu_speed=speed)
        attach_gridftp(e, site, setup_latency=0.0)
        rls = ReplicaLocationIndex(e)
        rls.attach_lrc(LocalReplicaCatalog(site.name))
        runner = Grid3Runner({site.name: site}, rls, rng)
        sched = BatchScheduler(e, site, runner=runner)
        job = Job(spec=JobSpec(name="j", vo="usatlas", user="u",
                               runtime=10 * HOUR, walltime_request=48 * HOUR,
                               register_outputs=False))
        sched.submit(job)
        e.run()
        assert job.succeeded
        results[speed] = job.run_time
    assert results[0.8] == pytest.approx(10 * HOUR / 0.8)
    assert results[1.25] == pytest.approx(10 * HOUR / 1.25)


def test_site_config_walltime_units():
    eng = Engine()
    net = Network(eng)
    sites = build_sites(eng, net, scaled_catalog(50.0))
    assert sites["LBNL_PDSF"].config.max_walltime == 24 * HOUR
