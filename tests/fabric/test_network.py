"""Tests for the flow-level max-min fair network model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NetworkInterruptionError
from repro.fabric import Network
from repro.sim import Engine


def make_net(eng, n_links=2, bw=100.0):
    net = Network(eng)
    for i in range(n_links):
        net.add_link(f"l{i}", bw)
    return net


def test_link_validation():
    eng = Engine()
    net = Network(eng)
    with pytest.raises(ValueError):
        net.add_link("bad", 0.0)
    net.add_link("ok", 10.0)
    with pytest.raises(ValueError):
        net.add_link("ok", 10.0)  # duplicate


def test_single_flow_full_bandwidth():
    eng = Engine()
    net = make_net(eng, 1, bw=100.0)
    flow = net.start_transfer(["l0"], 1000.0)
    assert flow.rate == 100.0
    eng.run()
    assert flow.done.triggered and flow.done.ok
    assert eng.now == pytest.approx(10.0)
    assert net.total_bytes_delivered == 1000.0


def test_zero_byte_transfer_completes_immediately():
    eng = Engine()
    net = make_net(eng, 1)
    flow = net.start_transfer(["l0"], 0.0)
    assert flow.done.triggered


def test_negative_size_rejected():
    eng = Engine()
    net = make_net(eng, 1)
    with pytest.raises(ValueError):
        net.start_transfer(["l0"], -1.0)


def test_two_flows_share_fairly():
    eng = Engine()
    net = make_net(eng, 1, bw=100.0)
    f1 = net.start_transfer(["l0"], 1000.0)
    f2 = net.start_transfer(["l0"], 1000.0)
    assert f1.rate == pytest.approx(50.0)
    assert f2.rate == pytest.approx(50.0)
    eng.run()
    # Both finish at t=20 (each gets 50 B/s throughout).
    assert eng.now == pytest.approx(20.0)


def test_short_flow_departure_speeds_up_long_flow():
    eng = Engine()
    net = make_net(eng, 1, bw=100.0)
    f_short = net.start_transfer(["l0"], 500.0)
    f_long = net.start_transfer(["l0"], 1500.0)
    done_times = {}
    f_short.done.callbacks.append(lambda ev: done_times.__setitem__("short", eng.now))
    f_long.done.callbacks.append(lambda ev: done_times.__setitem__("long", eng.now))
    eng.run()
    # Short: 500B at 50B/s -> t=10.  Long: 500B by t=10, then 1000B at
    # 100B/s -> t=20.
    assert done_times["short"] == pytest.approx(10.0)
    assert done_times["long"] == pytest.approx(20.0)


def test_multilink_route_bottleneck():
    eng = Engine()
    net = Network(eng)
    net.add_link("fat", 1000.0)
    net.add_link("thin", 10.0)
    flow = net.start_transfer(["fat", "thin"], 100.0)
    assert flow.rate == pytest.approx(10.0)
    eng.run()
    assert eng.now == pytest.approx(10.0)


def test_maxmin_unequal_routes():
    """Flow A uses a contended link, flow B a private one: B gets the
    leftover capacity of its own link."""
    eng = Engine()
    net = Network(eng)
    net.add_link("shared", 100.0)
    net.add_link("private", 100.0)
    a1 = net.start_transfer(["shared"], 1e6)
    a2 = net.start_transfer(["shared", "private"], 1e6)
    b = net.start_transfer(["private"], 1e6)
    # shared: a1, a2 -> 50 each.  private: a2 capped at 50, b gets 50.
    assert a1.rate == pytest.approx(50.0)
    assert a2.rate == pytest.approx(50.0)
    assert b.rate == pytest.approx(50.0)


def test_interrupt_link_stalls_flow():
    eng = Engine()
    net = make_net(eng, 1, bw=100.0)
    flow = net.start_transfer(["l0"], 1000.0)
    eng.run(until=5.0)
    net.interrupt_link("l0")
    assert flow.rate == 0.0
    eng.run(until=50.0)
    assert not flow.done.triggered  # stalled, not failed
    net.restore_link("l0")
    eng.run(until=100.0)
    assert flow.done.ok
    # 500B moved before the cut, 500B after restore at t=50: done at 55.
    assert flow.remaining == pytest.approx(0.0, abs=1e-6)


def test_interrupt_link_kill_flows():
    eng = Engine()
    net = make_net(eng, 1, bw=100.0)
    flow = net.start_transfer(["l0"], 1000.0)
    failures = []

    def watcher():
        try:
            yield flow.done
        except NetworkInterruptionError as exc:
            failures.append(str(exc))

    eng.process(watcher())
    eng.run(until=2.0)
    net.interrupt_link("l0", kill_flows=True)
    eng.run(until=10.0)
    assert failures and "interrupted" in failures[0]
    assert net.active_flows == []


def test_kill_flow_idempotent():
    eng = Engine()
    net = make_net(eng, 1)
    flow = net.start_transfer(["l0"], 100.0)
    flow.done.defuse()
    net.kill_flow(flow)
    net.kill_flow(flow)  # second call is a no-op
    eng.run()


def test_flow_progress_tracking():
    eng = Engine()
    net = make_net(eng, 1, bw=100.0)
    flow = net.start_transfer(["l0"], 1000.0)
    eng.run(until=4.0)
    # Trigger a recompute so progress is exact.
    net.set_link_bandwidth("l0", 100.0)
    assert flow.transferred == pytest.approx(400.0)
    assert flow.eta() == pytest.approx(6.0)


def test_completion_observer_fires():
    eng = Engine()
    net = make_net(eng, 1, bw=100.0)
    seen = []
    net.on_flow_complete.append(lambda f: seen.append(f.label))
    net.start_transfer(["l0"], 100.0, label="demo")
    eng.run()
    assert seen == ["demo"]


def test_many_concurrent_flows_conserve_bytes():
    eng = Engine()
    net = Network(eng)
    for i in range(4):
        net.add_link(f"up{i}", 100.0)
        net.add_link(f"down{i}", 100.0)
    sizes = [100.0 * (i + 1) for i in range(12)]
    for i, size in enumerate(sizes):
        net.start_transfer([f"up{i % 4}", f"down{(i + 1) % 4}"], size)
    eng.run()
    assert net.total_bytes_delivered == pytest.approx(sum(sizes))
    assert net.active_flows == []


@settings(max_examples=25, deadline=None)
@given(
    sizes=st.lists(st.floats(min_value=1.0, max_value=1e4), min_size=1, max_size=10),
    bw=st.floats(min_value=1.0, max_value=1e3),
)
def test_property_all_flows_complete_and_conserve(sizes, bw):
    """Property: every flow on a single shared link completes, total bytes
    delivered equals total offered, and completion order is by size."""
    eng = Engine()
    net = Network(eng)
    net.add_link("l", bw)
    order = []
    for i, size in enumerate(sizes):
        flow = net.start_transfer(["l"], size)
        flow.done.callbacks.append(lambda ev, i=i: order.append(i))
    eng.run()
    assert net.total_bytes_delivered == pytest.approx(sum(sizes), rel=1e-6)
    # Processor-sharing on one link finishes smaller flows first (up to
    # completion-threshold ties between near-equal sizes).
    assert sorted(order) == list(range(len(sizes)))
    finished_sizes = [sizes[i] for i in order]
    for earlier, later in zip(finished_sizes, finished_sizes[1:]):
        assert earlier <= later * (1 + 1e-6) + 1e-5


@settings(max_examples=25, deadline=None)
@given(
    n_flows=st.integers(min_value=1, max_value=8),
    caps=st.lists(st.floats(min_value=10.0, max_value=1000.0), min_size=2, max_size=2),
)
def test_property_maxmin_never_exceeds_capacity(n_flows, caps):
    """Property: the sum of allocated rates on any link never exceeds its
    capacity."""
    eng = Engine()
    net = Network(eng)
    net.add_link("a", caps[0])
    net.add_link("b", caps[1])
    routes = [["a"], ["b"], ["a", "b"]]
    for i in range(n_flows):
        net.start_transfer(routes[i % 3], 1e9)
    for link in net.links.values():
        total = sum(f.rate for f in link.flows)
        assert total <= link.bandwidth * (1 + 1e-9)


@settings(max_examples=30, deadline=None)
@given(
    sizes=st.lists(st.floats(min_value=1.0, max_value=5e3), min_size=1, max_size=12),
    caps=st.lists(st.floats(min_value=5.0, max_value=500.0), min_size=3, max_size=3),
    kill=st.integers(min_value=0, max_value=2),
)
def test_property_maxmin_never_overcommits_during_run(sizes, caps, kill):
    """Property: at *every* recompute — flow arrival, departure, and link
    interruption — the max-min allocation keeps the sum of flow rates on
    each link at or below its capacity.  This is the invariant managed
    transfers lean on: queueing more work can slow flows down but never
    oversubscribes a pipe."""
    eng = Engine()
    net = Network(eng)
    names = ["a", "b", "c"]
    for name, cap in zip(names, caps):
        net.add_link(name, cap)
    routes = [["a"], ["b"], ["c"], ["a", "b"], ["b", "c"], ["a", "b", "c"]]

    def check():
        for link in net.links.values():
            if not link.up:
                continue
            total = sum(f.rate for f in link.flows)
            assert total <= link.bandwidth * (1 + 1e-9)

    for i, size in enumerate(sizes):
        net.start_transfer(routes[i % len(routes)], size)
        check()
    # Knock one link out and back mid-run: rates must stay feasible
    # through the reroute-free stall and the restore recompute.
    net.interrupt_link(names[kill])
    check()
    net.restore_link(names[kill])
    check()
    while eng.step():
        check()
    assert net.active_flows == []
