"""Tests for the regional WAN backbone."""

import pytest

from repro.fabric import Network, build_sites, scaled_catalog
from repro.fabric.topology import (
    DEFAULT_TRUNK_BANDWIDTH,
    REGIONS,
    SITE_REGION,
    backbone_route,
    trunk_name,
    wire_backbone,
)
from repro.middleware.gridftp import attach_gridftp, transfer
from repro.sim import Engine, GB


def test_every_catalog_site_has_a_region():
    from repro.fabric import GRID3_SITES
    assert {s.name for s in GRID3_SITES} <= set(SITE_REGION)
    assert set(SITE_REGION.values()) <= set(REGIONS)


def test_trunk_name_canonical():
    assert trunk_name("west", "east") == trunk_name("east", "west") == "bb-east-west"


def test_backbone_route_logic():
    assert backbone_route("east", "west") == ["bb-east-west"]
    assert backbone_route("east", "east") == []
    assert backbone_route(None, "west") == []
    assert backbone_route("east", None) == []


def build_wired(eng, scale=100.0):
    net = Network(eng)
    sites = build_sites(eng, net, scaled_catalog(scale))
    trunks = wire_backbone(net, sites.values())
    return net, sites, trunks


def test_wire_backbone_creates_full_mesh(eng):
    net, sites, trunks = build_wired(eng)
    n = len(REGIONS)
    assert len(trunks) == n * (n - 1) // 2
    assert all(net.links[t].bandwidth == DEFAULT_TRUNK_BANDWIDTH for t in trunks)
    assert net.backbone_enabled
    # Sites were tagged.
    assert sites["BNL_ATLAS"].region == "east"
    assert sites["CalTech_PG"].region == "west"
    # Re-wiring is idempotent (no duplicate links).
    assert wire_backbone(net, sites.values()) == []


def test_inter_region_route_crosses_trunk(eng):
    _net, sites, _trunks = build_wired(eng)
    route = sites["BNL_ATLAS"].route_to(sites["CalTech_PG"])
    assert route == ["BNL_ATLAS-up", "bb-east-west", "CalTech_PG-down"]
    # Intra-region routes stay edge-only.
    route2 = sites["BNL_ATLAS"].route_to(sites["BU_ATLAS"])
    assert route2 == ["BNL_ATLAS-up", "BU_ATLAS-down"]


def test_without_backbone_routes_are_flat(eng):
    net = Network(eng)
    sites = build_sites(eng, net, scaled_catalog(100.0))
    route = sites["BNL_ATLAS"].route_to(sites["CalTech_PG"])
    assert route == ["BNL_ATLAS-up", "CalTech_PG-down"]


def test_trunk_congestion_affects_cross_region_only(eng):
    """Shrink the east-west trunk: coast-to-coast transfers slow down,
    intra-region transfers do not."""
    net, sites, _ = build_wired(eng)
    for name in ("BNL_ATLAS", "CalTech_PG", "BU_ATLAS"):
        attach_gridftp(eng, sites[name], setup_latency=0.0)
    # Tiny trunk: 1 MB/s.
    net.set_link_bandwidth("bb-east-west", 1e6)
    done = {}

    def mover(tag, src, dst):
        yield from transfer(eng, sites[src], sites[dst], f"/{tag}", 1 * GB)
        done[tag] = eng.now

    eng.process(mover("cross", "BNL_ATLAS", "CalTech_PG"))
    eng.process(mover("local", "BNL_ATLAS", "BU_ATLAS"))
    eng.run()
    assert done["local"] < 200.0            # edge speed (~12.5-125 MB/s)
    assert done["cross"] == pytest.approx(1000.0, rel=0.05)  # trunk-bound


def test_trunk_shared_by_concurrent_cross_region_flows(eng):
    net, sites, _ = build_wired(eng)
    for name in ("BNL_ATLAS", "JHU_SDSS", "CalTech_PG", "UCSD_PG"):
        attach_gridftp(eng, sites[name], setup_latency=0.0)
    net.set_link_bandwidth("bb-east-west", 2e6)
    done = {}

    def mover(tag, src, dst):
        yield from transfer(eng, sites[src], sites[dst], f"/{tag}", 1 * GB)
        done[tag] = eng.now

    eng.process(mover("a", "BNL_ATLAS", "CalTech_PG"))
    eng.process(mover("b", "JHU_SDSS", "UCSD_PG"))
    eng.run()
    # Two flows share the 2 MB/s trunk: each effectively 1 MB/s.
    assert done["a"] == pytest.approx(1000.0, rel=0.05)
    assert done["b"] == pytest.approx(1000.0, rel=0.05)
