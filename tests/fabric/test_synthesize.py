"""Tests for the synthetic fabric generator (the scale-out path)."""

import math

import pytest

from repro.fabric import (
    ANCHOR_SITES,
    GRID3_VOS,
    VO_HOME_SITE,
    Network,
    build_sites,
    site_regions,
    summarize,
    synthesize,
    synthetic_policies,
    wire_backbone,
)
from repro.sim import Engine


def test_anchor_sites_come_first_with_canonical_names():
    specs = synthesize(sites=50, seed=3)
    assert [s.name for s in specs[: len(ANCHOR_SITES)]] == list(ANCHOR_SITES)
    # Every VO's hardcoded home/archive site exists.
    names = {s.name for s in specs}
    for home in VO_HOME_SITE.values():
        assert home in names


def test_total_cpu_conservation_exact():
    for sites, total in ((40, 5000), (333, 17_777), (500, 52_000)):
        specs = synthesize(sites=sites, total_cpus=total, seed=9)
        assert len(specs) == sites
        assert sum(s.cpus for s in specs) == total


def test_default_total_matches_paper_density():
    specs = synthesize(sites=100, seed=0)
    assert sum(s.cpus for s in specs) == 100 * 104


def test_same_seed_byte_identical_different_seed_not():
    a = synthesize(sites=80, seed=5)
    b = synthesize(sites=80, seed=5)
    c = synthesize(sites=80, seed=6)
    assert a == b
    assert a != c


def test_power_law_tail():
    """Hill estimator over the top order statistics recovers a heavy
    tail near the configured Pareto shape, and the biggest 1 % of sites
    hold an outsized CPU share."""
    specs = synthesize(sites=2000, seed=7)
    sizes = sorted((s.cpus for s in specs), reverse=True)
    k = 100
    xk = sizes[k]
    hill = k / sum(math.log(sizes[i] / xk) for i in range(k))
    assert 1.1 < hill < 2.3
    assert sum(sizes[:20]) / sum(sizes) > 0.08


def test_shared_fraction_clears_paper_target():
    specs = synthesize(sites=300, seed=11)
    total = sum(s.cpus for s in specs)
    shared = sum(s.cpus for s in specs if s.shared)
    assert shared / total > 0.60  # §7: "more than 60 %"


def test_minimum_size_and_vos():
    specs = synthesize(sites=200, seed=2, min_cpus=4)
    assert min(s.cpus for s in specs) >= 4
    assert {s.owner_vo for s in specs} <= set(GRID3_VOS)


def test_rejects_impossible_totals():
    with pytest.raises(ValueError):
        synthesize(sites=100, total_cpus=50, seed=0)
    with pytest.raises(ValueError):
        synthesize(sites=2, seed=0)  # fewer than the anchors


def test_site_regions_cover_catalog():
    specs = synthesize(sites=120, seed=4, regions=6)
    regions = site_regions(specs)
    assert set(regions) == {s.name for s in specs}
    generated = {r for r in regions.values() if r.startswith("net")}
    assert 1 <= len(generated) <= 6


def test_summarize_shape():
    specs = synthesize(sites=60, seed=1)
    info = summarize(specs)
    assert info["sites"] == 60
    assert info["total_cpus"] == sum(s.cpus for s in specs)
    assert info["tier1"] == ["BNL_ATLAS", "FNAL_CMS"]
    assert sum(info["sites_by_vo"].values()) == 60


def test_synthetic_policies_restrict_some_generated_shared_sites():
    specs = synthesize(sites=150, seed=8)
    policies = synthetic_policies(specs, seed=8)
    assert set(policies) == {s.name for s in specs}
    by_name = {s.name: s for s in specs}
    # Anchor sites keep their paper-catalog base policies (which may
    # already carry allow-lists); the generator only *adds* allow-lists
    # to a fraction of the generated shared sites.
    restricted = {
        n: p for n, p in policies.items()
        if n.startswith("SYN") and p.allowed_vos
    }
    assert restricted, "some generated sites should carry allow-lists"
    for name, policy in restricted.items():
        assert by_name[name].shared
        assert by_name[name].owner_vo in policy.allowed_vos
        assert len(policy.allowed_vos) >= 3  # owner + 2-3 guest VOs
    # Deterministic.
    again = synthetic_policies(specs, seed=8)
    assert policies == again


def test_tiered_backbone_routes_cross_two_hub_trunks():
    engine = Engine()
    network = Network(engine)
    specs = synthesize(sites=40, seed=3, regions=4)
    sites = build_sites(engine, network, specs)
    trunks = wire_backbone(
        network, sites.values(), regions=site_regions(specs), tiered=True,
    )
    # Hub-and-spoke: one trunk per region, not a full mesh.
    regions = set(site_regions(specs).values())
    assert len(trunks) == len(regions)
    assert all(t.startswith("bb-core-") or "-core" in t for t in trunks)
    inter = None
    by_region = {}
    for site in sites.values():
        by_region.setdefault(site.region, site)
    two = list(by_region.values())[:2]
    if len(two) == 2:
        a, b = two
        route = a.route_to(b)
        middle = route[1:-1]
        assert len(middle) == 2
        assert all(name in network.links for name in middle)
    # Intra-region stays edge-only.
    same = [s for s in sites.values() if s.region == two[0].region]
    if len(same) >= 2:
        route = same[0].route_to(same[1])
        assert route == [same[0].uplink.name, same[1].downlink.name]
