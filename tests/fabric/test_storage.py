"""Tests for storage elements, reservations, and the disk-full failure."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReservationError, StorageFullError
from repro.fabric import FileObject, StorageElement
from repro.sim import Engine, GB


def make_se(capacity=10 * GB):
    return StorageElement(Engine(), "test-se", capacity)


def test_capacity_validation():
    with pytest.raises(ValueError):
        StorageElement(Engine(), "bad", 0)


def test_file_object_validation():
    with pytest.raises(ValueError):
        FileObject("f", -1.0)


def test_store_and_lookup():
    se = make_se()
    obj = se.store("lfn://atlas/evt.root", 2 * GB)
    assert obj.size == 2 * GB
    assert "lfn://atlas/evt.root" in se
    assert se.lookup("lfn://atlas/evt.root") is obj
    assert se.used == 2 * GB
    assert len(se) == 1


def test_store_negative_size_rejected():
    se = make_se()
    with pytest.raises(ValueError):
        se.store("f", -1.0)


def test_disk_full_raises_and_counts():
    se = make_se(capacity=3 * GB)
    se.store("a", 2 * GB)
    with pytest.raises(StorageFullError):
        se.store("b", 2 * GB)
    assert se.write_failures == 1
    assert se.used == 2 * GB  # failed write left no residue


def test_overwrite_adjusts_usage():
    se = make_se()
    se.store("f", 4 * GB)
    se.store("f", 1 * GB)
    assert se.used == 1 * GB
    assert len(se) == 1


def test_overwrite_larger_fits_when_replacing():
    se = make_se(capacity=5 * GB)
    se.store("f", 4 * GB)
    # 4.5 GB doesn't fit alongside, but replaces the 4 GB file.
    se.store("f", 4.5 * GB)
    assert se.used == 4.5 * GB


def test_delete_frees_space():
    se = make_se()
    se.store("f", 2 * GB)
    se.delete("f")
    assert se.used == 0
    assert "f" not in se
    assert se.bytes_deleted == 2 * GB
    with pytest.raises(KeyError):
        se.delete("f")


def test_purge_frees_fraction():
    se = make_se(capacity=100 * GB)
    for i in range(10):
        se.store(f"f{i}", 1 * GB)
    freed = se.purge(fraction=0.5)
    assert freed >= 5 * GB
    assert se.used <= 5 * GB


def test_utilisation():
    se = make_se(capacity=10 * GB)
    se.store("f", 5 * GB)
    assert se.utilisation == pytest.approx(0.5)


def test_reservation_protects_space():
    se = make_se(capacity=10 * GB)
    res = se.reserve(6 * GB)
    assert se.reserved == 6 * GB
    assert se.free == 4 * GB
    # Unreserved writes can't take reserved space.
    with pytest.raises(StorageFullError):
        se.store("big", 5 * GB)
    # Reserved write succeeds.
    se.store("mine", 5 * GB, reservation=res)
    assert res.available == pytest.approx(1 * GB)
    assert se.used == 5 * GB


def test_reservation_overdraw_rejected():
    se = make_se(capacity=10 * GB)
    res = se.reserve(2 * GB)
    with pytest.raises(StorageFullError):
        se.store("f", 3 * GB, reservation=res)


def test_reserve_more_than_free_rejected():
    se = make_se(capacity=10 * GB)
    se.store("f", 8 * GB)
    with pytest.raises(StorageFullError):
        se.reserve(3 * GB)


def test_release_reservation_returns_unused():
    se = make_se(capacity=10 * GB)
    res = se.reserve(6 * GB)
    se.store("f", 2 * GB, reservation=res)
    se.release_reservation(res)
    assert se.reserved == pytest.approx(0.0)
    assert se.free == pytest.approx(8 * GB)
    # Using a released reservation fails.
    with pytest.raises(StorageFullError):
        se.store("g", 1 * GB, reservation=res)


def test_double_release_raises():
    """Regression: releasing twice used to silently credit ``available``
    back a second time, corrupting the capacity invariant."""
    se = make_se(capacity=10 * GB)
    res = se.reserve(6 * GB)
    se.store("f", 2 * GB, reservation=res)
    se.release_reservation(res)
    with pytest.raises(ReservationError):
        se.release_reservation(res)
    # Accounting unharmed by the rejected second release.
    assert se.reserved == pytest.approx(0.0)
    assert se.free == pytest.approx(8 * GB)


def test_release_against_wrong_se_raises():
    se1, se2 = make_se(), make_se()
    res = se1.reserve(1 * GB)
    with pytest.raises(ReservationError):
        se2.release_reservation(res)
    # The reservation stays live on its own SE.
    se1.release_reservation(res)


def test_reservation_wrong_se_rejected():
    se1, se2 = make_se(), make_se()
    res = se1.reserve(1 * GB)
    with pytest.raises(ValueError):
        se2.store("f", 1.0, reservation=res)


def test_negative_reservation_rejected():
    with pytest.raises(ValueError):
        make_se().reserve(-1.0)


@settings(max_examples=50, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["store", "delete", "reserve", "release"]),
            st.integers(min_value=0, max_value=9),
            st.floats(min_value=0.0, max_value=6.0),
        ),
        max_size=60,
    )
)
def test_property_accounting_invariant(ops):
    """Property: used + reserved <= capacity and used == sum of file
    sizes, no matter the operation sequence."""
    se = StorageElement(Engine(), "prop-se", 10.0)
    reservations = []
    for op, idx, amount in ops:
        try:
            if op == "store":
                se.store(f"f{idx}", amount)
            elif op == "delete":
                se.delete(f"f{idx}")
            elif op == "reserve":
                reservations.append(se.reserve(amount))
            elif op == "release" and reservations:
                se.release_reservation(reservations.pop())
        except (StorageFullError, KeyError):
            pass
        assert se.used + se.reserved <= se.capacity + 1e-6
        assert se.used == pytest.approx(sum(f.size for f in se.files()))
        assert se.free >= -1e-6
