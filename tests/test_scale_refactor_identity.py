"""Byte-identity of the O(active) scheduling refactor (PR 7).

The scale-out work rewires the per-selection hot path — GIIS sweep
caching, active-record subsets, bucketed cluster allocation, lazy
Condor-G throttles — all of which MUST be pure mechanical speedups: a
27-site paper-catalog run at a pinned seed must produce exactly the
same simulation, byte for byte.

The sha256 fingerprints below were captured from the *unrefactored*
tree (commit b2d4b9d) at four pinned configs spanning the interesting
code paths: plain, exerciser-only, traced + calm failures, and the
contention scenario with fair-share enforcement.  Any behavioral drift
in the refactor shows up here as a fingerprint mismatch.
"""

from __future__ import annotations

import hashlib

from repro.analysis import export_database
from repro.core.grid3 import Grid3, Grid3Config
from repro.failures import FailureProfile
from repro.scenarios import SCENARIOS


def _sha(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


def _run_export(cfg: Grid3Config) -> tuple:
    grid = Grid3(cfg)
    grid.run_full()
    return _sha(export_database(grid.acdc_db)), grid


def test_plain_run_fingerprint():
    digest, grid = _run_export(Grid3Config(seed=11, scale=800, duration_days=2))
    assert len(grid.acdc_db.records()) == 150
    assert digest == (
        "7f385a3f049c9ca15dc6c9bb8eefdf0fb813da4fc626f16138665d7cd4217182"
    )


def test_exerciser_run_fingerprint():
    digest, grid = _run_export(
        Grid3Config(seed=7, scale=600, duration_days=2, apps=["exerciser"])
    )
    assert len(grid.acdc_db.records()) == 14
    assert digest == (
        "a16eb5c5bcd656eec5b9c1fe70e7b122475fd6456c255500874907868d8b3f5f"
    )


def test_traced_run_fingerprint(tmp_path):
    grid = Grid3(Grid3Config(
        seed=3, scale=400, duration_days=3,
        failures=FailureProfile.calm(), tracing=True,
    ))
    grid.run_full()
    assert len(grid.acdc_db.records()) == 213
    assert _sha(export_database(grid.acdc_db)) == (
        "0629fc8e2b95b9fa34fb37e46cec10ebab760f06cfbd2aa0fa9751bd8a66bc81"
    )
    # The span dump is part of the contract too: tracing must observe
    # exactly the same simulation.
    from repro.trace import write_jsonl
    path = tmp_path / "spans.jsonl"
    write_jsonl(grid.tracer.store, str(path))
    assert hashlib.sha256(path.read_bytes()).hexdigest() == (
        "77de616a3bd88a7f8b9b7adac2bfb3af9d3ada98ce392d62476cdf57248673d0"
    )


def test_contention_fairshare_fingerprint():
    digest, grid = _run_export(SCENARIOS["contention"](seed=42, fair_share=True))
    assert len(grid.acdc_db.records()) == 60
    assert digest == (
        "1c13f68ed356327e6a5c44fd6cbfd0961a861ab54781b3b34f0d734526f55c65"
    )
