"""Tests for demonstrator internals: AppStats, campaign math, and the
GridFTP demo's matrix traffic."""

import pytest

from repro import Grid3, Grid3Config
from repro.apps.base import AppStats
from repro.apps.gridftp_demo import GridFTPDemoApplication
from repro.core.job import Job, JobSpec, JobState
from repro.errors import ApplicationError, StorageFullError
from repro.failures import FailureProfile
from repro.sim import DAY, GB, HOUR, TB


def make_job(ok=True, error=None):
    job = Job(spec=JobSpec(name="j", vo="usatlas", user="u", runtime=HOUR))
    job.mark(JobState.PENDING, 0.0)
    job.mark(JobState.ACTIVE, 1.0)
    if ok:
        job.mark(JobState.DONE, 2.0)
    else:
        job.error = error or StorageFullError("full")
        job.mark(JobState.FAILED, 2.0)
    return job


def test_appstats_accounting():
    stats = AppStats()
    stats.add_jobs([make_job(), make_job(ok=False),
                    make_job(ok=False, error=ApplicationError("bug"))])
    assert stats.job_count == 3
    assert stats.succeeded == 1 and stats.failed == 2
    assert stats.success_rate == pytest.approx(1 / 3)
    assert stats.failure_rate == pytest.approx(2 / 3)
    assert stats.failure_breakdown() == {"site": 1, "application": 1}
    assert stats.site_failure_fraction == pytest.approx(0.5)


def test_appstats_empty():
    stats = AppStats()
    assert stats.success_rate == 0.0
    assert stats.failure_rate == 0.0
    assert stats.site_failure_fraction == 0.0


@pytest.fixture(scope="module")
def idle_grid():
    grid = Grid3(Grid3Config(
        seed=9, scale=400, duration_days=30, apps=[],
        failures=FailureProfile.disabled(), misconfig_probability=0.0,
    ))
    grid.deploy()
    return grid


def test_demo_site_pairs_walk_the_matrix(idle_grid):
    app = GridFTPDemoApplication(idle_grid.app_context())
    pairs = app._site_pairs(10)
    assert len(pairs) == 10
    assert all(src != dst for src, dst in pairs)
    # The matrix walk visits many distinct sources, not one pair forever.
    assert len({src for src, _ in pairs}) >= 5


def test_demo_volume_scales_with_config(idle_grid):
    ctx = idle_grid.app_context()
    app = GridFTPDemoApplication(ctx, daily_volume=2.4 * TB,
                                 cycle_interval=1 * HOUR)
    per_cycle = 2.4 * TB / 24 / ctx.scale
    n = max(1, int(round(per_cycle / app.transfer_size)))
    # One cycle's submissions match the configured volume.
    assert n * (per_cycle / n) == pytest.approx(per_cycle)


def test_demo_end_to_end_reliability_and_ledger():
    grid = Grid3(Grid3Config(
        seed=9, scale=300, duration_days=4, apps=["gridftp-demo"],
        failures=FailureProfile.disabled(), misconfig_probability=0.0,
    ))
    grid.run_full()
    app = grid.apps["gridftp-demo"]
    assert app.transfers_ok > 20
    assert app.reliability > 0.95
    # Ledger volume equals the app's delivered counter.
    assert grid.ledger.total_bytes(kind="demo") == pytest.approx(
        app.bytes_delivered
    )
    # Demo traffic does not consume storage anywhere.
    for site in grid.sites.values():
        for f in site.storage.files():
            assert not f.lfn.startswith("/entrada/")


def test_demo_survives_network_interruptions():
    grid = Grid3(Grid3Config(
        seed=10, scale=300, duration_days=4, apps=["gridftp-demo"],
        failures=FailureProfile(
            service_failure_interval=None,
            network_interruption_interval=6 * HOUR,  # very hostile WAN
            node_mtbf=None,
            nightly_rollover={},
        ),
        misconfig_probability=0.0,
    ))
    grid.run_full()
    app = grid.apps["gridftp-demo"]
    # Link cuts happened constantly; transfers caught mid-flight die,
    # ones that start during an outage stall and resume — either way the
    # demo keeps delivering (§6.3: "long-running data transfers ran
    # reliably").
    assert grid.injector.injected["network"] > 100
    assert app.transfers_ok > 20
    assert app.reliability > 0.7
