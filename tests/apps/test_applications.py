"""Tests for the application demonstrators: campaign scheduling, per-app
workload shapes, and stats accounting."""

import pytest

from repro import Grid3, Grid3Config
from repro.apps import (
    ATLASApplication,
    AppContext,
    BTeVApplication,
    CMSApplication,
    ExerciserApplication,
    GridFTPDemoApplication,
    IVDGLApplication,
    LIGOApplication,
    SDSSApplication,
)
from repro.failures import FailureProfile
from repro.sim import DAY, GB, HOUR, MINUTE


@pytest.fixture(scope="module")
def deployed_grid():
    """A deployed (but idle) grid reused for campaign-schedule tests."""
    grid = Grid3(Grid3Config(scale=800, duration_days=183,
                             failures=FailureProfile.disabled(),
                             ops_team=False, local_load=False))
    grid.deploy()
    return grid


def ctx_of(grid, **overrides):
    ctx = grid.app_context()
    for key, value in overrides.items():
        setattr(ctx, key, value)
    return ctx


# --- campaign scheduling ------------------------------------------------------

def test_scaled_units(deployed_grid):
    app = IVDGLApplication(ctx_of(deployed_grid))
    assert app.scaled_units() == round(58145 / 800)


def test_submission_times_sorted_and_within_window(deployed_grid):
    app = ATLASApplication(ctx_of(deployed_grid))
    times = app.submission_times()
    assert len(times) == app.scaled_units()
    assert times == sorted(times)
    assert all(0 <= t <= app.ctx.duration for t in times)


def test_submission_times_respect_monthly_profile(deployed_grid):
    """BTeV puts 91 % of its production in November 2003."""
    app = BTeVApplication(ctx_of(deployed_grid))
    cal = app.ctx.calendar
    labels = [cal.month_label(t) for t in app.submission_times()]
    november = sum(1 for l in labels if l == "11-2003")
    assert november / len(labels) > 0.5


def test_sdss_peaks_late(deployed_grid):
    """SDSS peak month is 02-2004 (Table 1) — it ramps later."""
    app = SDSSApplication(ctx_of(deployed_grid))
    # Use a bigger sample than the scaled unit count for a stable check.
    app.total_units = 400 * 800
    cal = app.ctx.calendar
    labels = [cal.month_label(t) for t in app.submission_times()]
    from collections import Counter
    counts = Counter(labels)
    assert counts["02-2004"] == max(counts.values())


# --- workload shapes -----------------------------------------------------------

def test_atlas_chain_structure(deployed_grid):
    app = ATLASApplication(ctx_of(deployed_grid))
    dax = app._production_dax(0)
    assert len(dax) == 3
    sizes = dax.output_sizes()
    # §4.1: simulation datasets average ~2 GB.
    assert sizes["/atlas/atl00000/sim"] == 2 * GB


def test_cms_control_db_filled(deployed_grid):
    app = CMSApplication(ctx_of(deployed_grid))
    assert len(app.control_db) == app.scaled_units()
    sims = [r.simulator for r in app.control_db._requests.values()]
    assert "oscar" in sims  # the §6.2 long-job mix


def test_sdss_neo_scan_dag(deployed_grid):
    """The §4.3 asteroid search: flat pixel scans over imaging strips."""
    app = SDSSApplication(ctx_of(deployed_grid))
    dag = app._neo_dag(0)
    assert 2 <= len(dag) <= 6
    for node in dag.nodes():
        assert node.spec.inputs[0][0].startswith("/sdss/images/strip-")
        assert node.spec.staging == "heavy"
        assert not dag.parents(node.node_id)  # flat fan-out, no deps
    # The imaging strips were published and registered.
    assert app._strips_published >= 1
    lfn = dag.nodes()[0].spec.inputs[0][0]
    assert deployed_grid.rls.sites_with(lfn) == ["FNAL_CMS"]


def test_ligo_test_vs_full_mode(deployed_grid):
    test_app = LIGOApplication(ctx_of(deployed_grid), test_mode=True)
    assert test_app.total_units == 3
    full_app = LIGOApplication(ctx_of(deployed_grid), test_mode=False,
                               full_search_units=50)
    assert full_app.total_units == 50
    search = full_app._search_spec(0)
    assert search.inputs[0][1] == 4 * GB       # §4.4: 4 GB per job
    assert search.archive_site == "UWM_LIGO"   # results go home


def test_btev_runtime_mixture(deployed_grid):
    app = BTeVApplication(ctx_of(deployed_grid))
    runtimes = [app._spec(i).runtime for i in range(300)]
    mean_hr = sum(runtimes) / len(runtimes) / HOUR
    # Table 1: mean 1.77 h from a short/production mixture.
    assert 0.8 < mean_hr < 3.5
    assert max(runtimes) > 5 * HOUR  # production tail exists


def test_ivdgl_gadu_needs_outbound(deployed_grid):
    app = IVDGLApplication(ctx_of(deployed_grid))
    gadu = app._gadu_spec(0)
    snb = app._snb_spec(0)
    assert gadu.requires_outbound and not snb.requires_outbound


def test_exerciser_probes_are_nice_user(deployed_grid):
    app = ExerciserApplication(ctx_of(deployed_grid), probe_sites=["BNL_ATLAS"])
    spec = app._probe_spec("BNL_ATLAS")
    assert spec.nice_user
    assert spec.runtime < 30 * MINUTE


# --- end-to-end app runs (tiny) --------------------------------------------------

def run_app(app_names, days=10, scale=800, **cfg_kw):
    grid = Grid3(Grid3Config(
        seed=13, scale=scale, duration_days=days, apps=app_names,
        failures=FailureProfile.disabled(), **cfg_kw,
    ))
    grid.run_full()
    return grid


def test_btev_end_to_end():
    grid = run_app(["btev"], days=60)
    app = grid.apps["btev"]
    assert app.stats.job_count >= 1
    assert app.stats.success_rate > 0.5
    # The favourite-site stickiness drove jobs to Vanderbilt.
    sites = [j.site_name for j in app.stats.jobs]
    assert sites.count("Vanderbilt_BTeV") >= len(sites) * 0.3
    assert app.events_generated > 0


def test_exerciser_end_to_end_detects_broken_site():
    # ops_team off (and no misconfigured installs) so the broken
    # gatekeeper stays broken long enough for probes to notice.
    # scale 50 keeps the probe interval (15 min x scale) near half a day
    # so several probe cycles land after the break.
    grid = Grid3(Grid3Config(
        seed=13, scale=50, duration_days=6, apps=["exerciser"],
        failures=FailureProfile.disabled(), ops_team=False,
        misconfig_probability=0.0,
    ))
    grid.deploy()
    grid.start_applications()
    grid.run(days=3)
    app = grid.apps["exerciser"]
    assert app.stats.job_count > 10
    assert app.stats.success_rate > 0.9
    # Break a probed site's gatekeeper mid-campaign: probes start failing.
    grid.sites["BNL_ATLAS"].service("gatekeeper").available = False
    grid.run()
    assert "BNL_ATLAS" in app.broken_sites(threshold=1)


def test_gridftp_demo_moves_data():
    grid = run_app(["gridftp-demo"], days=5)
    app = grid.apps["gridftp-demo"]
    assert app.transfers_ok > 0
    assert app.reliability > 0.8       # §6.3: "ran reliably"
    assert grid.ledger.total_bytes(kind="demo") > 0


def test_atlas_end_to_end_registers_datasets():
    grid = run_app(["usatlas"], days=60, scale=400)
    app = grid.apps["usatlas"]
    assert app.stats.job_count >= 3
    # Completed outputs were archived at BNL and registered in RLS.
    dst_lfns = [l for l in grid.rls.catalogued_lfns() if l.endswith("/dst")]
    if app.stats.succeeded >= 3:
        assert dst_lfns
        assert "BNL_ATLAS" in grid.rls.sites_with(dst_lfns[0])
