"""Tests for unit constants/formatters and the Grid3 calendar."""

import datetime as dt

from repro.sim import (
    DAY,
    GB,
    GRID3_EPOCH,
    HOUR,
    MINUTE,
    SimCalendar,
    TB,
    bytes_to_gb,
    bytes_to_tb,
    fmt_bytes,
    fmt_duration,
    seconds_to_days,
    seconds_to_hours,
)


def test_time_constants():
    assert MINUTE == 60.0
    assert HOUR == 3600.0
    assert DAY == 86400.0


def test_data_constants():
    assert GB == 1e9
    assert TB == 1e12


def test_conversions():
    assert seconds_to_days(2 * DAY) == 2.0
    assert seconds_to_hours(90 * MINUTE) == 1.5
    assert bytes_to_tb(2.5 * TB) == 2.5
    assert bytes_to_gb(4 * GB) == 4.0


def test_fmt_duration():
    assert fmt_duration(0) == "00:00:00"
    assert fmt_duration(3661) == "01:01:01"
    assert fmt_duration(2 * DAY + 3 * HOUR + 4 * MINUTE + 5) == "2d 03:04:05"
    assert fmt_duration(-HOUR) == "-01:00:00"


def test_fmt_bytes():
    assert fmt_bytes(500) == "500 B"
    assert fmt_bytes(2 * GB) == "2.0 GB"
    assert fmt_bytes(1.5 * TB) == "1.5 TB"


def test_epoch_is_table1_window_start():
    assert GRID3_EPOCH == dt.datetime(2003, 10, 23)


def test_datetime_roundtrip():
    cal = SimCalendar()
    when = dt.datetime(2004, 2, 29, 12, 0)  # 2004 is a leap year
    t = cal.sim_time_of(when)
    assert cal.datetime_of(t) == when


def test_month_label_matches_table1_style():
    cal = SimCalendar()
    assert cal.month_label(0.0) == "10-2003"
    t_nov20 = cal.sim_time_of(dt.datetime(2003, 11, 20))
    assert cal.month_label(t_nov20) == "11-2003"


def test_month_index_crosses_year_boundary():
    cal = SimCalendar()
    t_jan = cal.sim_time_of(dt.datetime(2004, 1, 10))
    assert cal.month_index(t_jan) == 3  # Oct, Nov, Dec, Jan


def test_month_labels_cover_paper_window():
    cal = SimCalendar()
    horizon = cal.sim_time_of(dt.datetime(2004, 4, 23))
    labels = cal.month_labels(horizon)
    assert labels[0] == "10-2003"
    assert labels[-1] == "04-2004"
    assert len(labels) == 7


def test_month_labels_zero_horizon():
    cal = SimCalendar()
    assert cal.month_labels(0.0) == ["10-2003"]


def test_day_index():
    cal = SimCalendar()
    assert cal.day_index(0.0) == 0
    assert cal.day_index(DAY - 1) == 0
    assert cal.day_index(DAY) == 1


def test_window():
    cal = SimCalendar()
    t0, t1 = cal.window(dt.datetime(2003, 10, 25), 30)
    assert t1 - t0 == 30 * DAY
    assert cal.datetime_of(t0) == dt.datetime(2003, 10, 25)
