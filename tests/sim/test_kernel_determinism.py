"""Determinism of the pooled/fast-path kernel.

The run loop recycles Timeout objects and drives parked processes
inline; none of that may perturb event ordering.  Same seeds must give
bit-identical runs — both at the raw-engine level and through a full
Grid3 window (same ``acdc_db`` contents).
"""

from dataclasses import replace

from repro import Grid3, Grid3Config
from repro.failures import FailureProfile
from repro.sim import Engine


def _engine_trace():
    """A mixed workload exercising pooled timeouts, same-instant ties,
    events, and interrupts; returns the observed (time, token) trace."""
    eng = Engine()
    trace = []

    def ticker(label, period):
        while eng.now < 50.0:
            yield eng.timeout(period)
            trace.append((eng.now, label))

    def waiter(ev):
        value = yield ev
        trace.append((eng.now, f"woke:{value}"))

    def poker(ev):
        yield eng.timeout(7.0)
        ev.succeed("poked")

    ev = eng.event()
    eng.process(ticker("a", 1.0))
    eng.process(ticker("b", 1.0))   # same-instant ties with "a"
    eng.process(ticker("c", 2.5))
    eng.process(waiter(ev))
    eng.process(poker(ev))

    def interruptee():
        try:
            yield eng.timeout(1000.0)
        except BaseException as exc:  # noqa: BLE001
            trace.append((eng.now, f"int:{type(exc).__name__}"))

    victim = eng.process(interruptee())

    def interrupter():
        yield eng.timeout(13.0)
        victim.interrupt("now")

    eng.process(interrupter())
    eng.run(until=60.0)
    return trace


def test_engine_trace_is_reproducible():
    first = _engine_trace()
    assert first  # the workload actually produced events
    for _ in range(3):
        assert _engine_trace() == first


def test_same_seed_grid_runs_bit_identical():
    """Two full Grid3 windows with the same seed: every ACDC job record
    (ids, timestamps, outcomes) must match exactly."""

    def run():
        grid = Grid3(Grid3Config(
            seed=42, scale=600, duration_days=2,
            failures=FailureProfile.early(),
        ))
        grid.run_full()
        return grid

    a, b = run(), run()
    recs_a, recs_b = a.acdc_db.records(), b.acdc_db.records()
    assert len(recs_a) == len(recs_b) and len(recs_a) > 0
    # job_id comes from a process-global counter (monotone across Grid3
    # instances), so compare ids relative to each run's first id and
    # everything else verbatim.
    base_a = min(r.job_id for r in recs_a)
    base_b = min(r.job_id for r in recs_b)
    norm_a = [replace(r, job_id=r.job_id - base_a) for r in recs_a]
    norm_b = [replace(r, job_id=r.job_id - base_b) for r in recs_b]
    assert norm_a == norm_b
    assert a.acdc_db.success_rate() == b.acdc_db.success_rate()
    assert a.acdc_db.total_cpu_days() == b.acdc_db.total_cpu_days()


def test_different_seed_diverges():
    """Sanity: the determinism test would be vacuous if the workload
    ignored its seed."""

    def run(seed):
        grid = Grid3(Grid3Config(seed=seed, scale=600, duration_days=2))
        grid.run_full()
        recs = grid.acdc_db.records()
        base = min(r.job_id for r in recs)
        return [replace(r, job_id=r.job_id - base) for r in recs]

    assert run(1) != run(2)
