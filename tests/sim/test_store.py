"""Unit + property tests for Store / PriorityStore."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Engine, PriorityStore, Store


def test_store_fifo_order():
    eng = Engine()
    store = Store(eng)
    got = []

    def consumer():
        for _ in range(3):
            item = yield store.get()
            got.append(item)

    store.put("a")
    store.put("b")
    eng.process(consumer())

    def late_producer():
        yield eng.timeout(5.0)
        store.put("c")

    eng.process(late_producer())
    eng.run()
    assert got == ["a", "b", "c"]


def test_store_blocking_get_waits():
    eng = Engine()
    store = Store(eng)
    got = []

    def consumer():
        item = yield store.get()
        got.append((item, eng.now))

    def producer():
        yield eng.timeout(7.0)
        store.put("x")

    eng.process(consumer())
    eng.process(producer())
    eng.run()
    assert got == [("x", 7.0)]


def test_store_try_get():
    eng = Engine()
    store = Store(eng)
    assert store.try_get() is None
    store.put(1)
    assert store.try_get() == 1
    assert store.try_get() is None


def test_store_try_get_defers_to_waiters():
    eng = Engine()
    store = Store(eng)
    store.get()  # a waiter queued first
    assert store.try_get() is None


def test_store_len_and_items():
    eng = Engine()
    store = Store(eng)
    store.put(1)
    store.put(2)
    assert len(store) == 2
    assert store.items == [1, 2]


def test_priority_store_serves_smallest():
    eng = Engine()
    store = PriorityStore(eng)
    got = []

    def consumer():
        for _ in range(3):
            item = yield store.get()
            got.append(item)

    store.put((5, "low"))
    store.put((1, "high"))
    store.put((3, "mid"))
    eng.process(consumer())
    eng.run()
    assert got == [(1, "high"), (3, "mid"), (5, "low")]


def test_multiple_getters_fifo():
    eng = Engine()
    store = Store(eng)
    got = []

    def consumer(tag):
        item = yield store.get()
        got.append((tag, item))

    eng.process(consumer("first"))
    eng.process(consumer("second"))
    store.put("x")
    store.put("y")
    eng.run()
    assert got == [("first", "x"), ("second", "y")]


@settings(max_examples=50, deadline=None)
@given(items=st.lists(st.integers(), max_size=50))
def test_store_preserves_all_items(items):
    """Property: everything put is got, in FIFO order."""
    eng = Engine()
    store = Store(eng)
    got = []

    def consumer(n):
        for _ in range(n):
            item = yield store.get()
            got.append(item)

    for item in items:
        store.put(item)
    eng.process(consumer(len(items)))
    eng.run()
    assert got == items


@settings(max_examples=50, deadline=None)
@given(items=st.lists(st.integers(), max_size=50))
def test_priority_store_is_sorted(items):
    """Property: PriorityStore yields items in sorted order."""
    eng = Engine()
    store = PriorityStore(eng)
    got = []

    def consumer(n):
        for _ in range(n):
            item = yield store.get()
            got.append(item)

    for item in items:
        store.put(item)
    eng.process(consumer(len(items)))
    eng.run()
    assert got == sorted(items)
