"""Unit tests for the DES kernel: events, processes, conditions, clock."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Engine,
    Event,
    Interrupt,
    SimulationError,
)


def test_clock_starts_at_zero():
    assert Engine().now == 0.0


def test_timeout_advances_clock():
    eng = Engine()
    log = []

    def proc():
        yield eng.timeout(5.0)
        log.append(eng.now)
        yield eng.timeout(2.5)
        log.append(eng.now)

    eng.process(proc())
    eng.run()
    assert log == [5.0, 7.5]


def test_timeout_negative_delay_rejected():
    eng = Engine()
    with pytest.raises(ValueError):
        eng.timeout(-1.0)


def test_timeout_carries_value():
    eng = Engine()
    got = []

    def proc():
        value = yield eng.timeout(1.0, value="payload")
        got.append(value)

    eng.process(proc())
    eng.run()
    assert got == ["payload"]


def test_process_return_value():
    eng = Engine()

    def proc():
        yield eng.timeout(1.0)
        return 42

    assert eng.run_process(proc()) == 42


def test_run_until_stops_and_advances_clock():
    eng = Engine()
    fired = []

    def proc():
        yield eng.timeout(10.0)
        fired.append(eng.now)

    eng.process(proc())
    eng.run(until=4.0)
    assert eng.now == 4.0
    assert fired == []
    eng.run(until=20.0)
    assert fired == [10.0]
    assert eng.now == 20.0


def test_run_until_past_raises():
    eng = Engine()
    eng.run(until=5.0)
    with pytest.raises(ValueError):
        eng.run(until=1.0)


def test_same_time_events_fire_in_fifo_order():
    eng = Engine()
    order = []

    def proc(tag):
        yield eng.timeout(1.0)
        order.append(tag)

    for tag in "abcde":
        eng.process(proc(tag))
    eng.run()
    assert order == list("abcde")


def test_event_succeed_wakes_waiter():
    eng = Engine()
    gate = eng.event()
    woken = []

    def waiter():
        value = yield gate
        woken.append((eng.now, value))

    def trigger():
        yield eng.timeout(3.0)
        gate.succeed("go")

    eng.process(waiter())
    eng.process(trigger())
    eng.run()
    assert woken == [(3.0, "go")]


def test_event_fail_raises_in_waiter():
    eng = Engine()
    gate = eng.event()
    caught = []

    def waiter():
        try:
            yield gate
        except RuntimeError as exc:
            caught.append(str(exc))

    def trigger():
        yield eng.timeout(1.0)
        gate.fail(RuntimeError("boom"))

    eng.process(waiter())
    eng.process(trigger())
    eng.run()
    assert caught == ["boom"]


def test_double_trigger_rejected():
    eng = Engine()
    ev = eng.event()
    ev.succeed(1)
    with pytest.raises(RuntimeError):
        ev.succeed(2)
    with pytest.raises(RuntimeError):
        ev.fail(RuntimeError("late"))


def test_fail_requires_exception_instance():
    eng = Engine()
    with pytest.raises(TypeError):
        eng.event().fail("not an exception")


def test_unhandled_process_failure_propagates_to_run():
    eng = Engine()

    def bad():
        yield eng.timeout(1.0)
        raise ValueError("unhandled")

    eng.process(bad())
    with pytest.raises(SimulationError):
        eng.run()


def test_waiting_on_failed_process_receives_exception():
    eng = Engine()
    seen = []

    def bad():
        yield eng.timeout(1.0)
        raise ValueError("inner")

    def outer():
        try:
            yield eng.process(bad())
        except ValueError as exc:
            seen.append(str(exc))

    eng.process(outer())
    eng.run()
    assert seen == ["inner"]


def test_yield_on_already_processed_event_continues_inline():
    eng = Engine()
    done = eng.event()
    done.succeed("early")
    log = []

    def proc():
        yield eng.timeout(1.0)
        value = yield done  # already processed by now
        log.append(value)

    eng.process(proc())
    eng.run()
    assert log == ["early"]


def test_yield_non_event_is_a_failure():
    eng = Engine()

    def proc():
        yield 42

    eng.process(proc())
    with pytest.raises(SimulationError):
        eng.run()


def test_interrupt_wakes_waiting_process():
    eng = Engine()
    log = []

    def worker():
        try:
            yield eng.timeout(100.0)
            log.append("finished")
        except Interrupt as intr:
            log.append(("interrupted", eng.now, intr.cause))

    def killer(proc):
        yield eng.timeout(5.0)
        proc.interrupt(cause="node rollover")

    target = eng.process(worker())
    eng.process(killer(target))
    eng.run()
    assert log == [("interrupted", 5.0, "node rollover")]


def test_interrupt_dead_process_raises():
    eng = Engine()

    def quick():
        yield eng.timeout(1.0)

    proc = eng.process(quick())
    eng.run()
    with pytest.raises(RuntimeError):
        proc.interrupt()


def test_interrupted_process_can_resume_waiting():
    eng = Engine()
    log = []

    def worker():
        remaining = 10.0
        start = eng.now
        while True:
            try:
                yield eng.timeout(remaining)
                break
            except Interrupt:
                remaining -= eng.now - start
                start = eng.now
                log.append(("resume", eng.now))
        log.append(("done", eng.now))

    def poker(proc):
        yield eng.timeout(4.0)
        proc.interrupt()

    target = eng.process(worker())
    eng.process(poker(target))
    eng.run()
    assert log == [("resume", 4.0), ("done", 10.0)]


def test_all_of_collects_values():
    eng = Engine()
    result = []

    def proc():
        t1 = eng.timeout(1.0, value="a")
        t2 = eng.timeout(3.0, value="b")
        values = yield AllOf(eng, [t1, t2])
        result.append((eng.now, sorted(values.values())))

    eng.process(proc())
    eng.run()
    assert result == [(3.0, ["a", "b"])]


def test_all_of_empty_fires_immediately():
    eng = Engine()
    hit = []

    def proc():
        yield AllOf(eng, [])
        hit.append(eng.now)

    eng.process(proc())
    eng.run()
    assert hit == [0.0]


def test_all_of_fails_fast_on_component_failure():
    eng = Engine()
    caught = []

    def failer():
        yield eng.timeout(1.0)
        raise IOError("disk full")

    def proc():
        try:
            yield AllOf(eng, [eng.process(failer()), eng.timeout(50.0)])
        except IOError as exc:
            caught.append((eng.now, str(exc)))

    eng.process(proc())
    eng.run()
    assert caught == [(1.0, "disk full")]


def test_any_of_returns_first():
    eng = Engine()
    result = []

    def proc():
        fast = eng.timeout(1.0, value="fast")
        slow = eng.timeout(9.0, value="slow")
        winner = yield AnyOf(eng, [fast, slow])
        result.append((eng.now, winner.value))

    eng.process(proc())
    eng.run()
    assert result == [(1.0, "fast")]


def test_condition_rejects_foreign_events():
    eng1, eng2 = Engine(), Engine()
    with pytest.raises(ValueError):
        AllOf(eng1, [eng2.event()])


def test_peek_reports_next_event_time():
    eng = Engine()
    assert eng.peek() == float("inf")
    eng.timeout(7.0)
    assert eng.peek() == 7.0


def test_run_process_deadlock_detected():
    eng = Engine()

    def stuck():
        yield eng.event()  # never triggered

    with pytest.raises(SimulationError):
        eng.run_process(stuck())


def test_active_process_visible_during_execution():
    eng = Engine()
    seen = []

    def proc():
        seen.append(eng.active_process)
        yield eng.timeout(1.0)

    handle = eng.process(proc())
    eng.run()
    assert seen == [handle]
    assert eng.active_process is None


def test_nested_process_chain():
    eng = Engine()

    def inner(n):
        yield eng.timeout(1.0)
        return n * 2

    def outer():
        a = yield eng.process(inner(1))
        b = yield eng.process(inner(a))
        return b

    assert eng.run_process(outer()) == 4
    assert eng.now == 2.0


def test_many_processes_complete():
    eng = Engine()
    done = []

    def proc(i):
        yield eng.timeout(float(i % 17))
        done.append(i)

    for i in range(500):
        eng.process(proc(i))
    eng.run()
    assert sorted(done) == list(range(500))
