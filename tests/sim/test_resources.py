"""Unit + property tests for Resource and Container."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Container, ContainerError, Engine, Resource


def test_resource_capacity_validation():
    eng = Engine()
    with pytest.raises(ValueError):
        Resource(eng, 0)


def test_resource_grants_up_to_capacity():
    eng = Engine()
    res = Resource(eng, 2)
    r1, r2, r3 = res.request(), res.request(), res.request()
    eng.run()
    assert r1.triggered and r2.triggered
    assert not r3.triggered
    assert res.in_use == 2 and res.available == 0 and res.queue_length == 1


def test_release_wakes_waiter():
    eng = Engine()
    res = Resource(eng, 1)
    order = []

    def user(tag, hold):
        req = res.request()
        yield req
        order.append(("start", tag, eng.now))
        yield eng.timeout(hold)
        res.release(req)
        order.append(("end", tag, eng.now))

    eng.process(user("a", 5.0))
    eng.process(user("b", 3.0))
    eng.run()
    assert order == [
        ("start", "a", 0.0),
        ("end", "a", 5.0),
        ("start", "b", 5.0),
        ("end", "b", 8.0),
    ]


def test_priority_request_jumps_queue():
    eng = Engine()
    res = Resource(eng, 1)
    granted = []

    def holder():
        req = res.request()
        yield req
        yield eng.timeout(10.0)
        res.release(req)

    def claimant(tag, prio, delay):
        yield eng.timeout(delay)
        req = res.request(priority=prio)
        yield req
        granted.append(tag)
        res.release(req)

    eng.process(holder())
    eng.process(claimant("low", 10, 1.0))
    eng.process(claimant("high", 0, 2.0))  # arrives later but higher prio
    eng.run()
    assert granted == ["high", "low"]


def test_release_ungranted_request_rejected():
    eng = Engine()
    res = Resource(eng, 1)
    req1 = res.request()
    req2 = res.request()
    eng.run()
    assert req1.triggered and not req2.triggered
    with pytest.raises(RuntimeError):
        res.release(req2)


def test_cancel_waiting_request():
    eng = Engine()
    res = Resource(eng, 1)
    req1 = res.request()
    req2 = res.request()
    req3 = res.request()
    req2.cancel()
    res.release(req1)
    eng.run()
    assert req3.triggered
    assert res.in_use == 1


def test_cancel_granted_request_rejected():
    eng = Engine()
    res = Resource(eng, 1)
    req = res.request()
    eng.run()
    with pytest.raises(RuntimeError):
        req.cancel()


def test_resize_up_dispatches_waiters():
    eng = Engine()
    res = Resource(eng, 1)
    reqs = [res.request() for _ in range(3)]
    eng.run()
    assert sum(r.triggered for r in reqs) == 1
    res.resize(3)
    eng.run()
    assert all(r.triggered for r in reqs)


def test_resize_down_drains_gracefully():
    eng = Engine()
    res = Resource(eng, 2)
    r1, r2 = res.request(), res.request()
    eng.run()
    res.resize(1)
    assert res.in_use == 2  # over-capacity until a release
    res.release(r1)
    r3 = res.request()
    eng.run()
    assert not r3.triggered  # still at new capacity
    res.release(r2)
    eng.run()
    assert r3.triggered


@settings(max_examples=50, deadline=None)
@given(
    capacity=st.integers(min_value=1, max_value=8),
    holds=st.lists(st.floats(min_value=0.1, max_value=20.0), min_size=1, max_size=40),
)
def test_resource_never_exceeds_capacity(capacity, holds):
    """Property: in-use slot count never exceeds capacity, and every
    request is eventually granted."""
    eng = Engine()
    res = Resource(eng, capacity)
    peak = [0]
    completed = []

    def user(i, hold):
        req = res.request()
        yield req
        peak[0] = max(peak[0], res.in_use)
        assert res.in_use <= res.capacity
        yield eng.timeout(hold)
        res.release(req)
        completed.append(i)

    for i, hold in enumerate(holds):
        eng.process(user(i, hold))
    eng.run()
    assert peak[0] <= capacity
    assert sorted(completed) == list(range(len(holds)))


def test_container_validation():
    eng = Engine()
    with pytest.raises(ValueError):
        Container(eng, 0)
    with pytest.raises(ValueError):
        Container(eng, 10, initial=20)


def test_container_try_put_get():
    eng = Engine()
    disk = Container(eng, 100.0)
    assert disk.try_put(60.0)
    assert disk.level == 60.0
    assert not disk.try_put(50.0)  # would overflow: disk-full behaviour
    assert disk.level == 60.0
    assert disk.try_get(10.0)
    assert disk.level == 50.0
    assert not disk.try_get(60.0)
    assert disk.level == 50.0


def test_container_put_overflow_raises():
    eng = Engine()
    disk = Container(eng, 10.0)
    with pytest.raises(ContainerError):
        disk.put(11.0)


def test_container_negative_amounts_rejected():
    eng = Engine()
    disk = Container(eng, 10.0)
    with pytest.raises(ContainerError):
        disk.try_put(-1.0)
    with pytest.raises(ContainerError):
        disk.try_get(-1.0)


def test_container_blocking_get_fifo():
    eng = Engine()
    tank = Container(eng, 100.0)
    got = []

    def consumer(tag, amount):
        yield tank.get(amount)
        got.append((tag, eng.now))

    def producer():
        yield eng.timeout(1.0)
        tank.put(5.0)
        yield eng.timeout(1.0)
        tank.put(10.0)

    eng.process(consumer("first", 5.0))
    eng.process(consumer("second", 10.0))
    eng.process(producer())
    eng.run()
    assert got == [("first", 1.0), ("second", 2.0)]


def test_container_blocking_get_head_of_line():
    """A large waiting get blocks later small gets (FIFO semantics)."""
    eng = Engine()
    tank = Container(eng, 100.0, initial=3.0)
    got = []

    def consumer(tag, amount):
        yield tank.get(amount)
        got.append(tag)

    eng.process(consumer("big", 50.0))
    eng.process(consumer("small", 1.0))
    eng.run(until=10.0)
    assert got == []  # big blocks, small waits behind it
    tank.put(48.0)  # 3 + 48 = 51: enough for big (50) then small (1)
    eng.run(until=20.0)
    assert got == ["big", "small"]


@settings(max_examples=50, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["put", "get"]), st.floats(min_value=0.0, max_value=30.0)),
        max_size=60,
    )
)
def test_container_level_always_in_bounds(ops):
    """Property: level stays within [0, capacity] under any try_ sequence."""
    eng = Engine()
    tank = Container(eng, 50.0, initial=25.0)
    for op, amount in ops:
        if op == "put":
            tank.try_put(amount)
        else:
            tank.try_get(amount)
        assert -1e-9 <= tank.level <= tank.capacity + 1e-9
        assert abs((tank.level + tank.free) - tank.capacity) < 1e-6
