"""Tests for deterministic named RNG streams."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import RngRegistry


def test_same_seed_same_stream():
    a = RngRegistry(42).stream("jobs").random(10)
    b = RngRegistry(42).stream("jobs").random(10)
    assert np.array_equal(a, b)


def test_different_names_differ():
    reg = RngRegistry(42)
    a = reg.stream("jobs").random(10)
    b = reg.stream("failures").random(10)
    assert not np.array_equal(a, b)


def test_different_seeds_differ():
    a = RngRegistry(1).stream("jobs").random(10)
    b = RngRegistry(2).stream("jobs").random(10)
    assert not np.array_equal(a, b)


def test_stream_independent_of_creation_order():
    """Adding a new component must not perturb existing streams."""
    reg1 = RngRegistry(7)
    reg1.stream("alpha")
    reg1.stream("beta")
    v1 = reg1.stream("gamma").random(5)

    reg2 = RngRegistry(7)
    v2 = reg2.stream("gamma").random(5)
    assert np.array_equal(v1, v2)


def test_stream_is_cached():
    reg = RngRegistry(0)
    assert reg.stream("x") is reg.stream("x")


def test_names_listing():
    reg = RngRegistry(0)
    reg.stream("b")
    reg.stream("a")
    assert reg.names() == ["a", "b"]


def test_exponential_nonpositive_mean():
    assert RngRegistry(0).exponential("x", 0.0) == 0.0
    assert RngRegistry(0).exponential("x", -5.0) == 0.0


def test_exponential_mean_roughly_correct():
    reg = RngRegistry(3)
    draws = [reg.exponential("e", 10.0) for _ in range(4000)]
    assert 9.0 < np.mean(draws) < 11.0


def test_lognormal_mean_parameterisation():
    reg = RngRegistry(5)
    draws = [reg.lognormal_from_mean("ln", 100.0, 0.5) for _ in range(6000)]
    assert 95.0 < np.mean(draws) < 105.0


def test_uniform_bounds():
    reg = RngRegistry(1)
    for _ in range(100):
        v = reg.uniform("u", 2.0, 3.0)
        assert 2.0 <= v < 3.0
    assert reg.uniform("u", 5.0, 5.0) == 5.0


def test_bernoulli_extremes():
    reg = RngRegistry(1)
    assert not any(reg.bernoulli("b", 0.0) for _ in range(50))
    assert all(reg.bernoulli("b", 1.0) for _ in range(50))


def test_choice_uniform_and_weighted():
    reg = RngRegistry(9)
    opts = ["a", "b", "c"]
    assert all(reg.choice("c", opts) in opts for _ in range(50))
    # Degenerate weight vector favours one option entirely.
    assert all(
        reg.choice("cw", opts, weights=[0, 1, 0]) == "b" for _ in range(50)
    )


def test_choice_empty_raises():
    with pytest.raises(ValueError):
        RngRegistry(0).choice("c", [])


def test_choice_weight_length_mismatch():
    with pytest.raises(ValueError):
        RngRegistry(0).choice("c", ["a", "b"], weights=[1.0])


def test_choice_zero_weights_falls_back_to_uniform():
    reg = RngRegistry(2)
    opts = ["a", "b"]
    seen = {reg.choice("z", opts, weights=[0, 0]) for _ in range(100)}
    assert seen == {"a", "b"}


def test_shuffled_is_permutation():
    reg = RngRegistry(4)
    items = list(range(20))
    out = reg.shuffled("s", items)
    assert sorted(out) == items
    assert items == list(range(20))  # original untouched


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31), name=st.text(min_size=1, max_size=20))
def test_streams_reproducible_property(seed, name):
    """Property: (seed, name) fully determines the stream."""
    a = RngRegistry(seed).stream(name).random(4)
    b = RngRegistry(seed).stream(name).random(4)
    assert np.array_equal(a, b)
