"""The time-wheel calendar must be order-identical to a pure heap.

The kernel replaced its (time, priority, seq) heap with exact-time
buckets plus an urgent FIFO.  These tests pin the ordering contract:

* same-instant timeouts fire in creation order;
* triggered events (urgent lane) beat timeouts at the same instant;
* a randomized workload at pinned seeds fires in exactly the order a
  reference (stable-sorted) schedule predicts;
* cancel/defuse shapes — orphaned timeouts parked in wheel slots after
  an interrupt — stay no-ops and feed the recycling pool;
* a full 7-day grid run is same-seed byte-identical.
"""

import random
from dataclasses import replace

from repro import Grid3, Grid3Config
from repro.failures import FailureProfile
from repro.sim import Engine
from repro.sim.engine import Timeout
from repro.sim.timewheel import TimeWheel


# -- TimeWheel unit behavior --------------------------------------------------

def test_wheel_same_time_preserves_insertion_order():
    wheel = TimeWheel()
    for i in range(5):
        wheel.schedule(3.0, f"e{i}")
    wheel.schedule(1.0, "early")
    assert wheel.peek() == 1.0
    assert len(wheel) == 6
    t, bucket = wheel.pop()
    assert (t, bucket) == (1.0, ["early"])
    t, bucket = wheel.pop()
    assert t == 3.0
    assert bucket == [f"e{i}" for i in range(5)]
    assert not wheel


def test_wheel_popped_bucket_is_detached():
    """An event scheduled for the same instant *during* dispatch must
    land in a fresh bucket, not the already-claimed one."""
    wheel = TimeWheel()
    wheel.schedule(2.0, "a")
    t, claimed = wheel.pop()
    wheel.schedule(2.0, "b")
    assert claimed == ["a"]
    assert wheel.pop() == (2.0, ["b"])


def test_wheel_handles_far_future_and_inf():
    wheel = TimeWheel()
    wheel.schedule(float("inf"), "never")
    wheel.schedule(1e12, "far")
    wheel.schedule(0.5, "soon")
    assert [wheel.pop()[0] for _ in range(3)] == [0.5, 1e12, float("inf")]
    assert wheel.peek() == float("inf") and not wheel


# -- order equivalence with a reference schedule ------------------------------

def _reference_order(ops):
    """Stable sort by fire time = exactly what the old heap produced for
    NORMAL-priority entries (seq broke ties in insertion order)."""
    return [label for _t, label in sorted(
        ((t, label) for t, label in ops), key=lambda p: p[0]
    )]


def test_random_timeout_schedule_fires_in_reference_order():
    """Property: at pinned seeds, N timeouts with random (often
    colliding) delays fire in exactly the stable (time, creation-order)
    sequence."""
    for seed in (1, 7, 1234, 987654):
        rng = random.Random(seed)
        eng = Engine()
        fired = []
        ops = []

        def spawn(label, delay, eng=eng, fired=fired):
            def waiter():
                yield eng.timeout(delay)
                fired.append(label)
            eng.process(waiter())

        for i in range(300):
            # Coarse grid forces heavy same-instant collisions.
            delay = rng.choice((0.0, 0.5, 1.0, 1.0, 2.5, 7.0, 1e6))
            label = f"t{i}"
            ops.append((delay, label))
            spawn(label, delay)
        eng.run(until=1e7)
        assert fired == _reference_order(ops)


def test_urgent_beats_timeout_at_same_instant():
    """succeed() at time T must wake its waiter before a timeout
    scheduled for T fires — the old URGENT/NORMAL priority contract."""
    eng = Engine()
    order = []
    gate = eng.event()

    def sleeper():
        yield eng.timeout(5.0)
        order.append("timeout@5")

    def waiter():
        yield gate
        order.append("urgent@5")

    def poker():
        yield eng.timeout(5.0)
        gate.succeed()

    eng.process(sleeper())
    eng.process(waiter())
    # poker's timeout is created *after* sleeper's, so it fires second;
    # the succeed it performs still beats any *later* same-instant
    # timeout and runs before the clock advances.
    eng.process(poker())

    def late_sleeper():
        yield eng.timeout(5.0)
        order.append("late-timeout@5")

    eng.process(late_sleeper())
    eng.run()
    assert order == ["timeout@5", "urgent@5", "late-timeout@5"]


def test_mixed_workload_trace_stable_across_runs():
    """The determinism suite's mixed workload, 5x: identical traces."""

    def one_trace():
        eng = Engine()
        trace = []

        def ticker(label, period):
            while eng.now < 30.0:
                yield eng.timeout(period)
                trace.append((eng.now, label))

        ev = eng.event()

        def waiter():
            value = yield ev
            trace.append((eng.now, f"woke:{value}"))

        def poker():
            yield eng.timeout(4.0)
            ev.succeed("hi")

        eng.process(ticker("a", 1.0))
        eng.process(ticker("b", 1.0))
        eng.process(ticker("c", 0.25))
        eng.process(waiter())
        eng.process(poker())
        eng.run(until=40.0)
        return trace

    first = one_trace()
    assert first
    for _ in range(4):
        assert one_trace() == first


# -- cancelled / orphaned entries in wheel slots ------------------------------

def test_interrupt_orphans_timeout_in_wheel_and_recycles_it():
    """Interrupting a sleeper leaves its timeout parked in a wheel
    bucket with no callbacks; reaching its instant must be a no-op and
    the object must flow into the recycling pool."""
    eng = Engine()
    seen = []

    def sleeper():
        try:
            yield eng.timeout(10.0)
            seen.append("slept")
        except BaseException:  # noqa: BLE001
            seen.append("interrupted")

    victim = eng.process(sleeper())

    def interrupter():
        yield eng.timeout(1.0)
        victim.interrupt("go away")

    eng.process(interrupter())
    eng.run(until=5.0)
    assert seen == ["interrupted"]
    # The orphan is still parked at t=10 in the wheel.
    assert eng.peek() == 10.0
    eng.run(until=20.0)
    assert seen == ["interrupted"]
    assert eng.peek() == float("inf")
    # ...and was recycled: the next timeout reuses the pooled object.
    pooled = list(eng._timeout_pool)
    t = eng.timeout(1.0)
    assert any(t is p for p in pooled)


def test_interrupted_then_new_timeouts_stay_deterministic():
    """Pool reuse after an orphan recycle must not perturb ordering."""

    def one_trace():
        eng = Engine()
        out = []

        def sleeper():
            try:
                yield eng.timeout(50.0)
            except BaseException:  # noqa: BLE001
                out.append((eng.now, "int"))
            # Keep going with fresh (possibly recycled) timeouts.
            for i in range(5):
                yield eng.timeout(1.0)
                out.append((eng.now, f"tick{i}"))

        victim = eng.process(sleeper())

        def interrupter():
            yield eng.timeout(3.0)
            victim.interrupt()

        def bystander():
            while eng.now < 60.0:
                yield eng.timeout(2.0)
                out.append((eng.now, "by"))

        eng.process(interrupter())
        eng.process(bystander())
        eng.run(until=70.0)
        return out

    first = one_trace()
    assert ("int" in {label for _t, label in first})
    for _ in range(3):
        assert one_trace() == first


def test_step_and_run_interleave_on_same_bucket():
    """step() consuming half a bucket, then run() finishing it, must
    dispatch every entry exactly once in order."""
    eng = Engine()
    fired = []
    for i in range(6):
        def waiter(i=i):
            yield eng.timeout(2.0)
            fired.append(i)
        eng.process(waiter())
    # Consume process initializations plus the first few bucket entries.
    while len(fired) < 2:
        assert eng.step()
    assert fired == [0, 1]
    eng.run()
    assert fired == [0, 1, 2, 3, 4, 5]


def test_defused_failure_in_urgent_lane_does_not_crash():
    eng = Engine()
    ev = eng.event()
    ev.defuse()
    ev.fail(RuntimeError("boom"))
    eng.run()  # defused: must not raise
    assert ev.processed and not ev.ok


def test_pool_is_bounded():
    from repro.sim.engine import _POOL_CAP
    eng = Engine()

    def sleeper():
        yield eng.timeout(1.0)

    for _ in range(3000):
        eng.process(sleeper())
    eng.run()
    assert len(eng._timeout_pool) <= _POOL_CAP


# -- full-system byte identity ------------------------------------------------

def test_grid_7day_same_seed_byte_identical():
    """Two full 7-day windows, same seed: every ACDC record identical."""

    def run():
        grid = Grid3(Grid3Config(
            seed=2003, scale=400, duration_days=7,
            failures=FailureProfile.early(),
        ))
        grid.run_full()
        recs = grid.acdc_db.records()
        base = min(r.job_id for r in recs)
        return [replace(r, job_id=r.job_id - base) for r in recs]

    a, b = run(), run()
    assert len(a) > 0
    assert a == b


def test_timeout_repr_and_delay_survive_pooling():
    eng = Engine()
    collected = []

    def sleeper():
        yield eng.timeout(1.5)
        collected.append(eng.timeout(2.5))

    eng.process(sleeper())
    eng.run(until=1.0)
    eng.run(until=10.0)
    (t,) = collected
    assert isinstance(t, Timeout)
    assert t.delay == 2.5
    assert "2.5" in repr(t)
