"""Deeper kernel tests: nested condition events, interrupt races,
resource+condition interactions."""

import pytest

from repro.sim import AllOf, AnyOf, Engine, Event, Interrupt, Resource


def test_allof_of_anyofs():
    """Barrier over races: AllOf of AnyOf pairs fires when each pair has
    a winner."""
    eng = Engine()
    hit = []

    def proc():
        race1 = AnyOf(eng, [eng.timeout(5.0, "a"), eng.timeout(9.0, "b")])
        race2 = AnyOf(eng, [eng.timeout(7.0, "c"), eng.timeout(3.0, "d")])
        yield AllOf(eng, [race1, race2])
        hit.append(eng.now)

    eng.process(proc())
    eng.run()
    assert hit == [5.0]  # max(min(5,9), min(7,3))


def test_anyof_of_allofs():
    eng = Engine()
    hit = []

    def proc():
        slow_pair = AllOf(eng, [eng.timeout(10.0), eng.timeout(20.0)])
        fast_pair = AllOf(eng, [eng.timeout(1.0), eng.timeout(2.0)])
        yield AnyOf(eng, [slow_pair, fast_pair])
        hit.append(eng.now)

    eng.process(proc())
    eng.run()
    assert hit == [2.0]


def test_condition_over_processes_and_timeouts():
    eng = Engine()

    def worker(duration, value):
        yield eng.timeout(duration)
        return value

    def proc():
        p1 = eng.process(worker(4.0, "w1"))
        p2 = eng.process(worker(6.0, "w2"))
        values = yield AllOf(eng, [p1, p2, eng.timeout(1.0, "t")])
        return sorted(str(v) for v in values.values())

    assert eng.run_process(proc()) == ["t", "w1", "w2"]


def test_interrupt_during_condition_wait():
    eng = Engine()
    log = []

    def waiter():
        try:
            yield AllOf(eng, [eng.timeout(100.0), eng.timeout(200.0)])
        except Interrupt:
            log.append(("interrupted", eng.now))

    def poker(target):
        yield eng.timeout(5.0)
        target.interrupt()

    target = eng.process(waiter())
    eng.process(poker(target))
    eng.run()
    assert log == [("interrupted", 5.0)]


def test_simultaneous_interrupt_and_completion():
    """Interrupt scheduled at the exact instant the process finishes:
    whichever processes first wins, and nothing crashes."""
    eng = Engine()
    outcomes = []

    def worker():
        try:
            yield eng.timeout(10.0)
            outcomes.append("finished")
        except Interrupt:
            outcomes.append("interrupted")

    def poker(target):
        yield eng.timeout(10.0)
        if target.is_alive:
            target.interrupt()

    target = eng.process(worker())
    eng.process(poker(target))
    eng.run()
    assert outcomes in (["finished"], ["interrupted"])
    assert len(outcomes) == 1


def test_double_interrupt():
    eng = Engine()
    count = []

    def worker():
        for _ in range(2):
            try:
                yield eng.timeout(100.0)
            except Interrupt:
                count.append(eng.now)
        yield eng.timeout(1.0)

    def poker(target):
        yield eng.timeout(1.0)
        target.interrupt()
        yield eng.timeout(1.0)
        target.interrupt()

    target = eng.process(worker())
    eng.process(poker(target))
    eng.run()
    assert count == [1.0, 2.0]


def test_resource_request_inside_condition():
    """A resource grant can be raced against a timeout — the timeout
    path cancels the request so the slot is not leaked."""
    eng = Engine()
    res = Resource(eng, 1)
    outcomes = []

    def holder():
        req = res.request()
        yield req
        yield eng.timeout(50.0)
        res.release(req)

    def impatient():
        req = res.request()
        winner = yield AnyOf(eng, [req, eng.timeout(5.0, "gave-up")])
        if req.triggered and req.ok:
            outcomes.append("got-slot")
            res.release(req)
        else:
            outcomes.append("gave-up")
            req.cancel()

    eng.process(holder())
    eng.process(impatient())
    eng.run()
    assert outcomes == ["gave-up"]
    # Slot fully recovered: a new request succeeds immediately.
    final = res.request()
    eng.run()
    assert final.triggered and res.in_use == 1


def test_event_callbacks_fire_once_in_registration_order():
    eng = Engine()
    order = []
    ev = eng.event()
    for i in range(5):
        ev.callbacks.append(lambda e, i=i: order.append(i))
    ev.succeed()
    eng.run()
    assert order == [0, 1, 2, 3, 4]


def test_deeply_nested_process_chain():
    eng = Engine()

    def layer(depth):
        if depth == 0:
            yield eng.timeout(1.0)
            return 1
        value = yield eng.process(layer(depth - 1))
        return value + 1

    assert eng.run_process(layer(50)) == 51
    assert eng.now == 1.0


def test_many_events_same_instant_stable():
    """A large same-instant burst preserves FIFO and completes."""
    eng = Engine()
    order = []

    def proc(i):
        yield eng.timeout(5.0)
        order.append(i)

    for i in range(2000):
        eng.process(proc(i))
    eng.run()
    assert order == list(range(2000))
