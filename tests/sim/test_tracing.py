"""Tests for the kernel tracer."""

import pytest

from repro.sim import Engine
from repro.sim.tracing import Tracer


def test_tracer_records_processes_and_timeouts():
    eng = Engine()
    tracer = Tracer(eng)

    def worker():
        yield eng.timeout(5.0)
        yield eng.timeout(3.0)

    eng.process(worker(), name="worker-1")
    eng.run()
    kinds = [e.kind for e in tracer.entries]
    assert "timeout" in kinds
    assert "process-ok" in kinds
    done = tracer.matching("worker-1")
    assert done and done[-1].time == 8.0


def test_tracer_records_failures():
    eng = Engine()
    tracer = Tracer(eng)

    def crasher():
        yield eng.timeout(1.0)
        raise ValueError("boom")

    def guard():
        try:
            yield eng.process(crasher(), name="crasher")
        except ValueError:
            pass

    eng.process(guard(), name="guard")
    eng.run()
    failed = [e for e in tracer.entries if e.kind == "process-failed"]
    assert any("crasher" in e.label for e in failed)


def test_tracer_ring_is_bounded():
    eng = Engine()
    tracer = Tracer(eng, capacity=10)

    def tick(i):
        yield eng.timeout(float(i))

    for i in range(50):
        eng.process(tick(i))
    eng.run()
    assert len(tracer.entries) == 10
    assert tracer.events_seen > 10


def test_tracer_detach_restores_engine():
    eng = Engine()
    tracer = Tracer(eng)
    tracer.detach()
    before = len(tracer.entries)

    def worker():
        yield eng.timeout(1.0)

    eng.process(worker())
    eng.run()
    assert len(tracer.entries) == before
    tracer.detach()  # idempotent


def test_tracer_render_and_validation():
    eng = Engine()
    with pytest.raises(ValueError):
        Tracer(eng, capacity=0)
    tracer = Tracer(eng)

    def worker():
        yield eng.timeout(2.5)

    eng.process(worker(), name="render-me")
    eng.run()
    text = tracer.render_tail(5)
    assert "render-me" in text
    assert "2.500" in text


def test_traced_run_matches_untraced():
    """Tracing must not perturb simulation outcomes."""

    def scenario(trace):
        eng = Engine()
        tracer = Tracer(eng) if trace else None
        results = []

        def worker(i):
            yield eng.timeout(float(i % 7))
            results.append((eng.now, i))

        for i in range(100):
            eng.process(worker(i))
        eng.run()
        return results

    assert scenario(False) == scenario(True)
