"""Tests for the kernel tracer."""

import pytest

from repro.sim import Engine
from repro.sim.tracing import Tracer


def test_tracer_records_processes_and_timeouts():
    eng = Engine()
    tracer = Tracer(eng)

    def worker():
        yield eng.timeout(5.0)
        yield eng.timeout(3.0)

    eng.process(worker(), name="worker-1")
    eng.run()
    kinds = [e.kind for e in tracer.entries]
    assert "timeout" in kinds
    assert "process-ok" in kinds
    done = tracer.matching("worker-1")
    assert done and done[-1].time == 8.0


def test_tracer_records_failures():
    eng = Engine()
    tracer = Tracer(eng)

    def crasher():
        yield eng.timeout(1.0)
        raise ValueError("boom")

    def guard():
        try:
            yield eng.process(crasher(), name="crasher")
        except ValueError:
            pass

    eng.process(guard(), name="guard")
    eng.run()
    failed = [e for e in tracer.entries if e.kind == "process-failed"]
    assert any("crasher" in e.label for e in failed)


def test_tracer_ring_is_bounded():
    eng = Engine()
    tracer = Tracer(eng, capacity=10)

    def tick(i):
        yield eng.timeout(float(i))

    for i in range(50):
        eng.process(tick(i))
    eng.run()
    assert len(tracer.entries) == 10
    assert tracer.events_seen > 10


def test_tracer_detach_restores_engine():
    eng = Engine()
    tracer = Tracer(eng)
    tracer.detach()
    before = len(tracer.entries)

    def worker():
        yield eng.timeout(1.0)

    eng.process(worker())
    eng.run()
    assert len(tracer.entries) == before
    tracer.detach()  # idempotent


def test_tracer_render_and_validation():
    eng = Engine()
    with pytest.raises(ValueError):
        Tracer(eng, capacity=0)
    tracer = Tracer(eng)

    def worker():
        yield eng.timeout(2.5)

    eng.process(worker(), name="render-me")
    eng.run()
    text = tracer.render_tail(5)
    assert "render-me" in text
    assert "2.500" in text


def test_traced_run_matches_untraced():
    """Tracing must not perturb simulation outcomes."""

    def scenario(trace):
        eng = Engine()
        tracer = Tracer(eng) if trace else None
        results = []

        def worker(i):
            yield eng.timeout(float(i % 7))
            results.append((eng.now, i))

        for i in range(100):
            eng.process(worker(i))
        eng.run()
        return results

    assert scenario(False) == scenario(True)


def test_entries_carry_stable_sequence_numbers():
    eng = Engine()
    tracer = Tracer(eng, capacity=5)

    def tick(i):
        yield eng.timeout(float(i))

    for i in range(20):
        eng.process(tick(i))
    eng.run()
    seqs = [e.seq for e in tracer.entries]
    # Consecutive absolute positions ending at the last event processed.
    assert seqs == list(range(tracer.events_seen - 5, tracer.events_seen))
    assert tracer.dropped == tracer.events_seen - 5


def test_render_tail_reports_ring_drop_after_wraparound():
    eng = Engine()
    tracer = Tracer(eng, capacity=4)

    def tick(i):
        yield eng.timeout(float(i))

    for i in range(12):
        eng.process(tick(i))
    eng.run()
    text = tracer.render_tail(10)
    first = text.splitlines()[0]
    assert f"{tracer.dropped} earlier entries dropped" in first
    assert "capacity 4" in first
    # Sequence numbers render, making the gap visible.
    assert f"#{tracer.entries[0].seq}" in text


def test_render_tail_has_no_drop_header_before_wraparound():
    eng = Engine()
    tracer = Tracer(eng, capacity=100)

    def worker():
        yield eng.timeout(1.0)

    eng.process(worker(), name="w")
    eng.run()
    assert "dropped" not in tracer.render_tail(5)


def test_span_source_labels_entries():
    eng = Engine()
    active = {"label": ""}
    tracer = Tracer(eng, span_source=lambda: active["label"])

    def worker():
        active["label"] = "job-42/compute"
        yield eng.timeout(2.0)
        active["label"] = ""
        yield eng.timeout(1.0)

    eng.process(worker(), name="worker")
    eng.run()
    spanned = tracer.in_span("job-42")
    assert spanned and all(e.span == "job-42/compute" for e in spanned)
    assert "[job-42/compute]" in tracer.render_tail(10)
    # Entries outside the span stay unlabelled.
    assert any(e.span == "" for e in tracer.entries)


def test_kernel_tracer_bridges_to_job_tracer():
    """span_source=JobTracer.current_label ties kernel events to the
    innermost open job span."""
    from repro.trace import JobTracer

    eng = Engine()
    jt = JobTracer(eng)
    tracer = Tracer(eng, span_source=jt.current_label)

    def lifecycle():
        root = jt.start_trace("job-7", kind="job")
        compute = root.child("compute", phase="compute")
        yield eng.timeout(4.0)
        compute.finish()
        jt.finalize(root, "ok")
        yield eng.timeout(1.0)

    eng.process(lifecycle(), name="lifecycle")
    eng.run()
    assert tracer.in_span("compute")
    assert tracer.entries[-1].span == ""  # trace closed before last event


def test_tail_is_a_suffix_view():
    eng = Engine()
    tracer = Tracer(eng, capacity=50)

    def tick(i):
        yield eng.timeout(float(i))

    for i in range(10):
        eng.process(tick(i))
    eng.run()
    assert tracer.tail(3) == list(tracer.entries)[-3:]
    assert tracer.tail(999) == list(tracer.entries)
