"""Tests for Pacman packaging and the VDT site installation pipeline."""

import pytest

from repro.errors import PackagingError
from repro.middleware.gram import Gatekeeper
from repro.middleware.gridftp import GridFTPServer
from repro.middleware.mds import GRIS
from repro.middleware.pacman import (
    Package,
    PacmanCache,
    certify_site,
    fix_misconfiguration,
    install,
    resolve,
    validate_site,
)
from repro.middleware.vdt import (
    GRID3_SITE_PACKAGE,
    REQUIRED_PACKAGES,
    vdt_package_set,
)
from repro.sim import MINUTE, RngRegistry

from ..conftest import make_site


def test_cache_publish_fetch():
    cache = PacmanCache()
    cache.publish(Package("a"))
    assert cache.fetch("a").name == "a"
    assert cache.fetches == 1
    with pytest.raises(PackagingError):
        cache.fetch("missing")
    assert cache.names() == ["a"]


def test_resolve_topological_order():
    cache = PacmanCache()
    cache.publish(Package("base"))
    cache.publish(Package("mid", depends=["base"]))
    cache.publish(Package("top", depends=["mid", "base"]))
    order = [p.name for p in resolve(cache, "top")]
    assert order == ["base", "mid", "top"]


def test_resolve_detects_cycles():
    cache = PacmanCache()
    cache.publish(Package("a", depends=["b"]))
    cache.publish(Package("b", depends=["a"]))
    with pytest.raises(PackagingError):
        resolve(cache, "a")


def test_resolve_missing_dependency():
    cache = PacmanCache()
    cache.publish(Package("a", depends=["ghost"]))
    with pytest.raises(PackagingError):
        resolve(cache, "a")


def test_install_takes_time_and_configures(eng, net):
    site = make_site(eng, net, "SiteA")
    cache = PacmanCache()
    flags = []
    cache.publish(Package("base", install_time=2 * MINUTE))
    cache.publish(
        Package("app", depends=["base"], install_time=3 * MINUTE,
                configure=lambda s: flags.append(s.name))
    )
    result = eng.run_process(install(eng, cache, site, "app"))
    assert result == ["base", "app"]
    assert eng.now == pytest.approx(5 * MINUTE)
    assert site.installed_packages == {"base", "app"}
    assert flags == ["SiteA"]


def test_install_skips_already_installed(eng, net):
    site = make_site(eng, net, "SiteA")
    cache = PacmanCache()
    cache.publish(Package("base", install_time=MINUTE))
    eng.run_process(install(eng, cache, site, "base"))
    t = eng.now
    result = eng.run_process(install(eng, cache, site, "base"))
    assert result == []
    assert eng.now == t  # no time spent


def test_upgrade_reinstalls_new_version(eng, net):
    """§9: 'currently undergoing upgrades' — re-publishing a package at
    a newer version makes install() upgrade it in place."""
    from repro.middleware.pacman import installed_version

    site = make_site(eng, net, "SiteA")
    cache = PacmanCache()
    applied = []
    cache.publish(Package("app", version="1.0", install_time=MINUTE,
                          configure=lambda s: applied.append("1.0")))
    eng.run_process(install(eng, cache, site, "app"))
    assert installed_version(site, "app") == "1.0"
    # Same version: no-op.
    assert eng.run_process(install(eng, cache, site, "app")) == []
    # New version published at the iGOC cache: upgrade applies.
    cache.publish(Package("app", version="2.0", install_time=MINUTE,
                          configure=lambda s: applied.append("2.0")))
    result = eng.run_process(install(eng, cache, site, "app"))
    assert result == ["app"]
    assert installed_version(site, "app") == "2.0"
    assert applied == ["1.0", "2.0"]
    assert installed_version(site, "ghost") is None


def test_install_misconfiguration_flag(eng, net):
    site = make_site(eng, net, "SiteA")
    cache = PacmanCache()
    cache.publish(Package("p", install_time=1.0))
    rng = RngRegistry(0)
    eng.run_process(
        install(eng, cache, site, "p", rng=rng, misconfig_probability=1.0)
    )
    assert site.services.get("misconfigured") is True
    fix_misconfiguration(site)
    assert "misconfigured" not in site.services


def test_vdt_package_set_installs_services(eng, net):
    site = make_site(eng, net, "SiteA")
    del site.services["gridftp"]  # conftest pre-attached one; start clean
    cache = PacmanCache()
    for pkg in vdt_package_set(eng, ["doegrids"]):
        cache.publish(pkg)
    eng.run_process(install(eng, cache, site, GRID3_SITE_PACKAGE))
    assert isinstance(site.service("gatekeeper"), Gatekeeper)
    assert isinstance(site.service("gridftp"), GridFTPServer)
    assert isinstance(site.service("gris"), GRIS)
    assert site.service("authenticator") is not None
    assert set(REQUIRED_PACKAGES) <= site.installed_packages


def test_validate_and_certify(eng, net):
    site = make_site(eng, net, "SiteA")
    del site.services["gridftp"]
    cache = PacmanCache()
    for pkg in vdt_package_set(eng, ["doegrids"]):
        cache.publish(pkg)
    # Before install: many problems.
    problems = validate_site(site, REQUIRED_PACKAGES)
    assert problems
    assert not certify_site(site, REQUIRED_PACKAGES)
    assert site.status == "degraded"
    # After install: clean.
    eng.run_process(install(eng, cache, site, GRID3_SITE_PACKAGE))
    assert validate_site(site, REQUIRED_PACKAGES) == []
    assert certify_site(site, REQUIRED_PACKAGES)
    assert site.status == "online"


def test_validation_catches_misconfiguration(eng, net):
    site = make_site(eng, net, "SiteA")
    del site.services["gridftp"]
    cache = PacmanCache()
    for pkg in vdt_package_set(eng, ["doegrids"]):
        cache.publish(pkg)
    eng.run_process(install(eng, cache, site, GRID3_SITE_PACKAGE))
    site.attach_service("misconfigured", True)
    problems = validate_site(site, REQUIRED_PACKAGES)
    assert any("misconfigured" in p for p in problems)
