"""Tests for GLUE schema validation of published site records."""

import pytest

from repro.middleware.glue import ENUMS, GLUE_SCHEMA, validate_giis, validate_record
from repro.middleware.mds import GIIS, GRIS, glue_record

from ..conftest import make_site, wire_site


_counter = [0]


def good_record(eng, net):
    _counter[0] += 1
    site = make_site(eng, net, f"Site{_counter[0]}")
    wire_site(eng, site, [])
    return glue_record(site)


def test_live_records_conform(eng, net):
    """Every record our own GRIS publishes passes the conventions."""
    record = good_record(eng, net)
    assert validate_record(record) == []


def test_missing_required_attribute(eng, net):
    record = good_record(eng, net)
    del record["grid3_app_dir"]
    problems = validate_record(record)
    assert any("grid3_app_dir" in p and "missing" in p for p in problems)


def test_optional_attribute_may_be_absent(eng, net):
    record = good_record(eng, net)
    del record["queue_length"]
    assert validate_record(record) == []


def test_type_mismatch_detected(eng, net):
    record = good_record(eng, net)
    record["total_cpus"] = "many"
    record["outbound_connectivity"] = "yes"
    problems = validate_record(record)
    assert len(problems) == 2


def test_bool_is_not_an_int(eng, net):
    record = good_record(eng, net)
    record["total_cpus"] = True
    assert validate_record(record)


def test_enum_violation(eng, net):
    record = good_record(eng, net)
    record["batch_system"] = "slurm"   # anachronism!
    record["status"] = "meltdown"
    problems = validate_record(record)
    assert sum("not in" in p for p in problems) == 2


def test_consistency_constraints(eng, net):
    record = good_record(eng, net)
    record["free_cpus"] = record["total_cpus"]
    record["busy_cpus"] = 2
    problems = validate_record(record)
    assert any("exceeds total_cpus" in p for p in problems)
    record2 = good_record(eng, net)
    record2["se_free"] = record2["se_capacity"] + 1
    assert any("se_free" in p for p in validate_record(record2))


def test_relative_path_convention(eng, net):
    record = good_record(eng, net)
    record["grid3_tmp_dir"] = "grid3/tmp"
    assert any("absolute path" in p for p in validate_record(record))


def test_validate_giis_flags_only_problem_sites(eng, net):
    good = make_site(eng, net, "Good")
    wire_site(eng, good, [])
    bad = make_site(eng, net, "Bad")
    wire_site(eng, bad, [])
    bad.config.app_dir = "relative/path"   # violates the convention
    giis = GIIS(eng, "g")
    giis.register("Good", GRIS(eng, good, ttl=0.0))
    giis.register("Bad", GRIS(eng, bad, ttl=0.0))
    report = validate_giis(giis)
    assert set(report) == {"Bad"}
    assert any("absolute path" in p for p in report["Bad"])


def test_schema_covers_the_grid3_extensions():
    """§5.1's 'few extensions': app dir, tmp dir, SE locations, VDT
    location are all schema'd and required."""
    for attr in ("grid3_app_dir", "grid3_tmp_dir", "grid3_data_dir",
                 "grid3_vdt_location"):
        assert GLUE_SCHEMA[attr][1] is True
