"""Tests for the MDS GRIS/GIIS hierarchy and the RLS replica service."""

import pytest

from repro.errors import ReplicaNotFoundError, ServiceUnavailableError
from repro.fabric import Network
from repro.middleware.mds import GIIS, GRIS, build_mds_hierarchy, glue_record, renew_registrations
from repro.middleware.rls import LocalReplicaCatalog, ReplicaLocationIndex
from repro.sim import Engine, GB, MINUTE

from ..conftest import make_site


# --- MDS -----------------------------------------------------------------

def test_glue_record_contains_grid3_extensions(eng, net):
    site = make_site(eng, net, "SiteA")
    rec = glue_record(site)
    assert rec["site"] == "SiteA"
    assert rec["grid3_app_dir"] == "/grid3/app"
    assert rec["grid3_tmp_dir"] == "/grid3/tmp"
    assert "outbound_connectivity" in rec
    assert rec["total_cpus"] == site.cluster.total_cpus


def test_gris_caches_within_ttl(eng, net):
    site = make_site(eng, net, "SiteA")
    gris = GRIS(eng, site, ttl=5 * MINUTE)
    rec1 = gris.query()
    assert rec1["free_cpus"] == 4
    site.cluster.allocate("job")  # state changes...
    rec2 = gris.query()
    assert rec2["free_cpus"] == 4  # ...but the cache hasn't expired
    eng.run(until=6 * MINUTE)
    rec3 = gris.query()
    assert rec3["free_cpus"] == 3  # fresh after TTL
    assert gris.queries_served == 3


def test_gris_invalidate_forces_refresh(eng, net):
    site = make_site(eng, net, "SiteA")
    gris = GRIS(eng, site)
    gris.query()
    site.cluster.allocate("job")
    gris.invalidate()
    assert gris.query()["free_cpus"] == 3


def test_gris_down_raises(eng, net):
    site = make_site(eng, net, "SiteA")
    gris = GRIS(eng, site)
    gris.available = False
    with pytest.raises(ServiceUnavailableError):
        gris.query()


def test_giis_registration_and_query(eng, net):
    site = make_site(eng, net, "SiteA")
    gris = GRIS(eng, site)
    giis = GIIS(eng, "giis-test")
    giis.register("SiteA", gris)
    assert giis.registered_names() == ["SiteA"]
    assert giis.query("SiteA")["site"] == "SiteA"
    with pytest.raises(KeyError):
        giis.query("Unknown")


def test_giis_registrations_expire(eng, net):
    site = make_site(eng, net, "SiteA")
    gris = GRIS(eng, site)
    giis = GIIS(eng, "giis-test", registration_ttl=10 * MINUTE)
    giis.register("SiteA", gris)
    eng.run(until=11 * MINUTE)
    assert giis.registered_names() == []
    with pytest.raises(KeyError):
        giis.query("SiteA")
    # Renewal brings it back.
    giis.register("SiteA", gris)
    assert giis.registered_names() == ["SiteA"]


def test_giis_query_all_skips_dead_gris(eng, net):
    a, b = make_site(eng, net, "A"), make_site(eng, net, "B")
    gris_a, gris_b = GRIS(eng, a), GRIS(eng, b)
    gris_b.available = False
    giis = GIIS(eng, "g")
    giis.register("A", gris_a)
    giis.register("B", gris_b)
    records = giis.query_all()
    assert [r["site"] for r in records] == ["A"]


def test_giis_search_predicate(eng, net):
    a = make_site(eng, net, "A", cpus=8)
    b = make_site(eng, net, "B", cpus=2)
    giis = GIIS(eng, "g")
    giis.register("A", GRIS(eng, a))
    giis.register("B", GRIS(eng, b))
    big = giis.search(lambda r: r["total_cpus"] >= 8)
    assert [r["site"] for r in big] == ["A"]


def test_build_mds_hierarchy(eng, net):
    sites = [make_site(eng, net, f"S{i}", vo="usatlas" if i < 2 else "uscms") for i in range(4)]
    mds = build_mds_hierarchy(eng, sites, ["usatlas", "uscms"])
    assert len(mds["top"].registered_names()) == 4
    assert mds["vo_giis"]["usatlas"].registered_names() == ["S0", "S1"]
    # Every site got a gris service attached.
    assert all(isinstance(s.service("gris"), GRIS) for s in sites)


def test_renew_registrations_keeps_live_sites(eng, net):
    sites = [make_site(eng, net, f"S{i}") for i in range(2)]
    mds = build_mds_hierarchy(eng, sites, ["usatlas"])
    sites[1].status = "offline"
    eng.run(until=31 * MINUTE)  # past the default TTL
    assert mds["top"].registered_names() == []
    renew_registrations(mds)
    assert mds["top"].registered_names() == ["S0"]  # offline site aged out


# --- RLS -----------------------------------------------------------------

def test_lrc_add_lookup_remove():
    lrc = LocalReplicaCatalog("SiteA")
    replica = lrc.add("/atlas/evt001", 2 * GB)
    assert replica.pfn == "gsiftp://SiteA/atlas/evt001"
    assert "/atlas/evt001" in lrc
    assert lrc.lookup("/atlas/evt001").size == 2 * GB
    lrc.remove("/atlas/evt001")
    with pytest.raises(ReplicaNotFoundError):
        lrc.lookup("/atlas/evt001")
    assert lrc.lfns() == []


def test_lrc_down(eng):
    lrc = LocalReplicaCatalog("SiteA")
    lrc.add("f", 1.0)
    lrc.available = False
    with pytest.raises(ServiceUnavailableError):
        lrc.lookup("f")


def test_rli_register_and_locate(eng):
    rli = ReplicaLocationIndex(eng)
    for name in ("A", "B"):
        rli.attach_lrc(LocalReplicaCatalog(name))
    rli.register("A", "/lfn/x", 1 * GB)
    rli.register("B", "/lfn/x", 1 * GB)
    assert rli.sites_with("/lfn/x") == ["A", "B"]
    assert {r.site for r in rli.locate("/lfn/x")} == {"A", "B"}
    assert rli.registrations == 2


def test_rli_unregister_cleans_index(eng):
    rli = ReplicaLocationIndex(eng)
    rli.attach_lrc(LocalReplicaCatalog("A"))
    rli.register("A", "/lfn/x", 1.0)
    rli.unregister("A", "/lfn/x")
    assert rli.sites_with("/lfn/x") == []
    assert rli.catalogued_lfns() == []
    with pytest.raises(ReplicaNotFoundError):
        rli.locate("/lfn/x")


def test_rli_best_replica_prefers_sites(eng):
    rli = ReplicaLocationIndex(eng)
    for name in ("A", "B", "C"):
        rli.attach_lrc(LocalReplicaCatalog(name))
    rli.register("A", "/lfn/x", 1.0)
    rli.register("C", "/lfn/x", 1.0)
    assert rli.best_replica("/lfn/x", prefer_sites=["B", "C", "A"]).site == "C"
    assert rli.best_replica("/lfn/x").site == "A"  # default: first sorted


def test_rli_down(eng):
    rli = ReplicaLocationIndex(eng)
    rli.available = False
    with pytest.raises(ServiceUnavailableError):
        rli.sites_with("/x")
    with pytest.raises(ServiceUnavailableError):
        rli.register("A", "/x", 1.0)


def test_rli_locate_skips_dead_lrc(eng):
    rli = ReplicaLocationIndex(eng)
    a, b = LocalReplicaCatalog("A"), LocalReplicaCatalog("B")
    rli.attach_lrc(a)
    rli.attach_lrc(b)
    rli.register("A", "/x", 1.0)
    rli.register("B", "/x", 1.0)
    a.available = False
    assert [r.site for r in rli.locate("/x")] == ["B"]
    b.available = False
    with pytest.raises(ReplicaNotFoundError):
        rli.locate("/x")
