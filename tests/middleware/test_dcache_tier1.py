"""Integration tests: dCache pool managers fronting the Tier1 archives."""

import pytest

from repro import Grid3, Grid3Config
from repro.failures import FailureProfile
from repro.middleware.dcache import DCachePoolManager
from repro.sim import GB


@pytest.fixture(scope="module")
def dcache_grid():
    grid = Grid3(Grid3Config(
        seed=51, scale=400, duration_days=8,
        apps=["usatlas", "btev"],
        failures=FailureProfile.disabled(),
        misconfig_probability=0.0,
        tier1_dcache=True,
        tier1_dcache_pools=4,
    ))
    grid.run_full()
    return grid


def test_tier1s_run_pool_managers(dcache_grid):
    for name in ("BNL_ATLAS", "FNAL_CMS"):
        storage = dcache_grid.sites[name].storage
        assert isinstance(storage, DCachePoolManager)
        assert len(storage.pools) == 4
    # Non-Tier1 sites keep flat SEs.
    assert not isinstance(
        dcache_grid.sites["UC_ATLAS"].storage, DCachePoolManager
    )


def test_production_archives_into_pools(dcache_grid):
    bnl = dcache_grid.sites["BNL_ATLAS"].storage
    app = dcache_grid.apps["usatlas"]
    if app.stats.succeeded >= 3:
        assert len(bnl) > 0
        # Files are spread across more than one pool.
        populated = [p for p in bnl.pools if len(p.storage) > 0]
        assert len(populated) >= 2
        # RLS agrees the archive holds the outputs.
        dst = [l for l in dcache_grid.rls.catalogued_lfns() if l.endswith("/dst")]
        if dst:
            assert "BNL_ATLAS" in dcache_grid.rls.sites_with(dst[0])


def test_monitoring_and_probes_work_over_dcache(dcache_grid):
    # Ganglia sampled disk gauges off the pool manager without error.
    ganglia = dcache_grid.monitors["ganglia"]
    assert ganglia.latest("BNL_ATLAS", "disk.used") is not None
    # The status catalog probed the Tier1s fine.
    page = dict(
        (site, status)
        for site, status, _p in dcache_grid.monitors["status"].status_page()
    )
    assert page["BNL_ATLAS"] in ("PASS", "FAIL")


def test_pool_failure_isolation_live(dcache_grid):
    bnl = dcache_grid.sites["BNL_ATLAS"].storage
    populated = [p for p in bnl.pools if len(p.storage) > 0]
    if not populated:
        pytest.skip("no archived files at this scale")
    victim = populated[0]
    before = len(bnl)
    lost = bnl.fail_pool(victim)
    # Only the victim's sole-copy files vanished; the namespace survives.
    assert len(lost) <= len(victim.storage._files) + 1
    bnl.restore_pool(victim)
    assert len(bnl) == before


def test_srm_over_dcache():
    grid = Grid3(Grid3Config(
        seed=52, scale=600, duration_days=4,
        apps=["btev"],
        failures=FailureProfile.disabled(),
        misconfig_probability=0.0,
        use_srm=True,
        tier1_dcache=True,
    ))
    grid.run_full()
    # Reservations were granted and fully released.
    for name in ("BNL_ATLAS", "FNAL_CMS"):
        storage = grid.sites[name].storage
        assert storage.reserved == pytest.approx(0.0, abs=1e-6)
    app = grid.apps["btev"]
    assert app.stats.success_rate > 0.8
