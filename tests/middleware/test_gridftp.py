"""Tests for GridFTP transfers: data movement, contention, failures."""

import pytest

from repro.errors import (
    NetworkInterruptionError,
    ServiceUnavailableError,
    StorageFullError,
)
from repro.middleware.gridftp import GridFTPServer, attach_gridftp, transfer
from repro.middleware.rls import LocalReplicaCatalog, ReplicaLocationIndex
from repro.sim import Engine, GB, TB

from ..conftest import make_site
from repro.fabric import Network


def run_transfer(eng, *args, **kwargs):
    return eng.run_process(transfer(eng, *args, **kwargs))


def test_simple_transfer_moves_bytes(eng, two_sites):
    a, b = two_sites
    moved = run_transfer(eng, a, b, "/lfn/data", 1 * GB)
    assert moved == 1 * GB
    assert b.storage.lookup("/lfn/data").size == 1 * GB
    assert a.service("gridftp").bytes_sent == 1 * GB
    assert b.service("gridftp").bytes_received == 1 * GB
    assert a.service("gridftp").transfers_ok == 1
    # Duration = size / access bandwidth (1e8 B/s) = 10 s.
    assert eng.now == pytest.approx(10.0)


def test_transfer_negative_size_rejected(eng, two_sites):
    a, b = two_sites
    from repro.errors import TransferError
    with pytest.raises(TransferError):
        run_transfer(eng, a, b, "/x", -5.0)


def test_transfer_netlogger_events(eng, two_sites):
    a, b = two_sites
    run_transfer(eng, a, b, "/lfn/data", 1 * GB)
    events = [e.event for e in a.service("gridftp").netlogger]
    assert events == ["transfer.start", "transfer.end"]


def test_transfer_registers_in_rls(eng, two_sites):
    a, b = two_sites
    rls = ReplicaLocationIndex(eng)
    rls.attach_lrc(LocalReplicaCatalog("SiteA"))
    rls.attach_lrc(LocalReplicaCatalog("SiteB"))
    run_transfer(eng, a, b, "/lfn/data", 1 * GB, rls=rls)
    assert rls.sites_with("/lfn/data") == ["SiteB"]


def test_transfer_to_full_disk_fails(eng, net):
    a = make_site(eng, net, "SiteA")
    b = make_site(eng, net, "SiteB", disk=1 * GB)
    with pytest.raises(StorageFullError):
        run_transfer(eng, a, b, "/big", 2 * GB)
    gftp = a.service("gridftp")
    assert gftp.transfers_failed == 1
    assert any(e.event == "transfer.error" for e in gftp.netlogger)
    # Connection slots were released despite the failure.
    assert gftp.connections.in_use == 0
    assert b.service("gridftp").connections.in_use == 0


def test_transfer_server_down(eng, two_sites):
    a, b = two_sites
    b.service("gridftp").available = False
    with pytest.raises(ServiceUnavailableError):
        run_transfer(eng, a, b, "/x", 1.0)


def test_transfer_network_interruption_fails(eng, two_sites):
    a, b = two_sites
    failures = []

    def mover():
        try:
            yield from transfer(eng, a, b, "/x", 10 * GB)
        except NetworkInterruptionError:
            failures.append(eng.now)

    def breaker():
        yield eng.timeout(5.0)
        a.network.interrupt_link(a.uplink.name, kill_flows=True)

    eng.process(mover())
    eng.process(breaker())
    eng.run()
    assert failures == [5.0]
    assert a.service("gridftp").connections.in_use == 0


def test_concurrent_transfers_share_bandwidth(eng, two_sites):
    a, b = two_sites
    done = []

    def mover(i):
        yield from transfer(eng, a, b, f"/f{i}", 1 * GB)
        done.append((i, eng.now))

    eng.process(mover(0))
    eng.process(mover(1))
    eng.run()
    # Two 1 GB flows sharing a 1e8 B/s access link: both finish ~20 s.
    assert len(done) == 2
    assert all(t == pytest.approx(20.0) for _i, t in done)


def test_connection_pool_limits_concurrency(eng, net):
    a = make_site(eng, net, "SiteA")
    b = make_site(eng, net, "SiteB")
    # Replace with tight pools.
    attach_gridftp(eng, a, max_connections=1, setup_latency=0.0)
    attach_gridftp(eng, b, max_connections=1, setup_latency=0.0)
    finish = []

    def mover(i):
        yield from transfer(eng, a, b, f"/f{i}", 1 * GB)
        finish.append(eng.now)

    eng.process(mover(0))
    eng.process(mover(1))
    eng.run()
    # Serialised by the 1-connection pool: 10 s then 20 s.
    assert finish == [pytest.approx(10.0), pytest.approx(20.0)]


def test_opposing_transfers_do_not_deadlock(eng, net):
    a = make_site(eng, net, "SiteA")
    b = make_site(eng, net, "SiteB")
    attach_gridftp(eng, a, max_connections=1, setup_latency=0.0)
    attach_gridftp(eng, b, max_connections=1, setup_latency=0.0)
    done = []

    def mover(src, dst, i):
        yield from transfer(eng, src, dst, f"/f{i}", 1 * GB)
        done.append(i)

    # A->B and B->A simultaneously with single-slot pools: canonical
    # ordering must prevent the classic two-lock deadlock.
    for i in range(4):
        eng.process(mover(a, b, i) if i % 2 == 0 else mover(b, a, i))
    eng.run()
    assert sorted(done) == [0, 1, 2, 3]


def test_setup_latency_accounted(eng, net):
    a = make_site(eng, net, "SiteA")
    b = make_site(eng, net, "SiteB")
    attach_gridftp(eng, a, setup_latency=3.0)
    attach_gridftp(eng, b, setup_latency=2.0)
    run_transfer(eng, a, b, "/x", 1 * GB)
    assert eng.now == pytest.approx(15.0)  # 5 s setup + 10 s transfer


def test_transfer_without_storage_write(eng, two_sites):
    a, b = two_sites
    run_transfer(eng, a, b, "/stream", 1 * GB, write_to_storage=False)
    assert "/stream" not in b.storage
    assert b.service("gridftp").bytes_received == 1 * GB


def test_netlogger_ring_buffer_bounded(eng, two_sites):
    a, _b = two_sites
    server: GridFTPServer = a.service("gridftp")
    server.NETLOG_LIMIT = 10
    for i in range(25):
        server.log("transfer.start", f"/f{i}", 1.0)
    assert len(server.netlogger) <= 11
