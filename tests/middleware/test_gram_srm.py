"""Tests for the GRAM gatekeeper load model and the SRM service."""

import pytest

from repro.core.job import Job, JobSpec, JobState
from repro.errors import (
    AuthenticationError,
    GatekeeperOverloadError,
    ReservationError,
    ServiceUnavailableError,
    StorageFullError,
    SubmissionError,
)
from repro.middleware.gram import (
    LOAD_PER_MANAGED_JOB,
    Gatekeeper,
    attach_gatekeeper,
)
from repro.middleware.srm import SRMService, attach_srm
from repro.sim import Engine, GB, HOUR, MINUTE, TB

from ..conftest import make_site


class FakeLRM:
    """Accepts every job; tests drive completion manually."""

    def __init__(self):
        self.jobs = []
        self.cancelled = []

    def submit(self, job):
        self.jobs.append(job)

    def cancel(self, job):
        self.cancelled.append(job)


def spec(name="job", staging="none", **kw):
    return JobSpec(name=name, vo="usatlas", user="alice", runtime=HOUR, staging=staging, **kw)


@pytest.fixture
def gatekeeper(eng, net, authed):
    auth, proxy = authed
    site = make_site(eng, net, "SiteA")
    gk = attach_gatekeeper(eng, site, auth)
    gk.lrm = FakeLRM()
    return gk, proxy


def test_submit_happy_path(eng, gatekeeper):
    gk, proxy = gatekeeper
    job = gk.submit(proxy, spec())
    assert job.state is JobState.PENDING
    assert job.site_name == "SiteA"
    assert gk.managed_count == 1
    assert gk.lrm.jobs == [job]
    assert gk.submissions_accepted == 1
    assert any(e[1] == "submit" for e in gk.log)


def test_submit_requires_lrm(eng, net, authed):
    auth, proxy = authed
    site = make_site(eng, net, "SiteB")
    gk = attach_gatekeeper(eng, site, auth)
    with pytest.raises(SubmissionError):
        gk.submit(proxy, spec())


def test_submit_authentication_failure_propagates(eng, gatekeeper, ca):
    gk, _proxy = gatekeeper
    bad_cert = ca.issue("/CN=stranger")
    bad_proxy = ca.make_proxy(bad_cert)
    from repro.errors import AuthorizationError
    with pytest.raises(AuthorizationError):
        gk.submit(bad_proxy, spec())
    assert gk.managed_count == 0


def test_gatekeeper_down(eng, gatekeeper):
    gk, proxy = gatekeeper
    gk.available = False
    with pytest.raises(ServiceUnavailableError):
        gk.submit(proxy, spec())


def test_load_model_matches_paper_calibration(eng, net, authed):
    """§6.4: ~1000 managed no-staging jobs -> sustained load ~225."""
    auth, proxy = authed
    site = make_site(eng, net, "SiteCal")
    gk = attach_gatekeeper(eng, site, auth, overload_threshold=1e9)
    gk.lrm = FakeLRM()
    for _ in range(1000):
        gk.submit(proxy, spec(staging="none"))
    eng.run(until=2 * MINUTE)  # let submission spikes decay
    assert gk.load() == pytest.approx(225.0, rel=0.01)


def test_staging_factor_multiplies_load(eng, gatekeeper):
    gk, proxy = gatekeeper
    for _ in range(100):
        gk.submit(proxy, spec(staging="minimal"))
    eng.run(until=2 * MINUTE)
    # Factor of two vs the base rate (§6.4).
    assert gk.load() == pytest.approx(2 * 100 * LOAD_PER_MANAGED_JOB, rel=0.01)


def test_heavy_staging_higher_still(eng, gatekeeper):
    gk, proxy = gatekeeper
    for _ in range(100):
        gk.submit(proxy, spec(staging="heavy"))
    eng.run(until=2 * MINUTE)
    load_heavy = gk.load()
    assert 3 * 100 * LOAD_PER_MANAGED_JOB <= load_heavy <= 4 * 100 * LOAD_PER_MANAGED_JOB


def test_submission_frequency_spike(eng, gatekeeper):
    """'This load can sharply increase when the job submission frequency
    is high' — burst submissions add transient load that decays."""
    gk, proxy = gatekeeper
    for _ in range(100):
        gk.submit(proxy, spec(staging="none"))
    spiked = gk.load()
    sustained = 100 * LOAD_PER_MANAGED_JOB
    assert spiked > sustained * 2  # sharp transient increase
    eng.run(until=2 * MINUTE)
    assert gk.load() == pytest.approx(sustained, rel=0.01)


def test_overload_sheds_submissions(eng, net, authed):
    auth, proxy = authed
    site = make_site(eng, net, "SiteA")
    gk = attach_gatekeeper(eng, site, auth, overload_threshold=50.0)
    gk.lrm = FakeLRM()
    with pytest.raises(GatekeeperOverloadError):
        for _ in range(10_000):
            gk.submit(proxy, spec(staging="heavy"))
    assert gk.overload_rejections == 1
    assert gk.peak_load > 50.0


def test_job_finished_releases_load(eng, gatekeeper):
    gk, proxy = gatekeeper
    job = gk.submit(proxy, spec())
    eng.run(until=2 * MINUTE)
    before = gk.load()
    gk.job_finished(job)
    assert gk.load() < before
    assert gk.managed_count == 0


def test_cancel_forwards_to_lrm(eng, gatekeeper):
    gk, proxy = gatekeeper
    job = gk.submit(proxy, spec())
    gk.cancel(job)
    assert gk.lrm.cancelled == [job]
    assert gk.managed_count == 0


def test_gram_log_bounded(eng, gatekeeper):
    gk, proxy = gatekeeper
    gk.log.extend((0.0, "x", i, "") for i in range(60_000))
    gk.submit(proxy, spec())
    assert len(gk.log) < 60_000


# --- SRM -------------------------------------------------------------------

def test_srm_reserve_then_write(eng, net):
    site = make_site(eng, net, "SiteA", disk=10 * GB)
    srm = attach_srm(eng, site)
    res = srm.prepare_to_put(4 * GB)
    assert srm.reservations_granted == 1
    site.storage.store("/out", 3 * GB, reservation=res)
    srm.put_done(res)
    assert site.storage.used == 3 * GB
    assert site.storage.reserved == pytest.approx(0.0)


def test_srm_denies_when_full(eng, net):
    site = make_site(eng, net, "SiteA", disk=10 * GB)
    srm = attach_srm(eng, site)
    srm.prepare_to_put(8 * GB)
    with pytest.raises(ReservationError):
        srm.prepare_to_put(5 * GB)
    assert srm.reservations_denied == 1


def test_srm_reservation_prevents_disk_full_crash(eng, net):
    """The §6.2 scenario: with SRM, the conflict surfaces at reservation
    time, not as a mid-job StorageFullError."""
    site = make_site(eng, net, "SiteA", disk=10 * GB)
    srm = attach_srm(eng, site)
    res = srm.prepare_to_put(6 * GB)
    # An unreserved interloper cannot squeeze the reserved space.
    with pytest.raises(StorageFullError):
        site.storage.store("/interloper", 5 * GB)
    # The reserved writer is safe.
    site.storage.store("/mine", 6 * GB, reservation=res)
    srm.put_done(res)


def test_srm_abort_returns_space(eng, net):
    site = make_site(eng, net, "SiteA", disk=10 * GB)
    srm = attach_srm(eng, site)
    res = srm.prepare_to_put(6 * GB)
    srm.abort(res)
    assert site.storage.free == pytest.approx(10 * GB)
    assert srm.reserved_bytes == 0.0


def test_srm_expired_leases_reaped(eng, net):
    site = make_site(eng, net, "SiteA", disk=10 * GB)
    srm = attach_srm(eng, site, default_lifetime=1 * HOUR)
    srm.prepare_to_put(6 * GB)
    eng.run(until=2 * HOUR)
    # A new reservation triggers the reap and succeeds.
    res2 = srm.prepare_to_put(8 * GB)
    assert res2.amount == 8 * GB
