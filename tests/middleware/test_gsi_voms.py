"""Tests for GSI credentials and VOMS membership / gridmap generation."""

import pytest

from repro.errors import (
    AuthenticationError,
    AuthorizationError,
    ServiceUnavailableError,
)
from repro.middleware.gsi import (
    Authenticator,
    CertificateAuthority,
    GridMapFile,
)
from repro.middleware.voms import VOMSServer, generate_gridmap, refresh_site_gridmaps
from repro.sim import Engine, HOUR

from ..conftest import make_site
from repro.fabric import Network


def test_certificate_validity_window(eng, ca):
    cert = ca.issue("/CN=bob")
    assert cert.valid_at(eng.now)
    assert cert.valid_at(ca.cert_lifetime)
    assert not cert.valid_at(ca.cert_lifetime + 1)
    assert cert.issuer == "doegrids"


def test_proxy_expiry(eng, ca):
    cert = ca.issue("/CN=bob")
    proxy = ca.make_proxy(cert, lifetime=12 * HOUR)
    assert proxy.valid_at(0)
    assert proxy.valid_at(12 * HOUR)
    assert not proxy.valid_at(12 * HOUR + 1)
    assert proxy.subject == "/CN=bob"


def test_proxy_invalid_when_cert_expired(eng):
    ca = CertificateAuthority("doegrids", eng, cert_lifetime=1 * HOUR)
    cert = ca.issue("/CN=bob")
    proxy = ca.make_proxy(cert, lifetime=24 * HOUR)
    assert not proxy.valid_at(2 * HOUR)  # proxy alive, but cert dead


def test_gridmap_mapping():
    gm = GridMapFile()
    gm.add("/CN=alice", "grid-usatlas")
    assert "/CN=alice" in gm
    assert len(gm) == 1
    assert gm.account_for("/CN=alice") == "grid-usatlas"
    gm.remove("/CN=alice")
    with pytest.raises(AuthorizationError):
        gm.account_for("/CN=alice")
    gm.remove("/CN=alice")  # idempotent


def test_authenticator_happy_path(authed):
    auth, proxy = authed
    assert auth.authenticate(proxy) == "grid-usatlas"
    assert auth.accepted == 1


def test_authenticator_rejects_expired_proxy(eng, ca):
    cert = ca.issue("/CN=alice")
    proxy = ca.make_proxy(cert, lifetime=1.0)
    gm = GridMapFile()
    gm.add("/CN=alice", "acct")
    auth = Authenticator(eng, ["doegrids"], gm)
    eng.run(until=10.0)
    with pytest.raises(AuthenticationError):
        auth.authenticate(proxy)
    assert auth.rejected == 1


def test_authenticator_rejects_untrusted_ca(eng):
    rogue = CertificateAuthority("rogue-ca", eng)
    cert = rogue.issue("/CN=mallory")
    proxy = rogue.make_proxy(cert)
    gm = GridMapFile()
    gm.add("/CN=mallory", "acct")
    auth = Authenticator(eng, ["doegrids"], gm)
    with pytest.raises(AuthenticationError):
        auth.authenticate(proxy)


def test_authenticator_rejects_unmapped_dn(eng, ca):
    cert = ca.issue("/CN=stranger")
    proxy = ca.make_proxy(cert)
    auth = Authenticator(eng, ["doegrids"], GridMapFile())
    with pytest.raises(AuthorizationError):
        auth.authenticate(proxy)
    assert auth.rejected == 1


def test_voms_register_and_roles(eng, ca):
    voms = VOMSServer(eng, "usatlas", ca)
    admin = voms.register("prodmgr", role="admin")
    user = voms.register("grad-student")
    assert len(voms) == 2
    assert admin.dn == "/DC=org/DC=grid3/O=usatlas/CN=prodmgr"
    assert voms.admins() == [admin]
    assert voms.member("grad-student") is user
    # Re-registering is idempotent.
    assert voms.register("prodmgr") is admin
    voms.remove("grad-student")
    assert len(voms) == 1


def test_voms_proxy_for_member(eng, ca):
    voms = VOMSServer(eng, "ligo", ca)
    voms.register("pulsar-hunter")
    proxy = voms.proxy_for("pulsar-hunter")
    assert proxy.valid_at(eng.now)
    with pytest.raises(KeyError):
        voms.proxy_for("nobody")


def test_voms_down_raises(eng, ca):
    voms = VOMSServer(eng, "btev", ca)
    voms.available = False
    with pytest.raises(ServiceUnavailableError):
        voms.dns()


def test_generate_gridmap_maps_all_vos(eng, ca):
    net = Network(eng)
    site = make_site(eng, net, "SiteX")
    servers = []
    for vo in ("usatlas", "uscms"):
        v = VOMSServer(eng, vo, ca)
        v.register(f"{vo}-user1")
        v.register(f"{vo}-user2")
        servers.append(v)
    gm = generate_gridmap(site, servers)
    assert len(gm) == 4
    assert gm.account_for("/DC=org/DC=grid3/O=uscms/CN=uscms-user1") == "grid-uscms"
    # The site got group accounts per VO (§5.3 naming convention).
    assert site.accounts == {"usatlas": "grid-usatlas", "uscms": "grid-uscms"}


def test_generate_gridmap_skips_down_voms(eng, ca):
    net = Network(eng)
    site = make_site(eng, net, "SiteY")
    up = VOMSServer(eng, "usatlas", ca)
    up.register("alice")
    down = VOMSServer(eng, "uscms", ca)
    down.register("bob")
    down.available = False
    gm = generate_gridmap(site, [up, down])
    assert len(gm) == 1  # only the reachable VO's users


def test_refresh_site_gridmaps_attaches_service(eng, ca):
    net = Network(eng)
    sites = [make_site(eng, net, f"S{i}") for i in range(3)]
    voms = VOMSServer(eng, "sdss", ca)
    voms.register("astronomer")
    refresh_site_gridmaps(sites, [voms], now=eng.now)
    for site in sites:
        gm = site.service("gridmap")
        assert "/DC=org/DC=grid3/O=sdss/CN=astronomer" in gm
