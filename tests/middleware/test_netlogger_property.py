"""Property tests for NetLogger lifeline reconstruction."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.middleware.gridftp import NetLoggerEvent
from repro.middleware.netlogger import compute_statistics, reconstruct_lifelines


@st.composite
def event_streams(draw):
    """Random but causally-plausible event streams: every end/error is
    preceded by a matching start; some starts never terminate."""
    events = []
    clock = 0.0
    open_counts = {}
    n_ops = draw(st.integers(min_value=0, max_value=40))
    for _ in range(n_ops):
        clock += draw(st.floats(min_value=0.1, max_value=10.0))
        lfn = f"/f{draw(st.integers(min_value=0, max_value=4))}"
        openable = open_counts.get(lfn, 0) > 0
        action = draw(st.sampled_from(
            ["start", "end", "error"] if openable else ["start"]
        ))
        if action == "start":
            events.append(NetLoggerEvent(clock, "transfer.start", "h", lfn, 100.0))
            open_counts[lfn] = open_counts.get(lfn, 0) + 1
        else:
            events.append(
                NetLoggerEvent(clock, f"transfer.{action}", "h", lfn, 100.0)
            )
            open_counts[lfn] -= 1
    return events, open_counts


@settings(max_examples=60, deadline=None)
@given(stream=event_streams())
def test_property_lifeline_accounting(stream):
    """Lifeline counts conserve the event stream: one lifeline per
    start; terminated = ends+errors; the rest in-flight; durations
    non-negative."""
    events, open_counts = stream
    starts = sum(1 for e in events if e.event == "transfer.start")
    ends = sum(1 for e in events if e.event == "transfer.end")
    errors = sum(1 for e in events if e.event == "transfer.error")

    lifelines = reconstruct_lifelines(events)
    assert len(lifelines) == starts
    stats = compute_statistics(lifelines)
    assert stats.ok == ends
    assert stats.errors == errors
    assert stats.in_flight == sum(open_counts.values())
    for lifeline in lifelines:
        if lifeline.outcome != "in-flight":
            assert lifeline.duration >= 0
            assert lifeline.ended_at >= lifeline.started_at
    # Reliability is a proper fraction.
    assert 0.0 <= stats.reliability <= 1.0


@settings(max_examples=40, deadline=None)
@given(stream=event_streams())
def test_property_reconstruction_order_independent_of_ties(stream):
    """Reconstruction sorts by time, so pre-shuffled input with unique
    timestamps reconstructs identically."""
    events, _open = stream
    import random as _random
    shuffled = list(events)
    _random.Random(0).shuffle(shuffled)
    a = reconstruct_lifelines(events)
    b = reconstruct_lifelines(shuffled)
    assert a == b
