"""Tests for NetLogger analysis and the dCache pool manager."""

import pytest

from repro.errors import ReplicaNotFoundError, StorageFullError
from repro.middleware.dcache import DCachePoolManager
from repro.middleware.gridftp import NetLoggerEvent
from repro.middleware.netlogger import (
    analyse_server,
    compute_statistics,
    find_anomalies,
    grid_archive,
    reconstruct_lifelines,
)
from repro.middleware import transfer
from repro.sim import Engine, GB

from ..conftest import make_site


# --- NetLogger ---------------------------------------------------------------

def ev(time, event, lfn="/f", size=100.0, detail=""):
    return NetLoggerEvent(time, event, "host", lfn, size, detail)


def test_lifeline_reconstruction_pairs_start_end():
    events = [
        ev(0.0, "transfer.start"),
        ev(10.0, "transfer.end"),
    ]
    lifelines = reconstruct_lifelines(events)
    assert len(lifelines) == 1
    life = lifelines[0]
    assert life.outcome == "ok"
    assert life.duration == 10.0
    assert life.throughput == pytest.approx(10.0)


def test_lifeline_error_and_inflight():
    events = [
        ev(0.0, "transfer.start", "/a"),
        ev(5.0, "transfer.error", "/a", detail="disk full"),
        ev(7.0, "transfer.start", "/b"),
    ]
    lifelines = reconstruct_lifelines(events)
    by_lfn = {l.lfn: l for l in lifelines}
    assert by_lfn["/a"].outcome == "error"
    assert by_lfn["/a"].error_detail == "disk full"
    assert by_lfn["/b"].outcome == "in-flight"
    assert by_lfn["/b"].duration == -1.0
    assert by_lfn["/b"].throughput == 0.0


def test_lifeline_retransfer_fifo_pairing():
    events = [
        ev(0.0, "transfer.start", "/a"),
        ev(1.0, "transfer.start", "/a"),
        ev(5.0, "transfer.error", "/a"),
        ev(9.0, "transfer.end", "/a"),
    ]
    lifelines = reconstruct_lifelines(events)
    assert [l.outcome for l in lifelines] == ["error", "ok"]
    assert lifelines[0].started_at == 0.0  # FIFO pairing


def test_orphan_end_ignored():
    assert reconstruct_lifelines([ev(1.0, "transfer.end")]) == []


def test_statistics_and_reliability():
    events = []
    for i in range(4):
        events.append(ev(i * 10.0, "transfer.start", f"/f{i}", size=1000.0))
        kind = "transfer.end" if i < 3 else "transfer.error"
        events.append(ev(i * 10.0 + 5.0, kind, f"/f{i}", size=1000.0))
    stats = compute_statistics(reconstruct_lifelines(events))
    assert stats.transfers == 4
    assert stats.ok == 3 and stats.errors == 1
    assert stats.reliability == pytest.approx(0.75)
    assert stats.bytes_moved == 3000.0
    assert stats.mean_throughput == pytest.approx(200.0)


def test_analyse_real_server(eng, two_sites):
    a, b = two_sites
    eng.run_process(transfer(eng, a, b, "/data", 1 * GB))
    stats = analyse_server(a.service("gridftp"))
    assert stats.ok == 1 and stats.errors == 0
    assert stats.mean_throughput > 0
    archive = grid_archive([a.service("gridftp"), b.service("gridftp")])
    assert set(archive) == {"SiteA", "SiteB"}


def test_find_anomalies():
    events = [
        ev(0.0, "transfer.start", "/fast", 1000.0),
        ev(1.0, "transfer.end", "/fast", 1000.0),      # 1000 B/s
        ev(0.0, "transfer.start", "/slow", 1000.0),
        ev(100.0, "transfer.end", "/slow", 1000.0),    # 10 B/s
        ev(0.0, "transfer.start", "/dead", 1000.0),
        ev(2.0, "transfer.error", "/dead", 1000.0),
        ev(0.0, "transfer.start", "/stuck", 1000.0),   # never ends
    ]
    flagged = find_anomalies(reconstruct_lifelines(events), now=7200.0)
    kinds = {lfn: kind for kind, l in flagged for lfn in [l.lfn]}
    assert kinds["/dead"] == "error"
    assert kinds["/stuck"] == "stalled"
    assert kinds["/slow"] == "slow"
    assert "/fast" not in kinds


# --- dCache -------------------------------------------------------------------

def make_dcache(pools=3, capacity=10 * GB):
    return DCachePoolManager(Engine(), "fnal-dcache", pools, capacity)


def test_dcache_validation():
    with pytest.raises(ValueError):
        make_dcache(pools=0)


def test_store_selects_least_loaded_pool():
    dc = make_dcache()
    dc.store("/a", 4 * GB)
    dc.store("/b", 4 * GB)
    dc.store("/c", 4 * GB)
    # Spread: one file per pool, not stacked.
    assert all(len(p.storage) == 1 for p in dc.pools)
    assert dc.used == 12 * GB
    assert "/a" in dc and len(dc) == 3


def test_store_fragmentation_raises():
    dc = make_dcache(pools=2, capacity=5 * GB)
    dc.store("/a", 3 * GB)
    dc.store("/b", 3 * GB)
    # 4 GB free in aggregate but only 2 GB per pool: pooled storage
    # cannot take a 3 GB file.
    with pytest.raises(StorageFullError):
        dc.store("/c", 3 * GB)


def test_lookup_and_delete():
    dc = make_dcache()
    dc.store("/a", 1 * GB)
    assert dc.lookup("/a").size == 1 * GB
    assert dc.lookup("/missing") is None
    dc.delete("/a")
    assert "/a" not in dc
    with pytest.raises(KeyError):
        dc.delete("/a")


def test_replicate_hot_file():
    dc = make_dcache()
    dc.store("/hot", 1 * GB)
    count = dc.replicate("/hot", copies=3)
    assert count == 3
    holders = [p for p in dc.pools if "/hot" in p.storage]
    assert len(holders) == 3
    with pytest.raises(ReplicaNotFoundError):
        dc.replicate("/nope")


def test_pool_failure_isolation():
    dc = make_dcache()
    dc.store("/a", 1 * GB)   # lands on pool0
    dc.store("/b", 1 * GB)   # pool1
    dc.replicate("/a", copies=2)
    victim = next(p for p in dc.pools if "/b" in p.storage)
    lost = dc.fail_pool(victim)
    # /b lost its only replica; /a survives via its second copy.
    assert lost == ["/b"]
    assert "/a" in dc
    assert "/b" not in dc
    dc.restore_pool(victim)
    assert "/b" in dc


def test_drain_pool_migrates_files():
    dc = make_dcache()
    dc.store("/a", 1 * GB)
    victim = next(p for p in dc.pools if "/a" in p.storage)
    migrated = dc.drain_pool(victim)
    assert migrated == 1
    assert not victim.online
    assert "/a" in dc  # survived the drain elsewhere
    assert "/a" not in victim.storage


def test_drain_pool_nowhere_to_go():
    dc = make_dcache(pools=2, capacity=5 * GB)
    dc.store("/a", 4 * GB)
    dc.store("/b", 4 * GB)
    victim = dc.pools[0]
    with pytest.raises(StorageFullError):
        dc.drain_pool(victim)


def test_free_excludes_offline_pools():
    dc = make_dcache(pools=2, capacity=10 * GB)
    dc.fail_pool(dc.pools[0])
    assert dc.free == 10 * GB
    assert dc.capacity == 20 * GB
