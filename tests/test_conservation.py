"""System-wide conservation invariants under stress.

These are the "nothing leaks, nothing gets stuck" checks: whatever the
failure weather, every accepted job reaches a terminal state, every
resource slot is returned, storage accounting stays consistent, and the
monitoring stack's view agrees with ground truth.
"""

import pytest

from repro import Grid3, Grid3Config
from repro.core.job import JobState
from repro.failures import FailureProfile
from repro.sim import DAY, HOUR


@pytest.fixture(scope="module", params=["calm", "hostile"])
def stressed_grid(request):
    """Two regimes: quiet, and aggressively failing."""
    if request.param == "calm":
        failures = FailureProfile.disabled()
        misconfig = 0.0
    else:
        failures = FailureProfile(
            service_failure_interval=1 * DAY,
            batch_crash_weight=0.5,
            network_interruption_interval=2 * DAY,
            node_mtbf=60 * DAY,
            nightly_rollover={"UB_ACDC": 0.4},
        )
        misconfig = 0.4
    grid = Grid3(Grid3Config(
        seed=37, scale=300, duration_days=12,
        apps=["ivdgl", "btev", "exerciser", "gridftp-demo"],
        failures=failures,
        misconfig_probability=misconfig,
    ))
    grid.run_full()
    # Drain anything still in flight: run past the window until the
    # event heap quiesces (bounded extra time).
    grid.run(days=3)
    grid.monitors["acdc"].poll_once()
    return grid


def test_every_tracked_job_terminal(stressed_grid):
    """No job is left in a non-terminal state after the drain."""
    for site in stressed_grid.sites.values():
        lrm = site.service("lrm")
        assert lrm.running_count == 0, f"{site.name} still running jobs"
        for job in lrm.completed:
            assert job.state in (JobState.DONE, JobState.FAILED)


def test_no_cpu_slot_leaks(stressed_grid):
    """Busy CPUs at the end are local-load occupants only (keys start
    'local-'), never grid jobs."""
    for site in stressed_grid.sites.values():
        for node in site.cluster.nodes:
            for occupant in node.running:
                assert str(occupant).startswith("local-"), (
                    f"{site.name}/{node.node_id} leaked occupant {occupant}"
                )


def test_no_gridftp_connection_leaks(stressed_grid):
    for site in stressed_grid.sites.values():
        server = site.service("gridftp")
        assert server.connections.in_use == 0, (
            f"{site.name} leaked {server.connections.in_use} connections"
        )


def test_no_orphaned_network_flows(stressed_grid):
    # Demo/staging flows all completed or were killed; nothing dangles
    # after the drain (stalled flows on cut links would linger here).
    lingering = stressed_grid.network.active_flows
    assert len(lingering) == 0, f"{len(lingering)} flows still active"


def test_storage_accounting_consistent(stressed_grid):
    for site in stressed_grid.sites.values():
        se = site.storage
        assert se.used == pytest.approx(
            sum(f.size for f in se.files()), rel=1e-9
        )
        assert 0 <= se.used <= se.capacity + 1e-6
        assert se.reserved >= -1e-6


def test_gatekeeper_managed_sets_drain(stressed_grid):
    for site in stressed_grid.sites.values():
        gk = site.service("gatekeeper")
        assert gk.managed_count == 0, (
            f"{site.name} gatekeeper still manages {gk.managed_count} jobs"
        )


def test_acdc_saw_every_lrm_completion(stressed_grid):
    total_completed = sum(
        len(site.service("lrm").completed)
        for site in stressed_grid.sites.values()
    )
    assert len(stressed_grid.acdc_db) == total_completed


def test_condorg_bookkeeping_balances(stressed_grid):
    for vo, cg in stressed_grid.condorg.items():
        assert cg.completed + cg.failed <= cg.submitted
        # Every submission eventually resolved (no handle stuck pending).
        assert cg.completed + cg.failed == cg.submitted, (
            f"{vo}: {cg.submitted - cg.completed - cg.failed} handles unresolved"
        )
