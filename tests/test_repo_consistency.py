"""Repository-consistency checks: examples, docs, and API surface agree.

These guard the open-source-release quality bar: every example compiles
and exposes main(), the README references real files, DESIGN's bench
index points at existing benches, and the public API exports resolve.
"""

import ast
import importlib
import pathlib
import re

import pytest

REPO = pathlib.Path(__file__).resolve().parent.parent
EXAMPLES = sorted((REPO / "examples").glob("*.py"))
BENCHES = sorted((REPO / "benchmarks").glob("bench_*.py"))


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3  # the deliverable floor; we ship more


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_parses_and_has_main(path):
    tree = ast.parse(path.read_text())
    functions = {
        node.name for node in ast.walk(tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    assert "main" in functions, f"{path.name} lacks a main()"
    # Run under a __main__ guard, not at import time.
    assert '__main__' in path.read_text()
    # Has a module docstring explaining itself.
    assert ast.get_docstring(tree), f"{path.name} lacks a docstring"


@pytest.mark.parametrize("path", BENCHES, ids=lambda p: p.name)
def test_bench_parses_and_uses_benchmark_fixture(path):
    source = path.read_text()
    tree = ast.parse(source)
    assert ast.get_docstring(tree), f"{path.name} lacks a docstring"
    assert "benchmark" in source, f"{path.name} never uses the benchmark fixture"


def test_readme_references_real_examples():
    readme = (REPO / "README.md").read_text()
    for mentioned in re.findall(r"examples/(\w+\.py)", readme):
        assert (REPO / "examples" / mentioned).exists(), mentioned


def test_design_bench_index_points_at_real_files():
    design = (REPO / "DESIGN.md").read_text()
    for mentioned in re.findall(r"benchmarks/(bench_\w+\.py)", design):
        assert (REPO / "benchmarks" / mentioned).exists(), mentioned


def test_design_module_inventory_resolves():
    design = (REPO / "DESIGN.md").read_text()
    for module in set(re.findall(r"`(repro(?:\.\w+)+)`", design)):
        # Strip a trailing attribute if it's a function reference.
        parts = module.split(".")
        for depth in (len(parts), len(parts) - 1):
            try:
                importlib.import_module(".".join(parts[:depth]))
                break
            except ModuleNotFoundError:
                continue
        else:
            pytest.fail(f"DESIGN.md references unknown module {module}")


def test_experiments_covers_every_figure_and_table():
    experiments = (REPO / "EXPERIMENTS.md").read_text()
    for artefact in ("Figure 2", "Figure 3", "Figure 4", "Figure 5",
                     "Figure 6", "Table 1", "milestones", "gatekeeper"):
        assert artefact.lower() in experiments.lower(), artefact


def test_public_api_exports_resolve():
    import repro
    for name in repro.__all__:
        assert hasattr(repro, name), name
    for subpackage in ("sim", "fabric", "middleware", "scheduling",
                       "workflow", "monitoring", "apps", "failures",
                       "ops", "analysis", "lab", "service"):
        module = importlib.import_module(f"repro.{subpackage}")
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"repro.{subpackage}.{name}"


def _deep_repro_imports(tree: ast.AST):
    """Yield dotted ``repro.*`` module paths imported at depth >= 3.

    The public surface is the ``repro`` facade plus one subpackage level
    (``repro.sim``, ``repro.scheduling``, ...); anything deeper is an
    internal module whose location is not API.
    """
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.startswith("repro.") and alias.name.count(".") >= 2:
                    yield alias.name
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if node.level == 0 and module.startswith("repro.") and module.count(".") >= 2:
                yield module


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_uses_public_api_only(path):
    """Examples demonstrate the facade, not internal module layout."""
    deep = sorted(set(_deep_repro_imports(ast.parse(path.read_text()))))
    assert deep == [], (
        f"{path.name} imports internal modules {deep}; import from the "
        "repro facade or a top-level subpackage instead"
    )


DOC_SNIPPET_SOURCES = ["README.md", "docs/API.md", "docs/ARCHITECTURE.md"]


@pytest.mark.parametrize("doc", DOC_SNIPPET_SOURCES)
def test_doc_snippets_use_public_api_only(doc):
    """Fenced code snippets in the docs stick to the public facade."""
    text = (REPO / doc).read_text()
    deep = []
    for block in re.findall(r"```(?:python|py)?\n(.*?)```", text, re.DOTALL):
        deep += re.findall(
            r"(?:^|\n)\s*(?:from|import)\s+(repro(?:\.\w+){2,})", block
        )
    assert sorted(set(deep)) == [], (
        f"{doc} code snippets import internal modules {sorted(set(deep))}; "
        "use the repro facade or a top-level subpackage"
    )


def test_no_direct_available_writes_outside_services():
    """Every availability flip must route through the GridService
    lifecycle (fail/restore), so no outage can bypass the downtime
    ledger.  Direct ``.available = x`` writes are only legal inside the
    services package itself (the property setter)."""
    src = REPO / "src" / "repro"
    services_dir = src / "services"
    pattern = re.compile(r"\.available\s*=[^=]")
    offenders = []
    for path in sorted(src.rglob("*.py")):
        if services_dir in path.parents:
            continue
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            stripped = line.split("#", 1)[0]
            if pattern.search(stripped):
                offenders.append(f"{path.relative_to(REPO)}:{lineno}")
    assert offenders == [], (
        f"direct .available writes bypass the downtime ledger: {offenders}"
    )


def test_every_public_module_has_docstring():
    src = REPO / "src" / "repro"
    missing = []
    for path in src.rglob("*.py"):
        if path.name == "__main__.py":
            continue
        tree = ast.parse(path.read_text())
        if not ast.get_docstring(tree):
            missing.append(str(path.relative_to(REPO)))
    assert missing == [], f"modules without docstrings: {missing}"
