"""Tests for the CMS MOP/MCRunJob toolchain and DIAL analysis."""

import pytest

from repro.sim import GB, HOUR, RngRegistry
from repro.workflow.dial import Dataset, DatasetCatalog, analysis_dag
from repro.workflow.mop import (
    MOP,
    OSCAR_SEC_PER_EVENT,
    ControlDatabase,
    MCRequest,
)


def test_mcrequest_validation():
    with pytest.raises(ValueError):
        MCRequest("r", n_events=0)
    with pytest.raises(ValueError):
        MCRequest("r", n_events=10, simulator="geant5")


def test_control_database_lifecycle():
    db = ControlDatabase()
    r1 = db.add_request(250)
    r2 = db.add_request(500, simulator="cmsim")
    assert len(db) == 2
    assert db.pending_count() == 2
    claimed = db.next_pending()
    assert claimed is r1 and r1.assigned
    assert db.pending_count() == 1
    db.mark_completed(r1.request_id)
    assert db.completed_events() == 250
    db.next_pending()
    assert db.next_pending() is None


def test_mop_builds_three_step_chain():
    mop = MOP(RngRegistry(1))
    req = MCRequest("req-00001", n_events=250)
    dag = mop.dag_for(req)
    assert len(dag) == 3
    order = [n.node_id for n in dag.topological_order()]
    assert order == ["gen", "sim", "digi"]
    # Data flows: sim consumes gen's output; digi consumes sim's.
    assert dag.node("sim").spec.inputs[0][0] == "/cms/req-00001/gen.ntpl"
    assert dag.node("digi").spec.inputs[0][0] == "/cms/req-00001/sim.fz"
    assert mop.dags_written == 1


def test_oscar_jobs_are_long(eng):
    """§6.2: official OSCAR production jobs are long, some >30 h."""
    mop = MOP(RngRegistry(2))
    runtimes = []
    for i in range(50):
        req = MCRequest(f"r{i}", n_events=250, simulator="oscar")
        runtimes.append(mop.dag_for(req).node("sim").spec.runtime)
    mean = sum(runtimes) / len(runtimes)
    assert mean > 30 * HOUR  # 250 events * 450 s/evt = 31.25 h
    assert any(r > 30 * HOUR for r in runtimes)


def test_cmsim_shorter_than_oscar():
    mop = MOP(RngRegistry(3))
    oscar = mop.dag_for(MCRequest("a", 250, "oscar")).node("sim").spec
    cmsim = mop.dag_for(MCRequest("b", 250, "cmsim")).node("sim").spec
    assert cmsim.runtime < oscar.runtime


def test_mop_archives_at_fnal():
    mop = MOP(RngRegistry(4))
    dag = mop.dag_for(MCRequest("r", 100))
    assert all(n.spec.archive_site == "FNAL_CMS" for n in dag.nodes())
    assert all(n.spec.vo == "uscms" for n in dag.nodes())


# --- DIAL ---------------------------------------------------------------------

def make_catalog(n=3):
    catalog = DatasetCatalog()
    for i in range(n):
        catalog.register(
            Dataset(
                name=f"susy-{i:03d}",
                lfn=f"/atlas/dst/susy-{i:03d}",
                size=2 * GB,
                site="BNL_ATLAS",
                events=10_000,
            )
        )
    return catalog


def test_dataset_catalog_register_and_select():
    catalog = make_catalog(3)
    catalog.register(Dataset("higgs-000", "/atlas/dst/higgs", 1 * GB, "BNL_ATLAS", 500))
    assert len(catalog) == 4
    assert "susy-001" in catalog
    assert [d.name for d in catalog.select("susy-")] == ["susy-000", "susy-001", "susy-002"]
    assert catalog.lookup("higgs-000").events == 500


def test_analysis_dag_fan_out_fan_in():
    catalog = make_catalog(4)
    dag = analysis_dag(catalog, RngRegistry(5), user="susy-wg", prefix="susy-")
    assert len(dag) == 5  # 4 analysis + merge
    merge = dag.node("merge")
    assert len(dag.parents("merge")) == 4
    # The merge consumes every histogram.
    assert len(merge.spec.inputs) == 4
    # Analysis jobs read the datasets where they live.
    ana = dag.node("ana-susy-000")
    assert ana.spec.inputs[0][0] == "/atlas/dst/susy-000"
    assert ana.spec.archive_site == "BNL_ATLAS"


def test_analysis_dag_max_datasets():
    catalog = make_catalog(10)
    dag = analysis_dag(catalog, RngRegistry(5), user="u", max_datasets=3)
    assert len(dag) == 4


def test_analysis_dag_empty_selection_raises():
    with pytest.raises(ValueError):
        analysis_dag(make_catalog(2), RngRegistry(5), user="u", prefix="nope-")
