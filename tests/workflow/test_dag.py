"""Tests for the workflow DAG structure."""

import pytest

from repro.core.job import JobSpec
from repro.sim import HOUR
from repro.workflow.dag import DAG, DagNode, NodeState


def spec(name="n"):
    return JobSpec(name=name, vo="sdss", user="astro", runtime=HOUR)


def chain(n=3):
    dag = DAG("chain")
    for i in range(n):
        dag.add_job(f"n{i}", spec(f"n{i}"))
        if i:
            dag.add_edge(f"n{i-1}", f"n{i}")
    return dag


def test_add_and_lookup():
    dag = chain(3)
    assert len(dag) == 3
    assert "n0" in dag and "nope" not in dag
    assert dag.node("n1").node_id == "n1"
    assert [p.node_id for p in dag.parents("n1")] == ["n0"]
    assert [c.node_id for c in dag.children("n1")] == ["n2"]


def test_duplicate_node_rejected():
    dag = chain(1)
    with pytest.raises(ValueError):
        dag.add_job("n0", spec())


def test_edge_endpoints_must_exist():
    dag = chain(2)
    with pytest.raises(KeyError):
        dag.add_edge("n0", "ghost")


def test_cycle_rejected():
    dag = chain(3)
    with pytest.raises(ValueError):
        dag.add_edge("n2", "n0")
    # The offending edge was rolled back.
    assert [n.node_id for n in dag.topological_order()] == ["n0", "n1", "n2"]


def test_refresh_ready_promotes_roots_only():
    dag = chain(3)
    ready = dag.refresh_ready()
    assert [n.node_id for n in ready] == ["n0"]
    assert dag.node("n1").state is NodeState.WAITING


def test_refresh_ready_cascades_on_completion():
    dag = chain(3)
    dag.refresh_ready()
    dag.node("n0").state = NodeState.DONE
    ready = dag.refresh_ready()
    assert [n.node_id for n in ready] == ["n1"]


def test_unreachable_descendants():
    dag = DAG("tree")
    for nid in "abcd":
        dag.add_job(nid, spec(nid))
    dag.add_edge("a", "b")
    dag.add_edge("b", "c")
    dag.add_edge("a", "d")
    dag.node("b").state = NodeState.FAILED
    affected = dag.mark_unreachable_descendants("b")
    assert [n.node_id for n in affected] == ["c"]
    assert dag.node("d").state is NodeState.WAITING  # other branch untouched


def test_finished_and_succeeded():
    dag = chain(2)
    assert not dag.finished
    dag.node("n0").state = NodeState.DONE
    dag.node("n1").state = NodeState.DONE
    assert dag.finished and dag.succeeded
    dag.node("n1").state = NodeState.FAILED
    assert dag.finished and not dag.succeeded


def test_rescue_dag_keeps_undone_work():
    dag = chain(4)
    dag.node("n0").state = NodeState.DONE
    dag.node("n1").state = NodeState.DONE
    dag.node("n2").state = NodeState.FAILED
    dag.node("n3").state = NodeState.UNREACHABLE
    rescue = dag.rescue_dag()
    assert sorted(n.node_id for n in rescue.nodes()) == ["n2", "n3"]
    # The internal edge survives; edges to done nodes are dropped.
    assert [p.node_id for p in rescue.parents("n3")] == ["n2"]
    # Rescue nodes start fresh.
    assert all(n.state is NodeState.WAITING for n in rescue.nodes())


def test_counts():
    dag = chain(2)
    dag.node("n0").state = NodeState.DONE
    assert dag.counts() == {"done": 1, "waiting": 1}
