"""Tests for the Chimera virtual data catalog and Pegasus planning."""

import pytest

from repro.middleware.rls import LocalReplicaCatalog, ReplicaLocationIndex
from repro.sim import Engine, GB, HOUR, RngRegistry
from repro.workflow.chimera import (
    Derivation,
    Transformation,
    VirtualDataCatalog,
    VirtualDataError,
)
from repro.workflow.pegasus import PegasusPlanner


@pytest.fixture
def vdc():
    """An ATLAS-like two-stage catalog: pythia -> simulation."""
    catalog = VirtualDataCatalog()
    catalog.add_transformation(Transformation("pythia", runtime=10 * 60))
    catalog.add_transformation(
        Transformation("atlsim", runtime=8 * HOUR, staging="heavy")
    )
    catalog.add_derivation(
        Derivation("gen-001", "pythia", outputs=(("/atlas/gen001", 0.2 * GB),))
    )
    catalog.add_derivation(
        Derivation(
            "sim-001", "atlsim",
            inputs=("/atlas/gen001",),
            outputs=(("/atlas/sim001", 2 * GB),),
        )
    )
    return catalog


def test_transformation_validation():
    with pytest.raises(ValueError):
        Transformation("bad", runtime=-1)


def test_derivation_requires_known_transformation(vdc):
    with pytest.raises(VirtualDataError):
        vdc.add_derivation(Derivation("x", "unknown-tr"))


def test_conflicting_producers_rejected(vdc):
    with pytest.raises(VirtualDataError):
        vdc.add_derivation(
            Derivation("gen-dup", "pythia", outputs=(("/atlas/gen001", 1.0),))
        )


def test_producer_lookup(vdc):
    assert vdc.producer_of("/atlas/sim001").derivation_id == "sim-001"
    assert vdc.producer_of("/raw/unknown") is None
    assert vdc.transformation("pythia").runtime == 600
    with pytest.raises(VirtualDataError):
        vdc.transformation("nope")
    with pytest.raises(VirtualDataError):
        vdc.derivation("nope")


def test_derive_full_chain(vdc):
    dax = vdc.derive(["/atlas/sim001"])
    assert len(dax) == 2
    assert dax.edges() == [("gen-001", "sim-001")]
    assert dax.output_sizes()["/atlas/sim001"] == 2 * GB


def test_derive_prunes_materialized(vdc):
    dax = vdc.derive(["/atlas/sim001"], materialized={"/atlas/gen001"})
    assert set(dax.derivations) == {"sim-001"}
    assert dax.edges() == []


def test_derive_target_already_materialized(vdc):
    dax = vdc.derive(["/atlas/sim001"], materialized={"/atlas/sim001"})
    assert len(dax) == 0


def test_derive_missing_raw_input_raises(vdc):
    vdc.add_derivation(
        Derivation(
            "reco-001", "atlsim",
            inputs=("/atlas/sim001", "/calib/yearly-constants"),
            outputs=(("/atlas/reco001", 1 * GB),),
        )
    )
    with pytest.raises(VirtualDataError):
        vdc.derive(["/atlas/reco001"])
    # With the calibration file materialized, planning succeeds.
    dax = vdc.derive(["/atlas/reco001"], materialized={"/calib/yearly-constants"})
    assert len(dax) == 3


def test_pegasus_plans_concrete_dag(vdc, eng):
    rls = ReplicaLocationIndex(eng)
    planner = PegasusPlanner(rls, RngRegistry(7))
    dax = vdc.derive(["/atlas/sim001"])
    dag = planner.plan(dax, vo="usatlas", user="prod", archive_site="BNL_ATLAS",
                       name="atlas-wf")
    assert len(dag) == 2
    sim_spec = dag.node("sim-001").spec
    assert sim_spec.vo == "usatlas"
    assert sim_spec.archive_site == "BNL_ATLAS"
    assert sim_spec.staging == "heavy"
    # The sim's input size was resolved from the upstream output.
    assert sim_spec.inputs == (("/atlas/gen001", 0.2 * GB),)
    assert sim_spec.runtime > 0
    assert sim_spec.walltime_request >= sim_spec.runtime
    assert planner.planned_workflows == 1


def test_pegasus_resolves_input_sizes_from_rls(vdc, eng):
    rls = ReplicaLocationIndex(eng)
    rls.attach_lrc(LocalReplicaCatalog("BNL_ATLAS"))
    rls.register("BNL_ATLAS", "/atlas/gen001", 0.2 * GB)
    planner = PegasusPlanner(rls, RngRegistry(7))
    dax = vdc.derive(["/atlas/sim001"], materialized={"/atlas/gen001"})
    dag = planner.plan(dax, vo="usatlas", user="prod")
    assert dag.node("sim-001").spec.inputs == (("/atlas/gen001", 0.2 * GB),)


def test_pegasus_unresolvable_input_raises(vdc, eng):
    rls = ReplicaLocationIndex(eng)
    planner = PegasusPlanner(rls, RngRegistry(7))
    dax = vdc.derive(["/atlas/sim001"], materialized={"/atlas/gen001"})
    with pytest.raises(VirtualDataError):
        planner.plan(dax, vo="usatlas", user="prod")


def test_pegasus_runtimes_vary_but_center_on_mean(vdc, eng):
    rls = ReplicaLocationIndex(eng)
    planner = PegasusPlanner(rls, RngRegistry(7))
    runtimes = []
    for i in range(200):
        dax = vdc.derive(["/atlas/gen001"])
        dag = planner.plan(dax, vo="usatlas", user="prod", name=f"wf{i}")
        runtimes.append(dag.node("gen-001").spec.runtime)
    mean = sum(runtimes) / len(runtimes)
    assert 0.85 * 600 <= mean <= 1.15 * 600
    assert len(set(runtimes)) > 100  # genuinely stochastic
