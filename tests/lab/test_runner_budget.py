"""Worker budgeting, fallback diagnostics, and deterministic progress.

Covers the runner's decision layer without spawning real worker
processes: core detection via the affinity mask, clamping of
oversubscribed ``workers`` requests, the :class:`UnpicklableSpecWarning`
diagnostic naming the offending spec attribute, the cold-pool cost
model, the broken-pool sequential fallback, and order-independent
progress reporting from ``_cells_parallel``.
"""

import os
import threading
import time
from concurrent.futures import Future

import pytest

from repro.failures import FailureProfile
from repro.lab import experiment
from repro.lab.experiment import (
    ExperimentSpec,
    UnpicklableSpecWarning,
    run_experiment,
)


def metric_success(grid):
    return grid.acdc_db.success_rate()


def _spec(**overrides):
    fields = dict(
        name="budget",
        base=dict(scale=900, duration_days=1),
        variants={
            "calm": dict(failures=FailureProfile.calm()),
            "noisy": dict(failures=FailureProfile.early()),
        },
        metrics={"success": metric_success},
        repeats=1,
    )
    fields.update(overrides)
    return ExperimentSpec(**fields)


# -- core detection -----------------------------------------------------------

def test_available_cores_prefers_affinity_mask(monkeypatch):
    """sched_getaffinity (cpuset-aware) must win over cpu_count."""
    monkeypatch.setattr(os, "sched_getaffinity", lambda pid: {0, 3}, raising=False)
    monkeypatch.setattr(os, "cpu_count", lambda: 64)
    assert experiment._available_cores() == 2


def test_available_cores_falls_back_to_cpu_count(monkeypatch):
    monkeypatch.delattr(os, "sched_getaffinity", raising=False)
    monkeypatch.setattr(os, "cpu_count", lambda: 6)
    assert experiment._available_cores() == 6


def test_workers_none_resolves_to_core_budget(monkeypatch):
    monkeypatch.setattr(experiment, "_available_cores", lambda: 3)
    assert experiment._effective_workers(None, 100, None) == 3


def test_workers_clamped_to_core_budget_with_note(monkeypatch):
    monkeypatch.setattr(experiment, "_available_cores", lambda: 2)
    notes = []
    assert experiment._effective_workers(8, 100, notes.append) == 2
    assert len(notes) == 1
    assert "workers=8 exceeds 2 available core(s)" in notes[0]


def test_workers_never_exceed_cell_count(monkeypatch):
    monkeypatch.setattr(experiment, "_available_cores", lambda: 16)
    assert experiment._effective_workers(8, 3, None) == 3
    assert experiment._effective_workers(None, 1, None) == 1


# -- unpicklable diagnostics --------------------------------------------------

def test_unpicklable_spec_warns_with_culprit_name(monkeypatch):
    """The fallback must *name* the attribute that killed pickling."""
    monkeypatch.setattr(experiment, "_available_cores", lambda: 4)
    spec = _spec(metrics={"bad": lambda grid: 0.0})
    notes = []
    with pytest.warns(UnpicklableSpecWarning, match=r"metrics\['bad'\]"):
        results = run_experiment(spec, progress=notes.append, workers=4)
    assert [r.variant for r in results] == ["calm", "noisy"]
    # The same diagnostic also flows through the progress channel.
    assert any("metrics['bad']" in n and "running sequentially" in n
               for n in notes)


def test_find_unpicklable_points_at_variant_override():
    spec = _spec()
    spec.variants = {"calm": {"failures": lambda: None}}
    culprit = experiment._find_unpicklable(spec)
    assert culprit.startswith("variants['calm']['failures']")


def test_picklable_spec_emits_no_warning(recwarn):
    spec = _spec()
    experiment._spec_is_picklable(spec, None)
    assert not [w for w in recwarn if w.category is UnpicklableSpecWarning]


# -- cost model and degradation paths -----------------------------------------

def test_cold_pool_small_sweep_stays_sequential(monkeypatch):
    """A cold pool plus cheap cells must not fan out (the 0.79x fix)."""
    monkeypatch.setattr(experiment, "_available_cores", lambda: 4)
    monkeypatch.setattr(experiment, "_get_pool", lambda workers: (object(), False))
    monkeypatch.setattr(
        experiment, "_run_cell_metrics",
        lambda spec, variant, repeat: {"success": float(repeat)},
    )
    notes = []
    results = run_experiment(_spec(repeats=2), progress=notes.append, workers=4)
    # The fake pool has no .submit — reaching the fan-out would crash,
    # so completing proves the cost model kept the sweep sequential.
    assert [r.samples["success"] for r in results] == [(0.0, 1.0)] * 2
    assert any("too small to amortize worker spawn" in n for n in notes)
    assert notes[-1] == "budget: 4/4 cells done"


def test_broken_pool_degrades_to_sequential(monkeypatch):
    from concurrent.futures.process import BrokenProcessPool

    monkeypatch.setattr(experiment, "_available_cores", lambda: 4)
    monkeypatch.setattr(experiment, "_get_pool", lambda workers: (object(), True))
    monkeypatch.setattr(
        experiment, "_run_cell_metrics",
        lambda spec, variant, repeat: {"success": float(repeat) + 0.25},
    )

    def _boom(*args, **kwargs):
        raise BrokenProcessPool("worker died")

    monkeypatch.setattr(experiment, "_cells_parallel", _boom)
    notes = []
    results = run_experiment(_spec(repeats=2), progress=notes.append, workers=4)
    assert [r.samples["success"] for r in results] == [(0.25, 1.25)] * 2
    assert any("worker pool died; finishing sequentially" in n for n in notes)


# -- deterministic progress under out-of-order completion ---------------------

class _ReverseExecutor:
    """Test double: resolves submitted futures in *reverse* submission
    order (worst-case completion order) with synthetic results, without
    spawning any process."""

    def __init__(self, n_expected):
        self.n_expected = n_expected
        self.submitted = []
        self._thread = threading.Thread(target=self._resolve, daemon=True)
        self._thread.start()

    def submit(self, fn, spec, chunk):
        future = Future()
        self.submitted.append((future, chunk))
        return future

    def _resolve(self):
        deadline = time.monotonic() + 10.0
        while len(self.submitted) < self.n_expected:
            if time.monotonic() > deadline:  # pragma: no cover - hang guard
                for future, _chunk in self.submitted:
                    future.set_exception(TimeoutError("stub never filled"))
                return
            time.sleep(0.001)
        for future, chunk in reversed(self.submitted):
            future.set_result(
                [(v, r, {"success": 100.0 * r + len(v)}) for v, r in chunk]
            )
            time.sleep(0.002)


def test_progress_counts_deterministic_under_reverse_completion():
    """Progress lines carry counts only, and collected values land on
    the right cells, even when chunks complete in reverse order."""
    spec = _spec(
        variants={"a": {}, "b": {}, "c": {}},
        repeats=2,
        name="revorder",
    )
    cells = [(v, r) for v in spec.variants for r in range(spec.repeats)]
    n_chunks = len(experiment._chunk_cells(cells, workers=2))
    stub = _ReverseExecutor(n_expected=n_chunks)
    notes = []
    values = experiment._cells_parallel(
        spec, cells, workers=2, progress=notes.append, executor=stub,
    )
    assert notes == [f"revorder: {i}/6 cells done" for i in range(1, 7)]
    assert values == {
        (v, r): {"success": 100.0 * r + len(v)} for v, r in cells
    }


def test_run_experiment_assembles_declaration_order(monkeypatch):
    """Even when the parallel collector returns cells scrambled, the
    final results follow variant declaration order."""
    monkeypatch.setattr(experiment, "_available_cores", lambda: 4)
    monkeypatch.setattr(experiment, "_get_pool", lambda workers: (object(), True))

    def _scrambled(spec, cells, workers, progress, done_offset=0,
                   total=None, executor=None):
        return {
            (v, r): {"success": float(r)}
            for v, r in reversed(cells)
        }

    monkeypatch.setattr(experiment, "_cells_parallel", _scrambled)
    spec = _spec(variants={"z": {}, "m": {}, "a": {}}, repeats=2)
    results = run_experiment(spec, workers=4)
    assert [r.variant for r in results] == ["z", "m", "a"]
    assert all(r.samples["success"] == (0.0, 1.0) for r in results)
