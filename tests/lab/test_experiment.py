"""Tests for the experiment harness (the §1 'CS laboratory' role)."""

import pytest

from repro.failures import FailureProfile
from repro.lab import (
    ExperimentResult,
    ExperimentSpec,
    render_results,
    run_experiment,
    sweep,
)

BASE = dict(
    scale=800, duration_days=3, apps=["exerciser"],
    misconfig_probability=0.0, ops_team=False, local_load=False,
)
METRICS = {
    "success": lambda grid: grid.acdc_db.success_rate(),
    "records": lambda grid: float(len(grid.acdc_db)),
}


def test_spec_validation():
    with pytest.raises(ValueError):
        ExperimentSpec("x", BASE, {}, METRICS)
    with pytest.raises(ValueError):
        ExperimentSpec("x", BASE, {"a": {}}, {})
    with pytest.raises(ValueError):
        ExperimentSpec("x", BASE, {"a": {}}, METRICS, repeats=0)


def test_run_experiment_two_variants():
    spec = ExperimentSpec(
        name="failure-sensitivity",
        base=BASE,
        variants={
            "clean": dict(failures=FailureProfile.disabled()),
            "noisy": dict(failures=FailureProfile.early()),
        },
        metrics=METRICS,
        repeats=2,
    )
    progress = []
    results = run_experiment(spec, progress=progress.append)
    assert len(results) == 2
    assert len(progress) == 4   # 2 variants x 2 repeats
    by_name = {r.variant: r for r in results}
    clean, noisy = by_name["clean"], by_name["noisy"]
    assert clean.repeats == 2
    assert len(clean.samples["success"]) == 2
    # The clean variant can't do worse than the noisy one.
    assert clean.mean("success") >= noisy.mean("success")
    assert clean.std("success") >= 0.0
    lo, hi = clean.minmax("records")
    assert lo <= hi


def test_repeats_use_distinct_seeds():
    spec = ExperimentSpec(
        name="seeds", base=BASE,
        variants={"only": dict()},
        metrics={"records": lambda g: float(len(g.acdc_db))},
        repeats=3, seed0=7,
    )
    result = run_experiment(spec)[0]
    # Different seeds -> not all repeats identical (probe runtimes vary).
    assert len(result.samples["records"]) == 3


def test_sweep_builds_variant_per_value():
    results = sweep(
        "misconfig-sweep", BASE, "misconfig_probability", [0.0, 0.9],
        metrics={"success": lambda g: g.acdc_db.success_rate()},
    )
    assert len(results) == 2
    clean = next(r for r in results if "0.0" in r.variant)
    broken = next(r for r in results if "0.9" in r.variant)
    assert clean.mean("success") > broken.mean("success")


def test_render_results_table():
    results = [
        ExperimentResult("a", 2, {"m": (1.0, 3.0)}),
        ExperimentResult("b", 1, {"m": (5.0,)}),
    ]
    text = render_results(results)
    assert "variant" in text and "m" in text
    assert "2±1" in text    # mean 2, std 1
    assert "5" in text
    assert render_results([]) == "(no results)"
