"""run_experiment(workers=N) must match the sequential runner exactly."""

import os
import time

import pytest

from repro.failures import FailureProfile
from repro.lab.experiment import ExperimentSpec, run_experiment, sweep


# Module-level so the spec pickles into worker processes.
def metric_success(grid):
    return grid.acdc_db.success_rate()


def metric_cpu_days(grid):
    return grid.acdc_db.total_cpu_days()


def _small_spec():
    return ExperimentSpec(
        name="parity",
        base=dict(scale=900, duration_days=1),
        variants={
            "calm": dict(failures=FailureProfile.calm()),
            "noisy": dict(failures=FailureProfile.early()),
            "wide": dict(scale=700),
        },
        metrics={"success": metric_success, "cpu_days": metric_cpu_days},
        repeats=2,
    )


def test_workers2_identical_to_sequential():
    spec = _small_spec()
    seq = run_experiment(spec, workers=1)
    par = run_experiment(spec, workers=2)
    assert seq == par
    # Ordering is declaration order, not completion order.
    assert [r.variant for r in par] == ["calm", "noisy", "wide"]
    assert all(r.repeats == 2 for r in par)


def test_unpicklable_metrics_fall_back_to_sequential():
    spec = _small_spec()
    spec.metrics = {"success": lambda grid: grid.acdc_db.success_rate()}
    ref = run_experiment(spec, workers=1)
    got = run_experiment(spec, workers=4)  # silently sequential
    assert got == ref


def test_workers_none_uses_cpu_count():
    spec = _small_spec()
    spec.variants = {"calm": {}}
    spec.repeats = 2
    assert run_experiment(spec, workers=None) == run_experiment(spec, workers=1)


def test_sweep_workers_passthrough():
    results = sweep(
        "scale-sweep",
        base=dict(duration_days=1),
        parameter="scale",
        values=[900, 800],
        metrics={"success": metric_success},
        workers=2,
    )
    assert [r.variant for r in results] == ["scale=900", "scale=800"]


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="speedup is only observable with >=4 cores",
)
def test_parallel_speedup_on_multicore():
    """On real multi-core hardware a 3-variant x 3-repeat spec must beat
    sequential by >1.5x."""
    spec = _small_spec()
    spec.base = dict(scale=300, duration_days=2)
    spec.repeats = 3
    t0 = time.perf_counter()
    seq = run_experiment(spec, workers=1)
    t_seq = time.perf_counter() - t0
    t0 = time.perf_counter()
    par = run_experiment(spec, workers=4)
    t_par = time.perf_counter() - t0
    assert seq == par
    assert t_seq / t_par > 1.5, f"speedup {t_seq / t_par:.2f}"
