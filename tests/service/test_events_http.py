"""Live progress over real HTTP: SSE stream, delta poll, disconnects.

The observability acceptance suite: an in-flight run streams >=3
progress events over SSE, the ``?since=`` delta poll returns the
*identical* sequence (both read the same server-side ProgressLog), a
``Last-Event-ID`` reconnect resumes mid-sequence, and a client that
drops its stream mid-run leaves the run (and other consumers) intact.
"""

import json
import time
import urllib.error
import urllib.request

import pytest

from repro import ReproService
from repro.service.progress import iter_sse_events

#: Long enough (~1-2s wall) that an SSE client provably overlaps the
#: in-flight run; small enough to keep the suite quick.
SLOW = {"scale": 3000, "duration_days": 0.5, "apps": ["exerciser"],
        "seed": 11}


def http(method, url, payload=None):
    data = json.dumps(payload).encode() if payload is not None else None
    request = urllib.request.Request(url, data=data, method=method)
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as error:
        return error.code, error.read()


def submit(base, config):
    status, body = http("POST", f"{base}/runs", {"config": config})
    assert status in (200, 202), body  # 200 = dedup'd to a finished run
    return json.loads(body)


def poll_events(base, run_id, since=-1):
    status, body = http("GET", f"{base}/runs/{run_id}/events?since={since}")
    assert status == 200, body
    return json.loads(body)


@pytest.fixture(scope="module")
def service():
    instance = ReproService(port=0, workers=1, queue_depth=8).start()
    yield instance
    instance.close(drain=True, timeout=120.0)


def test_sse_stream_and_delta_poll_agree(service):
    base = service.url
    run_id = submit(base, SLOW)["run_id"]

    streamed = []
    third_event_wall = None
    with urllib.request.urlopen(f"{base}/runs/{run_id}/events",
                                timeout=60) as response:
        assert response.status == 200
        assert response.headers["Content-Type"] == "text/event-stream"
        for event in iter_sse_events(response):
            streamed.append(event)
            if len(streamed) == 3:
                third_event_wall = time.time()

    # The acceptance bar: at least 3 events streamed, and the 3rd
    # arrived before the run finished (so the stream overlapped the
    # in-flight run rather than replaying a closed log).
    assert len(streamed) >= 3
    status, body = http("GET", f"{base}/runs/{run_id}")
    view = json.loads(body)
    assert view["state"] == "done", view
    assert third_event_wall is not None
    assert third_event_wall < view["finished_at"]

    # Deterministic, gap-free sequence; lifecycle frames present.
    seqs = [event["seq"] for event in streamed]
    assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
    kinds = [event["kind"] for event in streamed]
    assert kinds[-1] == "end" and "tick" in kinds

    # The ?since= poll returns the *identical* sequence: both views
    # read the same server-side log.
    payload = poll_events(base, run_id)
    assert payload["closed"] is True
    assert payload["events"] == streamed
    assert payload["next_since"] == streamed[-1]["seq"]

    # Delta semantics: polling from the middle returns only the tail.
    middle = seqs[len(seqs) // 2]
    tail = poll_events(base, run_id, since=middle)
    assert tail["events"] == [e for e in streamed if e["seq"] > middle]
    assert tail["since"] == middle


def test_last_event_id_resumes_mid_sequence(service):
    base = service.url
    run_id = submit(base, SLOW)["run_id"]  # joins/caches if already run
    # Wait for the run to finish so the log is complete and stable.
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        if json.loads(http("GET", f"{base}/runs/{run_id}")[1])["state"] in (
                "done", "failed"):
            break
        time.sleep(0.05)
    everything = poll_events(base, run_id)["events"]
    assert everything, "run produced no events"
    resume_from = everything[1]["seq"]
    request = urllib.request.Request(
        f"{base}/runs/{run_id}/events",
        headers={"Last-Event-ID": str(resume_from)},
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        resumed = list(iter_sse_events(response))
    assert resumed == [e for e in everything if e["seq"] > resume_from]


def test_mid_run_disconnect_leaves_run_unaffected(service):
    base = service.url
    run_id = submit(base, dict(SLOW, seed=12))["run_id"]
    # Open a stream, read a few bytes, then drop the connection
    # mid-run: only the handler thread dies.
    response = urllib.request.urlopen(f"{base}/runs/{run_id}/events",
                                      timeout=30)
    response.read1(512)
    response.close()
    deadline = time.monotonic() + 60
    view = None
    while time.monotonic() < deadline:
        view = json.loads(http("GET", f"{base}/runs/{run_id}")[1])
        if view["state"] in ("done", "failed"):
            break
        time.sleep(0.05)
    assert view is not None and view["state"] == "done", view
    # The log still carries the complete sequence for later consumers.
    payload = poll_events(base, run_id)
    assert payload["closed"] is True
    assert payload["events"][-1]["kind"] == "end"
    seqs = [event["seq"] for event in payload["events"]]
    assert seqs == list(range(seqs[0], seqs[0] + len(seqs)))


def test_events_404_and_run_metrics_endpoint(service):
    base = service.url
    assert http("GET", f"{base}/runs/424242/events")[0] == 404
    run_id = submit(base, SLOW)["run_id"]
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        if json.loads(http("GET", f"{base}/runs/{run_id}")[1])["state"] in (
                "done", "failed"):
            break
        time.sleep(0.05)
    status, body = http("GET", f"{base}/runs/{run_id}/metrics")
    assert status == 200
    text = body.decode("utf-8")
    assert "# TYPE repro_run_progress_frac gauge" in text
    assert "repro_engine_events_dispatched" in text
