"""End-to-end: a live server on an ephemeral port, real worker processes.

This is the acceptance suite for the grid-as-a-service front end:

* submit -> poll -> paginated report walk over real HTTP;
* duplicate submission of an identical (config, seed) never runs a
  second simulation (proven via the ``service.queue.executed`` counter);
* the report served over HTTP is byte-identical to what the ``repro``
  facade produces locally for the same config;
* malformed requests come back as 400s;
* graceful shutdown drains accepted work before the listener dies.
"""

import json
import time
import urllib.error
import urllib.request

import pytest

from repro import Grid3, Grid3Config, ReproService, collect_reports, paginate

#: Small enough to finish in ~0.2s, big enough to produce real reports.
TINY = {"scale": 3000, "duration_days": 0.05, "apps": ["exerciser"],
        "tracing": True, "seed": 7}


def http(method, url, payload=None):
    data = json.dumps(payload).encode() if payload is not None else None
    request = urllib.request.Request(url, data=data, method=method)
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as error:
        return error.code, error.read()


def poll_done(base, run_id, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, body = http("GET", f"{base}/runs/{run_id}")
        assert status == 200, body
        view = json.loads(body)
        if view["state"] in ("done", "failed"):
            return view
        time.sleep(0.05)
    pytest.fail(f"run {run_id} never finished")


@pytest.fixture(scope="module")
def service():
    instance = ReproService(port=0, workers=1, queue_depth=8).start()
    yield instance
    instance.close(drain=True, timeout=60.0)


def metrics(base):
    status, body = http("GET", f"{base}/metrics?format=json")
    assert status == 200
    return json.loads(body)


def test_full_grid_as_a_service_flow(service):
    base = service.url

    # Liveness first.
    status, body = http("GET", f"{base}/healthz")
    assert status == 200 and json.loads(body)["status"] == "ok"

    # Submit and poll to completion.
    status, body = http("POST", f"{base}/runs", {"config": TINY})
    assert status == 202, body
    submitted = json.loads(body)
    assert submitted["dedup"] == "new"
    run_id = submitted["run_id"]
    view = poll_done(base, run_id)
    assert view["state"] == "done", view
    assert view["summary"]["jobs"] > 0

    # The dedup acceptance criterion: an identical resubmission is
    # answered from cache and no second simulation ever runs.
    executed_before = metrics(base)["service.queue.executed"]
    status, body = http("POST", f"{base}/runs", {"config": dict(
        sorted(TINY.items(), reverse=True))})  # different key order, same run
    assert status == 200, body
    duplicate = json.loads(body)
    assert duplicate["dedup"] == "cached"
    assert duplicate["run_id"] == run_id
    after = metrics(base)
    assert after["service.queue.executed"] == executed_before == 1
    assert after["service.cache.hits"] >= 1

    # Paginated report walk: slices concatenate back to the full report.
    status, body = http("GET", f"{base}/runs/{run_id}/report/ops?limit=1000")
    assert status == 200
    full = json.loads(body)
    assert full["total"] == len(full["items"]) > 0
    walked, offset = [], 0
    while offset < full["total"]:
        status, body = http(
            "GET", f"{base}/runs/{run_id}/report/ops?offset={offset}&limit=2")
        assert status == 200
        page = json.loads(body)
        assert page["total"] == full["total"]
        assert page["slice"]["offset"] == offset
        walked += page["items"]
        offset += page["slice"]["returned"]
    assert walked == full["items"]

    # Byte-identity with the facade: the same config run locally through
    # the public API produces exactly the bytes the service returned.
    grid = Grid3(Grid3Config(**TINY))
    grid.run_full()
    local_rows = collect_reports(grid)["ops"]
    expected = paginate(local_rows, 0, 1000).to_json().encode("utf-8")
    status, body = http("GET", f"{base}/runs/{run_id}/report/ops?limit=1000")
    assert status == 200
    assert body == expected

    # Every report kind is servable.
    for kind in ("troubleshooting", "trace"):
        status, body = http("GET", f"{base}/runs/{run_id}/report/{kind}")
        assert status == 200, (kind, body)

    # Malformed requests: non-JSON, typo'd knob, bad pagination.
    status, body = http("POST", f"{base}/runs", {"config": {"scal": 2}})
    assert status == 400 and b"did you mean" in body
    request = urllib.request.Request(
        f"{base}/runs", data=b"{nope", method="POST")
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            status = response.status
    except urllib.error.HTTPError as error:
        status = error.code
    assert status == 400
    status, _ = http("GET", f"{base}/runs/{run_id}/report/ops?offset=-1")
    assert status == 400


def test_graceful_shutdown_drains_inflight_run():
    service = ReproService(port=0, workers=1, queue_depth=8).start()
    base = service.url
    config = dict(TINY, seed=1234)
    status, body = http("POST", f"{base}/runs", {"config": config})
    assert status == 202, body
    run_id = json.loads(body)["run_id"]
    # Close immediately: drain must let the accepted run finish.
    assert service.close(drain=True, timeout=60.0) is True
    record = service.app.store.get(run_id)
    assert record.state == "done"
    assert record.payload is not None
