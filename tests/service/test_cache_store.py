"""ResultCache LRU/byte-budget behaviour and RunStore's state machine."""

import pytest

from repro import Grid3Config
from repro.service import ResultCache
from repro.service.store import RunStore


class FakeClock:
    def __init__(self, t=1000.0):
        self.t = t

    def __call__(self):
        return self.t

    def tick(self, dt=1.0):
        self.t += dt


# -- ResultCache ---------------------------------------------------------------

def test_cache_hit_miss_counters():
    cache = ResultCache(max_bytes=100)
    assert cache.get("a") is None
    cache.put("a", 1, 10)
    assert cache.get("a") == 1
    assert cache.stats()["hits"] == 1
    assert cache.stats()["misses"] == 1


def test_cache_contains_does_not_count():
    cache = ResultCache(max_bytes=100)
    cache.put("a", 1, 10)
    assert "a" in cache and "b" not in cache
    stats = cache.stats()
    assert stats["hits"] == 0 and stats["misses"] == 0


def test_cache_evicts_lru_under_byte_budget():
    cache = ResultCache(max_bytes=30)
    cache.put("a", 1, 10)
    cache.put("b", 2, 10)
    cache.put("c", 3, 10)
    assert cache.stored_bytes == 30 and len(cache) == 3
    # Touch "a" so "b" is the least recently used.
    assert cache.get("a") == 1
    evicted = cache.put("d", 4, 10)
    assert evicted == [("b", 2)]
    assert "a" in cache and "c" in cache and "d" in cache
    assert cache.stats()["evictions"] == 1


def test_cache_keeps_oversize_newest_entry():
    cache = ResultCache(max_bytes=10)
    cache.put("small", 1, 5)
    evicted = cache.put("huge", 2, 50)
    assert ("small", 1) in evicted
    assert "huge" in cache  # never instantly forgotten
    assert cache.stored_bytes == 50


def test_cache_put_same_digest_replaces_bytes():
    cache = ResultCache(max_bytes=100)
    cache.put("a", 1, 10)
    cache.put("a", 1, 30)
    assert cache.stored_bytes == 30 and len(cache) == 1


def test_cache_remove_is_not_an_eviction():
    cache = ResultCache(max_bytes=100)
    cache.put("a", 1, 10)
    cache.remove("a")
    cache.remove("ghost")  # no-op
    assert len(cache) == 0 and cache.stored_bytes == 0
    assert cache.stats()["evictions"] == 0


def test_cache_rejects_nonpositive_budget():
    with pytest.raises(ValueError):
        ResultCache(max_bytes=0)


# -- RunStore ------------------------------------------------------------------

def test_store_lifecycle_and_views():
    clock = FakeClock()
    store = RunStore(clock=clock)
    record = store.create("d1", Grid3Config())
    assert record.run_id == 1 and record.state == "queued"
    assert store.lookup("d1") is record
    clock.tick()
    store.mark_running(record)
    clock.tick()
    store.mark_done(record, {"reports": {}, "summary": {"jobs": 3}}, 42)
    view = record.view(clock())
    assert view.state == "done"
    assert view.summary == {"jobs": 3}
    assert view.elapsed_s == pytest.approx(2.0)
    assert store.counts() == {
        "queued": 0, "running": 0, "done": 1, "failed": 0,
        "interrupted": 0, "total": 1,
    }


def test_store_mark_failed_records_error():
    store = RunStore(clock=FakeClock())
    record = store.create("d1", Grid3Config())
    store.mark_failed(record, "boom")
    assert record.state == "failed" and record.error == "boom"
    # The digest still resolves, so the app can see the failure.
    assert store.lookup("d1") is record


def test_store_drop_payload_unlinks_digest():
    store = RunStore(clock=FakeClock())
    record = store.create("d1", Grid3Config())
    store.mark_done(record, {"reports": {}, "summary": {}}, 42)
    store.drop_payload(record.run_id)
    assert record.payload is None and record.payload_bytes == 0
    assert store.lookup("d1") is None      # identical resubmits re-run
    assert store.get(record.run_id) is record  # metadata stays queryable
    store.drop_payload(999)  # unknown id is a no-op


def test_store_drop_payload_spares_newer_digest_owner():
    store = RunStore(clock=FakeClock())
    old = store.create("d1", Grid3Config())
    store.unlink("d1")
    new = store.create("d1", Grid3Config())
    store.drop_payload(old.run_id)
    # The index still points at the newer record.
    assert store.lookup("d1") is new


def test_store_runs_in_submission_order():
    store = RunStore(clock=FakeClock())
    ids = [store.create(f"d{i}", Grid3Config()).run_id for i in range(3)]
    assert [r.run_id for r in store.runs()] == ids == [1, 2, 3]
    assert len(store) == 3


def test_run_record_is_slotted():
    store = RunStore(clock=FakeClock())
    record = store.create("d1", Grid3Config())
    with pytest.raises(AttributeError):
        record.arbitrary = 1
