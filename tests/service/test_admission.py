"""Fair-share admission: lanes, quotas, dispatch order, accounting."""

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro import Grid3Config
from repro.service import (
    AdmissionPolicy,
    JobQueue,
    QuotaExceededError,
    RunStore,
)


class FakeClock:
    def __init__(self, start=1000.0):
        self.now = start

    def __call__(self):
        return self.now

    def tick(self, seconds=1.0):
        self.now += seconds


def record_for(store, seed, client="anonymous", lane="batch"):
    return store.create(f"d{seed}", Grid3Config(seed=seed),
                        client=client, lane=lane)


# -- the quota gate ------------------------------------------------------------

def test_quota_gate_and_release():
    policy = AdmissionPolicy(quota=2, clock=FakeClock())
    policy.admit("alice", "batch")
    policy.admit("alice", "batch")
    with pytest.raises(QuotaExceededError) as excinfo:
        policy.admit("alice", "batch")
    assert excinfo.value.retry_after >= 1
    assert policy.quota_rejections == 1
    # Other clients are unaffected by alice's breach.
    policy.admit("bob", "interactive")
    # A release frees a slot.
    policy.release("alice")
    policy.admit("alice", "batch")
    stats = policy.stats()
    assert stats["active_runs"] == 3.0  # alice 2 + bob 1
    assert stats["quota_rejections"] == 1.0


def test_quota_zero_means_unlimited():
    policy = AdmissionPolicy(quota=0, clock=FakeClock())
    for _ in range(100):
        policy.admit("alice", "batch")
    assert policy.stats()["active_runs"] == 100.0


def test_retry_after_tracks_mean_run_duration():
    clock = FakeClock()
    policy = AdmissionPolicy(quota=1, clock=clock)
    for _ in range(6):
        policy.charge("alice", 10.0)  # EWMA converges toward 10s
    policy.admit("alice", "batch")
    with pytest.raises(QuotaExceededError) as excinfo:
        policy.admit("alice", "batch")
    assert excinfo.value.retry_after >= 8


# -- dispatch order ------------------------------------------------------------

def test_single_client_cold_ledger_degrades_to_fifo():
    clock = FakeClock()
    policy = AdmissionPolicy(clock=clock)
    store = RunStore(clock=clock)
    pending = [record_for(store, seed) for seed in (1, 2, 3)]
    order = []
    while pending:
        chosen = policy.select(pending)
        order.append(chosen.run_id)
        pending.remove(chosen)
    assert order == sorted(order)


def test_interactive_lane_beats_batch():
    clock = FakeClock()
    policy = AdmissionPolicy(clock=clock)
    store = RunStore(clock=clock)
    batch = record_for(store, 1, client="a", lane="batch")
    interactive = record_for(store, 2, client="b", lane="interactive")
    assert policy.select([batch, interactive]) is interactive
    assert policy.dispatched["interactive"] == 1


def test_heavy_user_sinks_behind_light_user():
    clock = FakeClock()
    policy = AdmissionPolicy(clock=clock)
    store = RunStore(clock=clock)
    # The hog has burned an hour; the light client nothing.
    policy.charge("hog", 3600.0)
    policy.charge("light", 1.0)
    hog_first = record_for(store, 1, client="hog")
    light_later = record_for(store, 2, client="light")
    # Submission order says hog; fair share says light.
    assert policy.select([hog_first, light_later]) is light_later


def test_ledger_growth_carries_decayed_usage():
    clock = FakeClock()
    policy = AdmissionPolicy(clock=clock, half_life=300.0)
    policy.charge("alice", 600.0)
    before = {row.vo: row.decayed_usage for row in policy.report()}
    # A new client joining rebuilds the ledger; alice's history stays.
    policy.admit("newcomer", "batch")
    after = {row.vo: row.decayed_usage for row in policy.report()}
    assert after["alice"] == pytest.approx(before["alice"], rel=1e-6)
    # And the fresh client outranks the one with burned usage.
    assert policy.priority_factor("newcomer") > \
        policy.priority_factor("alice")


def test_usage_decays_so_idle_clients_recover():
    clock = FakeClock()
    policy = AdmissionPolicy(clock=clock, half_life=10.0)
    policy.charge("alice", 1000.0)
    policy.charge("bob", 1.0)
    sunk = policy.priority_factor("alice")
    # Ten half-lives later alice's splurge is ancient history, while
    # bob keeps working: alice's observed *share* collapses and her
    # priority recovers.
    clock.tick(100.0)
    policy.charge("bob", 1.0)
    recovered = policy.priority_factor("alice")
    assert recovered > sunk


# -- wired into the JobQueue ---------------------------------------------------

def payload(config):
    return {"reports": {"ops": [], "troubleshooting": [], "trace": []},
            "summary": {"seed": config.seed}}


def test_queue_dispatches_in_fair_share_order():
    clock = FakeClock()
    policy = AdmissionPolicy(clock=clock)
    policy.charge("hog", 3600.0)
    policy.charge("light", 1.0)
    store = RunStore()
    gate = threading.Event()
    started = []
    order = []

    def runner(config):
        gate.wait(10.0)
        return payload(config)

    queue = JobQueue(
        workers=1, depth=16, runner=runner,
        pool_factory=lambda n: ThreadPoolExecutor(max_workers=n),
        on_start=lambda r: (started.append(r.run_id),
                            order.append((r.client, r.lane))),
        admission=policy,
    )
    try:
        # First submission occupies the worker; the rest queue up.
        queue.submit(record_for(store, 0, client="warmup"))
        deadline = time.monotonic() + 5.0
        while not started:
            assert time.monotonic() < deadline
            time.sleep(0.01)
        queue.submit(record_for(store, 1, client="hog", lane="batch"))
        queue.submit(record_for(store, 2, client="hog", lane="batch"))
        queue.submit(record_for(store, 3, client="light", lane="batch"))
        queue.submit(record_for(store, 4, client="hog", lane="interactive"))
        gate.set()
        assert queue.drain(timeout=10.0)
    finally:
        queue.shutdown(drain=True, timeout=10.0)
    # After warmup: the interactive run jumps the whole batch lane,
    # then light (under-served) beats hog's earlier submissions.
    assert order[1:] == [("hog", "interactive"), ("light", "batch"),
                         ("hog", "batch"), ("hog", "batch")]


def test_queue_shutdown_hands_leftovers_to_on_interrupted():
    store = RunStore()
    gate = threading.Event()
    interrupted = []
    queue = JobQueue(
        workers=1, depth=16,
        runner=lambda config: (gate.wait(30.0), payload(config))[1],
        pool_factory=lambda n: ThreadPoolExecutor(max_workers=n),
        on_interrupted=lambda r: interrupted.append(r.run_id),
    )
    queue.submit(record_for(store, 1))
    deadline = time.monotonic() + 5.0
    while queue.busy == 0:
        assert time.monotonic() < deadline
        time.sleep(0.01)
    queue.submit(record_for(store, 2))
    queue.submit(record_for(store, 3))
    completed = queue.shutdown(drain=True, timeout=0.3)
    gate.set()
    assert completed is False
    assert sorted(interrupted) == [2, 3]


def test_stats_shape():
    policy = AdmissionPolicy(quota=4, clock=FakeClock())
    stats = policy.stats()
    assert set(stats) == {
        "quota", "quota_rejections", "clients", "active_runs",
        "queued_interactive", "queued_batch", "dispatched_interactive",
        "dispatched_batch", "mean_run_s",
    }
    assert stats["quota"] == 4.0


def test_invalid_construction_and_lane():
    with pytest.raises(ValueError):
        AdmissionPolicy(quota=-1)
    with pytest.raises(ValueError):
        AdmissionPolicy(half_life=0.0)
    policy = AdmissionPolicy()
    with pytest.raises(ValueError):
        policy.admit("alice", "warp-speed")
