"""JobQueue dispatch, backpressure, failure accounting, and drain."""

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro import Grid3Config
from repro.service import JobQueue, QueueFullError
from repro.service.store import RunStore


def make_queue(runner, workers=1, depth=4, **hooks):
    """An in-process queue (thread pool) so tests stay fast and hermetic."""
    return JobQueue(
        workers=workers, depth=depth, runner=runner,
        pool_factory=lambda n: ThreadPoolExecutor(max_workers=n),
        **hooks,
    )


def test_queue_runs_jobs_and_fires_hooks():
    store = RunStore()
    done = []
    queue = make_queue(
        lambda config: {"seed": config.seed},
        on_start=store.mark_running,
        on_done=lambda record, payload: done.append((record.run_id, payload)),
    )
    try:
        record = store.create("d1", Grid3Config(seed=9))
        queue.submit(record)
        assert queue.drain(timeout=10.0)
        assert done == [(1, {"seed": 9})]
        assert record.started_at is not None
        assert queue.stats()["executed"] == 1
        assert queue.stats()["failed"] == 0
    finally:
        queue.shutdown()


def test_queue_failure_path_surfaces_error():
    store = RunStore()
    errors = []

    def boom(config):
        raise RuntimeError("sim exploded")

    queue = make_queue(
        boom, on_error=lambda record, detail: errors.append(detail),
    )
    try:
        queue.submit(store.create("d1", Grid3Config()))
        assert queue.drain(timeout=10.0)
        assert errors and "sim exploded" in errors[0]
        stats = queue.stats()
        # Failures still count as executions (the dedup-proof metric is
        # "simulations attempted", not "simulations that succeeded").
        assert stats["executed"] == 1 and stats["failed"] == 1
    finally:
        queue.shutdown()


def test_queue_depth_bound_rejects_with_queue_full():
    store = RunStore()
    release = threading.Event()
    queue = make_queue(lambda config: release.wait(10.0), workers=1, depth=2)
    try:
        queue.submit(store.create("d1", Grid3Config(seed=1)))
        queue.submit(store.create("d2", Grid3Config(seed=2)))
        with pytest.raises(QueueFullError, match="full"):
            queue.submit(store.create("d3", Grid3Config(seed=3)))
        assert queue.stats()["rejected"] == 1
        assert queue.depth == 2
    finally:
        release.set()
        queue.shutdown()


def test_queue_shutdown_drains_accepted_work():
    store = RunStore()
    finished = []
    gate = threading.Event()

    def slow(config):
        gate.wait(10.0)
        finished.append(config.seed)
        return {}

    queue = make_queue(slow, workers=1, depth=4)
    queue.submit(store.create("d1", Grid3Config(seed=1)))
    queue.submit(store.create("d2", Grid3Config(seed=2)))
    gate.set()
    assert queue.shutdown(drain=True, timeout=10.0)
    assert sorted(finished) == [1, 2]
    # Intake is closed after shutdown.
    with pytest.raises(QueueFullError, match="shutting down"):
        queue.submit(store.create("d3", Grid3Config(seed=3)))


def test_queue_utilization_reflects_busy_workers():
    release = threading.Event()
    started = threading.Event()

    def hold(config):
        started.set()
        release.wait(10.0)
        return {}

    store = RunStore()
    queue = make_queue(hold, workers=2, depth=4)
    try:
        queue.submit(store.create("d1", Grid3Config()))
        assert started.wait(5.0)
        assert queue.busy == 1
        assert queue.utilization() == pytest.approx(0.5)
    finally:
        release.set()
        queue.shutdown()


def test_queue_validates_construction():
    with pytest.raises(ValueError):
        make_queue(lambda c: {}, workers=0)
    with pytest.raises(ValueError):
        make_queue(lambda c: {}, depth=0)
