"""The durable run registry: journal, replay, and restart recovery.

Three layers of proof, cheapest first:

* :class:`RunJournal` round-trips rows and refuses wrong schemas;
* a :class:`RunStore`/:class:`ServiceApp` rebuilt over the same state
  dir resumes with every run's state — and a finished run's report
  bytes — intact, with non-terminal runs re-marked ``interrupted``;
* a real ``repro serve`` process SIGKILLed mid-run and restarted on
  the same ``--state-dir`` serves byte-identical reports for finished
  runs and a resubmittable ``interrupted`` run for the one it lost
  (the CI restart-recovery step runs this one).
"""

import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro import Grid3Config, ServiceApp
from repro.service import RunJournal, RunStore
from repro.service.persistence import SCHEMA_VERSION, JournalError

from .test_app import fake_payload


def make_app(tmp_path, runner=fake_payload, **kwargs):
    return ServiceApp(
        workers=1, queue_depth=8, cache_bytes=1024 * 1024,
        pool_factory=lambda n: ThreadPoolExecutor(max_workers=n),
        runner=runner, state_dir=str(tmp_path / "state"), **kwargs,
    )


def call(app, method, path, query=None, body=b""):
    status, payload = app.handle(method, path, query or {}, body)
    return status, payload


def submit(app, seed):
    status, payload = call(
        app, "POST", "/v1/runs",
        body=json.dumps({"config": {"seed": seed}}).encode())
    return status, json.loads(payload)


# -- the journal itself --------------------------------------------------------

def test_journal_append_replay_roundtrip(tmp_path):
    journal = RunJournal(tmp_path)
    config = Grid3Config(seed=5)
    journal.append(1, "created", 10.0, {"digest": "d1"},
                   RunJournal.encode_config(config))
    journal.append(1, "running", 11.0)
    journal.append(1, "done", 12.0, {"payload_bytes": 4}, b'{"a": 1}')
    journal.close()

    reopened = RunJournal(tmp_path)
    entries = reopened.replay()
    assert [e.kind for e in entries] == ["created", "running", "done"]
    assert [e.seq for e in entries] == sorted(e.seq for e in entries)
    assert entries[0].data == {"digest": "d1"}
    assert reopened.decode_config(entries[0].blob).seed == 5
    assert entries[2].blob == b'{"a": 1}'
    assert len(reopened) == 3
    reopened.close()


def test_journal_rejects_unknown_kind_and_wrong_schema(tmp_path):
    journal = RunJournal(tmp_path)
    with pytest.raises(ValueError):
        journal.append(1, "teleported", 0.0)
    # Sabotage the version marker: the next open must refuse, loudly.
    journal._conn.execute(
        "UPDATE meta SET value=? WHERE key='schema_version'",
        (str(SCHEMA_VERSION + 1),))
    journal._conn.commit()
    journal.close()
    with pytest.raises(JournalError):
        RunJournal(tmp_path)


# -- store-level replay --------------------------------------------------------

def test_store_replays_terminal_states_and_recovers_nonterminal(tmp_path):
    journal = RunJournal(tmp_path)
    store = RunStore(journal=journal)
    done = store.create("d-done", Grid3Config(seed=1), client="alice")
    store.mark_running(done)
    store.mark_done(done, {"reports": {}, "summary": {"jobs": 2}}, 40)
    failed = store.create("d-fail", Grid3Config(seed=2))
    store.mark_running(failed)
    store.mark_failed(failed, "boom")
    crashed = store.create("d-crash", Grid3Config(seed=3), lane="interactive")
    store.mark_running(crashed)   # no terminal row: simulated crash
    queued = store.create("d-queued", Grid3Config(seed=4))
    assert queued.state == "queued"
    journal.close()               # the process "dies" here

    reopened = RunJournal(tmp_path)
    recovered = RunStore(journal=reopened)
    assert recovered.recovered_interrupted == 2
    states = {r.digest: r.state for r in recovered.runs()}
    assert states == {"d-done": "done", "d-fail": "failed",
                      "d-crash": "interrupted", "d-queued": "interrupted"}
    replayed_done = recovered.lookup("d-done")
    assert replayed_done.payload == {"reports": {}, "summary": {"jobs": 2}}
    assert replayed_done.client == "alice"
    # Interrupted digests are unindexed: resubmission re-runs.
    assert recovered.lookup("d-crash") is None
    assert recovered.lookup("d-queued") is None
    # Every replayed progress log is closed (no live workers exist).
    for record in recovered.runs():
        _events, closed = record.progress.since(-1)
        assert closed
    # The owed interrupted rows were appended, so a *second* replay
    # sees terminal states and recovers nothing.
    reopened.close()
    third = RunStore(journal=RunJournal(tmp_path))
    assert third.recovered_interrupted == 0


# -- app-level restart ---------------------------------------------------------

def test_app_restart_serves_byte_identical_reports(tmp_path):
    app = make_app(tmp_path)
    _, sub = submit(app, seed=3)
    assert app.queue.drain(timeout=10.0)
    run_id = sub["run_id"]
    status, before = call(app, "GET", f"/v1/runs/{run_id}/report/ops")
    assert status == 200
    app.close(drain=True, timeout=10.0)

    again = make_app(tmp_path)
    try:
        status, payload = call(again, "GET", "/v1/healthz")
        health = json.loads(payload)
        assert health["durable"] is True and health["recovered_runs"] == 0
        status, after = call(again, "GET", f"/v1/runs/{run_id}/report/ops")
        assert status == 200
        assert after.encode("utf-8") == before.encode("utf-8")
        # The replayed result re-entered the cache: dedup still answers
        # from it without executing anything.
        status, dup = submit(again, seed=3)
        assert status == 200 and dup["dedup"] == "cached"
        assert dup["run_id"] == run_id
        assert again.service_metrics()["service.queue.executed"] == 0
    finally:
        again.close(drain=True, timeout=10.0)


def test_app_restart_marks_inflight_interrupted_and_resubmittable(tmp_path):
    gate = threading.Event()
    runner = lambda config: (gate.wait(10.0), fake_payload(config))[1]  # noqa: E731
    app = make_app(tmp_path, runner=runner)
    _, sub = submit(app, seed=8)
    run_id = sub["run_id"]
    # "Crash": abandon the app without draining (the gated worker never
    # finishes; release it afterwards so its thread can exit).
    deadline = time.monotonic() + 5.0
    while app.store.get(run_id).state != "running":
        assert time.monotonic() < deadline
        time.sleep(0.01)
    gate.set()
    app.close(drain=True, timeout=10.0)
    # Rewind the journal to the crash point: drop the terminal row, as
    # if the process died while the run was live.
    journal = RunJournal(tmp_path / "state")
    journal._conn.execute("DELETE FROM journal WHERE kind = 'done'")
    journal._conn.commit()
    journal.close()

    again = make_app(tmp_path)
    try:
        status, payload = call(again, "GET", f"/v1/runs/{run_id}")
        view = json.loads(payload)
        assert view["state"] == "interrupted"
        assert "resubmit" in view["error"]
        assert json.loads(call(again, "GET", "/v1/healthz")[1])[
            "recovered_runs"] == 1
        status, payload = call(
            again, "GET", f"/v1/runs/{run_id}/report/ops")
        assert status == 409
        assert json.loads(payload)["error"]["code"] == "run_interrupted"
        # The digest is free again: the same config re-runs as a new run.
        status, re_sub = submit(again, seed=8)
        assert status == 202 and re_sub["dedup"] == "new"
        assert re_sub["run_id"] != run_id
        assert again.queue.drain(timeout=10.0)
        record = again.store.get(re_sub["run_id"])
        assert record.state == "done"
    finally:
        again.close(drain=True, timeout=10.0)


def test_graceful_drain_persists_queued_leftovers(tmp_path):
    gate = threading.Event()
    runner = lambda config: (gate.wait(30.0), fake_payload(config))[1]  # noqa: E731
    app = make_app(tmp_path, runner=runner)
    _, first = submit(app, seed=1)   # occupies the single worker
    _, second = submit(app, seed=2)  # stays queued
    deadline = time.monotonic() + 5.0
    while app.store.get(first["run_id"]).state != "running":
        assert time.monotonic() < deadline
        time.sleep(0.01)
    # Drain with a short window while the worker is stuck: the queued
    # run must be persisted as interrupted — not dropped.
    completed = app.close(drain=True, timeout=0.3)
    assert completed is False
    assert app.store.get(second["run_id"]).state == "interrupted"
    gate.set()  # let the stuck worker thread exit
    again = make_app(tmp_path)
    try:
        record = again.store.get(second["run_id"])
        assert record.state == "interrupted"
        status, re_sub = submit(again, seed=2)
        assert status == 202 and re_sub["dedup"] == "new"
    finally:
        again.close(drain=True, timeout=10.0)


# -- the real thing: a served process killed mid-run ---------------------------

TINY = {"scale": 3000, "duration_days": 0.05, "apps": ["exerciser"],
        "tracing": True, "seed": 7}
#: Long enough (~10s) that SIGKILL lands mid-simulation.
LONG = {"scale": 3000, "duration_days": 90.0, "apps": ["exerciser"],
        "tracing": False, "seed": 11}


def _start_server(state_dir):
    env = dict(os.environ)
    env["PYTHONPATH"] = "src"
    env.setdefault("PYTHONUNBUFFERED", "1")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--workers", "1", "--state-dir", str(state_dir)],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=env, cwd=os.path.dirname(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    )
    deadline = time.monotonic() + 30.0
    banner = ""
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        banner += line
        match = re.search(r"listening on (http://[\d.]+:\d+)", line)
        if match:
            return proc, match.group(1)
    proc.kill()
    pytest.fail(f"server never announced its port:\n{banner}")


def _http(method, url, payload=None):
    import urllib.error
    import urllib.request
    data = json.dumps(payload).encode() if payload is not None else None
    request = urllib.request.Request(url, data=data, method=method)
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as error:
        return error.code, error.read()


def test_sigkill_mid_run_then_restart_recovers(tmp_path):
    state_dir = tmp_path / "state"
    proc, base = _start_server(state_dir)
    try:
        # One run to completion; keep its exact report bytes.
        status, body = _http("POST", f"{base}/v1/runs", {"config": TINY})
        assert status == 202, body
        done_id = json.loads(body)["run_id"]
        deadline = time.monotonic() + 60.0
        while True:
            status, body = _http("GET", f"{base}/v1/runs/{done_id}")
            if json.loads(body)["state"] == "done":
                break
            assert time.monotonic() < deadline, body
            time.sleep(0.1)
        status, before = _http(
            "GET", f"{base}/v1/runs/{done_id}/report/ops?limit=1000")
        assert status == 200

        # A long run, killed while live.
        status, body = _http("POST", f"{base}/v1/runs", {"config": LONG})
        assert status == 202, body
        long_id = json.loads(body)["run_id"]
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            status, body = _http("GET", f"{base}/v1/runs/{long_id}")
            if json.loads(body)["state"] == "running":
                break
            time.sleep(0.05)
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=10.0)
    finally:
        if proc.poll() is None:
            proc.kill()

    proc, base = _start_server(state_dir)
    try:
        # The finished run survived with byte-identical report bytes.
        status, after = _http(
            "GET", f"{base}/v1/runs/{done_id}/report/ops?limit=1000")
        assert status == 200
        assert after == before
        # The killed run is terminal, explained, and resubmittable.
        status, body = _http("GET", f"{base}/v1/runs/{long_id}")
        view = json.loads(body)
        assert view["state"] == "interrupted", view
        status, body = _http("POST", f"{base}/v1/runs", {"config": LONG})
        assert status == 202, body
        assert json.loads(body)["dedup"] == "new"
        # And no accepted run was lost: both originals are listed.
        status, body = _http("GET", f"{base}/v1/runs")
        listed = {item["run_id"] for item in json.loads(body)["items"]}
        assert {done_id, long_id} <= listed
    finally:
        proc.send_signal(signal.SIGTERM)
        try:
            proc.wait(timeout=10.0)
        except subprocess.TimeoutExpired:
            proc.kill()
