"""GridClient: the typed stdlib client against a live v1 server."""

import json
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro import GridClient, GridServiceError, ReproService, ServiceApp
from repro.core.results import ReportPage
from repro.service.schemas import HealthView, RunSubmitted, RunView

from .test_app import fake_payload


@pytest.fixture(scope="module")
def service():
    app = ServiceApp(
        workers=1, queue_depth=8, cache_bytes=1024 * 1024,
        pool_factory=lambda n: ThreadPoolExecutor(max_workers=n),
        runner=fake_payload,
    )
    instance = ReproService(port=0, app=app).start()
    yield instance
    instance.close(drain=True, timeout=30.0)


@pytest.fixture
def client(service):
    return GridClient(service.url, timeout=30.0)


def test_submit_wait_report_typed_roundtrip(client):
    submitted = client.submit({"seed": 21}, client_id="alice",
                              lane="interactive")
    assert isinstance(submitted, RunSubmitted)
    assert submitted.dedup == "new"
    view = client.wait(submitted.run_id, timeout=30.0)
    assert isinstance(view, RunView)
    assert view.state == "done"
    assert view.client == "alice" and view.lane == "interactive"
    page = client.report(view.run_id, "ops")
    assert isinstance(page, ReportPage)
    assert page.total == 5
    assert [row["site"] for row in page.rows] == [
        f"site-{i}" for i in range(5)]
    # The pagination walker sees every row exactly once.
    walked = list(client.report_rows(view.run_id, "ops", page_size=2))
    assert walked == list(page.rows)


def test_dedup_is_visible_to_the_client(client):
    first = client.submit({"seed": 33})
    client.wait(first.run_id, timeout=30.0)
    again = client.submit({"seed": 33})
    assert again.dedup == "cached" and again.run_id == first.run_id


def test_typed_errors_carry_the_envelope(client):
    with pytest.raises(GridServiceError) as excinfo:
        client.run(987654)
    assert excinfo.value.status == 404
    assert excinfo.value.code == "not_found"
    assert "/v1/runs" in excinfo.value.hint
    with pytest.raises(GridServiceError) as excinfo:
        client.submit({"scal": 2})
    assert excinfo.value.status == 400
    assert excinfo.value.code == "bad_request"
    assert "did you mean 'scale'" in excinfo.value.hint


def test_health_metrics_events_alerts(client):
    health = client.health()
    assert isinstance(health, HealthView)
    assert health.status == "ok" and health.durable is False
    gauges = client.metrics()
    assert "service.admission.quota" in gauges
    assert client.metrics_text().startswith("# TYPE")
    submitted = client.submit({"seed": 44})
    view = client.wait(submitted.run_id, timeout=30.0)
    events = client.events(view.run_id)
    assert events.closed is True and events.run_id == view.run_id
    names = [rule["name"] for rule in client.alerts()]
    assert "queue-backlog" in names and "quota-pressure" in names


def test_runs_listing_pages(client):
    listing = client.runs(limit=1)
    assert isinstance(listing, ReportPage)
    assert listing.total >= 1 and len(listing.rows) == 1


def test_legacy_paths_emit_deprecation_headers(service):
    with urllib.request.urlopen(
            f"{service.url}/healthz", timeout=30) as response:
        assert response.status == 200
        assert response.headers["Deprecation"] == "true"
        assert response.headers["Link"] == \
            '</v1/healthz>; rel="successor-version"'
        assert json.loads(response.read())["status"] == "ok"
    with urllib.request.urlopen(
            f"{service.url}/v1/healthz", timeout=30) as response:
        assert response.status == 200
        assert response.headers["Deprecation"] is None
