"""Unit tests for the progress transport: sender, log, SSE framing."""

import threading
import time

import pytest

from repro.monitoring.progress import (
    ProgressMeter,
    render_progress_line,
    slice_times,
)
from repro.service.progress import (
    ProgressLog,
    ProgressSender,
    parse_sse_stream,
    sse_end_frame,
    sse_format,
)


def tick(seq, kind="tick"):
    return {"seq": seq, "kind": kind, "phase": "sim", "frac": seq / 10.0}


# -- slice_times ------------------------------------------------------------

def test_slice_times_end_exactly_on_duration():
    horizons = slice_times(86400.0, 32)
    assert len(horizons) == 32
    assert horizons[-1] == 86400.0
    assert horizons == sorted(horizons)
    with pytest.raises(ValueError):
        slice_times(10.0, 0)


def test_render_progress_line_is_wire_data_driven():
    line = render_progress_line(
        {"frac": 0.5, "phase": "sim", "sim_time": 43200.0, "events": 1234,
         "jobs_submitted": 10, "jobs_completed": 7, "jobs_failed": 1,
         "tickets_open": 2})
    assert "50%" in line and "sim" in line and "1,234" in line
    # Partial dicts (old servers, keepalives) render without raising.
    assert render_progress_line({})


# -- ProgressSender ---------------------------------------------------------

class _SlowConn:
    """A pipe write end whose reader never drains fast."""

    def __init__(self, delay=0.0):
        self.sent = []
        self.delay = delay
        self.closed = False

    def send(self, payload):
        if self.delay:
            time.sleep(self.delay)
        self.sent.append(payload)

    def close(self):
        self.closed = True


class _BrokenConn(_SlowConn):
    def send(self, payload):
        raise BrokenPipeError("reader is gone")


def test_sender_delivers_in_order_and_closes_conn():
    conn = _SlowConn()
    sender = ProgressSender(conn)
    for i in range(20):
        sender.emit(tick(i))
    sender.close()
    assert [e["seq"] for e in conn.sent] == list(range(20))
    assert conn.closed and sender.coalesced == 0


def test_sender_coalesces_ticks_under_slow_reader():
    conn = _SlowConn(delay=0.02)
    sender = ProgressSender(conn, buffer=4)
    sender.emit(tick(0, kind="phase"))
    for i in range(1, 40):
        sender.emit(tick(i))
    sender.emit(tick(40, kind="end"))
    sender.close(timeout=10.0)
    seqs = [e["seq"] for e in conn.sent]
    # Some ticks were superseded, none reordered, lifecycle survived.
    assert sender.coalesced > 0
    assert seqs == sorted(seqs)
    assert conn.sent[0]["kind"] == "phase"
    assert conn.sent[-1]["kind"] == "end"
    assert len(conn.sent) == 41 - sender.coalesced


def test_sender_emit_never_blocks_on_slow_reader():
    conn = _SlowConn(delay=0.05)
    sender = ProgressSender(conn, buffer=2)
    start = time.monotonic()
    for i in range(100):
        sender.emit(tick(i))
    elapsed = time.monotonic() - start
    sender.close(timeout=10.0)
    # 100 emits against a reader that takes 5s to drain 100 events:
    # emit() must have returned immediately every time.
    assert elapsed < 0.5


def test_sender_survives_broken_pipe():
    conn = _BrokenConn()
    sender = ProgressSender(conn)
    for i in range(5):
        sender.emit(tick(i))
    sender.close()  # must not raise
    assert conn.closed


# -- ProgressLog ------------------------------------------------------------

def test_log_since_and_last_seq():
    log = ProgressLog()
    assert log.last_seq == -1 and log.last() is None
    for i in range(5):
        log.append(tick(i))
    events, closed = log.since(1)
    assert [e["seq"] for e in events] == [2, 3, 4]
    assert not closed
    assert log.last_seq == 4 and log.last()["seq"] == 4
    log.close()
    assert log.since(10) == ([], True)


def test_log_wait_for_blocks_until_news_or_close():
    log = ProgressLog()
    got = {}

    def consumer():
        got["events"], got["closed"] = log.wait_for(-1, timeout=10.0)

    thread = threading.Thread(target=consumer)
    thread.start()
    time.sleep(0.05)
    log.append(tick(0))
    thread.join(timeout=5.0)
    assert not thread.is_alive()
    assert [e["seq"] for e in got["events"]] == [0]

    # A waiter past the end wakes on close with no events.
    def tail_consumer():
        got["tail"] = log.wait_for(0, timeout=10.0)

    thread = threading.Thread(target=tail_consumer)
    thread.start()
    time.sleep(0.05)
    log.close()
    thread.join(timeout=5.0)
    assert got["tail"] == ([], True)


def test_log_bound_drops_oldest():
    log = ProgressLog(bound=3)
    for i in range(5):
        log.append(tick(i))
    events, _ = log.since(-1)
    assert [e["seq"] for e in events] == [2, 3, 4]
    assert log.dropped == 2


# -- SSE framing ------------------------------------------------------------

def test_sse_round_trip():
    frames = b"".join(
        [sse_format(tick(i)) for i in range(3)] + [sse_end_frame()]
    )
    # id: carries the seq for Last-Event-ID reconnects.
    assert b"id: 2\n" in frames
    events, saw_end = parse_sse_stream([frames[:17], frames[17:]])
    assert [e["seq"] for e in events] == [0, 1, 2]
    assert saw_end


def test_parse_sse_ignores_keepalive_comments():
    chunks = [sse_format(tick(0)), b": keepalive\n\n", sse_end_frame()]
    events, saw_end = parse_sse_stream(chunks)
    assert len(events) == 1 and saw_end


# -- ProgressMeter seq determinism -----------------------------------------

def test_meter_seq_is_deterministic_for_same_config():
    from repro.core.grid3 import Grid3, Grid3Config

    def run():
        events = []
        grid = Grid3(Grid3Config(scale=3000.0, duration_days=0.05,
                                 apps=["exerciser"], seed=7))
        grid.run_full(progress=lambda e: events.append(e))
        return events

    a, b = run(), run()
    assert [e.seq for e in a] == list(range(len(a)))
    assert [(e.seq, e.kind, e.sim_time, e.events) for e in a] == \
           [(e.seq, e.kind, e.sim_time, e.events) for e in b]
    assert a[0].kind == "phase" and a[-1].kind == "end"
    assert a[-1].frac == 1.0


def test_progress_observed_run_is_byte_identical():
    """The zero-perturbation contract: a progress-observed (sliced) run
    produces byte-for-byte the reports of a silent one, and the alerts
    knob off means no monitor exists to perturb anything."""
    import json

    from repro import Grid3, Grid3Config, collect_reports
    config = dict(scale=3000.0, duration_days=0.05, apps=["exerciser"],
                  tracing=True, seed=7)
    silent = Grid3(Grid3Config(**config))
    silent.run_full()
    observed = Grid3(Grid3Config(**config))
    observed.run_full(progress=lambda e: None, progress_slices=13)
    assert silent.alert_monitor is None

    def report_bytes(grid):
        return json.dumps(collect_reports(grid), sort_keys=True,
                          default=repr)

    assert report_bytes(silent) == report_bytes(observed)
    assert silent.engine.dispatched == observed.engine.dispatched
    assert silent.engine.now == observed.engine.now


def test_meter_slices_control_emission_count():
    from repro.core.grid3 import Grid3, Grid3Config
    events = []
    grid = Grid3(Grid3Config(scale=3000.0, duration_days=0.05,
                             apps=["exerciser"], seed=7))
    grid.run_full(progress=lambda e: events.append(e), progress_slices=8)
    # 2 phase events + 8 ticks + 1 end, regardless of sim content.
    assert len(events) == 11
    assert ProgressMeter(grid, lambda e: None).slices == 32  # default
