"""Request validation: every malformed submission maps to a SchemaError."""

import json

import pytest

from repro import Grid3Config
from repro.service import (
    ERROR_CODES,
    ApiError,
    SchemaError,
    parse_pagination,
    parse_run_request,
    parse_submission,
)
from repro.service.schemas import split_hint


def body(**payload):
    return json.dumps(payload).encode()


def test_empty_body_is_default_config():
    config = parse_run_request(b"")
    assert isinstance(config, Grid3Config)
    assert config.seed == Grid3Config().seed


def test_config_knobs_land():
    config = parse_run_request(body(config={
        "scale": 3000, "duration_days": 0.05, "seed": 9,
        "apps": ["exerciser"], "tracing": True,
    }))
    assert config.seed == 9
    assert config.apps == ["exerciser"]
    assert config.tracing is True
    # JSON integers are accepted for float knobs.
    assert config.scale == 3000.0 and isinstance(config.scale, float)


def test_scenario_base_with_overrides():
    config = parse_run_request(body(scenario="contention",
                                    config={"seed": 11}))
    assert config.fair_share is True  # the contention scenario's point
    assert config.seed == 11


def test_unknown_scenario_rejected():
    with pytest.raises(SchemaError, match="unknown scenario"):
        parse_run_request(body(scenario="no-such-era"))


def test_unknown_top_level_key_rejected():
    with pytest.raises(SchemaError, match="unknown request key"):
        parse_run_request(body(cfg={"scale": 5}))


def test_unknown_knob_gets_suggestion():
    with pytest.raises(SchemaError, match="did you mean 'scale'"):
        parse_run_request(body(config={"scal": 5}))


def test_bad_knob_value_rejected():
    with pytest.raises(SchemaError, match="must be positive"):
        parse_run_request(body(config={"scale": -1}))


def test_non_json_body_rejected():
    with pytest.raises(SchemaError, match="not valid JSON"):
        parse_run_request(b"{nope")


def test_non_object_body_rejected():
    with pytest.raises(SchemaError, match="must be a JSON object"):
        parse_run_request(b"[1, 2]")


def test_failures_knob_not_settable_over_wire():
    with pytest.raises(SchemaError, match="not settable over the API"):
        parse_run_request(body(config={"failures": {"node_mtbf": 1}}))


def test_config_must_be_object():
    with pytest.raises(SchemaError, match="'config' must be a JSON object"):
        parse_run_request(body(config=[1]))


def test_pagination_defaults_and_parsing():
    assert parse_pagination({}) == (0, 500)
    assert parse_pagination({"offset": "10", "limit": "3"}) == (10, 3)


@pytest.mark.parametrize("query", [
    {"offset": "-1"}, {"limit": "0"}, {"offset": "x"}, {"limit": "1.5"},
])
def test_pagination_rejects_bad_values(query):
    with pytest.raises(SchemaError):
        parse_pagination(query)


def test_submission_defaults_to_anonymous_batch():
    request = parse_submission(b"")
    assert request.client == "anonymous" and request.lane == "batch"
    assert isinstance(request.config, Grid3Config)


def test_submission_client_and_lane_parse():
    request = parse_submission(body(config={"seed": 3},
                                    client="  uscms  ",
                                    lane="interactive"))
    assert request.client == "uscms"  # stripped
    assert request.lane == "interactive"


@pytest.mark.parametrize("client", ["", "   ", 7, None, "x" * 129])
def test_submission_bad_client_rejected(client):
    with pytest.raises(SchemaError, match="client"):
        parse_submission(body(client=client))


def test_submission_bad_lane_rejected():
    with pytest.raises(SchemaError, match="unknown lane"):
        parse_submission(body(lane="warp"))


def test_error_envelope_shape_and_hint_split():
    error = ApiError(code="bad_request", message="nope", hint="try this")
    assert json.loads(error.to_json()) == {
        "error": {"code": "bad_request", "message": "nope",
                  "hint": "try this"},
    }
    assert "bad_request" in ERROR_CODES
    message, hint = split_hint(
        "unknown knob 'scal'; did you mean 'scale'?")
    assert message == "unknown knob 'scal'"
    assert hint == "did you mean 'scale'?"
    assert split_hint("plain failure") == ("plain failure", "")


def test_validated_request_digests_stably():
    one = parse_run_request(body(config={"seed": 5, "scale": 100}))
    two = parse_run_request(body(config={"scale": 100, "seed": 5}))
    assert one.canonical_digest() == two.canonical_digest()
