"""ServiceApp routing: dedup, status codes, pagination, metrics — no sockets."""

import json
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro import Grid3Config, ServiceApp


def fake_payload(config):
    """A runner stub shaped like execute_run's payload, instant."""
    rows = [{"record": "Row", "site": f"site-{i}", "seed": config.seed}
            for i in range(5)]
    return {
        "reports": {"ops": rows, "troubleshooting": [], "trace": []},
        "summary": {"jobs": 5, "seed": config.seed},
    }


@pytest.fixture
def app():
    instance = ServiceApp(
        workers=1, queue_depth=4, cache_bytes=1024 * 1024,
        pool_factory=lambda n: ThreadPoolExecutor(max_workers=n),
        runner=fake_payload,
    )
    yield instance
    instance.close(drain=True, timeout=10.0)


def call(app, method, path, query=None, body=b""):
    status, payload = app.handle(method, path, query or {}, body)
    return status, json.loads(payload)


def submit(app, seed=1):
    return call(app, "POST", "/runs",
                body=json.dumps({"config": {"seed": seed}}).encode())


def wait_done(app, run_id, timeout=10.0):
    assert app.queue.drain(timeout=timeout)
    status, view = call(app, "GET", f"/runs/{run_id}")
    assert status == 200 and view["state"] == "done", view
    return view


def test_submit_poll_report_roundtrip(app):
    status, sub = submit(app, seed=3)
    assert status == 202 and sub["dedup"] == "new"
    view = wait_done(app, sub["run_id"])
    assert view["summary"]["seed"] == 3
    status, page = call(app, "GET", f"/runs/{sub['run_id']}/report/ops",
                        query={"offset": "1", "limit": "2"})
    assert status == 200
    assert page["total"] == 5
    assert page["slice"] == {"offset": 1, "limit": 2, "returned": 2}
    assert [row["site"] for row in page["items"]] == ["site-1", "site-2"]


def test_duplicate_submit_never_reruns(app):
    status, first = submit(app, seed=7)
    assert status == 202
    wait_done(app, first["run_id"])
    status, again = submit(app, seed=7)
    assert status == 200
    assert again["dedup"] == "cached"
    assert again["run_id"] == first["run_id"]
    # The acceptance criterion: one simulation executed, ever.
    assert app.service_metrics()["service.queue.executed"] == 1
    assert app.service_metrics()["service.cache.hits"] == 1


def test_inflight_duplicate_joins(app):
    gate = threading.Event()
    app.queue._runner = lambda config: (gate.wait(10.0), fake_payload(config))[1]
    status, first = submit(app, seed=5)
    assert status == 202 and first["dedup"] == "new"
    status, joined = submit(app, seed=5)
    assert status == 202 and joined["dedup"] == "joined"
    assert joined["run_id"] == first["run_id"]
    gate.set()
    wait_done(app, first["run_id"])
    metrics = app.service_metrics()
    assert metrics["service.queue.executed"] == 1
    assert metrics["service.queue.joined"] == 1


def test_failed_run_reports_409_and_digest_can_rerun(app):
    calls = []

    def flaky(config):
        calls.append(1)
        if len(calls) == 1:
            raise RuntimeError("transient")
        return fake_payload(config)

    app.queue._runner = flaky
    _, first = submit(app, seed=9)
    assert app.queue.drain(timeout=10.0)
    status, view = call(app, "GET", f"/runs/{first['run_id']}")
    assert view["state"] == "failed" and "transient" in view["error"]
    status, body = call(app, "GET", f"/runs/{first['run_id']}/report/ops")
    assert status == 409 and body["error"] == "run failed"
    # A failed digest does not poison dedup: resubmission re-runs.
    status, second = submit(app, seed=9)
    assert status == 202 and second["dedup"] == "new"
    assert second["run_id"] != first["run_id"]
    wait_done(app, second["run_id"])


def test_report_before_done_is_409(app):
    gate = threading.Event()
    app.queue._runner = lambda config: (gate.wait(10.0), fake_payload(config))[1]
    _, sub = submit(app, seed=2)
    status, body = call(app, "GET", f"/runs/{sub['run_id']}/report/ops")
    assert status == 409 and body["error"] == "run not finished"
    gate.set()
    wait_done(app, sub["run_id"])


def test_evicted_payload_is_410_and_resubmit_reruns(app):
    _, sub = submit(app, seed=4)
    wait_done(app, sub["run_id"])
    # Simulate the cache dropping this run out from under the store.
    app.cache.remove(app.store.get(sub["run_id"]).digest)
    app.store.drop_payload(sub["run_id"])
    status, body = call(app, "GET", f"/runs/{sub['run_id']}/report/ops")
    assert status == 410 and body["error"] == "result evicted"
    status, again = submit(app, seed=4)
    assert status == 202 and again["dedup"] == "new"
    wait_done(app, again["run_id"])
    assert app.service_metrics()["service.queue.executed"] == 2


def test_queue_full_maps_to_429(app):
    gate = threading.Event()
    app.queue._runner = lambda config: (gate.wait(10.0), fake_payload(config))[1]
    seeds = iter(range(100))
    statuses = []
    while True:
        status, body = submit(app, seed=next(seeds))
        statuses.append(status)
        if status == 429:
            break
        assert len(statuses) < 20, "queue depth bound never hit"
    assert body["error"] == "queue full"
    # The rejected submission is not left indexed: the same config can
    # be resubmitted once the queue clears.
    gate.set()
    assert app.queue.drain(timeout=10.0)


def test_malformed_body_is_400(app):
    status, body = call(app, "POST", "/runs", body=b"{nope")
    assert status == 400 and body["error"] == "bad request"
    status, body = call(
        app, "POST", "/runs",
        body=json.dumps({"config": {"scal": 2}}).encode(),
    )
    assert status == 400 and "did you mean 'scale'" in body["detail"]


def test_unknown_paths_and_methods(app):
    assert call(app, "GET", "/nope")[0] == 404
    assert call(app, "GET", "/runs/999")[0] == 404
    assert call(app, "GET", "/runs/1/report/nope")[0] == 404
    assert call(app, "POST", "/healthz")[0] == 405
    assert call(app, "DELETE", "/runs")[0] == 405


def test_healthz_and_runs_listing(app):
    status, health = call(app, "GET", "/healthz")
    assert status == 200 and health["status"] == "ok"
    assert health["workers"] == 1
    _, a = submit(app, seed=1)
    wait_done(app, a["run_id"])
    submit(app, seed=2)
    assert app.queue.drain(timeout=10.0)
    status, page = call(app, "GET", "/runs", query={"limit": "1"})
    assert status == 200 and page["total"] == 2
    assert page["items"][0]["run_id"] == 1


def test_metrics_scrape_feeds_metric_store(app):
    _, sub = submit(app, seed=1)
    wait_done(app, sub["run_id"])
    status, gauges = call(app, "GET", "/metrics", query={"format": "json"})
    assert status == 200
    assert gauges["service.runs.done"] == 1
    assert gauges["service.queue.executed"] == 1
    assert gauges["service.cache.entries"] == 1
    # Scrapes append history into the estate's MetricStore surface.
    call(app, "GET", "/metrics", query={"format": "json"})
    _times, values = app.metrics_store.series("service.queue.executed")
    assert list(values) == [1.0, 1.0]


def test_metrics_default_is_prometheus_text(app):
    status, text = app.handle("GET", "/metrics", {}, b"")
    assert status == 200
    lines = text.splitlines()
    assert "# TYPE service_queue_depth gauge" in lines
    assert any(line.startswith("service_uptime_s ") for line in lines)
    # Alert states are exposed as 0/1 gauges with rule labels.
    assert any(line.startswith('service_alert_firing{rule="queue-backlog"')
               for line in lines)


def test_metrics_scrape_history_is_bounded(app):
    from repro.service.app import SCRAPE_HISTORY
    for _ in range(5):
        call(app, "GET", "/metrics", query={"format": "json"})
    assert app.metrics_store.max_samples == SCRAPE_HISTORY
    series = app.metrics_store._samples["service.queue.depth"]
    assert series.maxlen == SCRAPE_HISTORY and len(series) == 5


def test_alerts_endpoint_lists_service_rules(app):
    status, payload = call(app, "GET", "/alerts")
    assert status == 200
    names = [r["name"] for r in payload["rules"]]
    assert "queue-backlog" in names and "workers-saturated" in names
    assert payload["firing"] == 0


def test_events_delta_poll_and_bad_since(app):
    _, sub = submit(app, seed=1)
    run_id = sub["run_id"]
    wait_done(app, run_id)
    status, payload = call(app, "GET", f"/runs/{run_id}/events",
                           query={"since": "-1"})
    assert status == 200
    assert payload["closed"] is True
    # Fake runners emit nothing; the envelope still closes cleanly.
    assert payload["events"] == []
    assert payload["next_since"] == -1
    assert call(app, "GET", "/runs/999/events",
                query={"since": "-1"})[0] == 404
    assert call(app, "GET", f"/runs/{run_id}/events",
                query={"since": "zap"})[0] == 400


def test_progress_capable_runner_streams_into_record_log():
    from repro.service.progress import ProgressSender

    def streaming_runner(config, progress=None):
        sender = ProgressSender(progress)
        for i in range(4):
            sender.emit({"seq": i, "kind": "phase" if i == 0 else "tick",
                         "phase": "sim"})
        sender.close()
        return fake_payload(config)

    instance = ServiceApp(
        workers=1, queue_depth=4,
        pool_factory=lambda n: ThreadPoolExecutor(max_workers=n),
        runner=streaming_runner,
    )
    try:
        status, payload = instance.handle(
            "POST", "/runs", {},
            json.dumps({"config": {"seed": 9}}).encode())
        assert status == 202
        run_id = json.loads(payload)["run_id"]
        assert instance.queue.drain(timeout=10.0)
        record = instance.store.get(run_id)
        events, closed = record.progress.since(-1)
        assert [e["seq"] for e in events] == [0, 1, 2, 3]
        assert closed  # terminal state closed the log
        # The delta poll serves the same sequence.
        status, body = instance.handle(
            "GET", f"/runs/{run_id}/events", {"since": "1"}, b"")
        assert status == 200
        delta = json.loads(body)
        assert [e["seq"] for e in delta["events"]] == [2, 3]
        assert delta["closed"] is True and delta["next_since"] == 3
    finally:
        instance.close(drain=True, timeout=10.0)


def test_cache_eviction_drops_store_payload(app):
    app.cache.max_bytes = 1  # next put evicts everything else
    _, a = submit(app, seed=1)
    wait_done(app, a["run_id"])
    _, b = submit(app, seed=2)
    wait_done(app, b["run_id"])
    assert app.store.get(a["run_id"]).payload is None
    status, _body = call(app, "GET", f"/runs/{a['run_id']}/report/ops")
    assert status == 410
    # The newest result is still servable.
    assert call(app, "GET", f"/runs/{b['run_id']}/report/ops")[0] == 200
