"""ServiceApp routing: dedup, status codes, pagination, metrics — no sockets."""

import json
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro import Grid3Config, ServiceApp


def fake_payload(config):
    """A runner stub shaped like execute_run's payload, instant."""
    rows = [{"record": "Row", "site": f"site-{i}", "seed": config.seed}
            for i in range(5)]
    return {
        "reports": {"ops": rows, "troubleshooting": [], "trace": []},
        "summary": {"jobs": 5, "seed": config.seed},
    }


@pytest.fixture
def app():
    instance = ServiceApp(
        workers=1, queue_depth=4, cache_bytes=1024 * 1024,
        pool_factory=lambda n: ThreadPoolExecutor(max_workers=n),
        runner=fake_payload,
    )
    yield instance
    instance.close(drain=True, timeout=10.0)


def call(app, method, path, query=None, body=b""):
    status, payload = app.handle(method, path, query or {}, body)
    return status, json.loads(payload)


def submit(app, seed=1):
    return call(app, "POST", "/runs",
                body=json.dumps({"config": {"seed": seed}}).encode())


def wait_done(app, run_id, timeout=10.0):
    assert app.queue.drain(timeout=timeout)
    status, view = call(app, "GET", f"/runs/{run_id}")
    assert status == 200 and view["state"] == "done", view
    return view


def test_submit_poll_report_roundtrip(app):
    status, sub = submit(app, seed=3)
    assert status == 202 and sub["dedup"] == "new"
    view = wait_done(app, sub["run_id"])
    assert view["summary"]["seed"] == 3
    status, page = call(app, "GET", f"/runs/{sub['run_id']}/report/ops",
                        query={"offset": "1", "limit": "2"})
    assert status == 200
    assert page["total"] == 5
    assert page["slice"] == {"offset": 1, "limit": 2, "returned": 2}
    assert [row["site"] for row in page["items"]] == ["site-1", "site-2"]


def test_duplicate_submit_never_reruns(app):
    status, first = submit(app, seed=7)
    assert status == 202
    wait_done(app, first["run_id"])
    status, again = submit(app, seed=7)
    assert status == 200
    assert again["dedup"] == "cached"
    assert again["run_id"] == first["run_id"]
    # The acceptance criterion: one simulation executed, ever.
    assert app.service_metrics()["service.queue.executed"] == 1
    assert app.service_metrics()["service.cache.hits"] == 1


def test_inflight_duplicate_joins(app):
    gate = threading.Event()
    app.queue._runner = lambda config: (gate.wait(10.0), fake_payload(config))[1]
    status, first = submit(app, seed=5)
    assert status == 202 and first["dedup"] == "new"
    status, joined = submit(app, seed=5)
    assert status == 202 and joined["dedup"] == "joined"
    assert joined["run_id"] == first["run_id"]
    gate.set()
    wait_done(app, first["run_id"])
    metrics = app.service_metrics()
    assert metrics["service.queue.executed"] == 1
    assert metrics["service.queue.joined"] == 1


def test_failed_run_reports_409_and_digest_can_rerun(app):
    calls = []

    def flaky(config):
        calls.append(1)
        if len(calls) == 1:
            raise RuntimeError("transient")
        return fake_payload(config)

    app.queue._runner = flaky
    _, first = submit(app, seed=9)
    assert app.queue.drain(timeout=10.0)
    status, view = call(app, "GET", f"/runs/{first['run_id']}")
    assert view["state"] == "failed" and "transient" in view["error"]
    status, body = call(app, "GET", f"/runs/{first['run_id']}/report/ops")
    assert status == 409 and body["error"]["code"] == "run_failed"
    assert "transient" in body["error"]["message"]
    # A failed digest does not poison dedup: resubmission re-runs.
    status, second = submit(app, seed=9)
    assert status == 202 and second["dedup"] == "new"
    assert second["run_id"] != first["run_id"]
    wait_done(app, second["run_id"])


def test_report_before_done_is_409(app):
    gate = threading.Event()
    app.queue._runner = lambda config: (gate.wait(10.0), fake_payload(config))[1]
    _, sub = submit(app, seed=2)
    status, body = call(app, "GET", f"/runs/{sub['run_id']}/report/ops")
    assert status == 409 and body["error"]["code"] == "run_not_finished"
    gate.set()
    wait_done(app, sub["run_id"])


def test_evicted_payload_is_410_and_resubmit_reruns(app):
    _, sub = submit(app, seed=4)
    wait_done(app, sub["run_id"])
    # Simulate the cache dropping this run out from under the store.
    app.cache.remove(app.store.get(sub["run_id"]).digest)
    app.store.drop_payload(sub["run_id"])
    status, body = call(app, "GET", f"/runs/{sub['run_id']}/report/ops")
    assert status == 410 and body["error"]["code"] == "result_evicted"
    status, again = submit(app, seed=4)
    assert status == 202 and again["dedup"] == "new"
    wait_done(app, again["run_id"])
    assert app.service_metrics()["service.queue.executed"] == 2


def test_queue_full_maps_to_429(app):
    gate = threading.Event()
    app.queue._runner = lambda config: (gate.wait(10.0), fake_payload(config))[1]
    seeds = iter(range(100))
    statuses = []
    while True:
        status, body = submit(app, seed=next(seeds))
        statuses.append(status)
        if status == 429:
            break
        assert len(statuses) < 20, "queue depth bound never hit"
    assert body["error"]["code"] == "queue_full"
    # The rejected submission is not left indexed: the same config can
    # be resubmitted once the queue clears.
    gate.set()
    assert app.queue.drain(timeout=10.0)


def test_malformed_body_is_400(app):
    status, body = call(app, "POST", "/runs", body=b"{nope")
    assert status == 400 and body["error"]["code"] == "bad_request"
    status, body = call(
        app, "POST", "/runs",
        body=json.dumps({"config": {"scal": 2}}).encode(),
    )
    assert status == 400
    # Did-you-mean moved into the envelope's hint field.
    assert "did you mean 'scale'" in body["error"]["hint"]
    assert "scal" in body["error"]["message"]


def test_unknown_paths_and_methods(app):
    assert call(app, "GET", "/nope")[0] == 404
    assert call(app, "GET", "/runs/999")[0] == 404
    assert call(app, "GET", "/runs/1/report/nope")[0] == 404
    assert call(app, "POST", "/healthz")[0] == 405
    assert call(app, "DELETE", "/runs")[0] == 405


def test_healthz_and_runs_listing(app):
    status, health = call(app, "GET", "/healthz")
    assert status == 200 and health["status"] == "ok"
    assert health["workers"] == 1
    _, a = submit(app, seed=1)
    wait_done(app, a["run_id"])
    submit(app, seed=2)
    assert app.queue.drain(timeout=10.0)
    status, page = call(app, "GET", "/runs", query={"limit": "1"})
    assert status == 200 and page["total"] == 2
    assert page["items"][0]["run_id"] == 1


def test_metrics_scrape_feeds_metric_store(app):
    _, sub = submit(app, seed=1)
    wait_done(app, sub["run_id"])
    status, gauges = call(app, "GET", "/metrics", query={"format": "json"})
    assert status == 200
    assert gauges["service.runs.done"] == 1
    assert gauges["service.queue.executed"] == 1
    assert gauges["service.cache.entries"] == 1
    # Scrapes append history into the estate's MetricStore surface.
    call(app, "GET", "/metrics", query={"format": "json"})
    _times, values = app.metrics_store.series("service.queue.executed")
    assert list(values) == [1.0, 1.0]


def test_metrics_default_is_prometheus_text(app):
    status, text = app.handle("GET", "/metrics", {}, b"")
    assert status == 200
    lines = text.splitlines()
    assert "# TYPE service_queue_depth gauge" in lines
    assert any(line.startswith("service_uptime_s ") for line in lines)
    # Alert states are exposed as 0/1 gauges with rule labels.
    assert any(line.startswith('service_alert_firing{rule="queue-backlog"')
               for line in lines)


def test_metrics_scrape_history_is_bounded(app):
    from repro.service.app import SCRAPE_HISTORY
    for _ in range(5):
        call(app, "GET", "/metrics", query={"format": "json"})
    assert app.metrics_store.max_samples == SCRAPE_HISTORY
    series = app.metrics_store._samples["service.queue.depth"]
    assert series.maxlen == SCRAPE_HISTORY and len(series) == 5


def test_alerts_endpoint_lists_service_rules(app):
    status, payload = call(app, "GET", "/alerts")
    assert status == 200
    names = [r["name"] for r in payload["rules"]]
    assert "queue-backlog" in names and "workers-saturated" in names
    assert payload["firing"] == 0


def test_events_delta_poll_and_bad_since(app):
    _, sub = submit(app, seed=1)
    run_id = sub["run_id"]
    wait_done(app, run_id)
    status, payload = call(app, "GET", f"/runs/{run_id}/events",
                           query={"since": "-1"})
    assert status == 200
    assert payload["closed"] is True
    # Fake runners emit nothing; the envelope still closes cleanly.
    assert payload["events"] == []
    assert payload["next_since"] == -1
    assert call(app, "GET", "/runs/999/events",
                query={"since": "-1"})[0] == 404
    assert call(app, "GET", f"/runs/{run_id}/events",
                query={"since": "zap"})[0] == 400


def test_progress_capable_runner_streams_into_record_log():
    from repro.service.progress import ProgressSender

    def streaming_runner(config, progress=None):
        sender = ProgressSender(progress)
        for i in range(4):
            sender.emit({"seq": i, "kind": "phase" if i == 0 else "tick",
                         "phase": "sim"})
        sender.close()
        return fake_payload(config)

    instance = ServiceApp(
        workers=1, queue_depth=4,
        pool_factory=lambda n: ThreadPoolExecutor(max_workers=n),
        runner=streaming_runner,
    )
    try:
        status, payload = instance.handle(
            "POST", "/runs", {},
            json.dumps({"config": {"seed": 9}}).encode())
        assert status == 202
        run_id = json.loads(payload)["run_id"]
        assert instance.queue.drain(timeout=10.0)
        record = instance.store.get(run_id)
        events, closed = record.progress.since(-1)
        assert [e["seq"] for e in events] == [0, 1, 2, 3]
        assert closed  # terminal state closed the log
        # The delta poll serves the same sequence.
        status, body = instance.handle(
            "GET", f"/runs/{run_id}/events", {"since": "1"}, b"")
        assert status == 200
        delta = json.loads(body)
        assert [e["seq"] for e in delta["events"]] == [2, 3]
        assert delta["closed"] is True and delta["next_since"] == 3
    finally:
        instance.close(drain=True, timeout=10.0)


def test_v1_and_legacy_paths_answer_identically(app):
    """Every route answers under /v1 and bare; bare is deprecated."""
    _, sub = submit(app, seed=6)
    wait_done(app, sub["run_id"])
    for path in ("/healthz", "/runs", f"/runs/{sub['run_id']}",
                 f"/runs/{sub['run_id']}/report/ops", "/alerts"):
        status_v1, body_v1, headers_v1 = app.respond(
            "GET", f"/v1{path}", {}, b"")
        status_old, body_old, headers_old = app.respond("GET", path, {}, b"")
        assert status_v1 == status_old == 200
        # healthz/runs views carry a live uptime/elapsed; compare keys.
        assert json.loads(body_v1).keys() == json.loads(body_old).keys()
        assert dict(headers_v1) == {}
        assert dict(headers_old)["Deprecation"] == "true"
        assert dict(headers_old)["Link"] == \
            f'</v1{path}>; rel="successor-version"'
    # Submission works under /v1 too, and dedups against legacy submits.
    status, again, _ = (lambda s, b, h: (s, json.loads(b), h))(
        *app.respond("POST", "/v1/runs", {},
                     json.dumps({"config": {"seed": 6}}).encode()))
    assert status == 200 and again["dedup"] == "cached"


def test_unknown_legacy_path_gets_no_deprecation_header(app):
    status, body, headers = app.respond("GET", "/nope", {}, b"")
    assert status == 404
    assert "Deprecation" not in dict(headers)
    assert json.loads(body)["error"]["code"] == "not_found"


def test_every_error_validates_against_the_envelope(app):
    """Each non-2xx body is {"error": {code, message, hint}} with a
    known code — the docs/API.md contract."""
    from repro.service import ERROR_CODES

    probes = [
        ("POST", "/v1/runs", {}, b"{nope"),
        ("GET", "/v1/runs/999", {}, b""),
        ("GET", "/v1/runs/999/events", {"since": "-1"}, b""),
        ("GET", "/v1/nope", {}, b""),
        ("POST", "/v1/healthz", {}, b""),
        ("DELETE", "/v1/runs", {}, b""),
        ("GET", "/v1/runs", {"offset": "-3"}, b""),
    ]
    for method, path, query, body in probes:
        status, payload, _headers = app.respond(method, path, query, body)
        assert status >= 400, (method, path)
        envelope = json.loads(payload)
        assert set(envelope) == {"error"}, (method, path)
        error = envelope["error"]
        assert set(error) == {"code", "message", "hint"}, (method, path)
        assert error["code"] in ERROR_CODES, (method, path)
        assert error["message"], (method, path)


def test_healthz_reports_durability(app):
    status, health = call(app, "GET", "/v1/healthz")
    assert status == 200
    assert health["durable"] is False  # no state_dir in this fixture
    assert health["recovered_runs"] == 0


def test_admission_metrics_present_on_idle_app(app):
    gauges = app.service_metrics()
    assert gauges["service.admission.quota"] == 0.0
    assert gauges["service.admission.quota_rejections"] == 0.0
    assert gauges["service.admission.active_runs"] == 0.0
    assert "service.admission.mean_run_s" in gauges
    assert gauges["service.runs.recovered"] == 0


def test_submit_with_client_and_lane_lands_on_the_record(app):
    body = json.dumps({"config": {"seed": 11}, "client": "alice",
                       "lane": "interactive"}).encode()
    status, sub = call(app, "POST", "/v1/runs", body=body)
    assert status == 202
    view = wait_done(app, sub["run_id"])
    assert view["client"] == "alice" and view["lane"] == "interactive"


def test_quota_breach_is_429_with_retry_after(app):
    gate = threading.Event()
    app.queue._runner = lambda config: (gate.wait(10.0), fake_payload(config))[1]
    app.admission.quota = 1
    body = lambda seed: json.dumps(  # noqa: E731
        {"config": {"seed": seed}, "client": "greedy"}).encode()
    status, _, _ = app.respond("POST", "/v1/runs", {}, body(1))
    assert status == 202
    status, payload, headers = app.respond("POST", "/v1/runs", {}, body(2))
    assert status == 429
    envelope = json.loads(payload)
    assert envelope["error"]["code"] == "quota_exceeded"
    assert int(dict(headers)["Retry-After"]) >= 1
    # Another client's lane is unaffected by greedy's breach.
    other = json.dumps({"config": {"seed": 3}, "client": "light"}).encode()
    status, _, _ = app.respond("POST", "/v1/runs", {}, other)
    assert status == 202
    assert app.service_metrics()["service.admission.quota_rejections"] == 1
    gate.set()
    assert app.queue.drain(timeout=10.0)
    # Terminal runs release the quota: greedy can submit again.
    status, _, _ = app.respond("POST", "/v1/runs", {}, body(4))
    assert status == 202
    gate.set()
    assert app.queue.drain(timeout=10.0)


def test_cache_eviction_drops_store_payload(app):
    app.cache.max_bytes = 1  # next put evicts everything else
    _, a = submit(app, seed=1)
    wait_done(app, a["run_id"])
    _, b = submit(app, seed=2)
    wait_done(app, b["run_id"])
    assert app.store.get(a["run_id"]).payload is None
    status, _body = call(app, "GET", f"/runs/{a['run_id']}/report/ops")
    assert status == 410
    # The newest result is still servable.
    assert call(app, "GET", f"/runs/{b['run_id']}/report/ops")[0] == 200
