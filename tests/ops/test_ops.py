"""Tests for the iGOC, tickets, operations team, policies, milestones."""

import pytest

from repro.monitoring.acdc import ACDCDatabase, JobRecord
from repro.ops import (
    IGOC,
    AcceptableUsePolicy,
    MilestonesTracker,
    OperationsTeam,
    PAPER_TARGETS,
    SitePolicy,
    TroubleTicketSystem,
    audit_policy,
    policy_for_site,
)
from repro.sim import DAY, GB, HOUR, RngRegistry, TB

from ..conftest import make_site, wire_site


# --- tickets -------------------------------------------------------------

def test_ticket_lifecycle(eng):
    tts = TroubleTicketSystem(eng)
    ticket = tts.open_ticket("BNL_ATLAS", "gatekeeper down", severity="critical")
    assert ticket.open
    tts.assign(ticket.ticket_id, "bnl-admin")
    tts.log_effort(ticket.ticket_id, 2.0)
    eng.run(until=4 * HOUR)
    tts.resolve(ticket.ticket_id)
    assert not ticket.open
    assert ticket.time_to_resolve == pytest.approx(4 * HOUR)
    assert tts.mean_time_to_resolve() == pytest.approx(4 * HOUR)
    with pytest.raises(ValueError):
        tts.assign(ticket.ticket_id, "someone")


def test_ticket_effort_validation(eng):
    tts = TroubleTicketSystem(eng)
    t = tts.open_ticket("S", "x")
    with pytest.raises(ValueError):
        tts.log_effort(t.ticket_id, -1.0)


def test_open_tickets_filter_and_dedup(eng):
    tts = TroubleTicketSystem(eng)
    t1 = tts.open_ticket("A", "first")
    tts.open_ticket("B", "other")
    eng.run(until=1.0)
    tts.open_ticket("A", "second")
    assert len(tts.open_tickets()) == 3
    assert len(tts.open_tickets("A")) == 2
    assert tts.open_ticket_for_site("A") is t1  # oldest first


def test_support_fte(eng):
    tts = TroubleTicketSystem(eng)
    t = tts.open_ticket("A", "x")
    tts.log_effort(t.ticket_id, 80.0)  # 80 h over one week = 2 FTE
    assert tts.support_fte(0.0, 7 * DAY) == pytest.approx(2.0)
    assert tts.support_fte(5.0, 5.0) == 0.0


def test_responsibility_routing(eng):
    """§5.4/§8: support factorisation at the service level."""
    from repro.ops.tickets import responsible_party
    assert responsible_party("StorageFullError") == "site-admin"
    assert responsible_party("ServiceFailureError") == "site-admin"
    assert responsible_party("ApplicationError") == "vo-support"
    assert responsible_party("ReplicaNotFoundError") == "igoc"
    assert responsible_party("SomethingNovel") == "igoc"  # triage default
    tts = TroubleTicketSystem(eng)
    routed = tts.open_ticket("BNL_ATLAS", "disk filled",
                             failure_type="StorageFullError")
    assert routed.state == "assigned"
    assert routed.assignee == "site-admin"
    unrouted = tts.open_ticket("BNL_ATLAS", "unknown weirdness")
    assert unrouted.state == "open" and unrouted.assignee == ""


# --- operations team ------------------------------------------------------

def test_ops_team_repairs_dead_service(eng, net, rng):
    site = make_site(eng, net, "SiteA")
    wire_site(eng, site, [])
    igoc = IGOC(eng)
    OperationsTeam(eng, igoc, [site], rng, check_interval=1 * HOUR,
                   mean_response_time=2 * HOUR)
    site.service("gridftp").available = False
    eng.run(until=2 * DAY)
    assert site.service("gridftp").available
    assert len(igoc.tickets) >= 1
    resolved = [t for t in igoc.tickets._tickets.values() if not t.open]
    assert resolved and "gridftp down" in resolved[0].description


def test_ops_team_fixes_misconfiguration_and_purges_disk(eng, net, rng):
    site = make_site(eng, net, "SiteA", disk=10 * GB)
    wire_site(eng, site, [])
    site.attach_service("misconfigured", True)
    site.storage.store("/residue", 9.8 * GB)
    igoc = IGOC(eng)
    OperationsTeam(eng, igoc, [site], rng, check_interval=1 * HOUR,
                   mean_response_time=1 * HOUR)
    eng.run(until=2 * DAY)
    assert "misconfigured" not in site.services
    assert site.storage.used < 9.8 * GB


def test_ops_team_no_duplicate_tickets_while_repairing(eng, net, rng):
    site = make_site(eng, net, "SiteA")
    wire_site(eng, site, [])
    igoc = IGOC(eng)
    OperationsTeam(eng, igoc, [site], rng, check_interval=1 * HOUR,
                   mean_response_time=100 * HOUR)  # repairs take ages
    site.service("gatekeeper").available = False
    eng.run(until=10 * HOUR)
    # Many check intervals elapsed but only one ticket is open.
    assert len(igoc.tickets.open_tickets("SiteA")) == 1


def test_igoc_service_registry(eng):
    igoc = IGOC(eng)
    igoc.host("pacman-cache", object())
    igoc.host("top-giis", object())
    assert igoc.services() == ["pacman-cache", "top-giis"]
    assert igoc.service("top-giis") is not None
    with pytest.raises(KeyError):
        igoc.service("nope")


# --- policy ---------------------------------------------------------------

def test_aup_acceptance():
    aup = AcceptableUsePolicy()
    aup2 = aup.accept("usatlas").accept("uscms").accept("usatlas")
    assert aup2.is_accepted("usatlas") and aup2.is_accepted("uscms")
    assert not aup.is_accepted("usatlas")  # original untouched


def test_site_policy_admits(eng, net):
    site = make_site(eng, net, "SiteA", max_walltime=24 * HOUR)
    policy = policy_for_site(site, ["usatlas", "uscms"])
    assert policy.admits("usatlas", 10 * HOUR)
    assert not policy.admits("usatlas", 48 * HOUR)
    assert not policy.admits("ligo", 1 * HOUR)


def _record(site="S", vo="usatlas", runtime=HOUR, job_id=1):
    return JobRecord(
        job_id=job_id, name="j", vo=vo, user="u", site=site,
        submitted_at=0, started_at=0, finished_at=runtime,
        runtime=runtime, queue_time=0, succeeded=True,
        failure_category="", failure_type="", bytes_in=0, bytes_out=0,
    )


def test_audit_policy_detects_violations():
    db = ACDCDatabase()
    db.add(_record(vo="usatlas", runtime=10 * HOUR, job_id=1))
    db.add(_record(vo="ligo", runtime=1 * HOUR, job_id=2))      # VO not allowed
    db.add(_record(vo="usatlas", runtime=50 * HOUR, job_id=3))  # overrun
    policies = {"S": SitePolicy("S", 24 * HOUR, ("usatlas", "uscms"))}
    violations = audit_policy(db, policies)
    kinds = sorted(v.kind for v in violations)
    assert kinds == ["vo-not-allowed", "walltime-overrun"]
    # Sites without a published policy are skipped.
    db.add(_record(site="Unknown", vo="ligo", job_id=4))
    assert len(audit_policy(db, policies)) == 2


# --- milestones --------------------------------------------------------------

def test_milestones_table():
    tracker = MilestonesTracker()
    tracker.record("cpus", 2148)
    tracker.record("users", 102)
    tracker.record("support_fte", 1.5)
    tracker.record("resource_utilisation", 0.55)
    cpus = tracker.milestone("cpus")
    assert cpus.met and cpus.target == 400 and cpus.paper_actual == 2163
    assert tracker.milestone("support_fte").met       # smaller is better
    assert not tracker.milestone("resource_utilisation").met  # 55 % < 90 %
    assert tracker.met_count() == 3
    table = tracker.render()
    assert "Number of CPUs" in table and "2148" in table


def test_milestones_unknown_key():
    with pytest.raises(KeyError):
        MilestonesTracker().record("nonsense", 1.0)


def test_paper_targets_complete():
    tracker = MilestonesTracker()
    assert set(tracker.DESCRIPTIONS) == set(PAPER_TARGETS)
    assert len(tracker.milestones()) == 9
