"""The alerting/SLO engine: rules, evaluation, the iGOC ticket loop."""

import pytest

from repro.errors import ConfigurationError
from repro.monitoring.core import MetricSample, MetricStore
from repro.ops.alerts import (
    AlertEngine,
    AlertMonitor,
    AlertRule,
    default_rules,
    lint_rules,
    service_rules,
)
from repro.ops.igoc import IGOC
from repro.sim.engine import Engine
from repro.sim.units import HOUR


def up_series(store, values, step=HOUR, name="service.gatekeeper.up"):
    t = 0.0
    for value in values:
        store.append(MetricSample(t, name, value))
        t += step
    return t


# -- rule validation --------------------------------------------------------

def test_rule_validation_rejects_bad_fields():
    good = AlertRule(name="r", metric="m", threshold=1.0)
    assert good.validate() is good
    for bad in (
        dict(name="", metric="m", threshold=1.0),
        dict(name="r", metric="", threshold=1.0),
        dict(name="r", metric="m", threshold=1.0, kind="nope"),
        dict(name="r", metric="m", threshold=1.0, op="!="),
        dict(name="r", metric="m", threshold=1.0, aggregate="median"),
        dict(name="r", metric="m", threshold=1.0, window=0.0),
        dict(name="r", metric="m", threshold=1.0, kind="burn_rate",
             slo_target=1.5),
        dict(name="r", metric="m", threshold=1.0, severity="mild"),
    ):
        with pytest.raises(ConfigurationError):
            AlertRule(**bad).validate()


def test_from_dict_rejects_unknown_keys():
    rule = AlertRule.from_dict(
        {"name": "r", "metric": "m", "threshold": 0.5})
    assert rule.threshold == 0.5
    with pytest.raises(ConfigurationError, match="unknown alert-rule key"):
        AlertRule.from_dict(
            {"name": "r", "metric": "m", "threshold": 0.5, "tresh": 1})


# -- evaluation -------------------------------------------------------------

def test_threshold_rule_windowed_mean():
    store = MetricStore()
    rule = AlertRule(name="down", metric="service.gatekeeper.up",
                     threshold=0.9, op="<", aggregate="mean",
                     window=6 * HOUR)
    assert rule.evaluate(store, 0.0) is None  # no data yet
    now = up_series(store, [1, 1, 1, 1, 1, 1])
    assert rule.evaluate(store, now) is False
    now = up_series(store, [0, 0, 0, 0])  # fleet sags
    assert rule.evaluate(store, now + 10 * HOUR) is True or \
        rule.evaluate(store, now) is True


def test_latest_aggregate_goes_stale_outside_window():
    store = MetricStore()
    store.append(MetricSample(0.0, "depth", 10.0))
    rule = AlertRule(name="backlog", metric="depth", threshold=5.0,
                     op=">=", aggregate="latest", window=100.0,
                     store="s")
    assert rule.evaluate(store, 50.0) is True
    assert rule.evaluate(store, 500.0) is None  # sample aged out


def test_burn_rate_rule():
    store = MetricStore()
    # 80% up against a 95% SLO: error rate 0.2 / budget 0.05 = 4x burn.
    now = up_series(store, [1, 1, 1, 1, 0])
    rule = AlertRule(name="burn", metric="service.gatekeeper.up",
                     kind="burn_rate", slo_target=0.95, threshold=2.0,
                     window=24 * HOUR)
    assert rule.evaluate(store, now) is True
    assert rule.current_value(store, now) == pytest.approx(4.0)
    # 100% up burns nothing.
    clean = MetricStore()
    now = up_series(clean, [1, 1, 1, 1, 1])
    assert rule.evaluate(clean, now) is False


def test_engine_emits_edges_and_holds_state_on_missing_data():
    store = MetricStore()
    rule = AlertRule(name="down", metric="up", threshold=0.9, op="<",
                     aggregate="mean", window=2 * HOUR, store="s")
    engine = AlertEngine([rule], {"s": store})
    assert engine.evaluate(0.0) == []  # no data: no edge

    now = up_series(store, [0, 0], name="up")
    edges = engine.evaluate(now)
    assert [e.event for e in edges] == ["fired"]
    assert engine.firing()[0].rule.name == "down"
    # Level (still firing) produces no new edge.
    assert engine.evaluate(now) == []
    # Missing data (window moved past all samples) holds state.
    assert engine.evaluate(now + 100 * HOUR) == []
    assert engine.states["down"].firing

    now2 = up_series(store, [1, 1], name="up") + 100 * HOUR
    # Fresh healthy samples inside the window resolve it.
    for sample_time, value in ((now2, 1.0), (now2 + HOUR, 1.0)):
        store.append(MetricSample(sample_time, "up", value))
    edges = engine.evaluate(now2 + HOUR)
    assert [e.event for e in edges] == ["resolved"]
    assert engine.firing() == []
    assert [t.event for t in engine.history] == ["fired", "resolved"]


def test_engine_rejects_duplicate_rule_names():
    rule = AlertRule(name="r", metric="m", threshold=1.0)
    with pytest.raises(ConfigurationError, match="duplicate"):
        AlertEngine([rule, rule], {})


# -- the in-sim iGOC loop ---------------------------------------------------

def test_alert_monitor_opens_and_resolves_igoc_ticket():
    engine = Engine()
    igoc = IGOC(engine)
    store = MetricStore()
    rule = AlertRule(name="gatekeeper-fleet-down",
                     metric="service.gatekeeper.up",
                     threshold=0.9, op="<", aggregate="mean",
                     window=2 * HOUR, store="service-health",
                     severity="critical")
    monitor = AlertMonitor(engine, igoc, [rule],
                           {"service-health": store}, interval=HOUR)

    def feed():
        # Down for hours 1-4, healthy afterwards.
        while True:
            yield engine.timeout(HOUR)
            value = 0.0 if 1 * HOUR <= engine.now <= 4 * HOUR else 1.0
            store.append(MetricSample(
                engine.now, "service.gatekeeper.up", value))

    engine.process(feed(), name="feeder")
    engine.run(until=12 * HOUR)

    tickets = igoc.tickets.all_tickets(site="grid")
    assert len(tickets) == 1
    ticket = tickets[0]
    assert ticket.severity == "critical"
    assert ticket.assignee == "igoc"
    assert "gatekeeper-fleet-down" in ticket.description
    assert ticket.resolved_at > ticket.opened_at  # opened AND resolved
    assert any("cleared" in note for note in ticket.notes)
    assert monitor.evaluations > 0
    assert [t.event for t in monitor.alert_engine.history] == \
        ["fired", "resolved"]


def test_grid3_alerts_knob_wires_monitor():
    from repro.core.grid3 import Grid3, Grid3Config
    grid = Grid3(Grid3Config(scale=3000.0, duration_days=0.05,
                             apps=["exerciser"], seed=7, alerts=True))
    grid.run_full()
    assert grid.alert_monitor is not None
    names = [r.name for r in grid.alert_monitor.alert_engine.rules]
    assert "gatekeeper-fleet-down" in names
    off = Grid3(Grid3Config(scale=3000.0, duration_days=0.05,
                            apps=["exerciser"], seed=7))
    off.run_full()
    assert off.alert_monitor is None


# -- lint -------------------------------------------------------------------

def test_lint_rules_flags_unknown_metrics_and_dupes():
    rules = [
        AlertRule(name="a", metric="known", threshold=1.0),
        AlertRule(name="a", metric="known", threshold=1.0),
        AlertRule(name="b", metric="ghost", threshold=1.0),
    ]
    problems = lint_rules(rules, ["known"])
    assert any("duplicate" in p for p in problems)
    assert any("ghost" in p for p in problems)
    assert lint_rules([rules[0]], ["known"]) == []


def test_shipped_rule_sets_are_structurally_valid():
    sim_metrics = {rule.metric for rule in default_rules()}
    assert lint_rules(default_rules(), sim_metrics) == []
    live = service_rules(64, 2)
    assert lint_rules(live, {rule.metric for rule in live}) == []
    assert {rule.store for rule in live} == {"service"}
