"""Tests for the iGOC weekly operations report."""

import pytest

from repro import Grid3, Grid3Config
from repro.failures import FailureProfile
from repro.monitoring.acdc import ACDCDatabase, JobRecord
from repro.ops.reports import (
    failure_hotspots,
    production_summary,
    ticket_summary,
    weekly_report,
)
from repro.ops.tickets import TroubleTicketSystem
from repro.sim import DAY, HOUR


def record(i, vo="usatlas", site="S0", t=DAY, runtime=HOUR, ok=True, ftype=""):
    return JobRecord(
        job_id=i, name=f"j{i}", vo=vo, user="u", site=site,
        submitted_at=t - runtime, started_at=t - runtime, finished_at=t,
        runtime=runtime, queue_time=0, succeeded=ok,
        failure_category="" if ok else "site",
        failure_type=ftype if not ok else "",
        bytes_in=0, bytes_out=0,
    )


def test_production_summary_sorted_by_cpu():
    db = ACDCDatabase()
    db.add(record(1, vo="uscms", runtime=10 * HOUR))
    db.add(record(2, vo="btev", runtime=1 * HOUR))
    db.add(record(3, vo="btev", runtime=1 * HOUR, ok=False, ftype="NodeFailureError"))
    rows = production_summary(db, 0.0, 2 * DAY)
    assert rows[0][0] == "uscms"
    btev = next(r for r in rows if r[0] == "btev")
    assert btev[1] == 2 and btev[2] == pytest.approx(0.5)


def test_failure_hotspots_ranks_and_labels():
    db = ACDCDatabase()
    for i in range(10):
        db.add(record(i, site="Bad", ok=i >= 6,
                      ftype="StorageFullError" if i < 4 else "NodeFailureError"))
    for i in range(10, 20):
        db.add(record(i, site="Good"))
    hotspots = failure_hotspots(db, 0.0, 2 * DAY)
    assert len(hotspots) == 1
    site, jobs, rate, dominant = hotspots[0]
    assert site == "Bad" and jobs == 10
    assert rate == pytest.approx(0.6)
    assert dominant == "StorageFullError"


def test_failure_hotspots_min_jobs_threshold():
    db = ACDCDatabase()
    db.add(record(1, site="Tiny", ok=False, ftype="X"))
    assert failure_hotspots(db, 0.0, 2 * DAY, min_jobs=5) == []


def test_ticket_summary(eng):
    tts = TroubleTicketSystem(eng)
    t1 = tts.open_ticket("A", "x")
    tts.log_effort(t1.ticket_id, 3.0)
    eng.run(until=2 * HOUR)
    tts.resolve(t1.ticket_id)
    tts.open_ticket("B", "y")
    summary = ticket_summary(tts, 0.0, DAY)
    assert summary["opened"] == 2
    assert summary["resolved"] == 1
    assert summary["still_open"] == 1
    assert summary["mean_hours_to_resolve"] == pytest.approx(2.0)
    assert summary["effort_hours"] == 3.0


def test_weekly_report_end_to_end():
    grid = Grid3(Grid3Config(
        seed=19, scale=500, duration_days=8,
        apps=["ivdgl", "exerciser"],
        failures=FailureProfile.calm(),
    ))
    grid.run_full()
    report = weekly_report(grid, week_index=0)
    assert "Grid3 Operations Report" in report
    assert "2003-10-23" in report          # the epoch week
    assert "Site health:" in report
    assert "Production by VO" in report
    assert "Data moved:" in report
    assert "Tickets:" in report
    # A later (clamped) week also renders.
    report2 = weekly_report(grid, week_index=5)
    assert "Operations Report" in report2
