"""Tests for the §8 troubleshooting APIs and the auto-validator."""

import pytest

from repro.core.job import Job, JobSpec
from repro.middleware.mds import GRIS
from repro.ops.autovalidate import AutoValidator
from repro.ops.troubleshooting import JobLinkIndex, TroubleshootingAPI
from repro.monitoring.acdc import ACDCDatabase, JobRecord
from repro.scheduling.condorg import GridJobHandle
from repro.sim import DAY, HOUR, MINUTE

from ..conftest import make_grid_fragment, make_site, wire_site


def spec(name="j", runtime=HOUR):
    return JobSpec(name=name, vo="usatlas", user="alice", runtime=runtime,
                   walltime_request=4 * HOUR)


# --- JobLinkIndex ----------------------------------------------------------

def test_job_link_roundtrip(eng, net, ca):
    """§8: 'link a job ID on the execution side with a job ID at the
    submit (VO) side'."""
    from repro.scheduling.condorg import CondorG
    sites, _giis, proxy = make_grid_fragment(eng, net, ca)
    cg = CondorG(eng, "submit", sites, proxy_provider=lambda u: proxy)
    handle = cg.submit(spec(), "Frag0")
    eng.run()
    index = JobLinkIndex()
    link = index.register(handle)
    assert len(index) == 1
    exec_id = handle.job.job_id
    # Execution-side -> submit-side.
    back = index.submit_side(exec_id)
    assert back is not None and back.submit_id == link.submit_id
    assert back.sites_tried == ("Frag0",)
    assert back.final_state == "done"
    # Submit-side -> execution-side.
    assert index.execution_side(link.submit_id) == (exec_id,)
    assert index.submit_side(999999) is None
    assert index.execution_side(999999) == ()


# --- TroubleshootingAPI --------------------------------------------------------

@pytest.fixture
def api_with_run(eng, net, ca):
    sites, _giis, proxy = make_grid_fragment(eng, net, ca)
    from repro.scheduling.condorg import CondorG
    cg = CondorG(eng, "submit", sites, proxy_provider=lambda u: proxy)
    handles = [cg.submit(spec(name=f"j{i}"), "Frag0") for i in range(4)]
    eng.run()
    db = ACDCDatabase()
    for site in sites.values():
        for job in site.service("lrm").completed:
            db.add(JobRecord.from_job(job))
    return TroubleshootingAPI(sites, db), handles, sites


def test_job_timeline(api_with_run):
    api, handles, _sites = api_with_run
    timeline = api.job_timeline(handles[0].job.job_id)
    events = [e for _t, e in timeline]
    assert events == ["submitted", "started", "completed"]
    times = [t for t, _e in timeline]
    assert times == sorted(times)
    assert api.job_timeline(10**9) == []


def test_gram_accounting_no_log_parsing(api_with_run):
    api, _handles, sites = api_with_run
    acct = api.gram_accounting("Frag0")
    assert acct["accepted"] == 4
    assert acct["managed_jobs"] == 0  # all finished
    assert acct["peak_load"] > 0
    assert api.gram_accounting("Frag1")["accepted"] == 0


def test_gridftp_accounting(api_with_run):
    api, _handles, _sites = api_with_run
    acct = api.gridftp_accounting("Frag0")
    assert acct["failure_rate"] == 0.0
    assert "bytes_sent" in acct


def test_error_summary_and_worst_sites():
    db = ACDCDatabase()
    for i in range(10):
        ok = i >= 4
        db.add(JobRecord(
            job_id=i, name=f"j{i}", vo="usatlas", user="u",
            site="BadSite" if i < 6 else "GoodSite",
            submitted_at=0, started_at=1, finished_at=2,
            runtime=1, queue_time=1, succeeded=ok,
            failure_category="" if ok else "site",
            failure_type="" if ok else ("StorageFullError" if i < 2 else "NodeFailureError"),
            bytes_in=0, bytes_out=0,
        ))
    api = TroubleshootingAPI({}, db)
    summary = api.error_summary()
    assert summary == {"StorageFullError": 2, "NodeFailureError": 2}
    worst = api.worst_sites(min_jobs=3)
    assert worst[0][0] == "BadSite"
    assert worst[0][1] > worst[-1][1]


def test_stuck_jobs(eng, net):
    site = make_site(eng, net, "SiteA", cpus=1, max_walltime=300 * HOUR)
    wire_site(eng, site, [])
    lrm = site.service("lrm")
    lrm.submit(Job(spec=JobSpec(
        name="running", vo="usatlas", user="alice",
        runtime=100 * HOUR, walltime_request=200 * HOUR,
    )))
    stuck_job = Job(spec=spec(name="stuck"))
    lrm.submit(stuck_job)
    eng.run(until=30 * HOUR)
    api = TroubleshootingAPI({"SiteA": site}, ACDCDatabase())
    stuck = api.stuck_jobs(now=eng.now, max_queue_age=24 * HOUR)
    assert stuck == [stuck_job]
    assert api.stuck_jobs(now=eng.now, max_queue_age=100 * HOUR) == []


# --- AutoValidator ----------------------------------------------------------------

def prepare_site(eng, net, name="SiteA"):
    site = make_site(eng, net, name)
    wire_site(eng, site, [])
    site.attach_service("gris", GRIS(eng, site))
    from repro.middleware.vdt import REQUIRED_PACKAGES
    site.installed_packages.update(REQUIRED_PACKAGES)
    return site


def test_autovalidator_fixes_misconfiguration(eng, net):
    site = prepare_site(eng, net)
    site.attach_service("misconfigured", True)
    validator = AutoValidator(eng, [site], interval=30 * MINUTE)
    eng.run(until=1 * HOUR)
    assert "misconfigured" not in site.services
    assert validator.fixes_applied >= 1
    # Later passes are clean; the site shows as stable.
    eng.run(until=3 * HOUR)
    assert site.name in validator.stable_sites()
    assert 0 <= validator.time_to_stable(site.name) <= 2 * HOUR


def test_autovalidator_restarts_dead_services(eng, net):
    site = prepare_site(eng, net)
    site.service("gridftp").available = False
    AutoValidator(eng, [site], interval=30 * MINUTE)
    eng.run(until=1 * HOUR)
    assert site.service("gridftp").available


def test_autovalidator_escalates_missing_packages(eng, net):
    site = prepare_site(eng, net)
    site.installed_packages.discard("vdt-base")
    escalated = []
    validator = AutoValidator(
        eng, [site], interval=30 * MINUTE,
        escalate=lambda name, problems: escalated.append((name, problems)),
    )
    eng.run(until=1 * HOUR)
    assert escalated
    assert any("vdt-base" in p for _n, ps in escalated for p in ps)
    assert validator.escalations >= 1
    assert site.name not in validator.stable_sites()
    assert validator.time_to_stable(site.name) == -1.0


def test_autovalidator_immediate_feedback_is_fast(eng, net):
    """The §8 ask is 'immediate feedback': fixes land within minutes of
    a pass, far faster than the human ops loop's hours."""
    site = prepare_site(eng, net)
    site.attach_service("misconfigured", True)
    validator = AutoValidator(eng, [site], interval=30 * MINUTE,
                              fix_time=5 * MINUTE)
    eng.run(until=10 * MINUTE)
    assert "misconfigured" not in site.services
