"""Shared fixtures: a small wired grid fragment for middleware tests."""

import pytest

from repro.fabric import Network, Site, SiteConfig
from repro.middleware.gridftp import attach_gridftp
from repro.middleware.gsi import Authenticator, CertificateAuthority, GridMapFile
from repro.sim import Engine, GB, RngRegistry, TB


@pytest.fixture
def eng():
    return Engine()


@pytest.fixture
def rng():
    return RngRegistry(42)


def make_site(eng, net, name, vo="usatlas", cpus=4, disk=1 * TB, bw=1e8, **cfg):
    """A minimal live site with a GridFTP server attached."""
    site = Site(
        eng,
        name=name,
        institution=f"{name} U.",
        owner_vo=vo,
        nodes=cpus,
        cpus_per_node=1,
        disk_capacity=disk,
        network=net,
        access_bandwidth=bw,
        config=SiteConfig(**cfg) if cfg else None,
    )
    attach_gridftp(eng, site, setup_latency=0.0)
    return site


@pytest.fixture
def net(eng):
    return Network(eng)


@pytest.fixture
def two_sites(eng, net):
    return make_site(eng, net, "SiteA"), make_site(eng, net, "SiteB", vo="uscms")


def wire_site(eng, site, gridmap_dns=(), runner=None):
    """Attach authenticator, gatekeeper and batch scheduler to a site."""
    from repro.middleware.gram import attach_gatekeeper
    from repro.scheduling.flavors import make_scheduler

    gridmap = GridMapFile()
    for dn, account in gridmap_dns:
        gridmap.add(dn, account)
    auth = Authenticator(eng, ["doegrids"], gridmap)
    site.attach_service("authenticator", auth)
    gk = attach_gatekeeper(eng, site, auth)
    lrm = make_scheduler(eng, site, runner)
    gk.lrm = lrm
    site.attach_service("lrm", lrm)
    return site


def make_grid_fragment(eng, net, ca, n_sites=3, cpus=4, user_dn="/CN=alice", runner=None, **site_kw):
    """A few fully wired sites + a top GIIS + a proxy for one user.

    Returns (sites dict, giis, proxy).
    """
    from repro.middleware.mds import GIIS, GRIS

    cert = ca.issue(user_dn)
    proxy = ca.make_proxy(cert, lifetime=10 * 365 * 24 * 3600.0)
    giis = GIIS(eng, "giis-frag")
    sites = {}
    for i in range(n_sites):
        site = make_site(eng, net, f"Frag{i}", cpus=cpus, **site_kw)
        wire_site(eng, site, [(user_dn, "grid-usatlas")], runner=runner)
        gris = GRIS(eng, site, ttl=0.0)
        site.attach_service("gris", gris)
        giis.register(site.name, gris)
        sites[site.name] = site
    return sites, giis, proxy


@pytest.fixture
def ca(eng):
    return CertificateAuthority("doegrids", eng)


@pytest.fixture
def authed(eng, ca):
    """(authenticator, proxy) pair where the proxy's DN is mapped."""
    cert = ca.issue("/CN=alice")
    proxy = ca.make_proxy(cert)
    gridmap = GridMapFile()
    gridmap.add("/CN=alice", "grid-usatlas")
    return Authenticator(eng, ["doegrids"], gridmap), proxy
