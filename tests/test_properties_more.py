"""Additional property-based suites: resource priorities, SRM
reservations, max-min fairness, DAG rescue composition."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReservationError, StorageFullError
from repro.fabric import Network, StorageElement
from repro.middleware.srm import SRMService
from repro.sim import Engine, Resource


@settings(max_examples=40, deadline=None)
@given(
    priorities=st.lists(st.integers(min_value=0, max_value=5),
                        min_size=2, max_size=20)
)
def test_property_resource_grants_follow_priority(priorities):
    """With one slot held, queued requests are granted strictly by
    (priority, arrival) order as the slot cycles."""
    eng = Engine()
    res = Resource(eng, 1)
    blocker = res.request()
    eng.run()
    granted_order = []
    requests = []
    for i, priority in enumerate(priorities):
        req = res.request(priority=priority)
        req.callbacks.append(lambda ev, i=i: granted_order.append(i))
        requests.append(req)
    # Cycle the slot: release, let next grab it, release again...
    res.release(blocker)
    eng.run()
    while len(granted_order) < len(priorities):
        last = requests[granted_order[-1]]
        res.release(last)
        eng.run()
    expected = sorted(range(len(priorities)),
                      key=lambda i: (priorities[i], i))
    assert granted_order == expected


@settings(max_examples=50, deadline=None)
@given(
    amounts=st.lists(st.floats(min_value=0.1, max_value=40.0),
                     min_size=1, max_size=25),
    releases=st.lists(st.booleans(), min_size=25, max_size=25),
)
def test_property_srm_never_oversubscribes(amounts, releases):
    """Reservations granted by SRM always fit; accounting never goes
    negative; releases return exactly the unused space."""
    eng = Engine()
    se = StorageElement(eng, "prop", 100.0)
    srm = SRMService(eng, se)
    live = []
    for amount, release_one in zip(amounts, releases):
        try:
            res = srm.prepare_to_put(amount)
            live.append(res)
        except ReservationError:
            # Denial must mean it truly did not fit.
            assert amount > se.free + 1e-6
        if release_one and live:
            srm.put_done(live.pop(0))
        assert 0 <= se.reserved <= se.capacity + 1e-9
        assert se.used + se.reserved <= se.capacity + 1e-6
    for res in live:
        srm.put_done(res)
    assert se.reserved == pytest.approx(0.0, abs=1e-9)


@settings(max_examples=30, deadline=None)
@given(
    n_flows=st.integers(min_value=2, max_value=10),
    bw=st.floats(min_value=10.0, max_value=1000.0),
)
def test_property_single_link_fair_share_is_equal(n_flows, bw):
    """Max-min on one link is an equal split, and the link is fully
    utilised while any flow remains."""
    eng = Engine()
    net = Network(eng)
    net.add_link("l", bw)
    flows = [net.start_transfer(["l"], 1e9) for _ in range(n_flows)]
    rates = {f.rate for f in flows}
    assert len(rates) == 1
    assert sum(f.rate for f in flows) == pytest.approx(bw, rel=1e-9)


@settings(max_examples=30, deadline=None)
@given(data=st.data())
def test_property_rescue_of_rescue_is_stable(data):
    """rescue(rescue(dag)) == rescue(dag) structurally (idempotence on
    untouched rescues)."""
    from repro.core.job import JobSpec
    from repro.workflow.dag import DAG, NodeState

    n = data.draw(st.integers(min_value=1, max_value=10))
    dag = DAG("r")
    for i in range(n):
        dag.add_job(f"n{i}", JobSpec(name="x", vo="sdss", user="u", runtime=1.0))
    for i in range(n):
        for j in range(i + 1, n):
            if data.draw(st.booleans()):
                dag.add_edge(f"n{i}", f"n{j}")
    # Random terminal states.
    for node in dag.nodes():
        node.state = data.draw(st.sampled_from(
            [NodeState.DONE, NodeState.FAILED, NodeState.WAITING]
        ))
    r1 = dag.rescue_dag()
    r2 = r1.rescue_dag()
    assert {x.node_id for x in r1.nodes()} == {x.node_id for x in r2.nodes()}
    for node in r2.nodes():
        assert {p.node_id for p in r2.parents(node.node_id)} == \
            {p.node_id for p in r1.parents(node.node_id)}
