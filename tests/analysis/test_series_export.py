"""Tests for the time-series utilities and the CSV export round-trip."""

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.export import (
    CSV_FIELDS,
    export_database,
    export_records,
    import_records,
    record_to_row,
    row_to_record,
)
from repro.analysis.series import (
    bin_events,
    cumulative,
    interval_occupancy,
    moving_average,
    percentile_summary,
    rate_per_day,
)
from repro.monitoring.acdc import ACDCDatabase, JobRecord
from repro.sim import DAY, HOUR


# --- series -----------------------------------------------------------------

def test_bin_events_counts():
    series = bin_events([0.5, 1.5, 1.7, 9.0], t0=0.0, t1=10.0, bin_width=1.0)
    assert len(series) == 10
    values = dict(series)
    assert values[0.0] == 1 and values[1.0] == 2 and values[9.0] == 1
    assert values[5.0] == 0


def test_bin_events_weights_and_validation():
    series = bin_events([0.5, 0.6], 0.0, 1.0, 1.0, weights=[2.0, 3.0])
    assert series == [(0.0, 5.0)]
    with pytest.raises(ValueError):
        bin_events([], 0.0, 1.0, 0.0)
    with pytest.raises(ValueError):
        bin_events([], 1.0, 1.0, 1.0)


def test_interval_occupancy_basic():
    # One interval covering [0, 2) fully and half of [2, 4).
    series = interval_occupancy([(0.0, 3.0)], 0.0, 4.0, 2.0)
    assert series == [(0.0, 1.0), (2.0, 0.5)]


def test_interval_occupancy_overlap_counts():
    series = interval_occupancy([(0.0, 2.0), (0.0, 2.0), (1.0, 2.0)], 0.0, 2.0, 2.0)
    assert series[0][1] == pytest.approx(2.5)  # 2 + 2 + 1 seconds over 2


def test_interval_occupancy_clips_window():
    series = interval_occupancy([(-10.0, 100.0)], 0.0, 4.0, 2.0)
    assert [v for _t, v in series] == [1.0, 1.0]


def test_cumulative():
    assert cumulative([(0, 1.0), (1, 2.0), (2, 3.0)]) == [
        (0, 1.0), (1, 3.0), (2, 6.0)
    ]


def test_moving_average():
    series = [(0, 0.0), (1, 2.0), (2, 4.0)]
    out = moving_average(series, window=2)
    assert out == [(0, 0.0), (1, 1.0), (2, 3.0)]
    with pytest.raises(ValueError):
        moving_average(series, 0)


def test_percentile_summary():
    summary = percentile_summary(list(range(101)))
    assert summary["min"] == 0 and summary["max"] == 100
    assert summary["p50"] == 50
    assert summary["p99"] == 99
    assert percentile_summary([]) == {}


def test_rate_per_day():
    series = [(0.0, 10.0), (DAY, 20.0)]
    assert rate_per_day(series) == pytest.approx(30.0)
    assert rate_per_day([]) == 0.0


@settings(max_examples=40, deadline=None)
@given(
    intervals=st.lists(
        st.tuples(st.floats(0, 100), st.floats(0, 100)).map(
            lambda ab: (min(ab), max(ab))
        ),
        max_size=20,
    )
)
def test_property_occupancy_conserves_time(intervals):
    """Property: total occupancy time equals total in-window interval
    length."""
    series = interval_occupancy(intervals, 0.0, 100.0, 10.0)
    total_from_bins = sum(v for _t, v in series) * 10.0
    total_direct = sum(
        max(0.0, min(100.0, e) - max(0.0, s)) for s, e in intervals
    )
    assert total_from_bins == pytest.approx(total_direct, abs=1e-6)


# --- export ------------------------------------------------------------------

def sample_record(i=1, ok=True):
    return JobRecord(
        job_id=i, name=f"job-{i}", vo="uscms", user="cms-user01",
        site="FNAL_CMS", submitted_at=1.5, started_at=100.25,
        finished_at=4000.125, runtime=3899.875, queue_time=98.75,
        succeeded=ok, failure_category="" if ok else "site",
        failure_type="" if ok else "StorageFullError",
        bytes_in=1e9, bytes_out=2.5e9,
    )


def test_row_roundtrip_exact():
    record = sample_record(ok=False)
    assert row_to_record(record_to_row(record)) == record


def test_row_length_validation():
    with pytest.raises(ValueError):
        row_to_record(["too", "short"])


def test_export_import_database():
    db = ACDCDatabase()
    for i in range(5):
        db.add(sample_record(i, ok=i % 2 == 0))
    text = export_database(db)
    assert text.splitlines()[0] == ",".join(CSV_FIELDS)
    restored = import_records(text)
    assert len(restored) == 5
    assert restored.records() == db.records()
    assert restored.success_rate() == db.success_rate()


def test_export_to_stream():
    buffer = io.StringIO()
    export_records([sample_record()], destination=buffer)
    assert "FNAL_CMS" in buffer.getvalue()


def test_import_rejects_bad_header():
    with pytest.raises(ValueError):
        import_records("not,a,real,header\n1,2,3,4\n")


@settings(max_examples=30, deadline=None)
@given(
    runtime=st.floats(min_value=0, max_value=1e7, allow_nan=False),
    nbytes=st.floats(min_value=0, max_value=1e13, allow_nan=False),
    ok=st.booleans(),
)
def test_property_roundtrip_preserves_floats(runtime, nbytes, ok):
    """Property: repr-based float serialisation is lossless."""
    record = JobRecord(
        job_id=1, name="j", vo="v", user="u", site="s",
        submitted_at=0.0, started_at=0.0, finished_at=runtime,
        runtime=runtime, queue_time=0.0, succeeded=ok,
        failure_category="", failure_type="", bytes_in=nbytes, bytes_out=0.0,
    )
    assert row_to_record(record_to_row(record)) == record
