"""Tests for the shape-comparison scorer."""

import pytest

from repro.analysis.compare import (
    ShapeCheck,
    agreement_report,
    compare_figure5,
    compare_figure6,
    compare_table1,
)
from repro.analysis.table1 import PAPER_TABLE1, Table1Row
from repro.monitoring.transfers import TransferLedger
from repro.sim import DAY, TB


def row(cls, jobs, avg_hr, cpu_days, peak_month="11-2003", max_pct=50.0):
    return Table1Row(
        cls=cls, users=5, sites_used=10, jobs=jobs,
        avg_runtime_hr=avg_hr, max_runtime_hr=avg_hr * 10,
        total_cpu_days=cpu_days, peak_month=peak_month,
        peak_month_jobs=jobs // 2, peak_resources=5,
        max_single_resource_jobs=jobs // 4,
        max_single_resource_pct=max_pct, peak_month_cpu_days=cpu_days / 2,
    )


def paper_shaped_rows():
    return {
        "Exerciser": row("Exerciser", 198272, 0.13, 1034, "12-2003", 8.0),
        "iVDGL": row("iVDGL", 58145, 1.22, 2946, "11-2003", 88.0),
        "USCMS": row("USCMS", 19354, 41.85, 33750),
        "USATLAS": row("USATLAS", 7455, 8.81, 2736, max_pct=28.0),
        "SDSS": row("SDSS", 5410, 1.46, 329, "02-2004"),
        "BTEV": row("BTEV", 2598, 1.77, 192, max_pct=60.0),
        "LIGO": row("LIGO", 3, 0.01, 0.01, "12-2003"),
    }


def test_paper_shaped_table_passes_all_checks():
    checks = compare_table1(paper_shaped_rows())
    failing = [c for c in checks if not c.passed]
    assert failing == []


def test_missing_class_short_circuits():
    rows = paper_shaped_rows()
    del rows["LIGO"]
    checks = compare_table1(rows)
    assert len(checks) == 1
    assert not checks[0].passed
    assert "LIGO" in checks[0].detail


def test_wrong_ordering_detected():
    rows = paper_shaped_rows()
    rows["USATLAS"] = row("USATLAS", 7455, 60.0, 2736)  # now beats USCMS
    checks = compare_table1(rows)
    names = {c.name: c.passed for c in checks}
    assert not names["USCMS longest mean runtime"]


def test_wrong_peak_month_detected():
    rows = paper_shaped_rows()
    rows["USCMS"] = row("USCMS", 19354, 41.85, 33750, peak_month="02-2004")
    checks = compare_table1(rows)
    names = {c.name: c.passed for c in checks}
    assert not names["USCMS peaks in 11-2003"]


def test_continual_production_check():
    rows = paper_shaped_rows()
    checks = {c.name: c for c in compare_table1(rows)}
    claim = checks["continual production (peak month holds a minority of CPU)"]
    # paper_shaped_rows gives every class peak_cpu = total/2 (50 %) — ok.
    assert claim.passed
    # Concentrate everything into the peak month: the claim fails.
    concentrated = paper_shaped_rows()
    for cls in ("USCMS", "USATLAS", "iVDGL", "SDSS"):
        r = concentrated[cls]
        concentrated[cls] = Table1Row(
            cls=r.cls, users=r.users, sites_used=r.sites_used, jobs=r.jobs,
            avg_runtime_hr=r.avg_runtime_hr, max_runtime_hr=r.max_runtime_hr,
            total_cpu_days=r.total_cpu_days, peak_month=r.peak_month,
            peak_month_jobs=r.peak_month_jobs, peak_resources=r.peak_resources,
            max_single_resource_jobs=r.max_single_resource_jobs,
            max_single_resource_pct=r.max_single_resource_pct,
            peak_month_cpu_days=r.total_cpu_days * 0.95,
        )
    checks2 = {c.name: c for c in compare_table1(concentrated)}
    assert not checks2[claim.name].passed


def test_figure5_checks():
    ledger = TransferLedger()
    for day in range(30):
        ledger.record(day * DAY + 1, "ivdgl", 2.5 * TB, "A", "B")
        ledger.record(day * DAY + 2, "uscms", 0.5 * TB, "B", "C")
    checks = compare_figure5(ledger, 0.0, 30 * DAY, rescale=1.0)
    assert all(c.passed for c in checks)
    # An empty ledger fails everything.
    empty = compare_figure5(TransferLedger(), 0.0, 30 * DAY, rescale=1.0)
    assert not any(c.passed for c in empty)


def test_figure6_checks():
    good = {"10-2003": 100, "11-2003": 900, "12-2003": 700,
            "01-2004": 500, "02-2004": 450, "03-2004": 480}
    checks = compare_figure6(good)
    assert all(c.passed for c in checks)
    bad = dict(good, **{"10-2003": 2000})  # no ramp
    names = {c.name: c.passed for c in compare_figure6(bad)}
    assert not names["2003 ramp (Oct < Nov)"]


def test_agreement_report_rendering():
    checks = [
        ShapeCheck("a", True, "fine", "Table 1"),
        ShapeCheck("b", False, "off", "Fig. 5"),
    ]
    text = agreement_report(checks)
    assert "1/2 claims hold" in text
    assert "[PASS] (Table 1) a" in text
    assert "[MISS] (Fig. 5) b" in text
