"""Tests for the Table 1 computation, figure functions, and renderers."""

import pytest

from repro.analysis import (
    PAPER_TABLE1,
    TABLE1_CLASSES,
    classify,
    compute_table1,
    figure2_integrated_cpu,
    figure5_data_consumed,
    figure6_jobs_by_month,
    render_bar_chart,
    render_series,
    render_table,
    render_table1,
)
from repro.monitoring.acdc import ACDCDatabase, JobRecord
from repro.monitoring.mdviewer import MDViewer
from repro.monitoring.transfers import TransferLedger
from repro.sim import DAY, HOUR, SimCalendar, TB


def record(job_id=0, name="job", vo="usatlas", user="alice", site="S0",
           start=0.0, runtime=HOUR, ok=True):
    return JobRecord(
        job_id=job_id, name=name, vo=vo, user=user, site=site,
        submitted_at=start, started_at=start, finished_at=start + runtime,
        runtime=runtime, queue_time=0.0, succeeded=ok,
        failure_category="" if ok else "site",
        failure_type="" if ok else "StorageFullError",
        bytes_in=0.0, bytes_out=0.0,
    )


def test_classify_vo_and_exerciser():
    assert classify(record(vo="usatlas")) == "USATLAS"
    assert classify(record(vo="btev")) == "BTEV"
    assert classify(record(vo="ivdgl")) == "iVDGL"
    assert classify(record(vo="ivdgl", name="exerciser-BNL-1")) == "Exerciser"


def test_paper_table1_reference_complete():
    assert set(PAPER_TABLE1) == set(TABLE1_CLASSES)
    assert PAPER_TABLE1["USCMS"]["avg_runtime_hr"] == 41.85
    total_jobs = sum(v["jobs"] for v in PAPER_TABLE1.values())
    assert total_jobs == 291_237  # Table 1 column sum (paper cites 291 052 records)


def test_compute_table1_basic_stats():
    db = ACDCDatabase()
    cal = SimCalendar()
    # 3 usatlas jobs: 2 in November at S0, 1 in February at S1.
    nov = 10 * DAY  # Nov 2003 (epoch is Oct 23)
    feb = 110 * DAY
    db.add(record(1, vo="usatlas", site="S0", start=nov, runtime=2 * HOUR))
    db.add(record(2, vo="usatlas", site="S0", start=nov + DAY, runtime=4 * HOUR))
    db.add(record(3, vo="usatlas", site="S1", start=feb, runtime=6 * HOUR))
    rows = compute_table1(db, cal)
    row = rows["USATLAS"]
    assert row.jobs == 3
    assert row.users == 1
    assert row.sites_used == 2
    assert row.avg_runtime_hr == pytest.approx(4.0)
    assert row.max_runtime_hr == pytest.approx(6.0)
    assert row.total_cpu_days == pytest.approx(0.5)
    assert row.peak_month == "11-2003"
    assert row.peak_month_jobs == 2
    assert row.max_single_resource_pct == pytest.approx(100.0)
    assert row.peak_resources == 1


def test_compute_table1_single_resource_share():
    db = ACDCDatabase()
    nov = 10 * DAY
    for i in range(6):
        db.add(record(i, vo="btev", site="Vanderbilt" if i < 4 else "FNAL",
                      start=nov + i * HOUR))
    row = compute_table1(db)["BTEV"]
    assert row.max_single_resource_jobs == 4
    assert row.max_single_resource_pct == pytest.approx(4 / 6 * 100)
    assert row.peak_resources == 2


def test_render_table1_order_and_content():
    db = ACDCDatabase()
    db.add(record(1, vo="uscms"))
    db.add(record(2, vo="btev"))
    text = render_table1(compute_table1(db))
    assert text.index("BTEV") < text.index("USCMS")
    assert "avg_hr" in text


# --- figures -----------------------------------------------------------------

def test_figure2_rescaling():
    db = ACDCDatabase()
    db.add(record(1, vo="uscms", runtime=DAY))
    viewer = MDViewer(db)
    data, text = figure2_integrated_cpu(viewer, 0.0, 30 * DAY, rescale=50.0)
    assert data["uscms"] == pytest.approx(50.0)
    assert "Figure 2" in text and "uscms" in text


def test_figure5_total_and_breakdown():
    ledger = TransferLedger()
    ledger.record(DAY, "ivdgl", 3 * TB, "A", "B")
    ledger.record(2 * DAY, "usatlas", 1 * TB, "B", "C")
    viewer = MDViewer(ACDCDatabase(), ledger=ledger)
    data, text = figure5_data_consumed(viewer, 0.0, 30 * DAY)
    assert data["ivdgl"] == pytest.approx(3.0)
    assert data["__total__"] == pytest.approx(4.0)
    assert "Figure 5" in text


def test_figure6_month_ordering():
    db = ACDCDatabase()
    db.add(record(1, start=5 * DAY))     # Oct 2003
    db.add(record(2, start=100 * DAY))   # Jan/Feb 2004
    viewer = MDViewer(db, calendar=SimCalendar())
    data, text = figure6_jobs_by_month(viewer)
    months = list(data)
    # Sorted chronologically (year first), not alphabetically.
    assert months[0].endswith("2003")
    assert months[-1].endswith("2004")


# --- renderers -----------------------------------------------------------------

def test_render_table_alignment():
    text = render_table(["a", "b"], [[1, 2.5], [30, "x"]])
    lines = text.splitlines()
    assert len(lines) == 4
    assert len(set(len(l) for l in lines)) == 1  # all rows same width


def test_render_bar_chart():
    text = render_bar_chart({"big": 10.0, "small": 1.0}, width=10)
    lines = text.splitlines()
    assert lines[0].startswith("big")  # sorted descending
    assert lines[0].count("#") == 10
    assert 0 <= lines[1].count("#") <= 2
    assert render_bar_chart({}) == "(no data)"


def test_render_series():
    text = render_series([(0.0, 1.0), (DAY, 2.0)], label="cpus")
    assert "cpus" in text
    assert "1.0d" in text
    assert render_series([], label="x") == "x: (no data)"
