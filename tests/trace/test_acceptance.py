"""Acceptance tests for the tracing pipeline's determinism contract.

Three guarantees from the issue:

* tracing disabled -> a same-seed run is byte-identical to an untraced
  build (spans cost nothing they didn't opt into);
* tracing enabled  -> the simulation outcome is *still* byte-identical
  (spans are passive: no events, no RNG draws, no ordering changes);
* every completed job yields one rooted span tree whose phase durations
  sum to its observed makespan.
"""

import pytest

from repro import Grid3, Grid3Config
from repro.analysis import export_database
from repro.trace import PHASES, job_breakdown, to_jsonl


def run_once(seed: int = 7, tracing: bool = False):
    grid = Grid3(Grid3Config(
        seed=seed, scale=600.0, duration_days=2.0, apps=["exerciser"],
        tracing=tracing,
    ))
    grid.run_full()
    return grid


def test_tracing_disabled_matches_untraced_run():
    assert export_database(run_once().acdc_db) \
        == export_database(run_once().acdc_db)


def test_tracing_enabled_does_not_perturb_the_simulation():
    untraced = export_database(run_once(tracing=False).acdc_db)
    traced = export_database(run_once(tracing=True).acdc_db)
    assert untraced == traced


def test_span_dump_is_deterministic_across_same_seed_runs():
    first = to_jsonl(run_once(tracing=True).tracer.store.roots())
    second = to_jsonl(run_once(tracing=True).tracer.store.roots())
    assert first  # spans were recorded
    assert first == second


def test_every_job_yields_one_rooted_tree_summing_to_makespan():
    grid = run_once(tracing=True)
    store = grid.tracer.store
    roots = [r for r in store.roots() if r.attrs.get("kind") == "job"]
    assert roots, "traced run recorded no job traces"
    for root in roots:
        # Single rooted tree: a root has no parent, every other span
        # links to an in-tree parent, and the trace is fully closed.
        assert root.parent_id is None
        span_ids = {s.span_id for s in root.walk()}
        for span in root.walk():
            if span is not root:
                assert span.parent_id in span_ids
            assert span.end >= 0, f"open span {span.name} after finalize"
        b = job_breakdown(root)
        assert sum(b[p] for p in PHASES) == pytest.approx(b["makespan"])


def test_traces_bind_execution_side_job_ids():
    grid = run_once(tracing=True)
    store = grid.tracer.store
    db_ids = {r.job_id for r in grid.acdc_db.records()}
    bound = set(store.job_ids())
    assert bound, "no execution-side job ids bound"
    assert bound <= db_ids
    some_id = next(iter(bound))
    root = store.trace_for_job(some_id)
    assert root is not None and root.attrs.get("kind") == "job"


def test_trace_metrics_published_per_vo():
    grid = run_once(tracing=True)
    metrics = grid.monitors["trace"]
    samples = metrics.query("trace.makespan")
    assert samples
    assert all(s.tag("vo") for s in samples)


def test_disabled_tracer_records_nothing():
    grid = run_once(tracing=False)
    assert not grid.tracer.enabled
    assert grid.tracer.store is None
    assert "trace" not in grid.monitors
