"""Critical-path attribution on hand-built span trees, plus exporters."""

import json

from repro.sim import Engine
from repro.trace import (
    PHASES,
    JobTracer,
    aggregate_breakdown,
    job_breakdown,
    render_breakdown,
    render_span_tree,
    slowest_traces,
    span_to_dict,
    to_chrome_trace,
    to_jsonl,
)


def build_job_trace(tracer, vo="uscms", retry=True):
    """Hand-built trace: optional failed attempt, then a full lifecycle.

    Timeline (seconds):
      0    submit / trace root opens
      0-20    attempt-1 fails (when retry=True)
      20      attempt-2 starts          -> retry = 20
      20-21   gram.submit
      21-50   queue                     -> queue = 29
      50-60   stage-in                  -> stage-in = 10
      60-160  compute                   -> compute = 100
      160-185 stage-out                 -> stage-out = 25
      185-186 register (folds into stage-out -> 26 total)
      190     trace finalized           -> makespan = 190, other = 5
    """
    engine = tracer.engine
    engine._now = 0.0
    root = tracer.start_trace("cms-prod-1", kind="job", vo=vo)
    if retry:
        a1 = root.child("attempt-1", phase="attempt", site="UFL_Grid3")
        engine._now = 20.0
        a1.close_subtree("error")
    a2 = root.child(f"attempt-{2 if retry else 1}", phase="attempt",
                    site="FNAL_CMS")
    sub = a2.child("gram.submit", phase="submit")
    engine._now = 21.0
    sub.finish()
    queue = a2.child("queue", phase="queue")
    engine._now = 50.0
    queue.finish()
    stage_in = a2.child("stage-in", phase="stage-in")
    engine._now = 60.0
    stage_in.finish()
    compute = a2.child("compute", phase="compute")
    engine._now = 160.0
    compute.finish()
    stage_out = a2.child("stage-out", phase="stage-out")
    engine._now = 185.0
    stage_out.finish()
    register = a2.child("register", phase="register")
    engine._now = 186.0
    register.finish()
    a2.finish()
    engine._now = 190.0
    tracer.finalize(root, "ok")
    return root


def test_job_breakdown_attributes_every_phase():
    tracer = JobTracer(Engine())
    root = build_job_trace(tracer)
    b = job_breakdown(root)
    assert b["retry"] == 20.0
    assert b["queue"] == 29.0
    assert b["stage-in"] == 10.0
    assert b["compute"] == 100.0
    assert b["stage-out"] == 26.0   # register folds in
    assert b["makespan"] == 190.0
    assert b["other"] == 190.0 - (20 + 29 + 10 + 100 + 26)


def test_breakdown_partition_sums_to_makespan():
    tracer = JobTracer(Engine())
    for retry in (False, True):
        root = build_job_trace(tracer, retry=retry)
        b = job_breakdown(root)
        assert abs(sum(b[p] for p in PHASES) - b["makespan"]) < 1e-9


def test_breakdown_without_attempts_is_all_other():
    engine = Engine()
    tracer = JobTracer(engine)
    root = tracer.start_trace("never-matched", kind="job", vo="ligo")
    engine._now = 33.0
    tracer.finalize(root, "error")
    b = job_breakdown(root)
    assert b["other"] == 33.0 and b["makespan"] == 33.0


def test_aggregate_breakdown_filters_by_vo():
    tracer = JobTracer(Engine())
    build_job_trace(tracer, vo="uscms")
    build_job_trace(tracer, vo="usatlas")
    tracer.start_trace("t", kind="transfer")  # non-job: excluded
    agg_all = aggregate_breakdown(tracer.store.roots())
    assert agg_all["jobs"] == 2
    assert agg_all["totals"]["makespan"] == 380.0
    agg_cms = aggregate_breakdown(tracer.store.roots(), vo="uscms")
    assert agg_cms["jobs"] == 1
    assert agg_cms["mean"]["compute"] == 100.0
    assert abs(sum(agg_cms["share"][p] for p in PHASES) - 1.0) < 1e-9


def test_slowest_traces_ranks_and_breaks_ties_deterministically():
    engine = Engine()
    tracer = JobTracer(engine)
    for i, dur in enumerate((50.0, 120.0, 120.0, 10.0)):
        engine._now = 0.0
        root = tracer.start_trace(f"job-{i}", kind="job", vo="sdss")
        engine._now = dur
        tracer.finalize(root, "ok")
    ranked = slowest_traces(tracer.store, n=3)
    assert [r.name for _m, r in ranked] == ["job-1", "job-2", "job-0"]
    assert ranked[0][0] == 120.0


def test_render_helpers_produce_text():
    tracer = JobTracer(Engine())
    root = build_job_trace(tracer)
    tree = render_span_tree(root)
    assert "cms-prod-1" in tree[0]
    assert any("compute" in line for line in tree)
    text = "\n".join(render_breakdown(aggregate_breakdown([root])))
    assert "phase breakdown" in text and "compute" in text


def test_jsonl_export_is_stable_and_parseable():
    tracer = JobTracer(Engine())
    root = build_job_trace(tracer)
    text = to_jsonl([root])
    lines = [json.loads(line) for line in text.splitlines()]
    assert len(lines) == len(list(root.walk()))
    assert lines[0]["name"] == "cms-prod-1"
    assert all(l["trace_id"] == root.trace_id for l in lines)
    # Deterministic serialisation.
    assert text == to_jsonl([root])
    d = span_to_dict(root)
    assert d["status"] == "ok" and d["parent_id"] is None


def test_chrome_trace_export_shape():
    tracer = JobTracer(Engine())
    root = build_job_trace(tracer)
    doc = to_chrome_trace([root])
    events = doc["traceEvents"]
    meta = [e for e in events if e["ph"] == "M"]
    complete = [e for e in events if e["ph"] == "X"]
    assert len(meta) == 1 and meta[0]["args"]["name"].startswith("cms-prod-1")
    assert len(complete) == len(list(root.walk()))
    compute = next(e for e in complete if e["name"] == "compute")
    assert compute["ts"] == 60_000_000 and compute["dur"] == 100_000_000
    assert all(isinstance(e["ts"], int) for e in complete)
    # Overlapping siblings land on distinct rows; nested spans deeper rows.
    attempt_rows = {e["tid"] for e in complete if "attempt" in e["name"]}
    assert len(attempt_rows) >= 1
    assert json.dumps(doc)  # JSON-safe end to end
