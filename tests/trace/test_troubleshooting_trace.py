"""Trace-backed troubleshooting queries surfaced via grid.troubleshooting()."""

from repro import Grid3, Grid3Config
from repro.trace import PHASES


def traced_grid():
    grid = Grid3(Grid3Config(
        seed=7, scale=600.0, duration_days=2.0, apps=["exerciser"],
        tracing=True,
    ))
    grid.run_full()
    return grid


def test_slowest_jobs_ranked_and_linked():
    ops = traced_grid().troubleshooting()
    rows = ops.slowest_jobs(5)
    assert rows
    makespans = [r["makespan"] for r in rows]
    assert makespans == sorted(makespans, reverse=True)
    for row in rows:
        assert row["critical_phase"] in PHASES
        assert row["vo"]
        # the §8 submit-side <-> execution-side link
        assert all(isinstance(j, int) for j in row["job_ids"])


def test_phase_breakdown_all_and_per_vo():
    ops = traced_grid().troubleshooting()
    agg = ops.phase_breakdown()
    assert agg["jobs"] > 0
    assert abs(sum(agg["share"][p] for p in PHASES) - 1.0) < 1e-9
    vo = ops.slowest_jobs(1)[0]["vo"]
    per_vo = ops.phase_breakdown(vo=vo)
    assert 0 < per_vo["jobs"] <= agg["jobs"]
    assert per_vo["vo"] == vo


def test_trace_for_job_joins_execution_side_id():
    grid = traced_grid()
    ops = grid.troubleshooting()
    job_id = grid.tracer.store.job_ids()[0]
    root = ops.trace_for_job(job_id)
    assert root is not None
    assert job_id in grid.tracer.store.jobs_for(root.trace_id)


def test_trace_queries_degrade_gracefully_without_tracing():
    grid = Grid3(Grid3Config(
        seed=7, scale=800.0, duration_days=1.0, apps=["exerciser"],
    ))
    grid.run_full()
    ops = grid.troubleshooting()
    assert ops.slowest_jobs() == []
    assert ops.phase_breakdown() == {}
    assert ops.trace_for_job(1) is None
