"""The NetLogger lifeline <-> span bridge (satellite: gridftp lifelines
inside the owning job's trace instead of a separate report)."""

from repro.middleware.netlogger import (
    TransferLifeline,
    compute_statistics,
    lifelines_to_spans,
    reconstruct_lifelines,
    trace_lifelines,
)
from repro.sim import Engine
from repro.trace import JobTracer


LIFELINES = [
    TransferLifeline(host="BNL_ATLAS", lfn="/a/f1", size=1e9,
                     started_at=10.0, ended_at=30.0, outcome="ok"),
    TransferLifeline(host="FNAL_CMS", lfn="/a/f2", size=2e9,
                     started_at=12.0, ended_at=40.0, outcome="error",
                     error_detail="link down"),
    TransferLifeline(host="BNL_ATLAS", lfn="/a/f3", size=5e8,
                     started_at=50.0, ended_at=-1.0, outcome="in-flight"),
]


def test_lifelines_become_backdated_spans_under_a_parent():
    engine = Engine()
    engine._now = 100.0
    tracer = JobTracer(engine)
    root = tracer.start_trace("job-9", kind="job", vo="usatlas")
    spans = lifelines_to_spans(LIFELINES, tracer, parent=root)
    assert len(spans) == 3
    assert all(s.parent_id == root.span_id for s in spans)
    ok, err, open_ = spans
    assert (ok.start, ok.end, ok.status) == (10.0, 30.0, "ok")
    assert err.status == "error" and err.attrs["error"] == "link down"
    assert open_.end < 0  # in-flight stays open
    assert ok.phase == "transfer"


def test_lifelines_without_parent_open_their_own_traces():
    tracer = JobTracer(Engine())
    spans = lifelines_to_spans(LIFELINES[:2], tracer)
    assert all(s.parent_id is None for s in spans)
    assert len(tracer.store) == 2


def test_trace_lifelines_round_trip():
    engine = Engine()
    tracer = JobTracer(engine)
    root = tracer.start_trace("job-1", kind="job")
    lifelines_to_spans(LIFELINES, tracer, parent=root)
    back = trace_lifelines(root)
    assert [(l.lfn, l.started_at, l.ended_at, l.outcome) for l in back] \
        == [(l.lfn, l.started_at, l.ended_at, l.outcome) for l in LIFELINES]
    # The existing archive analytics run unchanged over the trace view.
    stats = compute_statistics(back)
    assert stats.ok == 1 and stats.errors == 1 and stats.in_flight == 1


def test_live_gridftp_spans_carry_the_lifeline_view():
    """End to end: a traced grid run's stage-in/out transfers appear as
    transfer spans whose lifelines match the servers' NetLogger rings."""
    from repro import Grid3, Grid3Config

    grid = Grid3(Grid3Config(
        seed=7, scale=600.0, duration_days=2.0, apps=["exerciser"],
        tracing=True,
    ))
    grid.run_full()
    # Every terminated transfer span round-trips into an ok/error lifeline.
    all_lifelines = []
    for root in grid.tracer.store.roots():
        all_lifelines.extend(trace_lifelines(root))
    ring_events = [
        e for site in grid.sites.values()
        for e in site.service("gridftp").netlogger
        if e.event == "transfer.start"
    ]
    if ring_events:
        assert all_lifelines, "servers logged transfers but traces have none"
    reconstructed = reconstruct_lifelines(
        e for site in grid.sites.values()
        for e in site.service("gridftp").netlogger
    )
    # Same population size: each ring lifeline has a span counterpart.
    assert len(all_lifelines) == len(reconstructed)
