"""Unit tests for the span primitives: Span, SpanStore, JobTracer."""

import pytest

from repro.sim import Engine
from repro.trace import (
    NULL_SPAN,
    NULL_TRACER,
    JobTracer,
    Span,
    SpanStore,
)


def make_tracer(max_traces: int = 100):
    engine = Engine()
    return engine, JobTracer(engine, max_traces=max_traces)


def test_span_tree_building_and_timing():
    engine, tracer = make_tracer()
    root = tracer.start_trace("job-1", kind="job", vo="uscms")
    engine._now = 10.0
    child = root.child("queue", phase="queue", site="FNAL_CMS")
    assert child.open and child.duration == -1.0
    engine._now = 25.0
    child.finish()
    assert child.end == 25.0 and child.duration == 15.0
    assert child.parent_id == root.span_id
    assert child.trace_id == root.trace_id
    assert root.children == [child]
    assert list(root.walk()) == [root, child]


def test_finish_is_idempotent():
    engine, tracer = make_tracer()
    root = tracer.start_trace("job")
    engine._now = 5.0
    root.finish("ok")
    engine._now = 50.0
    root.finish("error")  # ignored: already closed
    assert root.end == 5.0 and root.status == "ok"


def test_open_child_finds_most_recent_open_match():
    _engine, tracer = make_tracer()
    root = tracer.start_trace("job")
    first = root.child("queue")
    first.finish()
    second = root.child("queue")
    assert root.open_child("queue") is second
    second.finish()
    assert root.open_child("queue") is None


def test_close_subtree_closes_descendants_with_status():
    engine, tracer = make_tracer()
    root = tracer.start_trace("job")
    attempt = root.child("attempt-1", phase="attempt")
    stage = attempt.child("stage-in", phase="stage-in")
    engine._now = 42.0
    attempt.close_subtree("error")
    assert stage.end == 42.0 and stage.status == "error"
    assert attempt.end == 42.0 and attempt.status == "error"
    assert root.open  # siblings/ancestors untouched


def test_null_span_absorbs_everything_and_is_falsy():
    assert not NULL_SPAN
    assert NULL_SPAN.child("x") is NULL_SPAN
    assert NULL_SPAN.open_child("x") is None
    assert NULL_SPAN.finish("error") is NULL_SPAN
    assert NULL_SPAN.annotate(a=1) is NULL_SPAN
    assert list(NULL_SPAN.walk()) == []
    NULL_SPAN.close_subtree("error")  # no-op, no raise


def test_null_tracer_is_inert():
    assert not NULL_TRACER.enabled
    assert NULL_TRACER.store is None
    assert NULL_TRACER.start_trace("x") is NULL_SPAN
    assert NULL_TRACER.record(None, "x", 0.0, 1.0) is NULL_SPAN
    assert NULL_TRACER.current_label() == ""
    NULL_TRACER.bind_job(1, NULL_SPAN)
    NULL_TRACER.finalize(NULL_SPAN)


def test_store_bounds_whole_traces_fifo():
    engine, tracer = make_tracer(max_traces=3)
    roots = [tracer.start_trace(f"job-{i}") for i in range(5)]
    store = tracer.store
    assert len(store) == 3
    assert store.evicted == 2
    assert store.get(roots[0].trace_id) is None
    assert store.get(roots[4].trace_id) is roots[4]
    # Oldest-first ordering of the retained traces.
    assert [r.name for r in store.roots()] == ["job-2", "job-3", "job-4"]


def test_store_job_binding_and_eviction_cleanup():
    _engine, tracer = make_tracer(max_traces=2)
    first = tracer.start_trace("a")
    tracer.bind_job(101, first)
    assert tracer.store.trace_for_job(101) is first
    assert tracer.store.jobs_for(first.trace_id) == (101,)
    tracer.start_trace("b")
    tracer.start_trace("c")  # evicts "a"
    assert tracer.store.trace_for_job(101) is None
    assert tracer.store.job_ids() == []


def test_store_validates_bound():
    with pytest.raises(ValueError):
        SpanStore(max_traces=0)


def test_record_backdates_spans():
    engine, tracer = make_tracer()
    engine._now = 100.0
    root = tracer.start_trace("job")
    span = tracer.record(root, "gridftp /f", start=3.0, end=9.5,
                         phase="transfer", status="error", src="BNL_ATLAS")
    assert span.start == 3.0 and span.end == 9.5
    assert span.status == "error"
    assert span.attrs["src"] == "BNL_ATLAS"
    # parent=None opens its own trace
    solo = tracer.record(None, "orphan", start=1.0, end=2.0, phase="transfer")
    assert solo.parent_id is None
    assert tracer.store.get(solo.trace_id) is solo


def test_finalize_closes_open_spans_and_publishes_metrics():
    engine, tracer = make_tracer()
    root = tracer.start_trace("job-x", kind="job", vo="usatlas")
    attempt = root.child("attempt-1", phase="attempt")
    attempt.child("queue", phase="queue")
    engine._now = 60.0
    tracer.finalize(root, "error")
    assert all(not s.open for s in root.walk())
    makespans = tracer.metrics.query("trace.makespan")
    assert len(makespans) == 1 and makespans[0].value == 60.0
    assert makespans[0].tag("vo") == "usatlas"
    # queue phase published too
    assert tracer.metrics.query("trace.phase.queue")


def test_finalize_non_job_traces_publishes_nothing():
    engine, tracer = make_tracer()
    root = tracer.start_trace("transfer", kind="transfer")
    engine._now = 5.0
    tracer.finalize(root, "ok")
    assert tracer._metrics is None  # sink never even created


def test_current_label_tracks_innermost_open_span():
    _engine, tracer = make_tracer()
    assert tracer.current_label() == ""
    root = tracer.start_trace("job-7")
    assert tracer.current_label() == "job-7"
    inner = root.child("compute", phase="compute")
    assert tracer.current_label() == "compute"
    inner.finish()
    assert tracer.current_label() == "job-7"


def test_ids_are_deterministic():
    def build():
        _engine, tracer = make_tracer()
        ids = []
        for i in range(3):
            root = tracer.start_trace(f"j{i}")
            child = root.child("queue")
            child.finish()
            ids.append((root.trace_id, root.span_id, child.span_id))
        return ids

    assert build() == build()
