"""Tests for Grid3 administrative operations (user admission, etc.)."""

import pytest

from repro import Grid3, Grid3Config
from repro.core.job import JobSpec
from repro.failures import FailureProfile
from repro.sim import HOUR


@pytest.fixture(scope="module")
def grid():
    g = Grid3(Grid3Config(
        seed=71, scale=800, duration_days=5, apps=[],
        failures=FailureProfile.disabled(), misconfig_probability=0.0,
    ))
    g.deploy()
    return g


def test_add_user_registers_and_propagates(grid):
    before = grid.registered_users()
    user = grid.add_user("sdss", "new-astronomer")
    assert grid.registered_users() == before + 1
    assert user.vo == "sdss"
    # Every site's grid-map now maps the new DN.
    for site in grid.sites.values():
        assert user.dn in site.service("gridmap")
    # And the authenticator uses the refreshed map.
    auth = grid.sites["JHU_SDSS"].service("authenticator")
    proxy = grid.voms["sdss"].proxy_for("new-astronomer")
    assert auth.authenticate(proxy) == "grid-sdss"


def test_add_user_idempotent(grid):
    first = grid.add_user("btev", "repeat-user")
    count = grid.registered_users()
    second = grid.add_user("btev", "repeat-user")
    assert first is second
    assert grid.registered_users() == count


def test_new_user_can_actually_submit(grid):
    grid.add_user("ligo", "fresh-scientist")
    cg = grid.condorg["ligo"]
    handle = cg.submit(JobSpec(
        name="fresh-job", vo="ligo", user="fresh-scientist",
        runtime=HOUR, walltime_request=4 * HOUR,
    ), "UWM_LIGO")
    grid.run(days=1)
    assert handle.succeeded


def test_unknown_vo_rejected(grid):
    with pytest.raises(KeyError):
        grid.add_user("notavo", "nobody")
