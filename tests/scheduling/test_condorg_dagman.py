"""Tests for Condor-G grid submission and DAGMan DAG execution."""

import pytest

from repro.core.job import JobSpec
from repro.errors import ApplicationError
from repro.scheduling.condorg import CondorG
from repro.scheduling.dagman import DAGMan
from repro.scheduling.matchmaking import SiteSelector
from repro.sim import HOUR, MINUTE, RngRegistry
from repro.workflow.dag import DAG, NodeState

from ..conftest import make_grid_fragment


def spec(name="j", runtime=HOUR, **kw):
    kw.setdefault("walltime_request", 4 * HOUR)
    return JobSpec(name=name, vo="usatlas", user="alice", runtime=runtime, **kw)


def make_condorg(eng, net, ca, runner=None, selector_rng=None, **kw):
    sites, giis, proxy = make_grid_fragment(eng, net, ca, runner=runner)
    selector = None
    if selector_rng is not None:
        selector = SiteSelector(giis, selector_rng)
    cg = CondorG(
        eng, "usatlas-submit", sites,
        proxy_provider=lambda user: proxy,
        selector=selector,
        **kw,
    )
    return cg, sites


def test_submit_runs_to_completion(eng, net, ca):
    cg, sites = make_condorg(eng, net, ca)
    handle = cg.submit(spec(), "Frag0")
    eng.run()
    assert handle.succeeded
    assert handle.job.site_name == "Frag0"
    assert cg.completed == 1 and cg.failed == 0
    # The gatekeeper's jobmanager exited.
    assert sites["Frag0"].service("gatekeeper").managed_count == 0


def test_submit_many(eng, net, ca):
    cg, _sites = make_condorg(eng, net, ca)
    handles = cg.submit_many([spec(name=f"j{i}") for i in range(10)], "Frag1")
    eng.run()
    assert all(h.succeeded for h in handles)
    assert cg.completed == 10


def test_matched_submission_uses_selector(eng, net, ca):
    cg, sites = make_condorg(eng, net, ca, selector_rng=RngRegistry(1))
    handle = cg.submit(spec())  # no site pinned
    eng.run()
    assert handle.succeeded
    assert handle.job.site_name in sites


def test_retry_on_failure_moves_site(eng, net, ca):
    """A job that fails at one site is resubmitted elsewhere."""
    calls = []

    def flaky_runner(engine, job, node):
        calls.append(job.site_name)
        yield engine.timeout(10 * MINUTE)
        if job.site_name == "Frag0":
            raise ApplicationError("bad at Frag0")

    cg, _sites = make_condorg(eng, net, ca, runner=flaky_runner, max_retries=2)
    handle = cg.submit(spec())  # unpinned: walks the site list
    eng.run()
    assert handle.succeeded
    assert handle.attempts == 2
    assert handle.sites_tried[0] == "Frag0"
    assert handle.sites_tried[1] != "Frag0"
    assert cg.resubmissions == 1


def test_exhausted_retries_fail(eng, net, ca):
    def always_fails(engine, job, node):
        yield engine.timeout(MINUTE)
        raise ApplicationError("hopeless")

    cg, _sites = make_condorg(eng, net, ca, runner=always_fails, max_retries=1)
    handle = cg.submit(spec())
    eng.run()
    assert not handle.succeeded
    assert handle.job.failed
    assert cg.failed == 1
    assert handle.attempts == 2  # original + 1 retry


def test_per_site_throttle_limits_inflight(eng, net, ca):
    cg, sites = make_condorg(eng, net, ca, per_site_throttle=2)
    handles = cg.submit_many([spec(name=f"j{i}") for i in range(6)], "Frag0")
    eng.run(until=1.0)
    gk = sites["Frag0"].service("gatekeeper")
    assert gk.managed_count <= 2
    eng.run()
    assert all(h.succeeded for h in handles)


def test_no_usable_site_fails_cleanly(eng, net, ca):
    cg, sites = make_condorg(eng, net, ca)
    for site in sites.values():
        site.service("gatekeeper").available = False
    handle = cg.submit(spec(), "Frag0")
    eng.run()
    assert not handle.succeeded
    assert cg.unmatched == 1 or cg.failed == 1


def test_overload_backoff_eventually_succeeds(eng, net, ca):
    cg, sites = make_condorg(eng, net, ca)
    gk = sites["Frag0"].service("gatekeeper")
    gk.available = False

    def restore():
        yield eng.timeout(6 * MINUTE)
        gk.available = True

    eng.process(restore())
    handle = cg.submit(spec(), "Frag0")
    eng.run()
    assert handle.succeeded  # backoff retried after the service returned


# --- DAGMan ------------------------------------------------------------------

def linear_dag(n=3, prefix="step"):
    dag = DAG("test-dag")
    prev = None
    for i in range(n):
        node = dag.add_job(f"{prefix}{i}", spec(name=f"{prefix}{i}", runtime=30 * MINUTE))
        if prev is not None:
            dag.add_edge(prev.node_id, node.node_id)
        prev = node
    return dag


def test_dagman_linear_chain_runs_in_order(eng, net, ca):
    cg, _sites = make_condorg(eng, net, ca)
    dagman = DAGMan(eng, cg)
    dag = linear_dag(3)
    result = eng.run_process(dagman.run(dag))
    assert result.succeeded
    assert result.nodes_done == 3
    # Chain of 3 x 30 min jobs: at least 90 minutes of sim time.
    assert eng.now >= 90 * MINUTE
    starts = [j.started_at for j in sorted(result.jobs, key=lambda j: j.spec.name)]
    assert starts == sorted(starts)


def test_dagman_diamond_parallelism(eng, net, ca):
    cg, _sites = make_condorg(eng, net, ca)
    dagman = DAGMan(eng, cg)
    dag = DAG("diamond")
    a = dag.add_job("a", spec(name="a", runtime=10 * MINUTE))
    b = dag.add_job("b", spec(name="b", runtime=10 * MINUTE))
    c = dag.add_job("c", spec(name="c", runtime=10 * MINUTE))
    d = dag.add_job("d", spec(name="d", runtime=10 * MINUTE))
    dag.add_edge("a", "b")
    dag.add_edge("a", "c")
    dag.add_edge("b", "d")
    dag.add_edge("c", "d")
    result = eng.run_process(dagman.run(dag))
    assert result.succeeded
    jobs = {j.spec.name: j for j in result.jobs}
    # b and c overlapped (both started before the other finished).
    assert jobs["b"].started_at < jobs["c"].finished_at
    assert jobs["c"].started_at < jobs["b"].finished_at
    assert jobs["d"].started_at >= max(jobs["b"].finished_at, jobs["c"].finished_at)


def test_dagman_node_retry(eng, net, ca):
    attempts = []

    def flaky(engine, job, node):
        attempts.append(job.spec.name)
        yield engine.timeout(MINUTE)
        if attempts.count(job.spec.name) == 1:
            raise ApplicationError("first attempt fails")

    cg, _sites = make_condorg(eng, net, ca, runner=flaky, max_retries=0)
    dagman = DAGMan(eng, cg)
    dag = DAG("retry")
    dag.add_job("only", spec(name="only"), retries=2)
    result = eng.run_process(dagman.run(dag))
    assert result.succeeded
    assert attempts.count("only") == 2


def test_dagman_failure_marks_descendants_unreachable(eng, net, ca):
    def poison(engine, job, node):
        yield engine.timeout(MINUTE)
        if job.spec.name == "bad":
            raise ApplicationError("always fails")

    cg, _sites = make_condorg(eng, net, ca, runner=poison, max_retries=0)
    dagman = DAGMan(eng, cg)
    dag = DAG("poisoned")
    dag.add_job("bad", spec(name="bad"), retries=0)
    dag.add_job("child", spec(name="child"))
    dag.add_job("independent", spec(name="independent"))
    dag.add_edge("bad", "child")
    result = eng.run_process(dagman.run(dag))
    assert not result.succeeded
    assert dag.node("bad").state is NodeState.FAILED
    assert dag.node("child").state is NodeState.UNREACHABLE
    assert dag.node("independent").state is NodeState.DONE
    # Rescue DAG contains exactly the un-done work.
    rescue = result.rescue_dag()
    assert sorted(n.node_id for n in rescue.nodes()) == ["bad", "child"]


def test_dagman_max_idle_throttle(eng, net, ca):
    cg, sites = make_condorg(eng, net, ca)
    dagman = DAGMan(eng, cg, max_idle=2)
    dag = DAG("wide")
    for i in range(8):
        dag.add_job(f"n{i}", spec(name=f"n{i}", runtime=10 * MINUTE))
    proc = eng.process(dagman.run(dag))
    eng.run(until=1.0)
    total_managed = sum(
        s.service("gatekeeper").managed_count for s in sites.values()
    )
    assert total_managed <= 2
    eng.run()
    assert proc.value.succeeded
