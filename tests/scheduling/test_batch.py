"""Tests for the LRM base machinery and the three batch flavours."""

import pytest

from repro.core.job import Job, JobSpec, JobState
from repro.errors import (
    ApplicationError,
    NodeFailureError,
    SubmissionError,
    WalltimeExceededError,
)
from repro.scheduling.batch import BatchScheduler
from repro.scheduling.flavors import (
    CondorScheduler,
    LSFScheduler,
    PBSScheduler,
    make_scheduler,
)
from repro.sim import HOUR, MINUTE

from ..conftest import make_site


def spec(name="j", runtime=1 * HOUR, walltime=None, user="alice", **kw):
    return JobSpec(
        name=name, vo="usatlas", user=user, runtime=runtime,
        walltime_request=walltime if walltime is not None else max(runtime * 2, HOUR),
        **kw,
    )


def submit(sched, s):
    job = Job(spec=s)
    return sched.submit(job)


def test_job_runs_to_completion(eng, net):
    site = make_site(eng, net, "SiteA", cpus=2)
    sched = BatchScheduler(eng, site)
    job = submit(sched, spec(runtime=2 * HOUR))
    eng.run()
    assert job.succeeded
    assert job.run_time == pytest.approx(2 * HOUR)
    assert job.node_id.startswith("SiteA-n")
    assert sched.completed == [job]
    assert sched.running_count == 0


def test_fifo_queueing_when_full(eng, net):
    site = make_site(eng, net, "SiteA", cpus=2)
    sched = BatchScheduler(eng, site)
    jobs = [submit(sched, spec(name=f"j{i}", runtime=1 * HOUR)) for i in range(4)]
    assert sched.running_count == 2
    assert sched.queue_length == 2
    eng.run()
    assert all(j.succeeded for j in jobs)
    # Queue order preserved: j0,j1 start at 0; j2,j3 at 1h.
    assert jobs[2].started_at == pytest.approx(1 * HOUR)
    assert jobs[3].started_at == pytest.approx(1 * HOUR)


def test_walltime_request_over_site_limit_rejected(eng, net):
    site = make_site(eng, net, "SiteA", max_walltime=24 * HOUR)
    sched = BatchScheduler(eng, site)
    with pytest.raises(SubmissionError):
        submit(sched, spec(walltime=48 * HOUR))
    assert sched.rejected_count == 1


def test_walltime_kill(eng, net):
    site = make_site(eng, net, "SiteA")
    sched = BatchScheduler(eng, site)
    # Runtime exceeds the requested walltime: the LRM kills it.
    job = submit(sched, spec(runtime=10 * HOUR, walltime=2 * HOUR))
    eng.run()
    assert job.failed
    assert isinstance(job.error, WalltimeExceededError)
    assert job.finished_at == pytest.approx(2 * HOUR)
    assert site.cluster.busy_cpus == 0  # slot freed


def test_job_body_failure_recorded(eng, net):
    site = make_site(eng, net, "SiteA")

    def crashing_runner(engine, job, node):
        yield engine.timeout(60.0)
        raise ApplicationError("segfault")

    sched = BatchScheduler(eng, site, runner=crashing_runner)
    job = submit(sched, spec())
    eng.run()
    assert job.failed
    assert isinstance(job.error, ApplicationError)
    assert job.failure_category == "application"


def test_node_failure_fails_running_job(eng, net):
    site = make_site(eng, net, "SiteA", cpus=2)
    sched = BatchScheduler(eng, site)
    job = submit(sched, spec(runtime=10 * HOUR))

    def failer():
        yield eng.timeout(1 * HOUR)
        for node in site.cluster.nodes:
            if job.job_id in node.running:
                site.cluster.fail_node(node, cause="nightly rollover")

    eng.process(failer())
    eng.run()
    assert job.failed
    assert isinstance(job.error, NodeFailureError)
    assert job.finished_at == pytest.approx(1 * HOUR)


def test_completion_event_fires(eng, net):
    site = make_site(eng, net, "SiteA")
    sched = BatchScheduler(eng, site)
    seen = []

    def waiter(job):
        final = yield job.completion
        seen.append(final.state)

    job = submit(sched, spec(runtime=30 * MINUTE))
    eng.process(waiter(job))
    eng.run()
    assert seen == [JobState.DONE]


def test_on_complete_observers(eng, net):
    site = make_site(eng, net, "SiteA")
    sched = BatchScheduler(eng, site)
    seen = []
    sched.on_job_complete.append(lambda j: seen.append(j.job_id))
    job = submit(sched, spec())
    eng.run()
    assert seen == [job.job_id]


def test_cancel_queued_job(eng, net):
    site = make_site(eng, net, "SiteA", cpus=2)
    sched = BatchScheduler(eng, site)
    blockers = [submit(sched, spec(name=f"b{i}", runtime=HOUR)) for i in range(2)]
    victim = submit(sched, spec(name="victim"))
    sched.cancel(victim)
    eng.run()
    assert victim.failed
    assert all(b.succeeded for b in blockers)


def test_cancel_running_job(eng, net):
    site = make_site(eng, net, "SiteA")
    sched = BatchScheduler(eng, site)
    job = submit(sched, spec(runtime=10 * HOUR))

    def canceller():
        yield eng.timeout(HOUR)
        sched.cancel(job)

    eng.process(canceller())
    eng.run()
    assert job.failed
    assert isinstance(job.error, SubmissionError)
    assert site.cluster.busy_cpus == 0


def test_drain_completed_incremental(eng, net):
    site = make_site(eng, net, "SiteA", cpus=4)
    sched = BatchScheduler(eng, site)
    for i in range(3):
        submit(sched, spec(name=f"j{i}", runtime=HOUR))
    eng.run()
    first = sched.drain_completed(0)
    assert len(first) == 3
    assert sched.drain_completed(3) == []


def test_peak_running_tracked(eng, net):
    site = make_site(eng, net, "SiteA", cpus=4)
    sched = BatchScheduler(eng, site)
    for i in range(6):
        submit(sched, spec(name=f"j{i}", runtime=HOUR))
    eng.run()
    assert sched.peak_running == 4


# --- flavours ---------------------------------------------------------------

def test_pbs_priority_order(eng, net):
    site = make_site(eng, net, "SiteA", cpus=1, batch_system="pbs")
    sched = PBSScheduler(eng, site)
    submit(sched, spec(name="blocker", runtime=HOUR))
    low = submit(sched, spec(name="low"))
    high = Job(spec=spec(name="high", priority=10))
    sched.submit(high)
    eng.run()
    assert high.started_at < low.started_at


def test_condor_fair_share(eng, net):
    site = make_site(eng, net, "SiteA", cpus=1, batch_system="condor")
    sched = CondorScheduler(eng, site)
    # alice consumes CPU first.
    a1 = submit(sched, spec(name="a1", runtime=4 * HOUR, user="alice"))
    eng.run(until=1.0)
    # Both users queue one job; bob has no usage so bob goes first.
    a2 = submit(sched, spec(name="a2", runtime=HOUR, user="alice"))
    b1 = submit(sched, spec(name="b1", runtime=HOUR, user="bob"))
    eng.run()
    assert b1.started_at < a2.started_at


def test_condor_nice_user_backfills_only(eng, net):
    site = make_site(eng, net, "SiteA", cpus=1, batch_system="condor")
    sched = CondorScheduler(eng, site)
    running = submit(sched, spec(name="r", runtime=HOUR, user="alice"))
    exerciser = submit(sched, spec(name="probe", runtime=HOUR, user="condor", nice_user=True))
    science = submit(sched, spec(name="science", runtime=HOUR, user="bob"))
    eng.run()
    # Science beats the nice-user probe even though the probe queued first.
    assert science.started_at < exerciser.started_at


def test_lsf_short_queue_first(eng, net):
    site = make_site(eng, net, "SiteA", cpus=1, batch_system="lsf", max_walltime=200 * HOUR)
    sched = LSFScheduler(eng, site)
    running = submit(sched, spec(name="r", runtime=HOUR, walltime=2 * HOUR))
    long_job = submit(sched, spec(name="long", runtime=HOUR, walltime=100 * HOUR))
    short_job = submit(sched, spec(name="short", runtime=HOUR, walltime=2 * HOUR))
    eng.run()
    assert short_job.started_at < long_job.started_at


def test_make_scheduler_picks_flavour(eng, net):
    for flavour, cls in (("pbs", PBSScheduler), ("condor", CondorScheduler), ("lsf", LSFScheduler)):
        site = make_site(eng, net, f"Site-{flavour}", batch_system=flavour)
        assert isinstance(make_scheduler(eng, site), cls)
