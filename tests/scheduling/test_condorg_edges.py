"""Edge-case tests for Condor-G and batch scheduling."""

import pytest

from repro.core.job import Job, JobSpec
from repro.errors import ApplicationError
from repro.scheduling.condorg import CondorG
from repro.scheduling.batch import BatchScheduler
from repro.sim import GB, HOUR, MINUTE

from ..conftest import make_grid_fragment, make_site, wire_site


def spec(name="j", runtime=HOUR, **kw):
    kw.setdefault("walltime_request", 4 * HOUR)
    return JobSpec(name=name, vo="usatlas", user="alice", runtime=runtime, **kw)


def test_throttle_released_on_submission_failure(eng, net, ca):
    """A site that keeps rejecting must not eat throttle slots forever."""
    sites, _giis, proxy = make_grid_fragment(eng, net, ca)
    cg = CondorG(eng, "s", sites, proxy_provider=lambda u: proxy,
                 per_site_throttle=2, max_retries=0)
    sites["Frag0"].service("gatekeeper").available = False
    handles = cg.submit_many([spec(name=f"j{i}") for i in range(4)], "Frag0")
    eng.run()
    assert all(not h.succeeded for h in handles)
    # All throttle slots returned.
    assert cg._throttles["Frag0"].in_use == 0
    assert cg._throttles["Frag0"].queue_length == 0


def test_pinned_site_never_retries_elsewhere(eng, net, ca):
    def fails_on_frag0(engine, job, node):
        yield engine.timeout(MINUTE)
        if job.site_name == "Frag0":
            raise ApplicationError("bad here")

    sites, _giis, proxy = make_grid_fragment(eng, net, ca, runner=fails_on_frag0)
    cg = CondorG(eng, "s", sites, proxy_provider=lambda u: proxy, max_retries=3)
    handle = cg.submit(spec(), "Frag0")
    eng.run()
    assert not handle.succeeded
    assert set(handle.sites_tried) == {"Frag0"}  # pinning honoured


def test_walltime_policy_rejection_moves_to_next_site(eng, net, ca):
    """A site whose LRM rejects the walltime is skipped, not fatal."""
    sites, _giis, proxy = make_grid_fragment(eng, net, ca)
    # Make Frag0 reject long jobs.
    sites["Frag0"].config.max_walltime = 1 * HOUR
    cg = CondorG(eng, "s", sites, proxy_provider=lambda u: proxy)
    handle = cg.submit(spec(walltime_request=10 * HOUR))  # unpinned
    eng.run()
    assert handle.succeeded
    assert handle.job.site_name != "Frag0"


def test_zero_runtime_job(eng, net):
    site = make_site(eng, net, "S", cpus=1)
    sched = BatchScheduler(eng, site)
    job = Job(spec=spec(runtime=0.0))
    sched.submit(job)
    eng.run()
    assert job.succeeded
    assert job.run_time == 0.0


def test_burst_submission_drains_in_arrival_order(eng, net):
    site = make_site(eng, net, "S", cpus=1)
    sched = BatchScheduler(eng, site)
    jobs = [Job(spec=spec(name=f"j{i}", runtime=10 * MINUTE)) for i in range(8)]
    for job in jobs:
        sched.submit(job)
    eng.run()
    starts = [j.started_at for j in jobs]
    assert starts == sorted(starts)
    assert all(j.succeeded for j in jobs)


def test_intra_site_archiving_skips_transfer(eng, net, rng):
    """A job whose archive site is its execution site registers locally
    without moving bytes."""
    from repro.core.runner import Grid3Runner
    from repro.middleware.rls import LocalReplicaCatalog, ReplicaLocationIndex

    site = make_site(eng, net, "Home", cpus=2)
    sites = {"Home": site}
    rls = ReplicaLocationIndex(eng)
    rls.attach_lrc(LocalReplicaCatalog("Home"))
    runner = Grid3Runner(sites, rls, rng)
    sched = BatchScheduler(eng, site, runner=runner)
    job = Job(spec=spec(
        outputs=(("/out/x", 1 * GB),), archive_site="Home",
    ))
    sched.submit(job)
    eng.run()
    assert job.succeeded
    assert job.bytes_staged_out == 0.0
    assert "/out/x" in site.storage
    assert rls.sites_with("/out/x") == ["Home"]
