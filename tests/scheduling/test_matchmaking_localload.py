"""Tests for §6.4 site selection and shared-site background load."""

import pytest

from repro.core.job import JobSpec
from repro.middleware.mds import GIIS, GRIS
from repro.scheduling.localload import LocalLoadGenerator, add_local_load
from repro.scheduling.matchmaking import RandomSelector, SiteSelector
from repro.sim import DAY, GB, HOUR, RngRegistry, TB

from ..conftest import make_site


def spec(**kw):
    defaults = dict(name="j", vo="usatlas", user="alice", runtime=HOUR,
                    walltime_request=4 * HOUR)
    defaults.update(kw)
    return JobSpec(**defaults)


def build_giis(eng, net, site_params):
    giis = GIIS(eng, "g")
    sites = {}
    for name, kw in site_params.items():
        site = make_site(eng, net, name, **kw)
        gris = GRIS(eng, site, ttl=0.0)
        site.attach_service("gris", gris)
        giis.register(name, gris)
        sites[name] = site
    return giis, sites


def test_filter_outbound_connectivity(eng, net, rng):
    giis, _ = build_giis(eng, net, {
        "Open": dict(outbound_connectivity=True),
        "Private": dict(outbound_connectivity=False),
    })
    sel = SiteSelector(giis, rng)
    ranked = sel.rank(spec(requires_outbound=True))
    assert ranked == ["Open"]
    # Without the requirement, both qualify.
    assert set(sel.rank(spec())) == {"Open", "Private"}


def test_filter_disk_space(eng, net, rng):
    giis, _ = build_giis(eng, net, {
        "Big": dict(disk=10 * TB),
        "Tiny": dict(disk=2 * GB),
    })
    sel = SiteSelector(giis, rng)
    big_job = spec(outputs=(("/out", 5 * GB),))
    assert sel.rank(big_job) == ["Big"]


def test_filter_walltime(eng, net, rng):
    giis, _ = build_giis(eng, net, {
        "Long": dict(max_walltime=100 * HOUR),
        "Short": dict(max_walltime=10 * HOUR),
    })
    sel = SiteSelector(giis, rng)
    # A >30h OSCAR-style job (§6.2) only fits the long-walltime site.
    oscar = spec(runtime=30 * HOUR, walltime_request=40 * HOUR)
    assert sel.rank(oscar) == ["Long"]


def test_offline_sites_excluded(eng, net, rng):
    giis, sites = build_giis(eng, net, {"A": {}, "B": {}})
    sites["B"].status = "offline"
    sel = SiteSelector(giis, rng)
    assert sel.rank(spec()) == ["A"]


def test_vo_affinity_preference(eng, net, rng):
    giis, _ = build_giis(eng, net, {
        "Home": dict(vo="usatlas"),
        "Away": dict(vo="uscms"),
    })
    sel = SiteSelector(giis, rng, jitter=0.0)
    assert sel.rank(spec(vo="usatlas"))[0] == "Home"
    assert sel.rank(spec(vo="uscms", user="bob"))[0] == "Away"


def test_bandwidth_matters_for_data_heavy_jobs(eng, net, rng):
    giis, _ = build_giis(eng, net, {
        "Fat": dict(bw=1.25e8, vo="uscms"),     # 1 Gbit
        "Thin": dict(bw=5.6e6, vo="uscms"),     # 45 Mbit
    })
    sel = SiteSelector(giis, rng, jitter=0.0, vo_affinity_weight=0.0)
    heavy = spec(inputs=(("/in", 4 * GB),))
    assert sel.rank(heavy)[0] == "Fat"


def test_favorite_site_stickiness(eng, net, rng):
    giis, _ = build_giis(eng, net, {"A": {}, "B": {}})
    sel = SiteSelector(giis, rng, jitter=0.0, favorite_weight=5.0,
                       vo_affinity_weight=0.0)
    for _ in range(10):
        sel.record_use("usatlas", "alice", "B")
    assert sel.rank(spec())[0] == "B"
    # A different user has no such preference amplification.
    sel2_rank = sel.rank(spec(user="fresh"))
    assert set(sel2_rank) == {"A", "B"}


def test_exclude_list(eng, net, rng):
    giis, _ = build_giis(eng, net, {"A": {}, "B": {}})
    sel = SiteSelector(giis, rng)
    assert sel.rank(spec(), exclude=["A"]) == ["B"]
    assert sel.select(spec(), exclude=["A", "B"]) is None


def test_random_selector_ignores_requirements(eng, net, rng):
    giis, _ = build_giis(eng, net, {
        "Tiny": dict(disk=1 * GB),
        "Private": dict(outbound_connectivity=False),
    })
    sel = RandomSelector(giis, rng)
    demanding = spec(requires_outbound=True, outputs=(("/o", 10 * GB),))
    assert set(sel.rank(demanding)) == {"Tiny", "Private"}
    sel.record_use("usatlas", "alice", "Tiny")  # no-op, must not raise


def test_queue_wait_estimate_deprioritises_clogged_site(eng, net, rng):
    """§8 'Job Resource Requirements': published wait estimates steer
    placement away from backlogged sites."""
    from ..conftest import wire_site
    from repro.core.job import Job

    giis = GIIS(eng, "g")
    sites = {}
    for name in ("Clogged", "Idle"):
        site = make_site(eng, net, name, cpus=2)
        wire_site(eng, site, [])
        from repro.middleware.mds import GRIS as _GRIS
        gris = _GRIS(eng, site, ttl=0.0)
        site.attach_service("gris", gris)
        giis.register(name, gris)
        sites[name] = site
    # Fill Clogged's CPUs and stack a deep queue.
    lrm = sites["Clogged"].service("lrm")
    for i in range(10):
        lrm.submit(Job(spec=spec(name=f"clog{i}", runtime=10 * HOUR,
                                 walltime_request=40 * HOUR)))
    sel = SiteSelector(giis, rng, jitter=0.0, exploration=0.0,
                       vo_affinity_weight=0.0)
    assert sel.rank(spec())[0] == "Idle"


# --- local load ---------------------------------------------------------------

def test_local_load_targets_occupancy(eng, net, rng):
    site = make_site(eng, net, "Shared", cpus=100)
    gen = LocalLoadGenerator(eng, site, rng, availability=0.6, jitter=0.0)
    eng.run(until=1.0)
    assert gen.held_cpus == 40
    assert site.cluster.free_cpus == 60


def test_local_load_fluctuates_but_bounded(eng, net, rng):
    site = make_site(eng, net, "Shared", cpus=50)
    gen = LocalLoadGenerator(eng, site, rng, availability=0.7, jitter=0.1)
    samples = []

    def sampler():
        for _ in range(48):
            yield eng.timeout(HOUR)
            samples.append(gen.held_cpus)

    eng.process(sampler())
    eng.run(until=2 * DAY + 1)
    mean = sum(samples) / len(samples)
    assert 0.2 * 50 <= mean <= 0.4 * 50  # around 30 % occupancy
    assert min(samples) >= 0 and max(samples) <= 50
    assert len(set(samples)) > 1  # actually fluctuates


def test_local_load_never_evicts_grid_jobs(eng, net, rng):
    site = make_site(eng, net, "Shared", cpus=4)
    # Grid jobs hold every CPU.
    for i in range(4):
        site.cluster.allocate(f"grid-{i}")
    LocalLoadGenerator(eng, site, rng, availability=0.0, jitter=0.0)
    eng.run(until=1.0)
    # Local load wanted everything but could take nothing.
    assert all(f"grid-{i}" in
               [k for n in site.cluster.nodes for k in n.running]
               for i in range(4))


def test_local_load_validation(eng, net, rng):
    site = make_site(eng, net, "S", cpus=2)
    with pytest.raises(ValueError):
        LocalLoadGenerator(eng, site, rng, availability=1.5)


def test_add_local_load_only_shared(eng, net, rng):
    from repro.fabric import scaled_catalog, build_sites
    specs = scaled_catalog(50.0)
    sites = build_sites(eng, net, specs)
    by_name = {s.name: s for s in specs}
    gens = add_local_load(eng, sites.values(), by_name, rng)
    shared_count = sum(1 for s in specs if s.shared)
    assert len(gens) == shared_count
