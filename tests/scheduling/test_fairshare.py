"""Fair-share ledger and usage-policy invariants (unit level)."""

import math
import random

import pytest

from repro.fabric import GRID3_SITES, GRID3_VOS
from repro.scheduling import (
    FairShareLedger,
    PolicyEngine,
    UsagePolicy,
    open_policies,
    paper_policies,
)
from repro.scheduling.policy import RUNTIME_CLASSES, runtime_class_for
from repro.sim import Engine
from repro.sim.units import DAY, HOUR


# -- FairShareLedger ------------------------------------------------------
def test_targets_normalised_and_equal_by_default():
    ledger = FairShareLedger(["a", "b", "c", "d"])
    assert all(abs(t - 0.25) < 1e-12 for t in ledger.targets.values())
    weighted = FairShareLedger(["a", "b"], targets={"a": 3.0, "b": 1.0})
    assert abs(weighted.targets["a"] - 0.75) < 1e-12


def test_priority_factor_is_one_on_idle_grid():
    ledger = FairShareLedger(GRID3_VOS)
    for vo in GRID3_VOS:
        assert ledger.priority_factor(vo, 0.0) == 1.0
        assert ledger.priority_factor(vo, 30 * DAY) == 1.0


def test_charge_decays_with_configured_half_life():
    ledger = FairShareLedger(["a", "b"], half_life=1 * DAY)
    ledger.charge("a", 1000.0, now=0.0)
    assert abs(ledger.decayed_usage("a", 1 * DAY) - 500.0) < 1e-6
    assert abs(ledger.decayed_usage("a", 2 * DAY) - 250.0) < 1e-6


def test_decayed_usage_never_negative_property():
    """Property: under arbitrary charge/query interleavings at arbitrary
    (monotone) times, decayed usage stays >= 0 and the priority factor
    stays inside its clip band."""
    rnd = random.Random(1234)
    ledger = FairShareLedger(GRID3_VOS, half_life=6 * HOUR)
    now = 0.0
    for _ in range(2000):
        now += rnd.expovariate(1.0 / HOUR)
        vo = rnd.choice(GRID3_VOS)
        if rnd.random() < 0.5:
            ledger.charge(vo, rnd.uniform(0.0, 50 * HOUR), now)
        for probe in GRID3_VOS:
            usage = ledger.decayed_usage(probe, now)
            assert usage >= 0.0
            factor = ledger.priority_factor(probe, now)
            assert ledger.min_factor <= factor <= ledger.max_factor


def test_underserved_vo_outranks_overserved():
    ledger = FairShareLedger(["hog", "starved"])
    for _ in range(10):
        ledger.charge("hog", 10 * HOUR, now=0.0)
    assert ledger.priority_factor("starved", 0.0) > 1.0
    assert ledger.priority_factor("hog", 0.0) < 1.0


def test_report_rows_are_records_with_sorted_json():
    ledger = FairShareLedger(["a", "b"])
    ledger.charge("a", 100.0, now=5.0)
    rows = ledger.report(now=5.0)
    assert [r.vo for r in rows] == ["a", "b"]
    for row in rows:
        as_dict = row.as_dict()
        assert set(as_dict) == {
            "vo", "target_share", "decayed_usage", "observed_share",
            "priority_factor", "charges",
        }
        assert row.to_json().startswith('{"charges":')


def test_ledger_rejects_bad_parameters():
    with pytest.raises(ValueError):
        FairShareLedger([])
    with pytest.raises(ValueError):
        FairShareLedger(["a"], half_life=0.0)
    with pytest.raises(ValueError):
        FairShareLedger(["a", "b"], targets={"a": -1.0})


def test_fairshare_metrics_published():
    ledger = FairShareLedger(["a", "b"])
    ledger.charge("a", 100.0, now=10.0)
    usage = ledger.store.query("sched.fairshare.usage", vo="a")
    priority = ledger.store.query("sched.fairshare.priority", vo="a")
    assert len(usage) == 1 and usage[0].value == 100.0
    assert len(priority) == 1


# -- UsagePolicy ----------------------------------------------------------
def test_policy_allow_list_and_runtime_class():
    policy = UsagePolicy(
        site="X", allowed_vos=("uscms",), max_walltime=24 * HOUR,
    )
    assert policy.admits("uscms", 12 * HOUR)
    assert not policy.admits("sdss", 1 * HOUR)
    assert policy.rejection_reason("sdss", 1 * HOUR) == "vo-not-allowed"
    assert policy.rejection_reason("uscms", 48 * HOUR) == "runtime-class"
    assert policy.rejection_reason("uscms", 12 * HOUR) is None


def test_share_caps_and_max_running_floor():
    policy = UsagePolicy(
        site="X", share_caps=(("owner", 1.0), ("guest", 0.25)),
        default_share_cap=0.5,
    )
    assert policy.share_cap("owner") == 1.0
    assert policy.share_cap("guest") == 0.25
    assert policy.share_cap("unknown") == 0.5
    assert policy.max_running("guest", 8) == 2
    # Never starves a VO entirely: at least one slot.
    assert policy.max_running("guest", 1) == 1


def test_runtime_class_labels():
    assert runtime_class_for(10 * HOUR) == "short"
    assert runtime_class_for(72 * HOUR) == "production"
    assert runtime_class_for(30 * DAY) == "long"
    assert RUNTIME_CLASSES["long"] == math.inf


def test_paper_policies_cover_catalog_and_favor_owners():
    policies = paper_policies(GRID3_SITES, GRID3_VOS)
    assert set(policies) == {s.name for s in GRID3_SITES}
    for spec in GRID3_SITES:
        policy = policies[spec.name]
        owner_cap = policy.share_cap(spec.owner_vo)
        guests = [v for v in GRID3_VOS if v != spec.owner_vo]
        assert all(policy.share_cap(g) <= owner_cap for g in guests)
        if spec.tier1:
            assert all(policy.share_cap(g) == 0.25 for g in guests)
    # The reconstructed allow-lists actually restrict someone.
    assert not policies["KNU_Grid3"].admits("sdss", 1 * HOUR)
    assert policies["KNU_Grid3"].admits("uscms", 1 * HOUR)


def test_open_policies_admit_everyone_at_full_share():
    policies = open_policies(GRID3_SITES, GRID3_VOS)
    for spec in GRID3_SITES:
        policy = policies[spec.name]
        for vo in GRID3_VOS:
            assert policy.admits(vo, 1 * HOUR)
            assert policy.share_cap(vo) == 1.0


# -- PolicyEngine ---------------------------------------------------------
def test_engine_counts_rejections_and_publishes_metric():
    engine = Engine()
    policies = {"X": UsagePolicy(site="X", allowed_vos=("uscms",))}
    pe = PolicyEngine(engine, policies, slots_per_site=10)
    assert pe.admits("X", "uscms", 1 * HOUR)
    assert not pe.admits("X", "sdss", 1 * HOUR)
    assert not pe.admits("X", "sdss", 1 * HOUR)
    assert pe.admits("unknown-site", "sdss", 1 * HOUR)  # no policy = open
    rows = pe.reject_rows()
    assert len(rows) == 1
    assert (rows[0].site, rows[0].vo, rows[0].reason, rows[0].count) == (
        "X", "sdss", "vo-not-allowed", 2,
    )
    samples = pe.store.query("sched.policy.rejects", site="X", vo="sdss")
    assert samples and samples[-1].value == 2.0


def test_engine_share_resources_sized_by_cap():
    engine = Engine()
    policies = {
        "X": UsagePolicy(
            site="X", share_caps=(("guest", 0.25),), default_share_cap=1.0,
        )
    }
    pe = PolicyEngine(engine, policies, slots_per_site=8)
    assert pe.cap_for("X", "guest") == 2
    assert pe.cap_for("X", "other") == 8
    assert pe.share_resource("X", "guest").capacity == 2
    # Unknown sites fall back to the full slot pool.
    assert pe.cap_for("elsewhere", "guest") == 8


def test_engine_peak_tracking_and_cap_violations():
    engine = Engine()
    pe = PolicyEngine(
        engine, {"X": UsagePolicy(site="X", default_share_cap=0.5)},
        slots_per_site=4,
    )
    pe.share_resource("X", "v")
    for _ in range(2):
        pe.note_start("X", "v")
    pe.note_finish("X", "v")
    rows = pe.share_rows()
    assert len(rows) == 1 and rows[0].peak == 2 and rows[0].cap == 2
    assert pe.cap_violations() == []
