"""Fair-share scheduling at grid level: contention regression,
share-cap property over a real run, and feature-off byte-identity."""

from collections import Counter

from repro import Grid3, Grid3Config, SCENARIOS
from repro.analysis import export_database
from repro.failures import FailureProfile


def _completed_per_vo(grid):
    done = Counter(r.vo for r in grid.acdc_db.records() if r.succeeded)
    return dict(done)


def _maxmin_ratio(done):
    if not done:
        return 0.0
    return max(done.values()) / max(1, min(done.values()))


def _mean_queue_wait_by_vo(grid):
    waits = {}
    for record in grid.acdc_db.records():
        if record.started_at >= 0:
            waits.setdefault(record.vo, []).append(
                max(0.0, record.started_at - record.submitted_at)
            )
    return {vo: sum(ws) / len(ws) for vo, ws in waits.items()}


def test_contention_scenario_fairshare_vs_starvation():
    """The ISSUE acceptance demo at its pinned seed: enabling fair_share
    lowers the max/min per-VO completed-job ratio and bounds the worst
    per-VO queue wait; share caps hold throughout; sched.* metrics land
    in the MetricStore."""
    runs = {}
    for fair in (False, True):
        grid = Grid3(SCENARIOS["contention"](seed=42, fair_share=fair))
        grid.run_full()
        runs[fair] = grid

    ratio_off = _maxmin_ratio(_completed_per_vo(runs[False]))
    ratio_on = _maxmin_ratio(_completed_per_vo(runs[True]))
    assert ratio_on < ratio_off

    wait_off = max(_mean_queue_wait_by_vo(runs[False]).values())
    wait_on = max(_mean_queue_wait_by_vo(runs[True]).values())
    assert wait_on <= wait_off

    # Share-cap property over every scheduling decision of a real run.
    assert runs[True].policy_engine.cap_violations() == []

    store = runs[True].monitors["sched"]
    assert store.query("sched.share.running")
    assert store.query("sched.fairshare.usage")
    assert store.query("sched.fairshare.priority")
    # The off run built no enforcement objects at all.
    assert runs[False].policy_engine is None
    assert "sched" not in runs[False].monitors


def test_fairshare_report_surfaces():
    grid = Grid3(SCENARIOS["contention"](seed=42, fair_share=True))
    grid.run_full()
    rows = grid.fairshare_report()
    assert [r.vo for r in rows] == sorted(grid.condorg)
    assert abs(sum(r.target_share for r in rows) - 1.0) < 1e-9
    ops = grid.troubleshooting()
    assert [r.vo for r in ops.fairshare_report()] == [r.vo for r in rows]
    assert ops.share_caps() == grid.policy_engine.share_rows()
    # Active VOs were charged.
    charged = {r.vo for r in rows if r.charges}
    assert charged, "no VO ever charged the ledger"


def _export(**kwargs):
    grid = Grid3(Grid3Config(seed=11, scale=800, duration_days=2, **kwargs))
    grid.run_full()
    return export_database(grid.acdc_db), grid


def test_feature_off_runs_are_byte_identical():
    """With fair_share off the policy layer is pure publication: runs
    with different published policy sets — and repeated runs — produce
    byte-identical exports and no sched.* RNG streams.  (The same-seed
    equality against the pre-fair-share build was verified against the
    unmodified tree at PR time for three configs.)"""
    base, grid_a = _export()
    again, _ = _export()
    open_set, grid_b = _export(site_policies="open")
    assert base == again
    assert base == open_set
    for grid in (grid_a, grid_b):
        assert grid.fairshare is None and grid.policy_engine is None
        # Policies are still published on every site.
        assert all(s.usage_policy is not None for s in grid.sites.values())


def test_fairshare_same_seed_is_deterministic():
    on_a, _ = _export(fair_share=True)
    on_b, _ = _export(fair_share=True)
    assert on_a == on_b
