"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def run_cli(argv):
    """Invoke the CLI capturing printed lines."""
    lines = []
    parser = build_parser()
    args = parser.parse_args(argv)
    code = args.func(args, out=lines.append)
    return code, "\n".join(str(l) for l in lines)


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_catalog_command():
    code, text = run_cli(["catalog"])
    assert code == 0
    assert "BNL_ATLAS" in text and "FNAL_CMS" in text
    assert "27 sites, 2800 CPUs peak" in text


def test_run_command_small():
    code, text = run_cli([
        "run", "--scale", "800", "--days", "2", "--no-failures",
        "--apps", "exerciser",
    ])
    assert code == 0
    assert "job records:" in text
    assert "milestone" in text
    assert "Number of CPUs" in text


def test_figures_command_selected():
    code, text = run_cli([
        "figures", "--scale", "800", "--days", "3", "--no-failures",
        "--apps", "exerciser", "ivdgl", "--figure", "6", "--table1",
    ])
    assert code == 0
    assert "Figure 6" in text
    assert "Figure 2" not in text  # only the requested figure
    assert "avg_hr" in text        # table 1 appended


def test_export_command_stdout():
    code, text = run_cli([
        "export", "--scale", "800", "--days", "2", "--no-failures",
        "--apps", "exerciser",
    ])
    assert code == 0
    assert text.splitlines()[0].startswith("job_id,name,vo")
    assert "exerciser" in text


def test_export_command_to_file(tmp_path):
    target = tmp_path / "records.csv"
    code, text = run_cli([
        "export", "--scale", "800", "--days", "2", "--no-failures",
        "--apps", "exerciser", "-o", str(target),
    ])
    assert code == 0
    assert "wrote" in text
    content = target.read_text()
    assert content.startswith("job_id,")
    # Round-trips through the import side.
    from repro.analysis import import_records
    db = import_records(content)
    assert len(db) > 0


def test_ablation_flags_accepted():
    code, _text = run_cli([
        "run", "--scale", "800", "--days", "1", "--srm",
        "--random-matchmaking", "--apps", "exerciser",
    ])
    assert code == 0


def test_scenario_and_map_options():
    code, text = run_cli([
        "run", "--scenario", "stabilized-2004", "--scale", "800",
        "--days", "2", "--apps", "exerciser", "--map",
    ])
    assert code == 0
    assert "site status map" in text
    assert "key: o=PASS" in text
    assert "KNU_Grid3 (off-map)" in text


def test_scenario_flag_applies_config():
    parser = build_parser()
    args = parser.parse_args([
        "run", "--scenario", "chaos-deployment", "--scale", "700",
        "--days", "1", "--apps", "exerciser",
    ])
    from repro.cli import _build_grid
    grid = _build_grid(args)
    assert grid.config.scale == 700
    assert not grid.config.ops_team          # chaos scenario property
    assert grid.config.misconfig_probability == 0.5


def test_report_command():
    code, text = run_cli([
        "report", "--scale", "800", "--days", "7", "--no-failures",
        "--apps", "exerciser",
    ])
    assert code == 0
    assert "Grid3 Operations Report" in text
    assert "Site health:" in text


def test_score_command_runs():
    # A tiny, exerciser-only run misses most Table 1 classes, so the
    # score command exits nonzero — the CI-gate behaviour — but still
    # prints the scorecard.
    code, text = run_cli([
        "score", "--scale", "800", "--days", "2", "--no-failures",
        "--apps", "exerciser",
    ])
    assert "shape agreement:" in text
    assert "[MISS]" in text
    assert code == 1


def test_health_command():
    code, text = run_cli([
        "health", "--scale", "800", "--days", "2", "--apps", "exerciser",
    ])
    assert code == 0
    assert "service" in text and "avail" in text
    assert "gatekeeper" in text and "gridftp" in text
    assert "igoc-rls" in text          # central services included
    assert "total downtime:" in text


def test_health_command_site_filter():
    code, text = run_cli([
        "health", "--scale", "800", "--days", "1", "--no-failures",
        "--apps", "exerciser", "--site", "BNL_ATLAS",
    ])
    assert code == 0
    assert "BNL_ATLAS" in text
    assert "FNAL_CMS" not in text


def test_main_entry_point():
    assert main(["catalog"]) == 0


def test_data_command_smoke():
    code, text = run_cli([
        "data", "--scale", "800", "--days", "1", "--no-failures",
        "--apps", "exerciser", "--top", "3",
    ])
    assert code == 0
    assert "occupancy" in text and "evictions" in text
    assert "BNL_ATLAS" in text
    assert "agent.sweeps" in text and "transfers.completed" in text


def test_data_command_disk_scale_applies():
    code, text = run_cli([
        "data", "--scale", "400", "--days", "1", "--no-failures",
        "--apps", "exerciser", "--disk-scale", "2000",
    ])
    assert code == 0
    # Scaled-down disks show up directly in the capacity column:
    # BNL_ATLAS's 8 TB becomes 0.00 TB at this divisor.
    assert "0.00" in text


def test_trace_command_table_mode():
    code, text = run_cli([
        "trace", "--scale", "800", "--days", "2", "--no-failures",
        "--apps", "exerciser", "--top", "3",
    ])
    assert code == 0
    assert "slowest" in text and "traced jobs" in text
    assert "critical phase" in text
    assert "phase breakdown" in text


def test_trace_command_job_id_mode():
    code, text = run_cli([
        "trace", "1", "--scale", "800", "--days", "2", "--no-failures",
        "--apps", "exerciser",
    ])
    assert code == 0
    assert "trace" in text
    assert "compute" in text  # the span tree shows lifecycle phases
    # An id the run never produced exits nonzero with a diagnostic.
    code, text = run_cli([
        "trace", "999999", "--scale", "800", "--days", "1", "--no-failures",
        "--apps", "exerciser",
    ])
    assert code == 1
    assert "no trace" in text


def test_trace_command_exports(tmp_path):
    perfetto = tmp_path / "trace.json"
    jsonl = tmp_path / "spans.jsonl"
    code, text = run_cli([
        "trace", "--scale", "800", "--days", "2", "--no-failures",
        "--apps", "exerciser",
        "--perfetto", str(perfetto), "--jsonl", str(jsonl),
    ])
    assert code == 0
    assert "wrote" in text
    import json
    doc = json.loads(perfetto.read_text())
    assert doc["traceEvents"]
    lines = jsonl.read_text().splitlines()
    assert lines and all(json.loads(l)["trace_id"] for l in lines)
