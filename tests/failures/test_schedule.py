"""Tests for time-varying failure schedules (the stabilisation arc)."""

import pytest

from repro.core.job import Job, JobSpec
from repro.failures import FailureInjector, FailureProfile, FailureSchedule
from repro.sim import DAY, HOUR, RngRegistry

from ..conftest import make_site, wire_site


def test_schedule_validation():
    with pytest.raises(ValueError):
        FailureSchedule([])
    with pytest.raises(ValueError):
        FailureSchedule([(5.0, FailureProfile())])  # no era at t=0


def test_schedule_at_and_next_switch():
    early = FailureProfile.early()
    calm = FailureProfile.calm()
    schedule = FailureSchedule([(0.0, early), (10 * DAY, calm)])
    assert schedule.at(0.0) is early
    assert schedule.at(9.99 * DAY) is early
    assert schedule.at(10 * DAY) is calm
    assert schedule.at(100 * DAY) is calm
    assert schedule.next_switch_after(0.0) == 10 * DAY
    assert schedule.next_switch_after(10 * DAY) is None


def test_schedule_accepts_unsorted_eras():
    schedule = FailureSchedule([
        (10 * DAY, FailureProfile.calm()),
        (0.0, FailureProfile.early()),
    ])
    assert schedule.at(0.0).service_failure_interval == \
        FailureProfile.early().service_failure_interval


def test_paper_timeline_factory():
    schedule = FailureSchedule.paper_timeline(stabilize_day=50)
    early = schedule.at(0.0)
    calm = schedule.at(60 * DAY)
    assert early.service_failure_interval < calm.service_failure_interval
    assert early.node_mtbf < calm.node_mtbf


def test_early_profile_harsher_than_default():
    early = FailureProfile.early()
    default = FailureProfile()
    assert early.service_failure_interval < default.service_failure_interval
    assert early.node_mtbf < default.node_mtbf
    assert early.nightly_rollover["UB_ACDC"] > default.nightly_rollover["UB_ACDC"]


def test_injector_rates_follow_the_schedule(eng, net, rng):
    """Injection density drops sharply after the era switch."""
    site = make_site(eng, net, "SiteA", cpus=8)
    wire_site(eng, site, [])
    noisy = FailureProfile(
        service_failure_interval=6 * HOUR,
        network_interruption_interval=None,
        node_mtbf=None,
        nightly_rollover={},
    )
    quiet = FailureProfile(
        service_failure_interval=100 * DAY,
        network_interruption_interval=None,
        node_mtbf=None,
        nightly_rollover={},
    )
    schedule = FailureSchedule([(0.0, noisy), (10 * DAY, quiet)])
    injector = FailureInjector(eng, [site], rng, schedule)
    eng.run(until=10 * DAY)
    first_era = injector.injected["service"]
    eng.run(until=20 * DAY)
    second_era = injector.injected["service"] - first_era
    assert first_era >= 15      # ~40 expected in 10 days at 6 h
    assert second_era <= 3      # near-zero in the quiet era


def test_injector_class_disabled_in_one_era(eng, net, rng):
    """A class off in era 1 but on in era 2 starts firing after the
    switch (the loop sleeps through the disabled era)."""
    site = make_site(eng, net, "SiteA", cpus=4)
    wire_site(eng, site, [])
    off = FailureProfile(
        service_failure_interval=None,
        network_interruption_interval=None,
        node_mtbf=None, nightly_rollover={},
    )
    on = FailureProfile(
        service_failure_interval=None,
        network_interruption_interval=4 * HOUR,
        node_mtbf=None, nightly_rollover={},
    )
    injector = FailureInjector(eng, [site], rng, FailureSchedule([
        (0.0, off), (5 * DAY, on),
    ]))
    # Strictly inside era 1 (the loop's wake lands exactly on the
    # boundary, which already belongs to era 2).
    eng.run(until=5 * DAY - 1)
    assert injector.injected["network"] == 0
    eng.run(until=10 * DAY)
    assert injector.injected["network"] >= 10


def test_grid3_accepts_schedule():
    from repro import Grid3, Grid3Config
    grid = Grid3(Grid3Config(
        seed=4, scale=600, duration_days=6, apps=["exerciser"],
        failures=FailureSchedule.paper_timeline(stabilize_day=3),
    ))
    grid.run_full()
    assert grid.injector.schedule.at(0.0).service_failure_interval == \
        FailureProfile.early().service_failure_interval
    assert len(grid.acdc_db) > 0
