"""Tests for failure models and the injector."""

import pytest

from repro.core.job import Job, JobSpec
from repro.errors import NodeFailureError, ServiceFailureError
from repro.failures import FailureInjector, FailureProfile
from repro.sim import DAY, HOUR, MINUTE, RngRegistry

from ..conftest import make_site, wire_site


def spec(runtime=10 * HOUR):
    return JobSpec(name="victim", vo="usatlas", user="alice",
                   runtime=runtime, walltime_request=runtime * 1.5)


def test_profile_presets():
    assert FailureProfile.disabled().service_failure_interval is None
    assert FailureProfile.disabled().nightly_rollover == {}
    calm = FailureProfile.calm()
    default = FailureProfile()
    assert calm.service_failure_interval > default.service_failure_interval
    assert "UB_ACDC" in default.nightly_rollover


def test_disabled_profile_injects_nothing(eng, net, rng):
    site = make_site(eng, net, "SiteA")
    injector = FailureInjector(eng, [site], rng, FailureProfile.disabled())
    eng.run(until=30 * DAY)
    assert injector.injected == {
        "service": 0, "pool": 0, "network": 0, "node": 0, "rollover": 0,
    }


def test_service_crash_kills_running_jobs(eng, net, rng):
    site = make_site(eng, net, "SiteA", cpus=4)
    wire_site(eng, site, [])
    lrm = site.service("lrm")
    jobs = [Job(spec=spec()) for _ in range(3)]
    for job in jobs:
        lrm.submit(job)
    profile = FailureProfile(
        service_failure_interval=1 * HOUR,   # crashes arrive fast
        batch_crash_weight=5.0,              # mostly batch crashes
        service_repair_time=2 * HOUR,
        network_interruption_interval=None,
        node_mtbf=None,
        nightly_rollover={},
    )
    injector = FailureInjector(eng, [site], rng, profile)
    eng.run(until=10 * HOUR)
    assert injector.injected["service"] >= 1
    assert injector.jobs_killed >= 1
    killed = [j for j in jobs if j.failed]
    assert killed
    assert all(isinstance(j.error, ServiceFailureError) for j in killed)


def test_service_repair_restores(eng, net, rng):
    site = make_site(eng, net, "SiteA")
    wire_site(eng, site, [])
    profile = FailureProfile(
        service_failure_interval=1 * HOUR,
        service_repair_time=30 * MINUTE,
        network_interruption_interval=None,
        node_mtbf=None,
        nightly_rollover={},
    )
    FailureInjector(eng, [site], rng, profile)
    eng.run(until=3 * DAY)
    # After plenty of crash/repair cycles, services end up available again
    # (repair always follows crash within 30 min).
    eng.run(until=3 * DAY + 2 * HOUR)
    available = [
        site.services[r].available for r in ("gatekeeper", "gridftp")
    ]
    assert any(available)  # at least one restored; both crash rarely together


def test_network_interruption_and_restore(eng, net, rng):
    site = make_site(eng, net, "SiteA")
    profile = FailureProfile(
        service_failure_interval=None,
        network_interruption_interval=6 * HOUR,
        network_outage_duration=30 * MINUTE,
        node_mtbf=None,
        nightly_rollover={},
    )
    injector = FailureInjector(eng, [site], rng, profile)
    eng.run(until=3 * DAY)
    assert injector.injected["network"] >= 2
    # Links are back up at the end (no outage longer than 30 min).
    assert site.uplink.up and site.downlink.up


def test_node_failures_evict_and_repair(eng, net, rng):
    site = make_site(eng, net, "SiteA", cpus=8)
    wire_site(eng, site, [])
    profile = FailureProfile(
        service_failure_interval=None,
        network_interruption_interval=None,
        node_mtbf=48 * HOUR,   # 8 nodes -> one failure every ~6 h
        node_repair_time=1 * HOUR,
        nightly_rollover={},
    )
    injector = FailureInjector(eng, [site], rng, profile)
    eng.run(until=5 * DAY)
    assert injector.injected["node"] >= 5
    # Repairs keep the cluster from draining to zero.
    assert site.cluster.online_cpus >= site.cluster.total_cpus - 2


def test_nightly_rollover_fires_daily_at_hour(eng, net, rng):
    site = make_site(eng, net, "UB_ACDC", cpus=8, max_walltime=200 * HOUR)
    wire_site(eng, site, [])
    lrm = site.service("lrm")
    profile = FailureProfile(
        service_failure_interval=None,
        network_interruption_interval=None,
        node_mtbf=None,
        nightly_rollover={"UB_ACDC": 0.5},
        rollover_hour=3,
    )
    injector = FailureInjector(eng, [site], rng, profile)
    # A long job spanning several nights.
    job = Job(spec=spec(runtime=100 * HOUR))
    lrm.submit(job)
    eng.run(until=3 * DAY)
    assert injector.injected["rollover"] == 3
    # The job was on one of the rolled nodes with 50 % node coverage per
    # night; over 3 nights it is overwhelmingly likely to have died.
    if job.failed:
        assert isinstance(job.error, NodeFailureError)


def test_rollover_only_for_configured_sites(eng, net, rng):
    a = make_site(eng, net, "UB_ACDC", cpus=2)
    b = make_site(eng, net, "Other", cpus=2)
    profile = FailureProfile(
        service_failure_interval=None,
        network_interruption_interval=None,
        node_mtbf=None,
        nightly_rollover={"UB_ACDC": 0.5},
    )
    injector = FailureInjector(eng, [a, b], rng, profile)
    eng.run(until=2 * DAY)
    assert injector.injected["rollover"] == 2  # only UB_ACDC rolls
