"""Optional end-to-end smoke runs of every example script.

Each example is executed in a subprocess exactly as a user would run it.
These take a few minutes total, so they only run when explicitly asked:

    RUN_EXAMPLE_SMOKE=1 pytest tests/test_examples_smoke.py -q
"""

import os
import pathlib
import subprocess
import sys

import pytest

REPO = pathlib.Path(__file__).resolve().parent.parent
EXAMPLES = sorted((REPO / "examples").glob("*.py"))

pytestmark = pytest.mark.skipif(
    not os.environ.get("RUN_EXAMPLE_SMOKE"),
    reason="set RUN_EXAMPLE_SMOKE=1 to smoke-run the examples",
)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_runs_clean(path):
    env = dict(os.environ, GRID3_SCALE="400")
    result = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=600,
        env=env,
        cwd=REPO,
    )
    assert result.returncode == 0, (
        f"{path.name} failed:\n{result.stdout[-2000:]}\n{result.stderr[-2000:]}"
    )
    assert result.stdout.strip(), f"{path.name} printed nothing"
