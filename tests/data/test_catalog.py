"""Tests for the management-facing DatasetCatalog."""

import pytest

from repro.data import Dataset, DatasetCatalog


def make_catalog():
    cat = DatasetCatalog()
    cat.define("atlas/run1", "atlas", files=[("/atlas/run1/gen", 1e9), ("/atlas/run1/sim", 2e9)])
    cat.define("sdss/images", "sdss", files=[("/sdss/images/strip-001", 5e8)])
    return cat


def test_define_and_lookup():
    cat = make_catalog()
    assert len(cat) == 2
    ds = cat.dataset("atlas/run1")
    assert ds.vo == "atlas"
    assert ds.size == pytest.approx(3e9)
    assert len(ds) == 2
    assert "/atlas/run1/gen" in ds
    assert cat.dataset_of("/atlas/run1/gen") is ds
    assert cat.dataset_of("/nowhere") is None


def test_define_extends_existing():
    cat = make_catalog()
    cat.define("atlas/run1", "atlas", files=[("/atlas/run1/dst", 1e9)])
    assert len(cat.dataset("atlas/run1")) == 3


def test_redefine_with_other_vo_raises():
    cat = make_catalog()
    with pytest.raises(ValueError):
        cat.define("atlas/run1", "uscms")


def test_file_belongs_to_at_most_one_dataset():
    cat = make_catalog()
    with pytest.raises(ValueError):
        cat.add_file("sdss/images", "/atlas/run1/gen", 1e9)
    # Re-adding to the same dataset is idempotent.
    cat.add_file("atlas/run1", "/atlas/run1/gen", 1e9)


def test_negative_size_rejected():
    cat = make_catalog()
    with pytest.raises(ValueError):
        cat.add_file("atlas/run1", "/atlas/run1/bad", -1.0)


def test_remove_file():
    cat = make_catalog()
    cat.remove_file("/atlas/run1/gen")
    assert cat.dataset_of("/atlas/run1/gen") is None
    assert "/atlas/run1/gen" not in cat.dataset("atlas/run1")
    cat.remove_file("/unknown")  # no-op


def test_auto_define_derives_from_lfn_path():
    cat = DatasetCatalog()
    ds = cat.auto_define("/atlas/run9/dst", 2e9)
    assert ds is not None
    assert ds.name == "atlas/run9"
    assert ds.vo == "atlas"
    assert cat.dataset_of("/atlas/run9/dst") is ds
    # Second member file of the same group lands in the same dataset.
    assert cat.auto_define("/atlas/run9/sim", 1e9) is ds
    assert len(ds) == 2
    # LFNs outside the /vo/group convention stay orphans.
    assert cat.auto_define("/flatfile", 1.0) is None


def test_access_accounting_and_heat():
    cat = make_catalog()
    for _ in range(3):
        cat.record_access("/atlas/run1/gen", 100.0)
    cat.record_access("/sdss/images/strip-001", 200.0)
    cat.record_access("/orphan/file/x", 300.0)  # orphans ignored
    hot = cat.hot_datasets(n=5)
    assert [d.name for d in hot] == ["atlas/run1", "sdss/images"]
    assert hot[0].accesses == 3
    assert cat.last_access_of("/atlas/run1/sim") == 100.0  # dataset-level
    assert cat.last_access_of("/orphan/file/x") == 0.0  # coldest possible
    # Never-accessed datasets are not "hot".
    cat.define("empty/ds", "ligo")
    assert all(d.name != "empty/ds" for d in cat.hot_datasets(n=10))


def test_hot_datasets_vo_filter_and_ties():
    cat = make_catalog()
    cat.record_access("/atlas/run1/gen", 1.0)
    cat.record_access("/sdss/images/strip-001", 1.0)
    # Tie on accesses breaks on name, deterministically.
    assert [d.name for d in cat.hot_datasets(n=2)] == ["atlas/run1", "sdss/images"]
    assert [d.name for d in cat.hot_datasets(n=2, vo="sdss")] == ["sdss/images"]


def test_pinning():
    cat = make_catalog()
    assert not cat.is_pinned("/atlas/run1/gen")
    cat.pin("atlas/run1")
    assert cat.is_pinned("/atlas/run1/gen")
    assert not cat.is_pinned("/sdss/images/strip-001")
    assert not cat.is_pinned("/orphan")
    cat.unpin("atlas/run1")
    assert not cat.is_pinned("/atlas/run1/gen")


def test_bytes_by_vo():
    cat = make_catalog()
    by_vo = cat.bytes_by_vo()
    assert by_vo["atlas"] == pytest.approx(3e9)
    assert by_vo["sdss"] == pytest.approx(5e8)
