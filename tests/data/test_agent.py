"""Tests for StorageAgent disk-pressure control and metrics."""

import pytest

from repro.data import DatasetCatalog, StorageAgent, TransferManager
from repro.middleware.rls import LocalReplicaCatalog, ReplicaLocationIndex
from repro.sim import GB, MB
from repro.sim.units import HOUR

from ..conftest import make_site


def build(eng, net, names=("SiteA", "SiteB", "SiteC"), disk=1 * GB, **agent_kw):
    sites = {}
    rls = ReplicaLocationIndex(eng)
    for name in names:
        sites[name] = make_site(eng, net, name, disk=disk)
        rls.attach_lrc(LocalReplicaCatalog(name))
    catalog = DatasetCatalog()
    agent = StorageAgent(eng, sites, catalog=catalog, rls=rls, **agent_kw)
    return sites, rls, catalog, agent


def fill(sites, rls, site_name, lfns, size=100 * MB, register=True):
    for lfn in lfns:
        sites[site_name].storage.store(lfn, size)
        if register:
            rls.register(site_name, lfn, size)


def test_watermark_validation():
    from repro.sim import Engine
    with pytest.raises(ValueError):
        StorageAgent(Engine(), {}, high_watermark=0.5, low_watermark=0.7)


def test_no_eviction_below_watermark(eng, net):
    sites, rls, _cat, agent = build(eng, net)
    fill(sites, rls, "SiteA", [f"/x/{i}" for i in range(5)])  # 50 %
    assert agent.sweep_once() == 0
    assert len(sites["SiteA"].storage) == 5


def test_evicts_down_to_low_watermark(eng, net):
    sites, rls, _cat, agent = build(
        eng, net, high_watermark=0.85, low_watermark=0.70,
    )
    # 90 % full with unregistered orphans (failed-job residue).
    fill(sites, rls, "SiteA", [f"/x/{i}" for i in range(9)], register=False)
    evicted = agent.sweep_once()
    assert evicted > 0
    se = sites["SiteA"].storage
    assert se.utilisation <= 0.70 + 1e-9
    assert agent.evicted_bytes == evicted * 100 * MB
    assert agent.last_copy_evictions == 0  # orphans are not last copies


def test_coldest_files_evict_first(eng, net):
    sites, rls, cat, agent = build(eng, net)
    fill(sites, rls, "SiteA", [f"/atlas/run{i}/f" for i in range(9)],
         register=False)
    # Heat runs 0..8: run0 coldest, run8 hottest.
    for i in range(9):
        cat.auto_define(f"/atlas/run{i}/f", 100 * MB)
        cat.record_access(f"/atlas/run{i}/f", float(i + 1))
    agent.sweep_once()
    remaining = {o.lfn for o in sites["SiteA"].storage.files()}
    # Hottest files survive, coldest went first.
    assert "/atlas/run8/f" in remaining
    assert "/atlas/run0/f" not in remaining


def test_pinned_datasets_never_evicted(eng, net):
    sites, rls, cat, agent = build(eng, net)
    fill(sites, rls, "SiteA", [f"/atlas/prod/{i}" for i in range(9)],
         register=False)
    for i in range(9):
        cat.auto_define(f"/atlas/prod/{i}", 100 * MB)
    cat.pin("atlas/prod")
    assert agent.sweep_once() == 0  # everything pinned: over watermark, stuck
    assert len(sites["SiteA"].storage) == 9


def test_safe_copies_evicted_before_last_copies(eng, net):
    sites, rls, _cat, agent = build(eng, net)
    # Five registered single copies plus four files replicated elsewhere.
    fill(sites, rls, "SiteA", [f"/solo/{i}" for i in range(5)])
    fill(sites, rls, "SiteA", [f"/dup/{i}" for i in range(4)])
    for i in range(4):
        rls.register("SiteB", f"/dup/{i}", 100 * MB)
    evicted = agent.sweep_once()
    remaining = {o.lfn for o in sites["SiteA"].storage.files()}
    # Relief came entirely from safely-duplicated files; every last
    # copy survived and the sweep stopped at the low watermark.
    assert evicted > 0
    assert all(f"/solo/{i}" in remaining for i in range(5))
    assert agent.last_copy_evictions == 0
    assert sites["SiteA"].storage.utilisation <= 0.70 + 1e-9
    # The evicted duplicates are still reachable from SiteB.
    for i in range(4):
        assert "SiteB" in rls.sites_with(f"/dup/{i}")


def test_last_copies_reclaimed_under_sustained_pressure(eng, net):
    sites, rls, _cat, agent = build(eng, net)
    # 95 % full, every file a registered last copy.
    fill(sites, rls, "SiteA", [f"/solo/{i}" for i in range(9)])
    sites["SiteA"].storage.store("/solo/x", 50 * MB)
    rls.register("SiteA", "/solo/x", 50 * MB)
    agent.sweep_once()
    assert agent.last_copy_evictions > 0
    assert sites["SiteA"].storage.utilisation <= 0.70 + 1e-9
    # Evictions kept RLS consistent: no planner can route at a ghost.
    for obj_lfn in [f"/solo/{i}" for i in range(9)] + ["/solo/x"]:
        in_storage = obj_lfn in sites["SiteA"].storage
        in_rls = "SiteA" in (rls.sites_with(obj_lfn) or [])
        assert in_storage == in_rls


def test_replicates_hot_dataset_to_least_loaded_site(eng, net, rng):
    sites, rls, cat, agent = build(eng, net, replicate_threshold=3)
    manager = TransferManager(eng, sites, rng, rls=rls)
    agent.transfers = manager
    fill(sites, rls, "SiteA", ["/atlas/hot/f1"], size=100 * MB)
    cat.auto_define("/atlas/hot/f1", 100 * MB)
    for _ in range(3):
        cat.record_access("/atlas/hot/f1", 10.0)
    # SiteC is busier than SiteB; SiteB must win the copy.
    sites["SiteC"].storage.store("/ballast", 300 * MB)
    agent.sweep_once()
    assert agent.replications_started == 1
    eng.run_process(manager.drain())
    assert rls.sites_with("/atlas/hot/f1") == ["SiteA", "SiteB"]
    assert agent.report()[1].replicas_received == 1  # SiteB row


def test_replication_skips_cold_and_already_replicated(eng, net, rng):
    sites, rls, cat, agent = build(eng, net, replicate_threshold=3)
    agent.transfers = TransferManager(eng, sites, rng, rls=rls)
    # Hot but already at 2 sites; and warm-but-below-threshold.
    fill(sites, rls, "SiteA", ["/atlas/hot/f1"], size=100 * MB)
    rls.register("SiteB", "/atlas/hot/f1", 100 * MB)
    cat.auto_define("/atlas/hot/f1", 100 * MB)
    for _ in range(5):
        cat.record_access("/atlas/hot/f1", 1.0)
    fill(sites, rls, "SiteA", ["/sdss/warm/f1"], size=100 * MB)
    cat.auto_define("/sdss/warm/f1", 100 * MB)
    cat.record_access("/sdss/warm/f1", 1.0)
    agent.sweep_once()
    assert agent.replications_started == 0


def test_replication_avoids_dead_gridftp_target(eng, net, rng):
    sites, rls, cat, agent = build(eng, net, replicate_threshold=1)
    agent.transfers = TransferManager(eng, sites, rng, rls=rls)
    fill(sites, rls, "SiteA", ["/atlas/hot/f1"], size=100 * MB)
    cat.auto_define("/atlas/hot/f1", 100 * MB)
    cat.record_access("/atlas/hot/f1", 1.0)
    sites["SiteB"].service("gridftp").fail("dead")
    agent.sweep_once()
    eng.run_process(agent.transfers.drain())
    assert rls.sites_with("/atlas/hot/f1") == ["SiteA", "SiteC"]


def test_works_over_dcache_pool_manager(eng, net):
    from repro.middleware.dcache import DCachePoolManager
    sites, rls, _cat, agent = build(eng, net)
    sites["SiteA"].storage = DCachePoolManager(
        eng, "SiteA-dcache", pool_count=2, pool_capacity=0.5 * GB,
    )
    fill(sites, rls, "SiteA", [f"/x/{i}" for i in range(9)], register=False)
    agent.sweep_once()
    assert sites["SiteA"].storage.utilisation <= 0.70 + 1e-9
    assert agent.evictions > 0


def test_periodic_sweep_publishes_metrics(eng, net):
    sites, rls, _cat, agent = build(eng, net, interval=1 * HOUR)
    fill(sites, rls, "SiteA", [f"/x/{i}" for i in range(9)], register=False)
    eng.run(until=2.5 * HOUR)
    assert agent.sweeps == 2
    occ = agent.store.latest("data.occupancy", site="SiteA")
    assert occ is not None and occ.value <= 0.70 + 1e-9
    ev = agent.store.latest("data.evictions", site="SiteA")
    assert ev is not None and ev.value > 0
    assert agent.store.latest("data.evictions", site="SiteB").value == 0
    assert agent.store.latest("data.replications") is not None


def test_report_rows_are_sorted_and_complete(eng, net):
    sites, rls, _cat, agent = build(eng, net)
    fill(sites, rls, "SiteB", ["/x/a"], register=False)
    rows = agent.report()
    assert [r.site for r in rows] == ["SiteA", "SiteB", "SiteC"]
    assert rows[1].files == 1
    assert rows[1].occupancy == pytest.approx(0.1)
    assert rows[0].capacity == 1 * GB
