"""Tests for route-quality replica selection."""

import pytest

from repro.data import DatasetCatalog, ReplicaSelector
from repro.data.selector import DEAD_SCORE, LOCAL_SCORE
from repro.errors import ReplicaNotFoundError
from repro.middleware.rls import LocalReplicaCatalog, ReplicaLocationIndex
from repro.sim import GB

from ..conftest import make_site


def build(eng, net, names=("SiteA", "SiteB", "SiteC"), bws=None):
    sites = {}
    rls = ReplicaLocationIndex(eng)
    for i, name in enumerate(names):
        bw = (bws or {}).get(name, 1e8)
        sites[name] = make_site(eng, net, name, bw=bw)
        rls.attach_lrc(LocalReplicaCatalog(name))
    return sites, rls


def test_fallback_is_site_name_order(eng, net):
    _sites, rls = build(eng, net)
    rls.register("SiteC", "/lfn/x", 1 * GB)
    rls.register("SiteA", "/lfn/x", 1 * GB)
    selector = ReplicaSelector(rls)  # no site context at all
    ranked = selector.rank("/lfn/x")
    assert [r.site for r in ranked] == ["SiteA", "SiteC"]
    assert selector.fallback_selections == 1


def test_missing_replica_raises(eng, net):
    sites, rls = build(eng, net)
    selector = ReplicaSelector(rls, sites)
    with pytest.raises(ReplicaNotFoundError):
        selector.best("/lfn/none", sites["SiteA"])


def test_local_replica_always_wins(eng, net):
    sites, rls = build(eng, net)
    rls.register("SiteA", "/lfn/x", 1 * GB)
    rls.register("SiteB", "/lfn/x", 1 * GB)
    selector = ReplicaSelector(rls, sites)
    assert selector.score(rls.locate("/lfn/x")[0], sites["SiteA"]) == LOCAL_SCORE
    assert selector.best("/lfn/x", sites["SiteA"]).site == "SiteA"


def test_prefers_wider_route(eng, net):
    sites, rls = build(
        eng, net, names=("Dst", "Fat", "Thin"),
        bws={"Fat": 1e9, "Thin": 1e6},
    )
    rls.register("Fat", "/lfn/x", 1 * GB)
    rls.register("Thin", "/lfn/x", 1 * GB)
    selector = ReplicaSelector(rls, sites)
    assert selector.best("/lfn/x", sites["Dst"]).site == "Fat"


def test_avoids_dead_gridftp_source(eng, net):
    sites, rls = build(eng, net, bws={"SiteB": 1e9})
    rls.register("SiteB", "/lfn/x", 1 * GB)  # fat pipe, but dead server
    rls.register("SiteC", "/lfn/x", 1 * GB)
    sites["SiteB"].service("gridftp").fail("crashed")
    selector = ReplicaSelector(rls, sites)
    assert selector.score(rls.locate("/lfn/x")[0], sites["SiteA"]) == DEAD_SCORE
    assert selector.best("/lfn/x", sites["SiteA"]).site == "SiteC"
    assert selector.dead_sources_avoided == 1


def test_avoids_interrupted_link(eng, net):
    sites, rls = build(eng, net)
    rls.register("SiteB", "/lfn/x", 1 * GB)
    rls.register("SiteC", "/lfn/x", 1 * GB)
    net.interrupt_link("SiteB-up")
    selector = ReplicaSelector(rls, sites)
    assert selector.best("/lfn/x", sites["SiteA"]).site == "SiteC"


def test_contended_route_scores_lower(eng, net):
    sites, rls = build(eng, net)
    rls.register("SiteB", "/lfn/x", 1 * GB)
    rls.register("SiteC", "/lfn/x", 1 * GB)
    # Load SiteB's uplink with an active flow; SiteC stays idle.
    net.start_transfer(["SiteB-up"], 10 * GB, "bg")
    selector = ReplicaSelector(rls, sites)
    assert selector.best("/lfn/x", sites["SiteA"]).site == "SiteC"


def test_equal_scores_tie_break_on_site_name(eng, net):
    sites, rls = build(eng, net)
    rls.register("SiteC", "/lfn/x", 1 * GB)
    rls.register("SiteB", "/lfn/x", 1 * GB)
    selector = ReplicaSelector(rls, sites)
    ranked = selector.rank("/lfn/x", sites["SiteA"])
    assert [r.site for r in ranked] == ["SiteB", "SiteC"]


def test_lookup_size_uses_fallback_path(eng, net):
    sites, rls = build(eng, net)
    rls.register("SiteB", "/lfn/x", 3 * GB)
    selector = ReplicaSelector(rls, sites)
    assert selector.lookup_size("/lfn/x") == 3 * GB


def test_selection_records_dataset_access(eng, net):
    sites, rls = build(eng, net)
    rls.register("SiteB", "/atlas/run1/dst", 1 * GB)
    catalog = DatasetCatalog()
    selector = ReplicaSelector(rls, sites, catalog=catalog, engine=eng)
    selector.best("/atlas/run1/dst", sites["SiteA"])
    ds = catalog.dataset_of("/atlas/run1/dst")
    assert ds is not None and ds.accesses == 1
    assert selector.counters()["selections"] == 1.0


def test_selector_draws_no_rng(eng, net):
    """Determinism guarantee: ranking is a pure function of sim state."""
    sites, rls = build(eng, net)
    rls.register("SiteB", "/lfn/x", 1 * GB)
    rls.register("SiteC", "/lfn/x", 1 * GB)
    selector = ReplicaSelector(rls, sites)
    first = [r.site for r in selector.rank("/lfn/x", sites["SiteA"])]
    for _ in range(5):
        assert [r.site for r in selector.rank("/lfn/x", sites["SiteA"])] == first
