"""Tests for managed transfer queueing, retry, and RNG isolation."""

import pytest

from repro.data import TransferManager
from repro.errors import ReplicaNotFoundError, ServiceUnavailableError
from repro.middleware.rls import LocalReplicaCatalog, ReplicaLocationIndex
from repro.middleware.srm import attach_srm
from repro.sim import GB, MB, RngRegistry
from repro.sim.units import DAY

from ..conftest import make_site


def build(eng, net, rng, names=("SiteA", "SiteB", "SiteC"), **kwargs):
    sites = {}
    rls = ReplicaLocationIndex(eng)
    for name in names:
        sites[name] = make_site(eng, net, name)
        rls.attach_lrc(LocalReplicaCatalog(name))
    manager = TransferManager(eng, sites, rng, rls=rls, **kwargs)
    return sites, rls, manager


def seed_file(sites, rls, site_name, lfn, size):
    sites[site_name].storage.store(lfn, size)
    rls.register(site_name, lfn, size)


def test_submit_completes_and_moves_bytes(eng, net, rng):
    sites, rls, manager = build(eng, net, rng)
    seed_file(sites, rls, "SiteA", "/lfn/x", 1 * GB)
    ticket = manager.submit("/lfn/x", 1 * GB, "SiteB", vo="usatlas")
    eng.run()
    assert ticket.ok and ticket.error is None
    assert "/lfn/x" in sites["SiteB"].storage
    assert manager.completed == 1
    assert manager.bytes_moved == 1 * GB
    assert ticket.attempts == 1


def test_register_publishes_new_replica(eng, net, rng):
    sites, rls, manager = build(eng, net, rng)
    seed_file(sites, rls, "SiteA", "/lfn/x", 100 * MB)
    manager.submit("/lfn/x", 100 * MB, "SiteB", register=True)
    eng.run()
    assert rls.sites_with("/lfn/x") == ["SiteA", "SiteB"]


def test_already_local_short_circuits(eng, net, rng):
    sites, rls, manager = build(eng, net, rng)
    seed_file(sites, rls, "SiteB", "/lfn/x", 1 * GB)
    ticket = manager.submit("/lfn/x", 1 * GB, "SiteB")
    eng.run()
    assert ticket.ok
    assert manager.bytes_moved == 0  # nothing crossed the WAN
    assert eng.now == 0.0


def test_unknown_destination_rejected(eng, net, rng):
    _sites, _rls, manager = build(eng, net, rng)
    with pytest.raises(KeyError):
        manager.submit("/lfn/x", 1.0, "Nowhere")
    with pytest.raises(ValueError):
        manager.submit("/lfn/x", -1.0, "SiteA")


def test_per_site_concurrency_bound(eng, net, rng):
    sites, rls, manager = build(eng, net, rng, max_concurrent_per_site=2)
    for i in range(6):
        seed_file(sites, rls, "SiteA", f"/lfn/{i}", 1 * GB)
        manager.submit(f"/lfn/{i}", 1 * GB, "SiteB", src_name="SiteA")
    assert manager.active("SiteB") == 2
    assert manager.queued("SiteB") == 4
    eng.run()
    assert manager.completed == 6
    assert manager.active() == 0 and manager.queued() == 0


def test_retry_succeeds_after_service_restored(eng, net, rng):
    sites, rls, manager = build(eng, net, rng)
    seed_file(sites, rls, "SiteA", "/lfn/x", 100 * MB)
    sites["SiteB"].service("gridftp").fail("crashed")
    ticket = manager.submit("/lfn/x", 100 * MB, "SiteB", src_name="SiteA")

    def repair():
        yield eng.timeout(200.0)
        sites["SiteB"].service("gridftp").restore("fixed")

    eng.process(repair())
    eng.run()
    assert ticket.ok
    assert ticket.attempts > 1
    assert manager.retries >= 1
    assert "/lfn/x" in sites["SiteB"].storage


def test_retry_reroutes_around_dead_source(eng, net, rng):
    from repro.data import ReplicaSelector
    sites, rls, manager = build(eng, net, rng)
    manager.selector = ReplicaSelector(rls, sites)
    seed_file(sites, rls, "SiteA", "/lfn/x", 100 * MB)
    seed_file(sites, rls, "SiteC", "/lfn/x", 100 * MB)
    sites["SiteA"].service("gridftp").fail("crashed")
    ticket = manager.submit("/lfn/x", 100 * MB, "SiteB")
    eng.run()
    # The selector steered the very first attempt to the live copy.
    assert ticket.ok and ticket.attempts == 1
    assert "/lfn/x" in sites["SiteB"].storage


def test_exhausted_retries_fail_the_ticket(eng, net, rng):
    sites, rls, manager = build(eng, net, rng, max_attempts=3)
    seed_file(sites, rls, "SiteA", "/lfn/x", 100 * MB)
    sites["SiteB"].service("gridftp").fail("crashed")  # stays down
    ticket = manager.submit("/lfn/x", 100 * MB, "SiteB", src_name="SiteA")
    eng.run(until=2 * DAY)
    assert ticket.state == "failed" and not ticket.ok
    assert ticket.attempts == 3
    assert isinstance(ticket.error, ServiceUnavailableError)
    assert manager.failed == 1


def test_no_source_replica_fails(eng, net, rng):
    _sites, _rls, manager = build(eng, net, rng, max_attempts=1)
    ticket = manager.submit("/lfn/none", 1 * GB, "SiteB")
    eng.run(until=1 * DAY)
    assert not ticket.ok
    assert isinstance(ticket.error, ReplicaNotFoundError)


def test_srm_reservation_wraps_write(eng, net, rng):
    sites, rls, manager = build(eng, net, rng)
    srm = attach_srm(eng, sites["SiteB"])
    seed_file(sites, rls, "SiteA", "/lfn/x", 1 * GB)
    ticket = manager.submit("/lfn/x", 1 * GB, "SiteB", src_name="SiteA")
    eng.run()
    assert ticket.ok
    assert srm.reservations_granted == 1
    # The reservation was settled: no space remains stranded.
    assert sites["SiteB"].storage.reserved == pytest.approx(0.0)


def test_failed_attempt_releases_reservation(eng, net, rng):
    sites, rls, manager = build(eng, net, rng, max_attempts=1)
    srm = attach_srm(eng, sites["SiteB"])
    seed_file(sites, rls, "SiteA", "/lfn/x", 1 * GB)
    # Source dies so the transfer itself fails after the reservation.
    sites["SiteA"].service("gridftp").fail("crashed")
    ticket = manager.submit("/lfn/x", 1 * GB, "SiteB", src_name="SiteA")
    eng.run(until=1 * DAY)
    assert not ticket.ok
    assert srm.reservations_granted == 1
    assert sites["SiteB"].storage.reserved == pytest.approx(0.0)


def test_drain_waits_for_everything(eng, net, rng):
    sites, rls, manager = build(eng, net, rng)
    for i in range(3):
        seed_file(sites, rls, "SiteA", f"/lfn/{i}", 1 * GB)
        manager.submit(f"/lfn/{i}", 1 * GB, "SiteC", src_name="SiteA")

    eng.run_process(manager.drain())
    assert manager.outstanding() == []
    assert manager.completed == 3


def test_backoff_draws_only_data_streams(eng, net, rng):
    """Same-seed runs without managed transfers stay byte-identical:
    the jitter stream is dedicated, so other streams are unperturbed."""
    r1 = RngRegistry(99)
    baseline = [r1.exponential("gridftp.setup", 1.0) for _ in range(5)]
    r2 = RngRegistry(99)
    first = r2.exponential("gridftp.setup", 1.0)
    # Interleave jitter draws exactly as a retrying manager would.
    for _ in range(10):
        r2.uniform("data.transfer.jitter.SiteB", 0.5, 1.5)
    rest = [r2.exponential("gridftp.setup", 1.0) for _ in range(4)]
    assert [first, *rest] == baseline


def test_backoff_grows_exponentially(eng, net, rng):
    sites, rls, manager = build(
        eng, net, rng, max_attempts=4,
        backoff_base=100.0, backoff_cap=10_000.0,
    )
    seed_file(sites, rls, "SiteA", "/lfn/x", 100 * MB)
    sites["SiteB"].service("gridftp").fail("crashed")
    ticket = manager.submit("/lfn/x", 100 * MB, "SiteB", src_name="SiteA")
    ticket.attempts = 1
    d1 = manager._backoff(ticket)
    ticket.attempts = 2
    d2 = manager._backoff(ticket)
    ticket.attempts = 3
    d3 = manager._backoff(ticket)
    # Jitter is x0.5..x1.5 around 100 / 200 / 400.
    assert 50.0 <= d1 <= 150.0
    assert 100.0 <= d2 <= 300.0
    assert 200.0 <= d3 <= 600.0
    ticket.attempts = 20
    assert manager._backoff(ticket) <= 15_000.0  # capped
    eng.run(until=1 * DAY)
