"""Acceptance tests for the data subsystem (ISSUE acceptance criteria).

Two system-level guarantees:

* enabling management measurably reduces StorageFullError job failures
  in the disk-pressure scenario at the same seed, and
* enabling management perturbs nothing for workloads that never touch
  it — same-seed runs export byte-identical databases, because every
  new random draw lives on dedicated ``data.*`` RNG streams.
"""

import pytest

from repro.core.grid3 import Grid3, Grid3Config
from repro.scenarios import disk_pressure


def storage_full_failures(grid):
    return sum(
        1
        for r in grid.acdc_db.records(succeeded=False)
        if r.failure_type == "StorageFullError"
    )


def test_managed_storage_reduces_disk_full_failures():
    unmanaged = Grid3(disk_pressure(seed=11, managed=False))
    unmanaged.run_full()
    managed = Grid3(disk_pressure(seed=11, managed=True))
    managed.run_full()

    baseline = storage_full_failures(unmanaged)
    controlled = storage_full_failures(managed)
    assert baseline > 0, "scenario must actually produce disk pressure"
    assert controlled < baseline
    # The improvement came from the agent doing real work.
    assert managed.data is not None
    assert managed.data.agent.evictions > 0
    assert unmanaged.data is None


def test_data_management_is_byte_identical_when_unused():
    def run(flag):
        cfg = Grid3Config(
            seed=7, scale=600.0, duration_days=2.0,
            apps=["exerciser"], data_management=flag,
        )
        grid = Grid3(cfg)
        grid.run_full()
        from repro.analysis.export import export_database
        return export_database(grid.acdc_db)

    assert run(False) == run(True)
