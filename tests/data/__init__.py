"""Tests for the managed data subsystem (repro.data)."""
