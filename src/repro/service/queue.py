"""The bounded job queue and its out-of-process worker pool.

Submissions land in a bounded pending list; ``workers`` dispatcher
threads pull from it and run each simulation **out of process** on a
:class:`~concurrent.futures.ProcessPoolExecutor` (the same fan-out
substrate the lab's :func:`~repro.lab.run_experiment` uses — a Grid3
run is CPU-bound, so it must not share the server's GIL).  Only plain
data crosses the boundary: the picklable :class:`~repro.Grid3Config`
goes out, the JSON-able report payload comes back.

Dispatch order is pluggable: with an
:class:`~repro.service.admission.AdmissionPolicy` the next run is the
fair-share pick (lane first, then the least-recently-greedy client);
without one, strict FIFO — byte-for-byte the pre-admission behaviour.

The queue enforces the service's backpressure contract: when
``depth`` submissions are already queued or running, further submits
raise :class:`QueueFullError` (the app maps it to 429) instead of
buffering without bound.  ``shutdown(drain=True)`` stops intake, lets
every queued run finish, then tears the pool down.  Runs still queued
when the drain window closes are **not dropped**: each is handed to
``on_interrupted`` so the (now durable) registry records it as
``interrupted`` and a restart can resubmit it.
"""

from __future__ import annotations

import inspect
import multiprocessing as _mp
import threading
import traceback
from concurrent.futures import Executor, ProcessPoolExecutor
from typing import Callable, Dict, List, Optional

from ..core.grid3 import Grid3, Grid3Config
from ..errors import GridError
from .progress import ProgressSender
from .reports import collect_reports, summarize_run
from .store import RunRecord


class QueueFullError(GridError):
    """The bounded queue is at depth; the submission was rejected."""


def execute_run(config: Grid3Config, progress=None) -> Dict[str, object]:
    """Worker body: one full simulation -> its servable payload.

    Module-level (and taking only picklable arguments) so it crosses
    the process boundary; runs in a pool worker, never in the server
    process.  ``progress``, when given, is the write end of a
    multiprocessing pipe: the run streams
    :class:`~repro.monitoring.progress.ProgressEvent` dicts through a
    non-blocking coalescing :class:`ProgressSender`, so a slow (or
    absent) reader never stalls the simulation.

    The payload also carries ``metrics_text`` — the grid's full
    Prometheus exposition rendered here, in the worker, so the server
    can serve a finished run's metrics without ever holding the grid.
    """
    from ..monitoring.prometheus import grid_exposition

    sender = ProgressSender(progress) if progress is not None else None
    last: Dict[str, object] = {}

    def emit(event) -> None:
        payload = event.as_dict()
        last.clear()
        last.update(payload)
        sender.emit(payload)  # type: ignore[union-attr]

    try:
        grid = Grid3(config)
        grid.run_full(progress=emit if sender is not None else None)
        return {
            "reports": collect_reports(grid),
            "summary": summarize_run(grid),
            "metrics_text": grid_exposition(grid, progress=last or None),
        }
    finally:
        if sender is not None:
            sender.close()


def _accepts_progress(runner: Callable) -> bool:
    """Can ``runner`` take a second (progress) argument?

    Decided per call via the signature, because tests inject one-arg
    runners (and swap them in after construction); those keep the plain
    single-argument submit path.
    """
    try:
        parameters = inspect.signature(runner).parameters
    except (TypeError, ValueError):
        return False
    positional = [
        p for p in parameters.values()
        if p.kind in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD)
    ]
    if any(p.kind == p.VAR_POSITIONAL for p in parameters.values()):
        return True
    return len(positional) >= 2 or "progress" in parameters


class JobQueue:
    """Bounded pending list + dispatcher threads + process worker pool."""

    def __init__(
        self,
        workers: int = 2,
        depth: int = 64,
        runner: Callable[[Grid3Config], Dict[str, object]] = execute_run,
        pool_factory: Optional[Callable[[int], Executor]] = None,
        on_start: Optional[Callable[[RunRecord], None]] = None,
        on_done: Optional[Callable[[RunRecord, Dict[str, object]], None]] = None,
        on_error: Optional[Callable[[RunRecord, str], None]] = None,
        on_interrupted: Optional[Callable[[RunRecord], None]] = None,
        admission=None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        self.workers = workers
        self.max_depth = depth
        self._runner = runner
        self._on_start = on_start
        self._on_done = on_done
        self._on_error = on_error
        self._on_interrupted = on_interrupted
        #: The dispatch-order policy (None = FIFO).
        self.admission = admission
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        #: Submission-ordered runs awaiting a dispatcher.
        self._queue: List[RunRecord] = []
        self._stop = threading.Event()
        self._accepting = True
        self._pending = 0     # queued + running
        self._busy = 0        # dispatcher threads mid-run
        #: Simulations actually executed (the dedup proof: duplicates
        #: never increment this).
        self.executed = 0
        self.failed = 0
        #: Submissions bounced by the depth bound.
        self.rejected = 0
        if pool_factory is None:
            pool_factory = lambda n: ProcessPoolExecutor(max_workers=n)  # noqa: E731
        self._pool: Executor = pool_factory(workers)
        self._threads = [
            threading.Thread(target=self._loop, name=f"svc-dispatch-{i}",
                             daemon=True)
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # -- intake ---------------------------------------------------------------
    def submit(self, record: RunRecord) -> None:
        """Enqueue one run; raises :class:`QueueFullError` at the bound."""
        with self._cond:
            if not self._accepting:
                raise QueueFullError("service is shutting down")
            if self._pending >= self.max_depth:
                self.rejected += 1
                raise QueueFullError(
                    f"job queue is full ({self.max_depth} runs queued or "
                    f"running); retry later"
                )
            self._pending += 1
            self._queue.append(record)
            self._cond.notify()

    def pending_records(self) -> List[RunRecord]:
        """Snapshot of runs queued but not yet dispatched (submission
        order) — the admission metrics read this."""
        with self._lock:
            return list(self._queue)

    # -- dispatch -------------------------------------------------------------
    def _take(self) -> Optional[RunRecord]:
        """Block for the next record per the admission order (None on
        stop)."""
        with self._cond:
            while not self._queue:
                if self._stop.is_set():
                    return None
                self._cond.wait(timeout=0.1)
            if self._stop.is_set():
                return None  # leave leftovers for shutdown's interrupt pass
            if self.admission is not None:
                record = self.admission.select(self._queue)
                if record is None:  # defensive: policy declined
                    record = self._queue[0]
                self._queue.remove(record)
            else:
                record = self._queue.pop(0)
            return record

    def _loop(self) -> None:
        while not self._stop.is_set():
            record = self._take()
            if record is None:
                continue
            try:
                self._run_one(record)
            finally:
                with self._lock:
                    self._pending -= 1

    def _run_one(self, record: RunRecord) -> None:
        with self._lock:
            self._busy += 1
        rconn = wconn = None
        reader: Optional[threading.Thread] = None
        try:
            if self._on_start is not None:
                self._on_start(record)
            log = getattr(record, "progress", None)
            if log is not None and _accepts_progress(self._runner):
                # One pipe per run: the worker's ProgressSender writes,
                # this reader thread pumps events into the record's log.
                # Connection objects cross ProcessPoolExecutor's submit
                # boundary via fd duplication (ForkingPickler).
                rconn, wconn = _mp.Pipe(duplex=False)
                reader = threading.Thread(
                    target=self._pump_progress, args=(rconn, log),
                    name=f"progress-{record.run_id}", daemon=True,
                )
                reader.start()
                future = self._pool.submit(
                    self._runner, record.config, wconn
                )
            else:
                future = self._pool.submit(self._runner, record.config)
            payload = future.result()
            # Drop the parent's write-end copy *before* joining: EOF
            # reaches the reader only once every write fd is closed.
            if wconn is not None:
                wconn.close()
                wconn = None
            if reader is not None:
                reader.join(timeout=10.0)
            with self._lock:
                self.executed += 1
            if self._on_done is not None:
                self._on_done(record, payload)
        except Exception as exc:  # noqa: BLE001 - surfaced on the record
            with self._lock:
                self.executed += 1
                self.failed += 1
            detail = "".join(
                traceback.format_exception_only(type(exc), exc)
            ).strip()
            if self._on_error is not None:
                self._on_error(record, detail)
        finally:
            if wconn is not None:
                try:
                    wconn.close()
                except OSError:
                    pass
            if reader is not None and reader.is_alive():
                reader.join(timeout=5.0)
            if rconn is not None:
                try:
                    rconn.close()
                except OSError:
                    pass
            with self._lock:
                self._busy -= 1

    @staticmethod
    def _pump_progress(rconn, log) -> None:
        """Reader-thread body: drain the pipe into the run's log."""
        try:
            while True:
                try:
                    event = rconn.recv()
                except (EOFError, OSError):
                    return
                if isinstance(event, dict):
                    log.append(event)
        finally:
            try:
                rconn.close()
            except OSError:
                pass

    # -- observability --------------------------------------------------------
    @property
    def depth(self) -> int:
        """Runs queued or running right now."""
        with self._lock:
            return self._pending

    @property
    def busy(self) -> int:
        """Dispatcher threads currently driving a simulation."""
        with self._lock:
            return self._busy

    def utilization(self) -> float:
        """Busy workers as a fraction of the pool."""
        return self.busy / float(self.workers)

    def stats(self) -> Dict[str, float]:
        """The ``service.queue.*`` / ``service.workers.*`` snapshot."""
        with self._lock:
            return {
                "depth": self._pending,
                "max_depth": self.max_depth,
                "busy": self._busy,
                "workers": self.workers,
                "utilization": self._busy / float(self.workers),
                "executed": self.executed,
                "failed": self.failed,
                "rejected": self.rejected,
            }

    # -- lifecycle ------------------------------------------------------------
    def drain(self, timeout: float = 300.0) -> bool:
        """Block until everything queued or running has finished.

        Returns False if ``timeout`` elapsed first.
        """
        deadline = threading.Event()
        waited = 0.0
        step = 0.05
        while waited < timeout:
            with self._lock:
                if self._pending == 0 and self._busy == 0:
                    return True
            deadline.wait(step)
            waited += step
        with self._lock:
            return self._pending == 0 and self._busy == 0

    def shutdown(self, drain: bool = True, timeout: float = 300.0) -> bool:
        """Stop intake, optionally drain, stop threads, kill the pool.

        Runs still *queued* (never dispatched) when the window closes
        are handed to ``on_interrupted`` — with a durable registry that
        persists them as resubmittable instead of dropping them.
        Returns True if every accepted run completed before teardown.
        """
        with self._cond:
            self._accepting = False
        drained = self.drain(timeout) if drain else False
        self._stop.set()
        with self._cond:
            self._cond.notify_all()
        for thread in self._threads:
            thread.join(timeout=5.0)
        # Persist (don't drop) whatever never got dispatched.
        with self._cond:
            leftovers = list(self._queue)
            self._queue.clear()
            self._pending -= len(leftovers)
        for record in leftovers:
            if self._on_interrupted is not None:
                self._on_interrupted(record)
        self._pool.shutdown(wait=False, cancel_futures=True)
        return drained and not leftovers
