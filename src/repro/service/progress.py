"""The progress transport: worker pipe sender, server-side log, SSE.

Three pieces move a :class:`~repro.monitoring.progress.ProgressEvent`
from a simulation running in a worker *process* to an HTTP client:

* :class:`ProgressSender` lives in the worker.  ``emit()`` never
  blocks the simulation: events land in a small coalescing buffer and
  a daemon thread drains it into the multiprocessing pipe.  Under a
  slow reader the buffer coalesces — consecutive ``tick`` events
  collapse to the newest one; lifecycle events (``phase``/``end``)
  are never dropped — so a stalled consumer costs the run nothing but
  staler ticks.
* :class:`ProgressLog` lives on the server's RunRecord.  The queue's
  reader thread appends events; any number of SSE streams and
  ``?since=`` pollers read it concurrently.  Events carry the
  emitter's deterministic ``seq``, so streamed and polled views agree
  positionally by construction.
* :func:`sse_format` renders one event as a Server-Sent-Events frame
  (``id:`` carries the seq, so ``Last-Event-ID`` reconnects resume).
"""

from __future__ import annotations

import json
import threading
from collections import deque
from typing import Dict, List, Optional, Tuple

#: Worker-side buffer bound: past this, tick coalescing kicks in.
SENDER_BUFFER = 256
#: Server-side retained events per run.  4096 far exceeds the default
#: 32-slice emission (~35 events); the bound is a safety net against a
#: pathological emitter, not a working limit.
LOG_BOUND = 4096


class ProgressSender:
    """Worker-side, non-blocking, coalescing pipe writer.

    ``emit(event_dict)`` appends to a bounded deque and returns; a
    daemon thread performs the (potentially blocking) ``conn.send``
    calls.  When the buffer is full and the incoming event is a
    ``tick``, it *replaces* the newest buffered tick (keeping the
    freshest snapshot) instead of growing; lifecycle events always
    enqueue.  A broken pipe (the parent died) silences the sender
    rather than killing the simulation.
    """

    def __init__(self, conn, buffer: int = SENDER_BUFFER) -> None:
        self._conn = conn
        self._buffer = buffer
        self._queue: deque = deque()
        self._lock = threading.Lock()
        self._wake = threading.Event()
        self._closed = False
        self._broken = False
        self.sent = 0
        self.coalesced = 0
        self._thread = threading.Thread(
            target=self._pump, name="progress-sender", daemon=True
        )
        self._thread.start()

    def emit(self, event) -> None:
        """Queue one event (a ProgressEvent or its plain dict); never
        blocks, never raises into the simulation."""
        payload = event if isinstance(event, dict) else event.as_dict()
        with self._lock:
            if self._closed:
                return
            if (len(self._queue) >= self._buffer
                    and payload.get("kind") == "tick"):
                # Coalesce: the newest buffered tick is superseded.
                for i in range(len(self._queue) - 1, -1, -1):
                    if self._queue[i].get("kind") == "tick":
                        del self._queue[i]
                        self.coalesced += 1
                        break
            self._queue.append(payload)
        self._wake.set()

    def _pump(self) -> None:
        while True:
            self._wake.wait()
            while True:
                with self._lock:
                    if not self._queue:
                        self._wake.clear()
                        if self._closed:
                            return
                        break
                    payload = self._queue.popleft()
                if self._broken:
                    continue
                try:
                    self._conn.send(payload)
                    self.sent += 1
                except (BrokenPipeError, OSError, ValueError):
                    self._broken = True

    def close(self, timeout: float = 5.0) -> None:
        """Flush the buffer, stop the pump, close the worker's pipe end
        (EOF tells the server-side reader the run is over)."""
        with self._lock:
            self._closed = True
        self._wake.set()
        self._thread.join(timeout=timeout)
        try:
            self._conn.close()
        except OSError:
            pass


class ProgressLog:
    """Server-side, bounded, seq-ordered event log for one run.

    Appends come from the queue's reader thread; reads come from any
    number of HTTP handler threads.  ``since(seq)`` returns events with
    ``seq > seq`` (delta polling); ``wait_for(seq)`` blocks until a
    newer event arrives or the log closes (SSE streaming).  The log
    closes when the run reaches a terminal state — after the reader
    drained the pipe — so a stream sees every event before its ``end``.
    """

    def __init__(self, bound: int = LOG_BOUND) -> None:
        self._events: List[Dict[str, object]] = []
        self._bound = bound
        self._cond = threading.Condition()
        self.closed = False
        #: Events discarded by the bound (0 in any sane run).
        self.dropped = 0

    def append(self, event: Dict[str, object]) -> None:
        with self._cond:
            if len(self._events) >= self._bound:
                self._events.pop(0)
                self.dropped += 1
            self._events.append(event)
            self._cond.notify_all()

    def close(self) -> None:
        with self._cond:
            self.closed = True
            self._cond.notify_all()

    def __len__(self) -> int:
        with self._cond:
            return len(self._events)

    @property
    def last_seq(self) -> int:
        """The newest event's seq (-1 when empty)."""
        with self._cond:
            if not self._events:
                return -1
            return int(self._events[-1]["seq"])  # type: ignore[arg-type]

    def last(self) -> Optional[Dict[str, object]]:
        """The newest event (None when empty) — the gauge snapshot."""
        with self._cond:
            return self._events[-1] if self._events else None

    def since(self, seq: int) -> Tuple[List[Dict[str, object]], bool]:
        """``(events with seq > seq, closed)`` — the delta-poll read."""
        with self._cond:
            out = [e for e in self._events
                   if int(e["seq"]) > seq]  # type: ignore[arg-type]
            return out, self.closed

    def wait_for(
        self, seq: int, timeout: float = 10.0
    ) -> Tuple[List[Dict[str, object]], bool]:
        """Like :meth:`since`, but blocks up to ``timeout`` for news.

        Returns as soon as an event newer than ``seq`` exists or the
        log closes; on timeout returns ``([], closed)``.
        """
        deadline = None
        with self._cond:
            while True:
                out = [e for e in self._events
                       if int(e["seq"]) > seq]  # type: ignore[arg-type]
                if out or self.closed:
                    return out, self.closed
                if deadline is None:
                    import time as _time
                    deadline = _time.monotonic() + timeout
                    remaining = timeout
                else:
                    import time as _time
                    remaining = deadline - _time.monotonic()
                if remaining <= 0:
                    return [], self.closed
                self._cond.wait(remaining)


def sse_format(event: Dict[str, object]) -> bytes:
    """One event as an SSE frame: id carries the deterministic seq."""
    data = json.dumps(event, sort_keys=True)
    return (
        f"id: {event.get('seq', 0)}\n"
        f"event: {event.get('kind', 'tick')}\n"
        f"data: {data}\n\n"
    ).encode("utf-8")


def sse_end_frame() -> bytes:
    """The terminal frame a finished stream sends before EOF.

    Deliberately ``eof``, not ``end``: ``end`` is a ProgressEvent
    *kind* (the run's final snapshot, which is real data), while this
    sentinel only means "the log is closed, no more frames follow".
    """
    return b"event: eof\ndata: {}\n\n"


def parse_sse_stream(chunks) -> "Tuple[List[Dict[str, object]], bool]":
    """Parse SSE bytes into ``(events, saw_end)`` — the client half,
    used by ``repro top`` and the tests.  ``chunks`` is an iterable of
    byte strings (e.g. a streaming response read in pieces)."""
    events: List[Dict[str, object]] = []
    saw_end = False
    buffer = b""
    for chunk in chunks:
        buffer += chunk
        while b"\n\n" in buffer:
            frame, buffer = buffer.split(b"\n\n", 1)
            kind, data = None, None
            for line in frame.split(b"\n"):
                if line.startswith(b"event:"):
                    kind = line[6:].strip().decode()
                elif line.startswith(b"data:"):
                    data = line[5:].strip()
            if kind == "eof":
                saw_end = True
            elif data:
                try:
                    events.append(json.loads(data))
                except json.JSONDecodeError:
                    pass
    return events, saw_end


def iter_sse_events(response, timeout_events: Optional[int] = None):
    """Yield parsed event dicts from a live SSE HTTP response as they
    arrive; stops at the ``end`` frame, EOF, or after
    ``timeout_events`` events.  The streaming client primitive behind
    ``repro top``."""
    buffer = b""
    yielded = 0
    while True:
        chunk = response.read1(65536) if hasattr(response, "read1") \
            else response.read(65536)
        if not chunk:
            return
        buffer += chunk
        while b"\n\n" in buffer:
            frame, buffer = buffer.split(b"\n\n", 1)
            kind, data = None, None
            for line in frame.split(b"\n"):
                if line.startswith(b"event:"):
                    kind = line[6:].strip().decode()
                elif line.startswith(b"data:"):
                    data = line[5:].strip()
            if kind == "eof":
                return
            if data:
                try:
                    yield json.loads(data)
                except json.JSONDecodeError:
                    continue
                yielded += 1
                if timeout_events is not None and yielded >= timeout_events:
                    return
