"""The durable run registry backend: an append-only sqlite journal.

Grid3 ran as a *persistent* production service — the grid survived
component restarts and resumed with its accounting intact (§5–6).  The
HTTP front end earns the same property here: every
:class:`~repro.service.store.RunStore` mutation appends one immutable
record to a stdlib :mod:`sqlite3` journal under ``--state-dir``
(WAL-journaled, so a reader never blocks the appender and a crash never
tears a record), and a restarting server replays the journal to
reconstruct every run — state machine, cached result digest, and the
exact report bytes — before accepting traffic.

The journal is **append-only**: state transitions are new rows, never
updates, so replay is a pure left fold and the file doubles as an audit
log.  Runs that were ``queued`` or ``running`` when the process died
have no terminal row; replay re-marks them ``interrupted`` (appending
the terminal row it never got to write) so an identical resubmission
re-runs cleanly instead of joining a ghost.

Event kinds, in lifecycle order::

    created          digest/client/lane in ``data``, pickled config in ``blob``
    running          started
    done             payload_bytes in ``data``, sorted-key JSON payload in ``blob``
    failed           error in ``data``
    interrupted      shutdown/crash before completion (terminal, resubmittable)
    payload_dropped  result-cache eviction (metadata survives, bytes do not)

Configs cross this boundary as pickle blobs — they already cross the
``ProcessPoolExecutor`` boundary the same way, so anything submittable
is journalable by construction.  Payloads cross as the exact sorted-key
JSON bytes the service serves, so a replayed run's report pages are
byte-identical to what the original process returned.
"""

from __future__ import annotations

import json
import pickle
import sqlite3
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional

#: The journal's schema version (bumped only on incompatible change).
SCHEMA_VERSION = 1

#: Journal row kinds, in the order a healthy run emits them.
EVENT_KINDS = (
    "created", "running", "done", "failed", "interrupted", "payload_dropped",
)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS journal (
    seq    INTEGER PRIMARY KEY AUTOINCREMENT,
    run_id INTEGER NOT NULL,
    kind   TEXT NOT NULL,
    at     REAL NOT NULL,
    data   TEXT NOT NULL DEFAULT '{}',
    blob   BLOB
);
CREATE INDEX IF NOT EXISTS journal_by_run ON journal (run_id, seq);
"""


@dataclass(frozen=True)
class JournalEntry:
    """One replayed journal row (already decoded)."""

    seq: int
    run_id: int
    kind: str
    at: float
    data: Dict[str, object]
    blob: Optional[bytes]


class JournalError(Exception):
    """The journal file is unusable (version mismatch, corruption)."""


class RunJournal:
    """Append-only sqlite3 journal of run-registry mutations.

    Thread-safe: HTTP handler threads and queue dispatcher threads
    append concurrently (one connection, one lock — sqlite serialises
    writers anyway, so a single guarded connection is the fast shape).
    ``replay()`` returns every row in append order; the store folds
    them back into records.
    """

    def __init__(self, state_dir) -> None:
        self.state_dir = Path(state_dir)
        self.state_dir.mkdir(parents=True, exist_ok=True)
        self.path = self.state_dir / "runs.sqlite3"
        self._lock = threading.Lock()
        self._closed = False
        self._conn = sqlite3.connect(
            str(self.path), check_same_thread=False, timeout=30.0,
        )
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.executescript(_SCHEMA)
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key='schema_version'"
        ).fetchone()
        if row is None:
            self._conn.execute(
                "INSERT INTO meta (key, value) VALUES ('schema_version', ?)",
                (str(SCHEMA_VERSION),),
            )
            self._conn.commit()
        elif int(row[0]) != SCHEMA_VERSION:
            self._conn.close()
            raise JournalError(
                f"{self.path} has schema version {row[0]}, this build "
                f"expects {SCHEMA_VERSION}; move the state dir aside"
            )

    # -- writes ---------------------------------------------------------------
    def append(
        self,
        run_id: int,
        kind: str,
        at: float,
        data: Optional[Dict[str, object]] = None,
        blob: Optional[bytes] = None,
    ) -> None:
        """Append one immutable lifecycle row and fsync-commit it.

        Appends after :meth:`close` are dropped silently: they are
        late-shutdown stragglers (a worker finishing after the drain
        window closed) whose runs the next replay re-marks
        ``interrupted`` — recording a result the service never served
        would be the lie.
        """
        if kind not in EVENT_KINDS:
            raise ValueError(f"unknown journal kind {kind!r}")
        payload = json.dumps(data or {}, sort_keys=True)
        with self._lock:
            if self._closed:
                return
            self._conn.execute(
                "INSERT INTO journal (run_id, kind, at, data, blob) "
                "VALUES (?, ?, ?, ?, ?)",
                (run_id, kind, at, payload, blob),
            )
            self._conn.commit()

    # -- reads ----------------------------------------------------------------
    def replay(self) -> List[JournalEntry]:
        """Every journal row, append order — the boot-time fold input."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT seq, run_id, kind, at, data, blob "
                "FROM journal ORDER BY seq"
            ).fetchall()
        return [
            JournalEntry(
                seq=seq, run_id=run_id, kind=kind, at=at,
                data=json.loads(data), blob=blob,
            )
            for seq, run_id, kind, at, data, blob in rows
        ]

    def __len__(self) -> int:
        with self._lock:
            return self._conn.execute(
                "SELECT COUNT(*) FROM journal"
            ).fetchone()[0]

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            try:
                self._conn.commit()
                self._conn.close()
            except sqlite3.Error:
                pass

    # -- config (de)hydration --------------------------------------------------
    @staticmethod
    def encode_config(config) -> bytes:
        """A config as a journal blob (pickle: the same contract as the
        worker-pool boundary, so submittable implies journalable)."""
        return pickle.dumps(config, protocol=pickle.HIGHEST_PROTOCOL)

    @staticmethod
    def decode_config(blob: bytes):
        return pickle.loads(blob)
