"""Request/response schemas for the service HTTP layer.

Requests are parsed and validated *here*, before anything touches the
queue: a malformed body, an unknown knob, or a bad value raises
:class:`SchemaError`, which the app maps to a 400 with the message in
the response body — the §8 "direct information" principle applied to
the API's own errors.  Responses are frozen dataclasses on the shared
:class:`~repro.core.results.ReportRecord` convention, so every wire
payload is sorted-key JSON.

Since the v1 redesign every non-2xx response shares **one envelope**::

    {"error": {"code": "...", "message": "...", "hint": "..."}}

``code`` is a stable machine-readable slug (see ``ERROR_CODES``),
``message`` says what happened, and ``hint`` says what to do about it —
did-you-mean suggestions live there, not inside the message.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields
from typing import Any, Dict, List, Optional, Tuple

from ..core.grid3 import Grid3Config
from ..core.results import ReportRecord
from ..errors import GridError

#: Body keys `POST /v1/runs` accepts.
_REQUEST_KEYS = ("config", "scenario", "client", "lane")

#: Knobs that cannot cross the JSON boundary (they take live objects);
#: scenarios are the supported way to get non-default values for them.
_NON_WIRE_KNOBS = ("failures",)

#: Every machine-readable error code the API can answer with, mapped to
#: its meaning (documented in docs/API.md; the test suite asserts the
#: envelope only ever carries one of these).
ERROR_CODES = {
    "bad_request": "the request body or query failed validation",
    "not_found": "no such route, run, or report kind",
    "method_not_allowed": "the route exists but not for this method",
    "queue_full": "the bounded job queue is at depth",
    "quota_exceeded": "the client is at its per-client active-run quota",
    "run_failed": "the referenced run ended in failure",
    "run_not_finished": "the referenced run has not completed yet",
    "run_interrupted": "the run was interrupted by a service shutdown",
    "result_evicted": "the result cache dropped this run's payload",
    "internal_error": "unhandled server-side exception",
}


class SchemaError(GridError):
    """A request failed validation; the message is the 400 body."""


@dataclass(frozen=True)
class ApiError(ReportRecord):
    """The uniform error envelope every non-2xx response carries."""

    code: str
    message: str
    hint: str = ""

    def as_dict(self) -> Dict[str, Any]:
        return {"error": {"code": self.code, "message": self.message,
                          "hint": self.hint}}


def split_hint(message: str) -> Tuple[str, str]:
    """Split a validation message into ``(message, hint)``.

    Did-you-mean suggestions (the config validator appends
    ``"; did you mean 'x'?"``) move into the envelope's ``hint`` field.
    """
    marker = "; did you mean "
    if marker in message:
        head, _, tail = message.partition(marker)
        return head, "did you mean " + tail
    return message, ""


@dataclass(frozen=True)
class RunRequest:
    """One validated `POST /v1/runs` submission.

    ``client`` is the fair-share/quota accounting identity (free-form
    string; defaults to ``"anonymous"``); ``lane`` picks the dispatch
    lane (``"interactive"`` beats ``"batch"``).
    """

    config: Grid3Config
    client: str = "anonymous"
    lane: str = "batch"


@dataclass(frozen=True)
class RunSubmitted(ReportRecord):
    """`POST /v1/runs` response: where the submission landed.

    ``dedup`` is ``"new"`` (a simulation was enqueued), ``"joined"``
    (an identical run is already queued/running — same id returned), or
    ``"cached"`` (an identical run already finished — its result is
    served without running anything).
    """

    run_id: int
    state: str
    dedup: str
    digest: str


@dataclass(frozen=True)
class RunView(ReportRecord):
    """`GET /v1/runs/{id}` response: the run's state machine, observable.

    States walk ``queued -> running -> done | failed | interrupted``;
    ``elapsed_s`` is wall time since submission (until completion, once
    finished).  ``client``/``lane`` are the admission identity the run
    was accounted under.
    """

    run_id: int
    state: str
    digest: str
    client: str
    lane: str
    elapsed_s: float
    submitted_at: float
    started_at: Optional[float]
    finished_at: Optional[float]
    error: Optional[str]
    summary: Optional[Dict[str, object]]


@dataclass(frozen=True)
class HealthView(ReportRecord):
    """`GET /v1/healthz` response."""

    status: str
    uptime_s: float
    queue_depth: int
    workers: int
    durable: bool
    recovered_runs: int


@dataclass(frozen=True)
class RunEvents(ReportRecord):
    """`GET /v1/runs/{id}/events?since=N` response: the delta-poll view.

    ``events`` are every progress event with ``seq > since`` (the same
    deterministic sequence the SSE stream carries); ``next_since`` is
    what the client passes next (unchanged when no news); ``closed``
    means the run reached a terminal state and no further events will
    ever arrive.
    """

    run_id: int
    state: str
    since: int
    next_since: int
    closed: bool
    events: List[Dict[str, object]]


def parse_submission(body: bytes) -> RunRequest:
    """Parse and validate a `POST /v1/runs` body.

    The body is ``{"config": {<Grid3Config knobs>}}``, optionally with
    ``"scenario": "<name>"`` to start from a canned scenario config
    (knobs in ``config`` override it, mirroring the CLI),
    ``"client": "<id>"`` naming the submitter for fair-share/quota
    accounting, and ``"lane": "interactive"|"batch"``.  Every
    validation failure raises :class:`SchemaError` with an actionable
    message; unknown knobs get the same did-you-mean treatment as
    :meth:`Grid3Config.validate`.
    """
    from ..errors import ConfigurationError
    from ..scenarios import SCENARIOS
    from .admission import LANES

    try:
        payload = json.loads(body or b"{}")
    except json.JSONDecodeError as exc:
        raise SchemaError(f"request body is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise SchemaError(
            f"request body must be a JSON object, got {type(payload).__name__}"
        )
    unknown = sorted(set(payload) - set(_REQUEST_KEYS))
    if unknown:
        raise SchemaError(
            f"unknown request key(s) {unknown!r}; accepted: {list(_REQUEST_KEYS)}"
        )

    client = payload.get("client", "anonymous")
    if not isinstance(client, str) or not client.strip():
        raise SchemaError(
            f"'client' must be a non-empty string, got {client!r}"
        )
    client = client.strip()
    if len(client) > 128:
        raise SchemaError("'client' must be at most 128 characters")

    lane = payload.get("lane", "batch")
    if lane not in LANES:
        raise SchemaError(
            f"unknown lane {lane!r}; one of {list(LANES)}"
        )

    scenario = payload.get("scenario")
    if scenario is not None:
        if not isinstance(scenario, str) or scenario not in SCENARIOS:
            raise SchemaError(
                f"unknown scenario {scenario!r}; one of {sorted(SCENARIOS)}"
            )
        config = SCENARIOS[scenario]()
    else:
        config = Grid3Config()

    overrides = payload.get("config", {})
    if not isinstance(overrides, dict):
        raise SchemaError(
            f"'config' must be a JSON object of Grid3Config knobs, got "
            f"{type(overrides).__name__}"
        )
    for knob in _NON_WIRE_KNOBS:
        if knob in overrides:
            raise SchemaError(
                f"knob {knob!r} is not settable over the API (it takes a "
                f"live object); pick a 'scenario' that configures it"
            )
    known = {f.name for f in fields(Grid3Config)}
    for knob, value in overrides.items():
        default = getattr(config, knob) if knob in known else None
        if (
            isinstance(default, float) and not isinstance(default, bool)
            and isinstance(value, int) and not isinstance(value, bool)
        ):
            # JSON has one number type; accept 14 for a 14.0 knob.
            value = float(value)
        setattr(config, knob, value)
    try:
        config.validate()
    except ConfigurationError as exc:
        raise SchemaError(str(exc)) from exc
    except (TypeError, ValueError) as exc:
        raise SchemaError(f"invalid knob value: {exc}") from exc
    return RunRequest(config=config, client=client, lane=lane)


def parse_run_request(body: bytes) -> Grid3Config:
    """Back-compat shim: the validated config alone (pre-admission
    callers).  New code wants :func:`parse_submission`."""
    return parse_submission(body).config


def parse_pagination(
    query: Dict[str, str], default_limit: int = 500
) -> Tuple[int, int]:
    """``?offset=&limit=`` query parameters as validated ints."""
    def as_int(key: str, default: int) -> int:
        raw = query.get(key)
        if raw is None or raw == "":
            return default
        try:
            return int(raw)
        except ValueError as exc:
            raise SchemaError(f"{key} must be an integer, got {raw!r}") from exc

    offset = as_int("offset", 0)
    limit = as_int("limit", default_limit)
    if offset < 0:
        raise SchemaError(f"offset must be >= 0, got {offset}")
    if limit < 1:
        raise SchemaError(f"limit must be >= 1, got {limit}")
    return offset, limit
