"""The result cache: LRU over finished-run payloads, under a byte budget.

This is what makes the service cheap under identical load (ROADMAP item
1's "a million identical what-if queries cost one run"): results are
keyed by :meth:`Grid3Config.canonical_digest`, so any syntactic spelling
of the same run hits the same entry.  The cache tracks *which* runs'
payloads stay resident and how many bytes they hold; the payloads
themselves live on the :class:`~repro.service.store.RunRecord` — on
eviction the app drops them there, and an identical future submission
re-runs.

Hit/miss/eviction counters feed the ``service.cache.*`` metrics the
``/metrics`` endpoint publishes.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import List, Optional, Tuple


class ResultCache:
    """Byte-budgeted LRU of ``digest -> (run_id, payload_bytes)``."""

    def __init__(self, max_bytes: int = 64 * 1024 * 1024) -> None:
        if max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, Tuple[int, int]]" = OrderedDict()
        self._bytes = 0
        #: Lookup counters (the dedup proof the acceptance test reads).
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- lookups --------------------------------------------------------------
    def get(self, digest: str) -> Optional[int]:
        """The cached run id for ``digest`` (counts a hit/miss and
        refreshes recency)."""
        with self._lock:
            entry = self._entries.get(digest)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(digest)
            self.hits += 1
            return entry[0]

    def __contains__(self, digest: str) -> bool:
        """Membership *without* touching the hit/miss counters."""
        with self._lock:
            return digest in self._entries

    # -- writes ---------------------------------------------------------------
    def put(self, digest: str, run_id: int, nbytes: int) -> List[Tuple[str, int]]:
        """Admit a finished run; return ``(digest, run_id)`` pairs evicted
        to stay under the byte budget.

        The newest entry always stays, even if it alone exceeds the
        budget — otherwise an oversized (but just-computed) result would
        be instantly forgotten and identical submissions would re-run
        forever.
        """
        evicted: List[Tuple[str, int]] = []
        with self._lock:
            old = self._entries.pop(digest, None)
            if old is not None:
                self._bytes -= old[1]
            self._entries[digest] = (run_id, nbytes)
            self._bytes += nbytes
            while self._bytes > self.max_bytes and len(self._entries) > 1:
                victim_digest, (victim_id, victim_bytes) = \
                    self._entries.popitem(last=False)
                self._bytes -= victim_bytes
                self.evictions += 1
                evicted.append((victim_digest, victim_id))
        return evicted

    def remove(self, digest: str) -> None:
        """Drop one entry (no eviction counter — an explicit removal)."""
        with self._lock:
            entry = self._entries.pop(digest, None)
            if entry is not None:
                self._bytes -= entry[1]

    # -- stats ----------------------------------------------------------------
    @property
    def stored_bytes(self) -> int:
        with self._lock:
            return self._bytes

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict:
        """The ``service.cache.*`` counter snapshot."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "entries": len(self._entries),
                "stored_bytes": self._bytes,
                "max_bytes": self.max_bytes,
            }
