"""Routing/dispatch and the HTTP server for grid-as-a-service.

:class:`ServiceApp` is the pure request handler — ``respond(method,
path, query, body)`` returns ``(status, json_body, headers)`` and can
be unit tested without a socket (``handle(...)`` is the two-tuple
shim).  :class:`ReproService` wraps it in a ``ThreadingHTTPServer``
(stdlib only, so tier-1 stays hermetic) on an ephemeral or fixed port;
:func:`serve` is the blocking CLI entry.

The API is **versioned**: every endpoint lives under ``/v1/`` and the
bare legacy paths answer identically while carrying a ``Deprecation``
header plus a ``Link: </v1/...>; rel="successor-version"`` pointing at
the canonical route.

Endpoints (all under ``/v1``, legacy aliases without the prefix)::

    POST /v1/runs                         submit (dedup via result cache;
                                          fair-share admission + quotas)
    GET  /v1/runs                         run listing (paginated)
    GET  /v1/runs/{id}                    state machine + summary
    GET  /v1/runs/{id}/report/{kind}      paginated report (ops |
                                          troubleshooting | trace)
    GET  /v1/runs/{id}/events             live progress (SSE stream;
                                          ?since=seq = JSON delta poll)
    GET  /v1/runs/{id}/metrics            the run's Prometheus exposition
    GET  /v1/healthz                      liveness (+ durability info)
    GET  /v1/metrics                      Prometheus text (service gauges,
                                          admission gauges, per-run
                                          progress, alert states;
                                          ?format=json = legacy flat JSON)
    GET  /v1/alerts                       live alert-rule states

Every non-2xx response carries the uniform envelope
``{"error": {"code", "message", "hint"}}``; 429s carry ``Retry-After``.

The dedup contract (the acceptance criterion): an identical ``(config,
seed)`` submission never runs a second simulation — it returns the
first run's id with ``dedup`` set to ``"cached"`` (finished) or
``"joined"`` (still in flight), observable via the
``service.queue.executed`` counter.

Durability: pass ``state_dir`` and every run-registry mutation is
journaled to sqlite (WAL); a restart replays the journal, so finished
runs serve byte-identical report bytes across restarts and in-flight
runs come back ``interrupted`` (terminal, resubmittable).

Admission: submissions name a ``client`` and a ``lane``; dispatch is
fair-share-ordered via :class:`~repro.service.admission.AdmissionPolicy`
(reusing the scheduler's ledger) and per-client quotas answer 429 +
``Retry-After`` on breach, published as ``service.admission.*``.
"""

from __future__ import annotations

import json
import re
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, List, Optional, Tuple

from ..core.grid3 import Grid3Config
from ..core.results import paginate
from .admission import AdmissionPolicy, QuotaExceededError
from .cache import ResultCache
from .persistence import RunJournal
from .progress import sse_end_frame, sse_format
from .queue import JobQueue, QueueFullError, execute_run
from .reports import REPORT_KINDS
from .schemas import (
    ApiError,
    HealthView,
    RunEvents,
    RunRequest,
    RunSubmitted,
    SchemaError,
    parse_pagination,
    parse_submission,
    split_hint,
)
from .store import RunRecord, RunStore

_RUN_PATH = re.compile(r"^/runs/(\d+)$")
_REPORT_PATH = re.compile(r"^/runs/(\d+)/report/([a-z]+)$")
_EVENTS_PATH = re.compile(r"^/runs/(\d+)/events$")
_RUN_METRICS_PATH = re.compile(r"^/runs/(\d+)/metrics$")

#: The API version prefix every canonical route lives under.
API_PREFIX = "/v1"

#: Retained scrape-history samples per metric: a long-lived server must
#: not grow its own telemetry without bound (ring semantics; ~2048
#: scrapes of history per gauge is days at a 1-minute cadence).
SCRAPE_HISTORY = 2048

#: (status, body, headers) — what :meth:`ServiceApp.respond` returns.
Response = Tuple[int, str, List[Tuple[str, str]]]


def strip_version(path: str) -> Tuple[str, bool]:
    """``/v1/runs -> ("/runs", True)``; bare paths pass through."""
    if path == API_PREFIX:
        return "/", True
    if path.startswith(API_PREFIX + "/"):
        return path[len(API_PREFIX):], True
    return path, False


class ServiceApp:
    """The service brain: store + cache + queue behind a route table."""

    def __init__(
        self,
        workers: int = 2,
        queue_depth: int = 64,
        cache_bytes: int = 64 * 1024 * 1024,
        pool_factory: Optional[Callable] = None,
        runner: Callable[[Grid3Config], Dict[str, object]] = execute_run,
        clock: Callable[[], float] = time.time,
        state_dir: Optional[str] = None,
        quota_per_client: int = 0,
        admission_half_life_s: float = 300.0,
    ) -> None:
        self._clock = clock
        self.started_at = clock()
        #: The durable journal (None = in-memory registry, the embedded
        #: and unit-test default).
        self.journal = RunJournal(state_dir) if state_dir is not None else None
        self.store = RunStore(clock=clock, journal=self.journal)
        self.cache = ResultCache(cache_bytes)
        self.admission = AdmissionPolicy(
            quota=quota_per_client, half_life=admission_half_life_s,
            clock=clock,
        )
        #: Submissions that joined an in-flight identical run.
        self.joined = 0
        self._submit_lock = threading.Lock()
        self.queue = JobQueue(
            workers=workers,
            depth=queue_depth,
            runner=runner,
            pool_factory=pool_factory,
            on_start=self.store.mark_running,
            on_done=self._on_done,
            on_error=self._on_error,
            on_interrupted=self._on_interrupted,
            admission=self.admission,
        )
        # Replayed finished runs re-enter the result cache (journal
        # order approximates recency; the byte budget may evict the
        # oldest payloads right back out, journaled as drops).
        finished = [r for r in self.store.runs()
                    if r.state == "done" and r.payload is not None]
        finished.sort(key=lambda r: (r.finished_at or 0.0, r.run_id))
        for record in finished:
            for _digest, victim_id in self.cache.put(
                    record.digest, record.run_id, record.payload_bytes):
                self.store.drop_payload(victim_id)
        # Scrape history: every /metrics hit appends the service.*
        # gauges as samples, so the estate's MetricStore query surface
        # (series/window_stats) works on service telemetry too.
        # Bounded (ring per metric): a long-lived server's own
        # telemetry must not leak.
        from ..monitoring.core import MetricStore
        self.metrics_store = MetricStore(max_samples=SCRAPE_HISTORY)
        # Live alerting over the scrape history: the same AlertEngine
        # the simulation runs in-sim, evaluated against service.* on
        # every scrape; states are served at /alerts and exposed as
        # gauges in /metrics.
        from ..ops.alerts import AlertEngine, service_rules
        self.alerts = AlertEngine(
            service_rules(queue_depth, workers),
            {"service": self.metrics_store},
        )

    # -- queue callbacks ------------------------------------------------------
    def _charge(self, record: RunRecord) -> None:
        """Account a terminal run's wall-clock cost to its client."""
        self.admission.release(record.client)
        if record.started_at is not None:
            finished = record.finished_at
            if finished is None:
                finished = self._clock()
            self.admission.charge(
                record.client, max(0.0, finished - record.started_at))

    def _on_done(self, record: RunRecord, payload: Dict[str, object]) -> None:
        raw = json.dumps(payload, sort_keys=True, default=repr).encode("utf-8")
        self.store.mark_done(record, payload, len(raw), raw=raw)
        self._charge(record)
        for _digest, victim_id in self.cache.put(record.digest,
                                                 record.run_id, len(raw)):
            self.store.drop_payload(victim_id)

    def _on_error(self, record: RunRecord, detail: str) -> None:
        self.store.mark_failed(record, detail)
        self._charge(record)

    def _on_interrupted(self, record: RunRecord) -> None:
        """Graceful-drain leftover: persist as resubmittable, not lost."""
        self.store.mark_interrupted(record)
        self.admission.release(record.client)

    # -- submission (the dedup path) ------------------------------------------
    def submit(self, request: RunRequest) -> Tuple[int, RunSubmitted]:
        """Dedup-or-enqueue one validated submission."""
        config = request.config
        digest = config.canonical_digest()
        with self._submit_lock:
            cached_id = self.cache.get(digest)
            if cached_id is not None:
                record = self.store.get(cached_id)
                if record is not None and record.payload is not None:
                    return 200, RunSubmitted(
                        run_id=record.run_id, state=record.state,
                        dedup="cached", digest=digest,
                    )
                # Stale cache entry (payload dropped out of band).
                self.cache.remove(digest)
            existing = self.store.lookup(digest)
            if existing is not None and existing.state in ("queued", "running"):
                self.joined += 1
                return 202, RunSubmitted(
                    run_id=existing.run_id, state=existing.state,
                    dedup="joined", digest=digest,
                )
            if existing is not None and existing.state in (
                    "failed", "interrupted"):
                # A failed or interrupted run does not poison the digest
                # forever: resubmission re-runs.
                self.store.unlink(digest)
            # The quota gate: counts this client's active runs; raises
            # QuotaExceededError (429 + Retry-After) on breach.  Only
            # *this* client is affected — quotas are per-client.
            self.admission.admit(request.client, request.lane)
            record = self.store.create(digest, config,
                                       client=request.client,
                                       lane=request.lane)
            try:
                self.queue.submit(record)
            except QueueFullError:
                self.admission.release(request.client)
                self.store.mark_failed(record, "rejected: queue full")
                self.store.unlink(digest)
                raise
            return 202, RunSubmitted(
                run_id=record.run_id, state=record.state,
                dedup="new", digest=digest,
            )

    # -- metrics ---------------------------------------------------------------
    def service_metrics(self) -> Dict[str, float]:
        """Every ``service.*`` gauge/counter, flat."""
        out: Dict[str, float] = {}
        for key, value in self.cache.stats().items():
            out[f"service.cache.{key}"] = value
        queue_stats = self.queue.stats()
        for key in ("depth", "max_depth", "executed", "failed", "rejected"):
            out[f"service.queue.{key}"] = queue_stats[key]
        out["service.queue.joined"] = self.joined
        for key in ("busy", "workers", "utilization"):
            out[f"service.workers.{key}"] = queue_stats[key]
        for state, count in self.store.counts().items():
            out[f"service.runs.{state}"] = count
        out["service.runs.recovered"] = self.store.recovered_interrupted
        admission = self.admission.stats(self.queue.pending_records())
        for key, value in admission.items():
            out[f"service.admission.{key}"] = value
        out["service.uptime_s"] = round(self._clock() - self.started_at, 6)
        return out

    def _scrape(self) -> Dict[str, float]:
        """Snapshot the gauges, file them into the MetricStore, and
        give the live alert rules an evaluation pass."""
        from ..monitoring.core import MetricSample
        gauges = self.service_metrics()
        now = self._clock() - self.started_at
        self.metrics_store.extend(
            MetricSample(now, name, float(value))
            for name, value in sorted(gauges.items())
        )
        self.alerts.evaluate(now)
        return gauges

    def metrics_text(self) -> str:
        """The full Prometheus exposition: service gauges, per-run
        progress gauges, and alert states (one scrape pass)."""
        from ..monitoring.prometheus import render_flat, render_line
        lines = render_flat(self._scrape())
        progress_keys = ("frac", "sim_time", "events", "jobs_submitted",
                         "jobs_completed", "jobs_failed", "tickets_open")
        snapshots = []
        for record in self.store.runs():
            event = record.progress.last()
            if event is not None:
                snapshots.append((record, event))
        if snapshots:
            for key in progress_keys:
                family = f"service_run_progress_{key}"
                lines.append(f"# TYPE {family} gauge")
                for record, event in snapshots:
                    if key not in event:
                        continue
                    lines.append(render_line(
                        family, float(event[key]),  # type: ignore[arg-type]
                        (("run", str(record.run_id)),
                         ("state", record.state)),
                    ))
        rows = self.alerts.status_rows()
        if rows:
            lines.append("# TYPE service_alert_firing gauge")
            for row in rows:
                lines.append(render_line(
                    "service_alert_firing", 1.0 if row.firing else 0.0,
                    (("rule", row.name), ("severity", row.severity)),
                ))
        return "\n".join(lines) + "\n"

    @staticmethod
    def wants_text(path: str, query: Dict[str, str]) -> bool:
        """Does this request get a text/plain (Prometheus) response?"""
        bare, _ = strip_version(path)
        if bare == "/metrics":
            return query.get("format") != "json"
        return bool(_RUN_METRICS_PATH.match(bare))

    # -- the route table -------------------------------------------------------
    @staticmethod
    def _known_path(bare: str) -> bool:
        """Is ``bare`` the shape of a real route (for alias headers)?"""
        return bool(
            bare in ("/healthz", "/metrics", "/runs", "/alerts")
            or _RUN_PATH.match(bare) or _REPORT_PATH.match(bare)
            or _EVENTS_PATH.match(bare) or _RUN_METRICS_PATH.match(bare)
        )

    def respond(self, method: str, path: str, query: Dict[str, str],
                body: bytes) -> Response:
        """Dispatch one request; ``(status, json_body, headers)``.

        Accepts canonical ``/v1/...`` paths and the deprecated bare
        aliases; aliases answer identically plus a ``Deprecation``
        header and a ``Link`` to the successor route.
        """
        bare, versioned = strip_version(path)
        headers: List[Tuple[str, str]] = []
        if not versioned and self._known_path(bare):
            headers.append(("Deprecation", "true"))
            headers.append(
                ("Link", f'<{API_PREFIX}{bare}>; rel="successor-version"'))
        try:
            status, payload = self._route(method, bare, query, body)
        except SchemaError as exc:
            message, hint = split_hint(str(exc))
            status, payload = 400, ApiError(
                code="bad_request", message=message, hint=hint,
            ).to_json()
        except QuotaExceededError as exc:
            headers.append(("Retry-After", str(exc.retry_after)))
            status, payload = 429, ApiError(
                code="quota_exceeded", message=str(exc),
                hint="wait Retry-After seconds, or submit as a different "
                     "client; other clients' lanes are unaffected",
            ).to_json()
        except QueueFullError as exc:
            headers.append(("Retry-After", "1"))
            status, payload = 429, ApiError(
                code="queue_full", message=str(exc),
                hint="the whole queue is at depth; retry with backoff",
            ).to_json()
        except Exception as exc:  # noqa: BLE001 - the 500 of last resort
            status, payload = 500, ApiError(
                code="internal_error",
                message=f"{type(exc).__name__}: {exc}",
                hint="this is a server-side bug; the run registry is intact",
            ).to_json()
        return status, payload, headers

    def handle(self, method: str, path: str, query: Dict[str, str],
               body: bytes) -> Tuple[int, str]:
        """Two-tuple shim over :meth:`respond` (header-less callers)."""
        status, payload, _headers = self.respond(method, path, query, body)
        return status, payload

    def _route(self, method: str, path: str, query: Dict[str, str],
               body: bytes) -> Tuple[int, str]:
        if path == "/healthz" and method == "GET":
            return 200, HealthView(
                status="ok",
                uptime_s=round(self._clock() - self.started_at, 6),
                queue_depth=self.queue.depth,
                workers=self.queue.workers,
                durable=self.journal is not None,
                recovered_runs=self.store.recovered_interrupted,
            ).to_json()
        if path == "/metrics" and method == "GET":
            if query.get("format") == "json":
                return 200, json.dumps(self._scrape(), sort_keys=True)
            return 200, self.metrics_text()
        if path == "/alerts" and method == "GET":
            self._scrape()  # evaluate against fresh gauges
            rows = self.alerts.status_rows()
            return 200, json.dumps({
                "rules": [row.as_dict() for row in rows],
                "firing": sum(1 for row in rows if row.firing),
            }, sort_keys=True)
        if path == "/runs" and method == "POST":
            status, submitted = self.submit(parse_submission(body))
            return status, submitted.to_json()
        if path == "/runs" and method == "GET":
            offset, limit = parse_pagination(query)
            now = self._clock()
            views = [r.view(now) for r in self.store.runs()]
            return 200, paginate(views, offset, limit).to_json()
        match = _RUN_PATH.match(path)
        if match and method == "GET":
            record = self.store.get(int(match.group(1)))
            if record is None:
                return 404, ApiError(
                    code="not_found",
                    message=f"no run {match.group(1)}",
                    hint="list runs at GET /v1/runs",
                ).to_json()
            return 200, record.view(self._clock()).to_json()
        match = _REPORT_PATH.match(path)
        if match and method == "GET":
            return self._report(int(match.group(1)), match.group(2), query)
        match = _EVENTS_PATH.match(path)
        if match and method == "GET":
            return self._events(int(match.group(1)), query)
        match = _RUN_METRICS_PATH.match(path)
        if match and method == "GET":
            return self._run_metrics(int(match.group(1)))
        if self._known_path(path):
            return 405, ApiError(
                code="method_not_allowed",
                message=f"{method} {path}",
                hint="see docs/API.md for each route's methods",
            ).to_json()
        return 404, ApiError(
            code="not_found", message=f"no route {path}",
            hint=f"canonical routes live under {API_PREFIX}/",
        ).to_json()

    def _not_finished(self, record: RunRecord,
                      run_id: int) -> Optional[Tuple[int, str]]:
        """The shared 409/410 ladder for result-bearing endpoints."""
        if record.state == "interrupted":
            return 409, ApiError(
                code="run_interrupted",
                message=record.error or "run interrupted",
                hint="resubmit the same config (same digest) to re-run",
            ).to_json()
        if record.state == "failed":
            return 409, ApiError(
                code="run_failed", message=record.error or "run failed",
                hint="fix the config or resubmit; failed digests re-run",
            ).to_json()
        if record.state != "done":
            return 409, ApiError(
                code="run_not_finished",
                message=f"run {run_id} is {record.state}",
                hint=f"poll /v1/runs/{run_id} or stream "
                     f"/v1/runs/{run_id}/events until done",
            ).to_json()
        if record.payload is None:
            return 410, ApiError(
                code="result_evicted",
                message="the result cache dropped this run's payload",
                hint="resubmit the config to re-run it",
            ).to_json()
        return None

    def _events(self, run_id: int,
                query: Dict[str, str]) -> Tuple[int, str]:
        """The ``?since=`` delta-poll body (the SSE stream lives in the
        handler, which needs the socket; this path is socketless)."""
        record = self.store.get(run_id)
        if record is None:
            return 404, ApiError(
                code="not_found", message=f"no run {run_id}",
                hint="list runs at GET /v1/runs",
            ).to_json()
        raw = query.get("since", "-1")
        try:
            since = int(raw)
        except ValueError as exc:
            raise SchemaError(
                f"since must be an integer event seq, got {raw!r}"
            ) from exc
        events, closed = record.progress.since(since)
        next_since = int(events[-1]["seq"]) if events else since
        return 200, RunEvents(
            run_id=run_id,
            state=record.state,
            since=since,
            next_since=next_since,
            closed=closed,
            events=events,
        ).to_json()

    def _run_metrics(self, run_id: int) -> Tuple[int, str]:
        """A finished run's Prometheus exposition (worker-rendered)."""
        record = self.store.get(run_id)
        if record is None:
            return 404, ApiError(
                code="not_found", message=f"no run {run_id}",
                hint="list runs at GET /v1/runs",
            ).to_json()
        blocked = self._not_finished(record, run_id)
        if blocked is not None:
            return blocked
        text = record.payload.get("metrics_text")
        if not isinstance(text, str):
            return 404, ApiError(
                code="not_found",
                message="this run predates metrics exposition",
                hint="resubmit the config to get a metrics-bearing run",
            ).to_json()
        return 200, text

    def _report(self, run_id: int, kind: str,
                query: Dict[str, str]) -> Tuple[int, str]:
        record = self.store.get(run_id)
        if record is None:
            return 404, ApiError(
                code="not_found", message=f"no run {run_id}",
                hint="list runs at GET /v1/runs",
            ).to_json()
        if kind not in REPORT_KINDS:
            return 404, ApiError(
                code="not_found",
                message=f"unknown report kind {kind!r}",
                hint=f"one of {list(REPORT_KINDS)}",
            ).to_json()
        blocked = self._not_finished(record, run_id)
        if blocked is not None:
            return blocked
        offset, limit = parse_pagination(query)
        rows = record.payload["reports"][kind]  # type: ignore[index]
        return 200, paginate(rows, offset, limit).to_json()

    # -- lifecycle -------------------------------------------------------------
    def close(self, drain: bool = True, timeout: float = 300.0) -> bool:
        """Shut the queue down.  With ``drain`` the accepted work
        finishes; whatever stays queued is journaled ``interrupted``
        (resubmittable), never silently dropped."""
        finished = self.queue.shutdown(drain=drain, timeout=timeout)
        if self.journal is not None:
            self.journal.close()
        return finished


class _Handler(BaseHTTPRequestHandler):
    """Thin socket adapter over :meth:`ServiceApp.respond`."""

    app: ServiceApp  # set by ReproService's handler subclass
    server_version = "repro-grid-service/2.0"
    protocol_version = "HTTP/1.1"

    def _dispatch(self, method: str) -> None:
        from urllib.parse import parse_qsl, urlsplit
        split = urlsplit(self.path)
        query = dict(parse_qsl(split.query))
        length = int(self.headers.get("Content-Length") or 0)
        body = self.rfile.read(length) if length else b""
        bare, versioned = strip_version(split.path)
        if (method == "GET" and "since" not in query
                and _EVENTS_PATH.match(bare)):
            match = _EVENTS_PATH.match(bare)
            extra = []
            if not versioned:
                extra = [("Deprecation", "true"),
                         ("Link", f'<{API_PREFIX}{bare}>; '
                                  f'rel="successor-version"')]
            self._stream_events(int(match.group(1)), extra)  # type: ignore[union-attr]
            return
        status, payload, headers = self.app.respond(
            method, split.path, query, body)
        data = payload.encode("utf-8")
        content_type = "application/json"
        if status == 200 and self.app.wants_text(split.path, query):
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        for name, value in headers:
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(data)

    def _stream_events(self, run_id: int,
                       extra_headers: Optional[List[Tuple[str, str]]] = None,
                       ) -> None:
        """``GET /v1/runs/{id}/events`` without ``?since=``: the SSE
        path.

        Streams the run's ProgressLog as Server-Sent Events until the
        run reaches a terminal state (then an ``end`` frame and EOF).
        A dropped client only kills this handler thread — the run, its
        log, and other streams are unaffected.  ``Last-Event-ID``
        resumes a reconnect from where the previous stream stopped.
        """
        record = self.app.store.get(run_id)
        if record is None:
            payload = ApiError(
                code="not_found", message=f"no run {run_id}",
                hint="list runs at GET /v1/runs",
            ).to_json().encode("utf-8")
            self.send_response(404)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(payload)))
            for name, value in extra_headers or []:
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(payload)
            return
        try:
            seq = int(self.headers.get("Last-Event-ID") or -1)
        except ValueError:
            seq = -1
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        self.send_header("Connection", "close")
        for name, value in extra_headers or []:
            self.send_header(name, value)
        self.end_headers()
        self.close_connection = True
        log = record.progress
        try:
            while True:
                events, closed = log.wait_for(seq, timeout=15.0)
                for event in events:
                    self.wfile.write(sse_format(event))
                    seq = max(seq, int(event["seq"]))  # type: ignore[arg-type]
                self.wfile.flush()
                if closed:
                    # Drain any final events that raced the close.
                    tail, _ = log.since(seq)
                    for event in tail:
                        self.wfile.write(sse_format(event))
                    self.wfile.write(sse_end_frame())
                    self.wfile.flush()
                    return
                if not events:
                    # Keepalive comment so idle streams detect drops.
                    self.wfile.write(b": keepalive\n\n")
                    self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError, OSError):
            pass  # client went away; the run is untouched

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("POST")

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        pass  # requests are observable via /metrics, not stderr noise


class ReproService:
    """The running service: a ThreadingHTTPServer around a ServiceApp.

    ``port=0`` binds an ephemeral port (read it back from ``.port`` —
    the integration suite's pattern).  ``start()`` serves on a
    background thread; ``close(drain=True)`` stops intake, lets queued
    runs finish, and tears the listener down.  ``state_dir`` makes the
    run registry durable: a later service on the same dir resumes with
    every prior run intact.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        queue_depth: int = 64,
        cache_bytes: int = 64 * 1024 * 1024,
        app: Optional[ServiceApp] = None,
        pool_factory: Optional[Callable] = None,
        state_dir: Optional[str] = None,
        quota_per_client: int = 0,
    ) -> None:
        self.app = app if app is not None else ServiceApp(
            workers=workers, queue_depth=queue_depth,
            cache_bytes=cache_bytes, pool_factory=pool_factory,
            state_dir=state_dir, quota_per_client=quota_per_client,
        )

        class _BoundHandler(_Handler):
            app = self.app

        self.httpd = ThreadingHTTPServer((host, port), _BoundHandler)
        self.httpd.daemon_threads = True
        self.host = host
        self.port = self.httpd.server_address[1]
        self._thread: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ReproService":
        """Serve on a daemon thread; returns self for chaining."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self.httpd.serve_forever,
                name="repro-service", daemon=True,
            )
            self._thread.start()
        return self

    def close(self, drain: bool = True, timeout: float = 300.0) -> bool:
        """Graceful shutdown: drain the queue, then stop the listener."""
        drained = self.app.close(drain=drain, timeout=timeout)
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        return drained

    def serve_forever(self) -> None:
        """Block in the listener (the CLI path); Ctrl-C drains and exits."""
        try:
            self.httpd.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            self.app.close(drain=True)
            self.httpd.server_close()


def serve(
    port: int = 8080,
    workers: int = 2,
    host: str = "127.0.0.1",
    queue_depth: int = 64,
    cache_bytes: int = 64 * 1024 * 1024,
    state_dir: Optional[str] = None,
    quota_per_client: int = 16,
    out: Callable[[str], None] = print,
) -> int:
    """Run the service until interrupted (the ``repro serve`` body)."""
    service = ReproService(
        host=host, port=port, workers=workers,
        queue_depth=queue_depth, cache_bytes=cache_bytes,
        state_dir=state_dir, quota_per_client=quota_per_client,
    )
    durable = f"durable registry at {state_dir}" if state_dir \
        else "in-memory registry (pass --state-dir to survive restarts)"
    recovered = service.app.store.recovered_interrupted
    out(f"grid-as-a-service listening on {service.url} "
        f"({workers} worker(s), queue depth {queue_depth}, {durable})")
    if recovered:
        out(f"  recovered {len(service.app.store)} run(s) from the journal; "
            f"{recovered} interrupted run(s) are resubmittable")
    out(f"  POST {service.url}/v1/runs                submit a simulation "
        f"(client= and lane= for admission)")
    out(f"  GET  {service.url}/v1/runs                list runs (paginated)")
    out(f"  GET  {service.url}/v1/runs/<id>           poll its state")
    out(f"  GET  {service.url}/v1/runs/<id>/events    live progress "
        f"(SSE; ?since=seq polls)")
    out(f"  GET  {service.url}/v1/runs/<id>/report/"
        f"ops|troubleshooting|trace")
    out(f"  GET  {service.url}/v1/runs/<id>/metrics   finished run's "
        f"Prometheus exposition")
    out(f"  GET  {service.url}/v1/healthz             liveness + durability")
    out(f"  GET  {service.url}/v1/metrics             Prometheus text "
        f"(?format=json for flat JSON)")
    out(f"  GET  {service.url}/v1/alerts              live alert-rule states")
    out("  (legacy unversioned paths still answer, with a Deprecation "
        "header)")
    service.serve_forever()
    return 0
