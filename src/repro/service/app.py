"""Routing/dispatch and the HTTP server for grid-as-a-service.

:class:`ServiceApp` is the pure request handler — ``handle(method,
path, query, body)`` returns ``(status, json_body)`` and can be unit
tested without a socket.  :class:`ReproService` wraps it in a
``ThreadingHTTPServer`` (stdlib only, so tier-1 stays hermetic) on an
ephemeral or fixed port; :func:`serve` is the blocking CLI entry.

Endpoints::

    POST /runs                         submit (dedup via result cache)
    GET  /runs                         run listing (paginated)
    GET  /runs/{id}                    state machine + summary
    GET  /runs/{id}/report/{kind}      paginated report (ops |
                                       troubleshooting | trace)
    GET  /runs/{id}/events             live progress (SSE stream;
                                       ?since=seq = JSON delta poll)
    GET  /runs/{id}/metrics            the run's Prometheus exposition
    GET  /healthz                      liveness
    GET  /metrics                      Prometheus text (service gauges,
                                       per-run progress, alert states;
                                       ?format=json = legacy flat JSON)
    GET  /alerts                       live alert-rule states

The dedup contract (the acceptance criterion): an identical ``(config,
seed)`` submission never runs a second simulation — it returns the
first run's id with ``dedup`` set to ``"cached"`` (finished) or
``"joined"`` (still in flight), observable via the
``service.queue.executed`` counter.

Progress streaming: workers emit deterministic-seq events through a
bounded coalescing pipe into each record's
:class:`~repro.service.progress.ProgressLog`; the SSE stream and the
``?since=`` poll read the *same* log, so their views agree
positionally by construction.
"""

from __future__ import annotations

import json
import re
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, Optional, Tuple
from urllib.parse import parse_qsl, urlsplit

from ..core.grid3 import Grid3Config
from ..core.results import ReportRecord, paginate
from .cache import ResultCache
from .progress import sse_end_frame, sse_format
from .queue import JobQueue, QueueFullError, execute_run
from .reports import REPORT_KINDS
from .schemas import (
    ApiError,
    HealthView,
    RunEvents,
    RunSubmitted,
    SchemaError,
    parse_pagination,
    parse_run_request,
)
from .store import RunRecord, RunStore

_RUN_PATH = re.compile(r"^/runs/(\d+)$")
_REPORT_PATH = re.compile(r"^/runs/(\d+)/report/([a-z]+)$")
_EVENTS_PATH = re.compile(r"^/runs/(\d+)/events$")
_RUN_METRICS_PATH = re.compile(r"^/runs/(\d+)/metrics$")

#: Retained scrape-history samples per metric: a long-lived server must
#: not grow its own telemetry without bound (ring semantics; ~2048
#: scrapes of history per gauge is days at a 1-minute cadence).
SCRAPE_HISTORY = 2048


class ServiceApp:
    """The service brain: store + cache + queue behind a route table."""

    def __init__(
        self,
        workers: int = 2,
        queue_depth: int = 64,
        cache_bytes: int = 64 * 1024 * 1024,
        pool_factory: Optional[Callable] = None,
        runner: Callable[[Grid3Config], Dict[str, object]] = execute_run,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self._clock = clock
        self.started_at = clock()
        self.store = RunStore(clock=clock)
        self.cache = ResultCache(cache_bytes)
        #: Submissions that joined an in-flight identical run.
        self.joined = 0
        self._submit_lock = threading.Lock()
        self.queue = JobQueue(
            workers=workers,
            depth=queue_depth,
            runner=runner,
            pool_factory=pool_factory,
            on_start=self.store.mark_running,
            on_done=self._on_done,
            on_error=self.store.mark_failed,
        )
        # Scrape history: every /metrics hit appends the service.*
        # gauges as samples, so the estate's MetricStore query surface
        # (series/window_stats) works on service telemetry too.
        # Bounded (ring per metric): a long-lived server's own
        # telemetry must not leak.
        from ..monitoring.core import MetricStore
        self.metrics_store = MetricStore(max_samples=SCRAPE_HISTORY)
        # Live alerting over the scrape history: the same AlertEngine
        # the simulation runs in-sim, evaluated against service.* on
        # every scrape; states are served at /alerts and exposed as
        # gauges in /metrics.
        from ..ops.alerts import AlertEngine, service_rules
        self.alerts = AlertEngine(
            service_rules(queue_depth, workers),
            {"service": self.metrics_store},
        )

    # -- queue callbacks ------------------------------------------------------
    def _on_done(self, record: RunRecord, payload: Dict[str, object]) -> None:
        nbytes = len(json.dumps(payload, sort_keys=True, default=repr))
        self.store.mark_done(record, payload, nbytes)
        for _digest, victim_id in self.cache.put(record.digest,
                                                 record.run_id, nbytes):
            self.store.drop_payload(victim_id)

    # -- submission (the dedup path) ------------------------------------------
    def submit(self, config: Grid3Config) -> Tuple[int, RunSubmitted]:
        """Dedup-or-enqueue one validated config."""
        digest = config.canonical_digest()
        with self._submit_lock:
            cached_id = self.cache.get(digest)
            if cached_id is not None:
                record = self.store.get(cached_id)
                if record is not None and record.payload is not None:
                    return 200, RunSubmitted(
                        run_id=record.run_id, state=record.state,
                        dedup="cached", digest=digest,
                    )
                # Stale cache entry (payload dropped out of band).
                self.cache.remove(digest)
            existing = self.store.lookup(digest)
            if existing is not None and existing.state in ("queued", "running"):
                self.joined += 1
                return 202, RunSubmitted(
                    run_id=existing.run_id, state=existing.state,
                    dedup="joined", digest=digest,
                )
            if existing is not None and existing.state == "failed":
                # A failed run does not poison the digest forever.
                self.store.unlink(digest)
            record = self.store.create(digest, config)
            try:
                self.queue.submit(record)
            except QueueFullError:
                self.store.mark_failed(record, "rejected: queue full")
                self.store.unlink(digest)
                raise
            return 202, RunSubmitted(
                run_id=record.run_id, state=record.state,
                dedup="new", digest=digest,
            )

    # -- metrics ---------------------------------------------------------------
    def service_metrics(self) -> Dict[str, float]:
        """Every ``service.*`` gauge/counter, flat."""
        out: Dict[str, float] = {}
        for key, value in self.cache.stats().items():
            out[f"service.cache.{key}"] = value
        queue_stats = self.queue.stats()
        for key in ("depth", "max_depth", "executed", "failed", "rejected"):
            out[f"service.queue.{key}"] = queue_stats[key]
        out["service.queue.joined"] = self.joined
        for key in ("busy", "workers", "utilization"):
            out[f"service.workers.{key}"] = queue_stats[key]
        for state, count in self.store.counts().items():
            out[f"service.runs.{state}"] = count
        out["service.uptime_s"] = round(self._clock() - self.started_at, 6)
        return out

    def _scrape(self) -> Dict[str, float]:
        """Snapshot the gauges, file them into the MetricStore, and
        give the live alert rules an evaluation pass."""
        from ..monitoring.core import MetricSample
        gauges = self.service_metrics()
        now = self._clock() - self.started_at
        self.metrics_store.extend(
            MetricSample(now, name, float(value))
            for name, value in sorted(gauges.items())
        )
        self.alerts.evaluate(now)
        return gauges

    def metrics_text(self) -> str:
        """The full Prometheus exposition: service gauges, per-run
        progress gauges, and alert states (one scrape pass)."""
        from ..monitoring.prometheus import render_flat, render_line
        lines = render_flat(self._scrape())
        progress_keys = ("frac", "sim_time", "events", "jobs_submitted",
                         "jobs_completed", "jobs_failed", "tickets_open")
        snapshots = []
        for record in self.store.runs():
            event = record.progress.last()
            if event is not None:
                snapshots.append((record, event))
        if snapshots:
            for key in progress_keys:
                family = f"service_run_progress_{key}"
                lines.append(f"# TYPE {family} gauge")
                for record, event in snapshots:
                    if key not in event:
                        continue
                    lines.append(render_line(
                        family, float(event[key]),  # type: ignore[arg-type]
                        (("run", str(record.run_id)),
                         ("state", record.state)),
                    ))
        rows = self.alerts.status_rows()
        if rows:
            lines.append("# TYPE service_alert_firing gauge")
            for row in rows:
                lines.append(render_line(
                    "service_alert_firing", 1.0 if row.firing else 0.0,
                    (("rule", row.name), ("severity", row.severity)),
                ))
        return "\n".join(lines) + "\n"

    @staticmethod
    def wants_text(path: str, query: Dict[str, str]) -> bool:
        """Does this request get a text/plain (Prometheus) response?"""
        if path == "/metrics":
            return query.get("format") != "json"
        return bool(_RUN_METRICS_PATH.match(path))

    # -- the route table -------------------------------------------------------
    def handle(self, method: str, path: str, query: Dict[str, str],
               body: bytes) -> Tuple[int, str]:
        """Dispatch one request; returns ``(status, json_body)``."""
        try:
            return self._route(method, path, query, body)
        except SchemaError as exc:
            return 400, ApiError(error="bad request", detail=str(exc)).to_json()
        except QueueFullError as exc:
            return 429, ApiError(error="queue full", detail=str(exc)).to_json()
        except Exception as exc:  # noqa: BLE001 - the 500 of last resort
            return 500, ApiError(
                error="internal error",
                detail=f"{type(exc).__name__}: {exc}",
            ).to_json()

    def _route(self, method: str, path: str, query: Dict[str, str],
               body: bytes) -> Tuple[int, str]:
        if path == "/healthz" and method == "GET":
            return 200, HealthView(
                status="ok",
                uptime_s=round(self._clock() - self.started_at, 6),
                queue_depth=self.queue.depth,
                workers=self.queue.workers,
            ).to_json()
        if path == "/metrics" and method == "GET":
            if query.get("format") == "json":
                return 200, json.dumps(self._scrape(), sort_keys=True)
            return 200, self.metrics_text()
        if path == "/alerts" and method == "GET":
            self._scrape()  # evaluate against fresh gauges
            rows = self.alerts.status_rows()
            return 200, json.dumps({
                "rules": [row.as_dict() for row in rows],
                "firing": sum(1 for row in rows if row.firing),
            }, sort_keys=True)
        if path == "/runs" and method == "POST":
            status, submitted = self.submit(parse_run_request(body))
            return status, submitted.to_json()
        if path == "/runs" and method == "GET":
            offset, limit = parse_pagination(query)
            now = self._clock()
            views = [r.view(now) for r in self.store.runs()]
            return 200, paginate(views, offset, limit).to_json()
        match = _RUN_PATH.match(path)
        if match and method == "GET":
            record = self.store.get(int(match.group(1)))
            if record is None:
                return 404, ApiError(
                    error="not found",
                    detail=f"no run {match.group(1)}",
                ).to_json()
            return 200, record.view(self._clock()).to_json()
        match = _REPORT_PATH.match(path)
        if match and method == "GET":
            return self._report(int(match.group(1)), match.group(2), query)
        match = _EVENTS_PATH.match(path)
        if match and method == "GET":
            return self._events(int(match.group(1)), query)
        match = _RUN_METRICS_PATH.match(path)
        if match and method == "GET":
            return self._run_metrics(int(match.group(1)))
        if path in ("/healthz", "/metrics", "/runs", "/alerts") \
                or _RUN_PATH.match(path) or _REPORT_PATH.match(path) \
                or _EVENTS_PATH.match(path) or _RUN_METRICS_PATH.match(path):
            return 405, ApiError(
                error="method not allowed",
                detail=f"{method} {path}",
            ).to_json()
        return 404, ApiError(error="not found", detail=path).to_json()

    def _events(self, run_id: int,
                query: Dict[str, str]) -> Tuple[int, str]:
        """The ``?since=`` delta-poll body (the SSE stream lives in the
        handler, which needs the socket; this path is socketless)."""
        record = self.store.get(run_id)
        if record is None:
            return 404, ApiError(
                error="not found", detail=f"no run {run_id}",
            ).to_json()
        raw = query.get("since", "-1")
        try:
            since = int(raw)
        except ValueError as exc:
            raise SchemaError(
                f"since must be an integer event seq, got {raw!r}"
            ) from exc
        events, closed = record.progress.since(since)
        next_since = int(events[-1]["seq"]) if events else since
        return 200, RunEvents(
            run_id=run_id,
            state=record.state,
            since=since,
            next_since=next_since,
            closed=closed,
            events=events,
        ).to_json()

    def _run_metrics(self, run_id: int) -> Tuple[int, str]:
        """A finished run's Prometheus exposition (worker-rendered)."""
        record = self.store.get(run_id)
        if record is None:
            return 404, ApiError(
                error="not found", detail=f"no run {run_id}",
            ).to_json()
        if record.state == "failed":
            return 409, ApiError(
                error="run failed", detail=record.error or "",
            ).to_json()
        if record.state != "done":
            return 409, ApiError(
                error="run not finished",
                detail=f"run {run_id} is {record.state}; stream "
                       f"/runs/{run_id}/events meanwhile",
            ).to_json()
        if record.payload is None:
            return 410, ApiError(
                error="result evicted",
                detail="the result cache dropped this run's payload; "
                       "resubmit the config to re-run",
            ).to_json()
        text = record.payload.get("metrics_text")
        if not isinstance(text, str):
            return 404, ApiError(
                error="not found",
                detail="this run predates metrics exposition",
            ).to_json()
        return 200, text

    def _report(self, run_id: int, kind: str,
                query: Dict[str, str]) -> Tuple[int, str]:
        record = self.store.get(run_id)
        if record is None:
            return 404, ApiError(
                error="not found", detail=f"no run {run_id}",
            ).to_json()
        if kind not in REPORT_KINDS:
            return 404, ApiError(
                error="not found",
                detail=f"unknown report kind {kind!r}; "
                       f"one of {list(REPORT_KINDS)}",
            ).to_json()
        if record.state == "failed":
            return 409, ApiError(
                error="run failed", detail=record.error or "",
            ).to_json()
        if record.state != "done":
            return 409, ApiError(
                error="run not finished",
                detail=f"run {run_id} is {record.state}; poll "
                       f"/runs/{run_id} until done",
            ).to_json()
        if record.payload is None:
            return 410, ApiError(
                error="result evicted",
                detail="the result cache dropped this run's payload; "
                       "resubmit the config to re-run",
            ).to_json()
        offset, limit = parse_pagination(query)
        rows = record.payload["reports"][kind]  # type: ignore[index]
        return 200, paginate(rows, offset, limit).to_json()

    # -- lifecycle -------------------------------------------------------------
    def close(self, drain: bool = True, timeout: float = 300.0) -> bool:
        """Shut the queue down (optionally draining accepted work)."""
        return self.queue.shutdown(drain=drain, timeout=timeout)


class _Handler(BaseHTTPRequestHandler):
    """Thin socket adapter over :meth:`ServiceApp.handle`."""

    app: ServiceApp  # set by ReproService's handler subclass
    server_version = "repro-grid-service/1.0"
    protocol_version = "HTTP/1.1"

    def _dispatch(self, method: str) -> None:
        split = urlsplit(self.path)
        query = dict(parse_qsl(split.query))
        length = int(self.headers.get("Content-Length") or 0)
        body = self.rfile.read(length) if length else b""
        if (method == "GET" and "since" not in query
                and _EVENTS_PATH.match(split.path)):
            match = _EVENTS_PATH.match(split.path)
            self._stream_events(int(match.group(1)))  # type: ignore[union-attr]
            return
        status, payload = self.app.handle(method, split.path, query, body)
        data = payload.encode("utf-8")
        content_type = "application/json"
        if status == 200 and self.app.wants_text(split.path, query):
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _stream_events(self, run_id: int) -> None:
        """``GET /runs/{id}/events`` without ``?since=``: the SSE path.

        Streams the run's ProgressLog as Server-Sent Events until the
        run reaches a terminal state (then an ``end`` frame and EOF).
        A dropped client only kills this handler thread — the run, its
        log, and other streams are unaffected.  ``Last-Event-ID``
        resumes a reconnect from where the previous stream stopped.
        """
        record = self.app.store.get(run_id)
        if record is None:
            payload = ApiError(
                error="not found", detail=f"no run {run_id}",
            ).to_json().encode("utf-8")
            self.send_response(404)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(payload)))
            self.end_headers()
            self.wfile.write(payload)
            return
        try:
            seq = int(self.headers.get("Last-Event-ID") or -1)
        except ValueError:
            seq = -1
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        self.send_header("Connection", "close")
        self.end_headers()
        self.close_connection = True
        log = record.progress
        try:
            while True:
                events, closed = log.wait_for(seq, timeout=15.0)
                for event in events:
                    self.wfile.write(sse_format(event))
                    seq = max(seq, int(event["seq"]))  # type: ignore[arg-type]
                self.wfile.flush()
                if closed:
                    # Drain any final events that raced the close.
                    tail, _ = log.since(seq)
                    for event in tail:
                        self.wfile.write(sse_format(event))
                    self.wfile.write(sse_end_frame())
                    self.wfile.flush()
                    return
                if not events:
                    # Keepalive comment so idle streams detect drops.
                    self.wfile.write(b": keepalive\n\n")
                    self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError, OSError):
            pass  # client went away; the run is untouched

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("POST")

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        pass  # requests are observable via /metrics, not stderr noise


class ReproService:
    """The running service: a ThreadingHTTPServer around a ServiceApp.

    ``port=0`` binds an ephemeral port (read it back from ``.port`` —
    the integration suite's pattern).  ``start()`` serves on a
    background thread; ``close(drain=True)`` stops intake, lets queued
    runs finish, and tears the listener down.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        queue_depth: int = 64,
        cache_bytes: int = 64 * 1024 * 1024,
        app: Optional[ServiceApp] = None,
        pool_factory: Optional[Callable] = None,
    ) -> None:
        self.app = app if app is not None else ServiceApp(
            workers=workers, queue_depth=queue_depth,
            cache_bytes=cache_bytes, pool_factory=pool_factory,
        )

        class _BoundHandler(_Handler):
            app = self.app

        self.httpd = ThreadingHTTPServer((host, port), _BoundHandler)
        self.httpd.daemon_threads = True
        self.host = host
        self.port = self.httpd.server_address[1]
        self._thread: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ReproService":
        """Serve on a daemon thread; returns self for chaining."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self.httpd.serve_forever,
                name="repro-service", daemon=True,
            )
            self._thread.start()
        return self

    def close(self, drain: bool = True, timeout: float = 300.0) -> bool:
        """Graceful shutdown: drain the queue, then stop the listener."""
        drained = self.app.close(drain=drain, timeout=timeout)
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        return drained

    def serve_forever(self) -> None:
        """Block in the listener (the CLI path); Ctrl-C drains and exits."""
        try:
            self.httpd.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            self.app.close(drain=True)
            self.httpd.server_close()


def serve(
    port: int = 8080,
    workers: int = 2,
    host: str = "127.0.0.1",
    queue_depth: int = 64,
    cache_bytes: int = 64 * 1024 * 1024,
    out: Callable[[str], None] = print,
) -> int:
    """Run the service until interrupted (the ``repro serve`` body)."""
    service = ReproService(
        host=host, port=port, workers=workers,
        queue_depth=queue_depth, cache_bytes=cache_bytes,
    )
    out(f"grid-as-a-service listening on {service.url} "
        f"({workers} worker(s), queue depth {queue_depth})")
    out(f"  POST {service.url}/runs                submit a simulation")
    out(f"  GET  {service.url}/runs                list runs (paginated)")
    out(f"  GET  {service.url}/runs/<id>           poll its state")
    out(f"  GET  {service.url}/runs/<id>/events    live progress "
        f"(SSE; ?since=seq polls)")
    out(f"  GET  {service.url}/runs/<id>/report/ops|troubleshooting|trace")
    out(f"  GET  {service.url}/runs/<id>/metrics   finished run's "
        f"Prometheus exposition")
    out(f"  GET  {service.url}/healthz             liveness")
    out(f"  GET  {service.url}/metrics             Prometheus text "
        f"(?format=json for flat JSON)")
    out(f"  GET  {service.url}/alerts              live alert-rule states")
    service.serve_forever()
    return 0
