"""Routing/dispatch and the HTTP server for grid-as-a-service.

:class:`ServiceApp` is the pure request handler — ``handle(method,
path, query, body)`` returns ``(status, json_body)`` and can be unit
tested without a socket.  :class:`ReproService` wraps it in a
``ThreadingHTTPServer`` (stdlib only, so tier-1 stays hermetic) on an
ephemeral or fixed port; :func:`serve` is the blocking CLI entry.

Endpoints::

    POST /runs                         submit (dedup via result cache)
    GET  /runs                         run listing (paginated)
    GET  /runs/{id}                    state machine + summary
    GET  /runs/{id}/report/{kind}      paginated report (ops |
                                       troubleshooting | trace)
    GET  /healthz                      liveness
    GET  /metrics                      service.* counters

The dedup contract (the acceptance criterion): an identical ``(config,
seed)`` submission never runs a second simulation — it returns the
first run's id with ``dedup`` set to ``"cached"`` (finished) or
``"joined"`` (still in flight), observable via the
``service.queue.executed`` counter.
"""

from __future__ import annotations

import json
import re
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, Optional, Tuple
from urllib.parse import parse_qsl, urlsplit

from ..core.grid3 import Grid3Config
from ..core.results import ReportRecord, paginate
from .cache import ResultCache
from .queue import JobQueue, QueueFullError, execute_run
from .reports import REPORT_KINDS
from .schemas import (
    ApiError,
    HealthView,
    RunSubmitted,
    SchemaError,
    parse_pagination,
    parse_run_request,
)
from .store import RunRecord, RunStore

_RUN_PATH = re.compile(r"^/runs/(\d+)$")
_REPORT_PATH = re.compile(r"^/runs/(\d+)/report/([a-z]+)$")


class ServiceApp:
    """The service brain: store + cache + queue behind a route table."""

    def __init__(
        self,
        workers: int = 2,
        queue_depth: int = 64,
        cache_bytes: int = 64 * 1024 * 1024,
        pool_factory: Optional[Callable] = None,
        runner: Callable[[Grid3Config], Dict[str, object]] = execute_run,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self._clock = clock
        self.started_at = clock()
        self.store = RunStore(clock=clock)
        self.cache = ResultCache(cache_bytes)
        #: Submissions that joined an in-flight identical run.
        self.joined = 0
        self._submit_lock = threading.Lock()
        self.queue = JobQueue(
            workers=workers,
            depth=queue_depth,
            runner=runner,
            pool_factory=pool_factory,
            on_start=self.store.mark_running,
            on_done=self._on_done,
            on_error=self.store.mark_failed,
        )
        # Scrape history: every /metrics hit appends the service.*
        # gauges as samples, so the estate's MetricStore query surface
        # (series/window_stats) works on service telemetry too.
        from ..monitoring.core import MetricStore
        self.metrics_store = MetricStore()

    # -- queue callbacks ------------------------------------------------------
    def _on_done(self, record: RunRecord, payload: Dict[str, object]) -> None:
        nbytes = len(json.dumps(payload, sort_keys=True, default=repr))
        self.store.mark_done(record, payload, nbytes)
        for _digest, victim_id in self.cache.put(record.digest,
                                                 record.run_id, nbytes):
            self.store.drop_payload(victim_id)

    # -- submission (the dedup path) ------------------------------------------
    def submit(self, config: Grid3Config) -> Tuple[int, RunSubmitted]:
        """Dedup-or-enqueue one validated config."""
        digest = config.canonical_digest()
        with self._submit_lock:
            cached_id = self.cache.get(digest)
            if cached_id is not None:
                record = self.store.get(cached_id)
                if record is not None and record.payload is not None:
                    return 200, RunSubmitted(
                        run_id=record.run_id, state=record.state,
                        dedup="cached", digest=digest,
                    )
                # Stale cache entry (payload dropped out of band).
                self.cache.remove(digest)
            existing = self.store.lookup(digest)
            if existing is not None and existing.state in ("queued", "running"):
                self.joined += 1
                return 202, RunSubmitted(
                    run_id=existing.run_id, state=existing.state,
                    dedup="joined", digest=digest,
                )
            if existing is not None and existing.state == "failed":
                # A failed run does not poison the digest forever.
                self.store.unlink(digest)
            record = self.store.create(digest, config)
            try:
                self.queue.submit(record)
            except QueueFullError:
                self.store.mark_failed(record, "rejected: queue full")
                self.store.unlink(digest)
                raise
            return 202, RunSubmitted(
                run_id=record.run_id, state=record.state,
                dedup="new", digest=digest,
            )

    # -- metrics ---------------------------------------------------------------
    def service_metrics(self) -> Dict[str, float]:
        """Every ``service.*`` gauge/counter, flat."""
        out: Dict[str, float] = {}
        for key, value in self.cache.stats().items():
            out[f"service.cache.{key}"] = value
        queue_stats = self.queue.stats()
        for key in ("depth", "max_depth", "executed", "failed", "rejected"):
            out[f"service.queue.{key}"] = queue_stats[key]
        out["service.queue.joined"] = self.joined
        for key in ("busy", "workers", "utilization"):
            out[f"service.workers.{key}"] = queue_stats[key]
        for state, count in self.store.counts().items():
            out[f"service.runs.{state}"] = count
        out["service.uptime_s"] = round(self._clock() - self.started_at, 6)
        return out

    def _scrape(self) -> Dict[str, float]:
        """Snapshot the gauges and file them into the MetricStore."""
        from ..monitoring.core import MetricSample
        gauges = self.service_metrics()
        now = self._clock() - self.started_at
        self.metrics_store.extend(
            MetricSample(now, name, float(value))
            for name, value in sorted(gauges.items())
        )
        return gauges

    # -- the route table -------------------------------------------------------
    def handle(self, method: str, path: str, query: Dict[str, str],
               body: bytes) -> Tuple[int, str]:
        """Dispatch one request; returns ``(status, json_body)``."""
        try:
            return self._route(method, path, query, body)
        except SchemaError as exc:
            return 400, ApiError(error="bad request", detail=str(exc)).to_json()
        except QueueFullError as exc:
            return 429, ApiError(error="queue full", detail=str(exc)).to_json()
        except Exception as exc:  # noqa: BLE001 - the 500 of last resort
            return 500, ApiError(
                error="internal error",
                detail=f"{type(exc).__name__}: {exc}",
            ).to_json()

    def _route(self, method: str, path: str, query: Dict[str, str],
               body: bytes) -> Tuple[int, str]:
        if path == "/healthz" and method == "GET":
            return 200, HealthView(
                status="ok",
                uptime_s=round(self._clock() - self.started_at, 6),
                queue_depth=self.queue.depth,
                workers=self.queue.workers,
            ).to_json()
        if path == "/metrics" and method == "GET":
            return 200, json.dumps(self._scrape(), sort_keys=True)
        if path == "/runs" and method == "POST":
            status, submitted = self.submit(parse_run_request(body))
            return status, submitted.to_json()
        if path == "/runs" and method == "GET":
            offset, limit = parse_pagination(query)
            now = self._clock()
            views = [r.view(now) for r in self.store.runs()]
            return 200, paginate(views, offset, limit).to_json()
        match = _RUN_PATH.match(path)
        if match and method == "GET":
            record = self.store.get(int(match.group(1)))
            if record is None:
                return 404, ApiError(
                    error="not found",
                    detail=f"no run {match.group(1)}",
                ).to_json()
            return 200, record.view(self._clock()).to_json()
        match = _REPORT_PATH.match(path)
        if match and method == "GET":
            return self._report(int(match.group(1)), match.group(2), query)
        if path in ("/healthz", "/metrics", "/runs") or _RUN_PATH.match(path) \
                or _REPORT_PATH.match(path):
            return 405, ApiError(
                error="method not allowed",
                detail=f"{method} {path}",
            ).to_json()
        return 404, ApiError(error="not found", detail=path).to_json()

    def _report(self, run_id: int, kind: str,
                query: Dict[str, str]) -> Tuple[int, str]:
        record = self.store.get(run_id)
        if record is None:
            return 404, ApiError(
                error="not found", detail=f"no run {run_id}",
            ).to_json()
        if kind not in REPORT_KINDS:
            return 404, ApiError(
                error="not found",
                detail=f"unknown report kind {kind!r}; "
                       f"one of {list(REPORT_KINDS)}",
            ).to_json()
        if record.state == "failed":
            return 409, ApiError(
                error="run failed", detail=record.error or "",
            ).to_json()
        if record.state != "done":
            return 409, ApiError(
                error="run not finished",
                detail=f"run {run_id} is {record.state}; poll "
                       f"/runs/{run_id} until done",
            ).to_json()
        if record.payload is None:
            return 410, ApiError(
                error="result evicted",
                detail="the result cache dropped this run's payload; "
                       "resubmit the config to re-run",
            ).to_json()
        offset, limit = parse_pagination(query)
        rows = record.payload["reports"][kind]  # type: ignore[index]
        return 200, paginate(rows, offset, limit).to_json()

    # -- lifecycle -------------------------------------------------------------
    def close(self, drain: bool = True, timeout: float = 300.0) -> bool:
        """Shut the queue down (optionally draining accepted work)."""
        return self.queue.shutdown(drain=drain, timeout=timeout)


class _Handler(BaseHTTPRequestHandler):
    """Thin socket adapter over :meth:`ServiceApp.handle`."""

    app: ServiceApp  # set by ReproService's handler subclass
    server_version = "repro-grid-service/1.0"
    protocol_version = "HTTP/1.1"

    def _dispatch(self, method: str) -> None:
        split = urlsplit(self.path)
        query = dict(parse_qsl(split.query))
        length = int(self.headers.get("Content-Length") or 0)
        body = self.rfile.read(length) if length else b""
        status, payload = self.app.handle(method, split.path, query, body)
        data = payload.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("POST")

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        pass  # requests are observable via /metrics, not stderr noise


class ReproService:
    """The running service: a ThreadingHTTPServer around a ServiceApp.

    ``port=0`` binds an ephemeral port (read it back from ``.port`` —
    the integration suite's pattern).  ``start()`` serves on a
    background thread; ``close(drain=True)`` stops intake, lets queued
    runs finish, and tears the listener down.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        queue_depth: int = 64,
        cache_bytes: int = 64 * 1024 * 1024,
        app: Optional[ServiceApp] = None,
        pool_factory: Optional[Callable] = None,
    ) -> None:
        self.app = app if app is not None else ServiceApp(
            workers=workers, queue_depth=queue_depth,
            cache_bytes=cache_bytes, pool_factory=pool_factory,
        )

        class _BoundHandler(_Handler):
            app = self.app

        self.httpd = ThreadingHTTPServer((host, port), _BoundHandler)
        self.httpd.daemon_threads = True
        self.host = host
        self.port = self.httpd.server_address[1]
        self._thread: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ReproService":
        """Serve on a daemon thread; returns self for chaining."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self.httpd.serve_forever,
                name="repro-service", daemon=True,
            )
            self._thread.start()
        return self

    def close(self, drain: bool = True, timeout: float = 300.0) -> bool:
        """Graceful shutdown: drain the queue, then stop the listener."""
        drained = self.app.close(drain=drain, timeout=timeout)
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        return drained

    def serve_forever(self) -> None:
        """Block in the listener (the CLI path); Ctrl-C drains and exits."""
        try:
            self.httpd.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            self.app.close(drain=True)
            self.httpd.server_close()


def serve(
    port: int = 8080,
    workers: int = 2,
    host: str = "127.0.0.1",
    queue_depth: int = 64,
    cache_bytes: int = 64 * 1024 * 1024,
    out: Callable[[str], None] = print,
) -> int:
    """Run the service until interrupted (the ``repro serve`` body)."""
    service = ReproService(
        host=host, port=port, workers=workers,
        queue_depth=queue_depth, cache_bytes=cache_bytes,
    )
    out(f"grid-as-a-service listening on {service.url} "
        f"({workers} worker(s), queue depth {queue_depth})")
    out(f"  POST {service.url}/runs              submit a simulation")
    out(f"  GET  {service.url}/runs/<id>         poll its state")
    out(f"  GET  {service.url}/runs/<id>/report/ops|troubleshooting|trace")
    out(f"  GET  {service.url}/healthz | /metrics")
    service.serve_forever()
    return 0
