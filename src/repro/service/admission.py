"""Fair-share admission control for the service's job queue.

The paper's grid admitted jobs from competing VOs under usage policies
(§5–6); one greedy submitter was never allowed to starve the rest (the
CMS Integration Grid Testbed lesson).  The service front end gets the
same discipline here, reusing the scheduling package's
:class:`~repro.scheduling.fairshare.FairShareLedger` — the exact
exponential-decay machinery Condor-G matchmaking runs in-sim — keyed by
*client* instead of VO:

* **Dispatch order** replaces FIFO: among queued runs, ``interactive``
  lane beats ``batch``, then the client with the highest fair-share
  priority factor (least decayed usage relative to its equal target)
  wins, with submission order as the tie-break.  A client that floods
  the queue accumulates usage and sinks behind light users.
* **Quotas** bound each client's *active* (queued + running) runs.  A
  breach is rejected at submit time with HTTP 429 + ``Retry-After`` —
  and only that client's submissions are affected: lanes and quotas are
  per-client, so one hog's rejections never block another client.
* **Accounting**: completed runs charge their wall-clock duration to
  the submitting client; usage decays with ``half_life`` (service
  scale: minutes, not the scheduler's 24 h), so an idle client regains
  priority on its own.

Every decision is published as ``service.admission.*`` metrics through
the app's scrape path, so the Prometheus exposition and the alert rules
see quota pressure the same way they see queue depth.
"""

from __future__ import annotations

import math
import threading
import time
from typing import Callable, Dict, List, Optional, Sequence

from ..errors import GridError
from ..monitoring.core import MetricStore
from ..scheduling.fairshare import FairShareLedger

#: Dispatch lanes, priority order.  ``interactive`` is the low-latency
#: lane (small what-if runs a human is waiting on); ``batch`` is the
#: default for everything else.
LANES = ("interactive", "batch")

#: Usage half-life for service-level fair share: five minutes, not the
#: scheduler's 24 h — service contention plays out in seconds.
DEFAULT_HALF_LIFE_S = 300.0


class QuotaExceededError(GridError):
    """A client is at its active-run quota; the submission was rejected.

    Carries ``retry_after`` (seconds, int >= 1) so the HTTP layer can
    answer 429 with an honest ``Retry-After`` header.
    """

    def __init__(self, message: str, retry_after: int = 1) -> None:
        super().__init__(message)
        self.retry_after = max(1, int(retry_after))


class AdmissionPolicy:
    """Quota gate + fair-share dispatch order over the pending queue.

    ``quota`` bounds one client's queued+running runs (0 = unlimited —
    the embedded/test default; ``repro serve`` turns it on).  The
    ledger's client set grows lazily: the first submission from a new
    client rebuilds the :class:`FairShareLedger` with the decayed usage
    carried over, so history survives the expansion.
    """

    def __init__(
        self,
        quota: int = 0,
        half_life: float = DEFAULT_HALF_LIFE_S,
        clock: Callable[[], float] = time.time,
        store: Optional[MetricStore] = None,
    ) -> None:
        if quota < 0:
            raise ValueError(f"quota must be >= 0 (0 = unlimited), got {quota}")
        if half_life <= 0:
            raise ValueError(f"half_life must be positive, got {half_life}")
        self.quota = quota
        self.half_life = float(half_life)
        self._clock = clock
        self._t0 = clock()
        self._lock = threading.Lock()
        #: sched.fairshare.* samples from the ledger land here (kept
        #: across ledger rebuilds so the history is continuous).
        self.store = store if store is not None else MetricStore(max_samples=4096)
        self._ledger: Optional[FairShareLedger] = None
        #: Active (queued + running) runs per client — the quota gauge.
        self._active: Dict[str, int] = {}
        #: Dispatch + rejection counters (the service.admission.* feed).
        self.quota_rejections = 0
        self.dispatched: Dict[str, int] = {lane: 0 for lane in LANES}
        #: EWMA of completed-run wall seconds (the Retry-After estimate).
        self._mean_run_s = 1.0
        self._completions = 0

    # -- time base ------------------------------------------------------------
    def _now(self) -> float:
        """Seconds since policy start (the ledger's decay clock)."""
        return self._clock() - self._t0

    # -- ledger management -----------------------------------------------------
    def _ensure_client(self, client: str) -> FairShareLedger:
        """The ledger, grown to include ``client`` (usage carried over)."""
        if self._ledger is not None and client in self._ledger.targets:
            return self._ledger
        now = self._now()
        usage: Dict[str, float] = {}
        if self._ledger is not None:
            usage = {
                vo: self._ledger.decayed_usage(vo, now)
                for vo in self._ledger.vos
            }
        members = sorted(set(usage) | {client})
        self._ledger = FairShareLedger(
            members, half_life=self.half_life, store=self.store,
        )
        for vo, consumed in usage.items():
            if consumed > 0.0:
                # charge() re-adds the decayed total at `now`, which is
                # exactly the carried-over state (decay-to-now of a
                # just-charged amount is the amount itself).
                self._ledger.charge(vo, consumed, now)
        return self._ledger

    # -- the quota gate (submit path) ------------------------------------------
    def admit(self, client: str, lane: str) -> None:
        """Gate one submission; raises :class:`QuotaExceededError` on a
        quota breach.  Call under the app's submit lock, *before* the
        record is created; on success the client's active count is up."""
        if lane not in LANES:
            raise ValueError(f"lane must be one of {LANES}, got {lane!r}")
        with self._lock:
            self._ensure_client(client)
            active = self._active.get(client, 0)
            if self.quota and active >= self.quota:
                self.quota_rejections += 1
                retry = max(1, math.ceil(
                    self._mean_run_s * (active - self.quota + 1)))
                raise QuotaExceededError(
                    f"client {client!r} is at its quota of {self.quota} "
                    f"active run(s); finish or wait for queued work",
                    retry_after=retry,
                )
            self._active[client] = active + 1

    def release(self, client: str) -> None:
        """One of ``client``'s active runs left the system (finished,
        failed, interrupted, or was never enqueued after admit)."""
        with self._lock:
            active = self._active.get(client, 0)
            if active <= 1:
                self._active.pop(client, None)
            else:
                self._active[client] = active - 1

    # -- the dispatch order (queue path) ----------------------------------------
    def select(self, pending: Sequence) -> Optional[object]:
        """The next record to dispatch out of ``pending`` (which is in
        submission order).  Lane first, then fair-share priority, then
        submission order — so with one client (or a cold ledger) this
        degrades to exact FIFO."""
        if not pending:
            return None
        with self._lock:
            now = self._now()
            factors: Dict[str, float] = {}
            best = None
            best_key = None
            for record in pending:
                client = getattr(record, "client", "anonymous")
                if client not in factors:
                    ledger = self._ensure_client(client)
                    factors[client] = ledger.priority_factor(client, now)
                lane = getattr(record, "lane", "batch")
                lane_rank = 0 if lane == "interactive" else 1
                key = (lane_rank, -factors[client], record.run_id)
                if best_key is None or key < best_key:
                    best, best_key = record, key
            if best is not None:
                lane = getattr(best, "lane", "batch")
                self.dispatched[lane if lane in LANES else "batch"] += 1
            return best

    # -- accounting (completion path) -------------------------------------------
    def charge(self, client: str, wall_seconds: float) -> None:
        """Charge a finished run's wall-clock cost to its client."""
        with self._lock:
            ledger = self._ensure_client(client)
            cost = max(0.0, float(wall_seconds))
            ledger.charge(client, cost, self._now())
            self._completions += 1
            # EWMA with 0.3 step: recent runs dominate the estimate.
            self._mean_run_s += 0.3 * (cost - self._mean_run_s)

    # -- observability -----------------------------------------------------------
    def priority_factor(self, client: str) -> float:
        """``client``'s current fair-share factor (1.0 when unknown)."""
        with self._lock:
            if self._ledger is None or client not in self._ledger.targets:
                return 1.0
            return self._ledger.priority_factor(client, self._now())

    def report(self) -> List:
        """Per-client :class:`~repro.scheduling.FairShareStatus` rows."""
        with self._lock:
            if self._ledger is None:
                return []
            return self._ledger.report(self._now())

    def stats(self, pending: Sequence = ()) -> Dict[str, float]:
        """The ``service.admission.*`` gauge/counter snapshot."""
        lanes = {lane: 0 for lane in LANES}
        for record in pending:
            lane = getattr(record, "lane", "batch")
            lanes[lane if lane in LANES else "batch"] += 1
        with self._lock:
            return {
                "quota": float(self.quota),
                "quota_rejections": float(self.quota_rejections),
                "clients": float(
                    len(self._ledger.vos) if self._ledger is not None else 0),
                "active_runs": float(sum(self._active.values())),
                "queued_interactive": float(lanes["interactive"]),
                "queued_batch": float(lanes["batch"]),
                "dispatched_interactive": float(
                    self.dispatched["interactive"]),
                "dispatched_batch": float(self.dispatched["batch"]),
                "mean_run_s": round(self._mean_run_s, 6),
            }
