"""Report payload builders: the byte-identity contract with the facade.

A finished run's servable result is built *here*, from the same frozen
:class:`~repro.core.results.ReportRecord` types the ``repro`` facade
returns — so JSON served over HTTP is byte-identical to what a local
same-seed run produces through :func:`collect_reports` + ``paginate``.
The integration suite pins exactly that equality.

Three report kinds, mirroring the §8 query surfaces:

* ``ops`` — the per-(site, service) availability table
  (:class:`~repro.services.AvailabilityRow` rows, the iGOC's view);
* ``troubleshooting`` — per-site GRAM/GridFTP/storage accounting,
  error-type counts, and worst-site failure rates;
* ``trace`` — the slowest-traced-jobs ranking
  (:class:`~repro.ops.results.SlowJobRow`; empty unless the run had
  ``tracing`` on).

Rows are flattened to plain sorted-key-JSON-able dicts (tagged with
their record type) so they cross the worker process boundary as data
and page without re-serializing the whole tree.
"""

from __future__ import annotations

from typing import Dict, List

from ..core.results import ReportRecord, _jsonable

#: The report kinds `GET /runs/{id}/report/{kind}` serves.
REPORT_KINDS = ("ops", "troubleshooting", "trace")


def _plain(value: object) -> object:
    """Recursively coerce a value to clean JSON-able plain data."""
    if isinstance(value, dict):
        return {str(k): _plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    return _jsonable(value)


def _row(record: ReportRecord) -> Dict[str, object]:
    """One record as a type-tagged plain dict."""
    out = {"record": type(record).__name__}
    out.update(_plain(record.as_dict()))
    return out


def collect_reports(grid) -> Dict[str, List[Dict[str, object]]]:
    """Every servable report for a finished :class:`~repro.Grid3` run.

    Returns ``{kind: [row, ...]}`` for each of :data:`REPORT_KINDS`;
    row order is deterministic (same-seed runs produce byte-identical
    report JSON).
    """
    ops_api = grid.troubleshooting()

    ops_rows = [_row(r) for r in grid.availability_report()]

    ts_rows: List[Dict[str, object]] = []
    for site_name in sorted(grid.sites):
        for query in (ops_api.gram_accounting, ops_api.gridftp_accounting,
                      ops_api.storage_accounting):
            record = query(site_name)
            if record is not None:
                ts_rows.append(_row(record))
    for error, count in sorted(ops_api.error_summary().items()):
        ts_rows.append({"record": "ErrorCount",
                        "error": str(error), "count": count})
    for site_name, failure_rate in ops_api.worst_sites():
        ts_rows.append({"record": "SiteFailureRate", "site": site_name,
                        "failure_rate": failure_rate})

    trace_rows: List[Dict[str, object]] = []
    if grid.tracer.enabled:
        trace_rows = [
            _row(r) for r in ops_api.slowest_jobs(len(grid.tracer.store))
        ]

    return {"ops": ops_rows, "troubleshooting": ts_rows, "trace": trace_rows}


def summarize_run(grid) -> Dict[str, object]:
    """The headline numbers `GET /runs/{id}` reports once a run is done."""
    from ..sim import bytes_to_tb

    db = grid.acdc_db
    return {
        "jobs": len(db),
        "success_rate": db.success_rate(),
        "cpu_days": db.total_cpu_days(),
        "data_tb": bytes_to_tb(grid.ledger.total_bytes()),
        "sim_seconds": grid.engine.now,
        "sites": len(grid.sites),
        "traces": len(grid.tracer.store) if grid.tracer.enabled else 0,
    }
