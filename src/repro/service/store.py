"""The run registry: every submission's state machine + results.

One :class:`RunRecord` per *distinct* simulation (dedup means an
identical resubmission returns the existing record's id rather than
minting a new one).  The store owns the ``queued -> running -> done |
failed | interrupted`` transitions and the digest index the dedup path
looks up; the byte-budgeted decision of *which* finished payloads stay
resident belongs to :class:`~repro.service.cache.ResultCache` — when
the cache evicts a run, the store drops its payload and unlinks the
digest so a future identical submission re-runs.

Durability is pluggable: hand the store a
:class:`~repro.service.persistence.RunJournal` and every transition is
appended to the sqlite journal *inside* the mutating critical section,
so the on-disk order always matches the in-memory order.  A store
constructed over a non-empty journal replays it first — finished runs
come back with their exact payload bytes, and runs that were still
``queued``/``running`` when the process died are re-marked
``interrupted`` (a terminal, resubmittable state: the digest index
skips them, so submitting the same config re-runs instead of joining a
ghost).

All methods are thread-safe: HTTP handler threads and queue dispatcher
threads touch the same records.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Dict, List, Optional

from ..core.grid3 import Grid3Config
from .persistence import RunJournal
from .progress import ProgressLog
from .schemas import RunView

#: Legal states, in lifecycle order.  ``interrupted`` is terminal: the
#: service stopped (gracefully or not) before the run completed; the
#: config is intact and a resubmission re-runs it.
STATES = ("queued", "running", "done", "failed", "interrupted")

#: The error string an interrupted record carries (also the API hint).
INTERRUPTED_ERROR = (
    "run interrupted by service shutdown before completion; "
    "resubmit the same config to re-run it"
)


class RunRecord:
    """One submitted simulation: config, state, timestamps, results."""

    __slots__ = (
        "run_id", "digest", "config", "client", "lane", "state",
        "submitted_at", "started_at", "finished_at", "error", "payload",
        "payload_bytes", "progress",
    )

    def __init__(self, run_id: int, digest: str, config: Grid3Config,
                 submitted_at: float, client: str = "anonymous",
                 lane: str = "batch") -> None:
        self.run_id = run_id
        self.digest = digest
        self.config = config
        #: Who submitted (the fair-share/quota accounting key).
        self.client = client
        #: Admission lane: ``interactive`` dispatches before ``batch``.
        self.lane = lane
        self.state = "queued"
        self.submitted_at = submitted_at
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.error: Optional[str] = None
        #: ``{"reports": {...}, "summary": {...}}`` once done (and until
        #: the result cache evicts it).
        self.payload: Optional[Dict[str, object]] = None
        self.payload_bytes = 0
        #: Live progress events streamed from the worker; closed when
        #: the run reaches a terminal state (SSE streams end then).
        self.progress = ProgressLog()

    def view(self, now: float) -> RunView:
        """The wire-shape snapshot of this record."""
        end = self.finished_at if self.finished_at is not None else now
        summary = None
        if self.payload is not None:
            summary = self.payload.get("summary")  # type: ignore[assignment]
        return RunView(
            run_id=self.run_id,
            state=self.state,
            digest=self.digest,
            client=self.client,
            lane=self.lane,
            elapsed_s=round(max(0.0, end - self.submitted_at), 6),
            submitted_at=self.submitted_at,
            started_at=self.started_at,
            finished_at=self.finished_at,
            error=self.error,
            summary=summary,
        )


class RunStore:
    """Registry of every run, with the digest index dedup consults.

    ``journal=None`` keeps the pre-durability in-memory behaviour
    byte-for-byte; with a journal every mutation is persisted and the
    constructor replays whatever the journal already holds.
    """

    def __init__(self, clock=time.time,
                 journal: Optional[RunJournal] = None) -> None:
        self._clock = clock
        self._lock = threading.RLock()
        self._runs: Dict[int, RunRecord] = {}
        self._by_digest: Dict[str, int] = {}
        self._seq = 0
        self._journal = journal
        #: Runs recovered as ``interrupted`` at the last replay (the
        #: restart-visibility number ``/healthz`` and metrics report).
        self.recovered_interrupted = 0
        if journal is not None:
            self._replay(journal)

    # -- journal replay -------------------------------------------------------
    def _replay(self, journal: RunJournal) -> None:
        """Fold the journal back into records (boot path, pre-traffic)."""
        with self._lock:
            for entry in journal.replay():
                record = self._runs.get(entry.run_id)
                if entry.kind == "created":
                    config = journal.decode_config(entry.blob)
                    record = RunRecord(
                        entry.run_id,
                        str(entry.data["digest"]),
                        config,
                        entry.at,
                        client=str(entry.data.get("client", "anonymous")),
                        lane=str(entry.data.get("lane", "batch")),
                    )
                    self._runs[record.run_id] = record
                    self._by_digest[record.digest] = record.run_id
                    self._seq = max(self._seq, record.run_id)
                elif record is None:
                    continue  # a torn journal head; skip orphan rows
                elif entry.kind == "running":
                    record.state = "running"
                    record.started_at = entry.at
                elif entry.kind == "done":
                    record.state = "done"
                    record.finished_at = entry.at
                    record.payload = json.loads(entry.blob.decode("utf-8"))
                    record.payload_bytes = int(
                        entry.data.get("payload_bytes", len(entry.blob)))
                elif entry.kind == "failed":
                    record.state = "failed"
                    record.finished_at = entry.at
                    record.error = str(entry.data.get("error", ""))
                elif entry.kind == "interrupted":
                    record.state = "interrupted"
                    record.finished_at = entry.at
                    record.error = INTERRUPTED_ERROR
                    if self._by_digest.get(record.digest) == record.run_id:
                        del self._by_digest[record.digest]
                elif entry.kind == "payload_dropped":
                    record.payload = None
                    record.payload_bytes = 0
                    if self._by_digest.get(record.digest) == record.run_id:
                        del self._by_digest[record.digest]
            # Crash recovery: anything non-terminal got no terminal row
            # before the old process died.  Append the row it was owed.
            now = self._clock()
            for run_id in sorted(self._runs):
                record = self._runs[run_id]
                if record.state in ("queued", "running"):
                    record.state = "interrupted"
                    record.finished_at = now
                    record.error = INTERRUPTED_ERROR
                    if self._by_digest.get(record.digest) == run_id:
                        del self._by_digest[record.digest]
                    self.recovered_interrupted += 1
                    journal.append(run_id, "interrupted", now)
            # No replayed run has a live worker: close every log so SSE
            # streams against recovered runs terminate immediately.
            for record in self._runs.values():
                record.progress.close()

    # -- creation & lookup --------------------------------------------------
    def create(self, digest: str, config: Grid3Config,
               client: str = "anonymous", lane: str = "batch") -> RunRecord:
        """Mint a queued record and index it under ``digest``."""
        with self._lock:
            self._seq += 1
            record = RunRecord(self._seq, digest, config, self._clock(),
                               client=client, lane=lane)
            self._runs[record.run_id] = record
            self._by_digest[digest] = record.run_id
            if self._journal is not None:
                self._journal.append(
                    record.run_id, "created", record.submitted_at,
                    {"digest": digest, "client": client, "lane": lane},
                    RunJournal.encode_config(config),
                )
            return record

    def get(self, run_id: int) -> Optional[RunRecord]:
        with self._lock:
            return self._runs.get(run_id)

    def lookup(self, digest: str) -> Optional[RunRecord]:
        """The run currently indexed under ``digest`` (dedup target)."""
        with self._lock:
            run_id = self._by_digest.get(digest)
            return self._runs.get(run_id) if run_id is not None else None

    def runs(self) -> List[RunRecord]:
        """Every record, submission order."""
        with self._lock:
            return [self._runs[k] for k in sorted(self._runs)]

    # -- state machine ------------------------------------------------------
    def mark_running(self, record: RunRecord) -> None:
        with self._lock:
            record.state = "running"
            record.started_at = self._clock()
            if self._journal is not None:
                self._journal.append(record.run_id, "running",
                                     record.started_at)

    def mark_done(self, record: RunRecord, payload: Dict[str, object],
                  payload_bytes: int, raw: Optional[bytes] = None) -> None:
        """Finish a run.  ``raw`` is the payload's canonical sorted-key
        JSON encoding when the caller already has it (the journal stores
        exactly those bytes, so replay serves byte-identical reports)."""
        with self._lock:
            record.state = "done"
            record.finished_at = self._clock()
            record.payload = payload
            record.payload_bytes = payload_bytes
            if self._journal is not None:
                if raw is None:
                    raw = json.dumps(
                        payload, sort_keys=True, default=repr,
                    ).encode("utf-8")
                self._journal.append(
                    record.run_id, "done", record.finished_at,
                    {"payload_bytes": payload_bytes}, raw,
                )
        # Outside the lock: closing wakes every waiting SSE stream.
        record.progress.close()

    def mark_failed(self, record: RunRecord, error: str) -> None:
        with self._lock:
            record.state = "failed"
            record.finished_at = self._clock()
            record.error = error
            # A failed digest must not satisfy future dedup lookups as
            # if it had a result; leave the index pointing here so the
            # app can see the failure and choose to re-run.
            if self._journal is not None:
                self._journal.append(record.run_id, "failed",
                                     record.finished_at, {"error": error})
        record.progress.close()

    def mark_interrupted(self, record: RunRecord) -> None:
        """Terminal shutdown state for a run that never got to finish:
        the graceful-drain leftover path (queued work persisted, not
        dropped) and the crash-replay path both land here."""
        with self._lock:
            if record.state in ("done", "failed", "interrupted"):
                return  # already terminal; nothing to interrupt
            record.state = "interrupted"
            record.finished_at = self._clock()
            record.error = INTERRUPTED_ERROR
            # Interrupted digests never satisfy dedup: resubmission of
            # the same config must re-run, not join a dead record.
            if self._by_digest.get(record.digest) == record.run_id:
                del self._by_digest[record.digest]
            if self._journal is not None:
                self._journal.append(record.run_id, "interrupted",
                                     record.finished_at)
        record.progress.close()

    # -- cache eviction hook -------------------------------------------------
    def drop_payload(self, run_id: int) -> None:
        """Forget a finished run's result tree (cache eviction): the
        record and its metadata stay queryable, but an identical future
        submission re-runs instead of hitting the cache."""
        with self._lock:
            record = self._runs.get(run_id)
            if record is None:
                return
            record.payload = None
            record.payload_bytes = 0
            if self._by_digest.get(record.digest) == run_id:
                del self._by_digest[record.digest]
            if self._journal is not None:
                self._journal.append(run_id, "payload_dropped", self._clock())

    def unlink(self, digest: str) -> None:
        """Remove a digest from the dedup index (e.g. before re-running
        a previously failed config)."""
        with self._lock:
            self._by_digest.pop(digest, None)

    # -- stats ----------------------------------------------------------------
    def counts(self) -> Dict[str, int]:
        """Run counts by state (every state present, zero-filled)."""
        with self._lock:
            out = {state: 0 for state in STATES}
            for record in self._runs.values():
                out[record.state] += 1
            out["total"] = len(self._runs)
            return out

    def now(self) -> float:
        return self._clock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._runs)
