"""The completed-run registry: every submission's state machine + results.

One :class:`RunRecord` per *distinct* simulation (dedup means an
identical resubmission returns the existing record's id rather than
minting a new one).  The store owns the ``queued -> running -> done |
failed`` transitions and the digest index the dedup path looks up; the
byte-budgeted decision of *which* finished payloads stay resident
belongs to :class:`~repro.service.cache.ResultCache` — when the cache
evicts a run, the store drops its payload and unlinks the digest so a
future identical submission re-runs.

All methods are thread-safe: HTTP handler threads and queue dispatcher
threads touch the same records.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional

from ..core.grid3 import Grid3Config
from .progress import ProgressLog
from .schemas import RunView

#: Legal states, in lifecycle order.
STATES = ("queued", "running", "done", "failed")


class RunRecord:
    """One submitted simulation: config, state, timestamps, results."""

    __slots__ = (
        "run_id", "digest", "config", "state", "submitted_at", "started_at",
        "finished_at", "error", "payload", "payload_bytes", "progress",
    )

    def __init__(self, run_id: int, digest: str, config: Grid3Config,
                 submitted_at: float) -> None:
        self.run_id = run_id
        self.digest = digest
        self.config = config
        self.state = "queued"
        self.submitted_at = submitted_at
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.error: Optional[str] = None
        #: ``{"reports": {...}, "summary": {...}}`` once done (and until
        #: the result cache evicts it).
        self.payload: Optional[Dict[str, object]] = None
        self.payload_bytes = 0
        #: Live progress events streamed from the worker; closed when
        #: the run reaches a terminal state (SSE streams end then).
        self.progress = ProgressLog()

    def view(self, now: float) -> RunView:
        """The wire-shape snapshot of this record."""
        end = self.finished_at if self.finished_at is not None else now
        summary = None
        if self.payload is not None:
            summary = self.payload.get("summary")  # type: ignore[assignment]
        return RunView(
            run_id=self.run_id,
            state=self.state,
            digest=self.digest,
            elapsed_s=round(max(0.0, end - self.submitted_at), 6),
            submitted_at=self.submitted_at,
            started_at=self.started_at,
            finished_at=self.finished_at,
            error=self.error,
            summary=summary,
        )


class RunStore:
    """Registry of every run, with the digest index dedup consults."""

    def __init__(self, clock=time.time) -> None:
        self._clock = clock
        self._lock = threading.RLock()
        self._runs: Dict[int, RunRecord] = {}
        self._by_digest: Dict[str, int] = {}
        self._seq = 0

    # -- creation & lookup --------------------------------------------------
    def create(self, digest: str, config: Grid3Config) -> RunRecord:
        """Mint a queued record and index it under ``digest``."""
        with self._lock:
            self._seq += 1
            record = RunRecord(self._seq, digest, config, self._clock())
            self._runs[record.run_id] = record
            self._by_digest[digest] = record.run_id
            return record

    def get(self, run_id: int) -> Optional[RunRecord]:
        with self._lock:
            return self._runs.get(run_id)

    def lookup(self, digest: str) -> Optional[RunRecord]:
        """The run currently indexed under ``digest`` (dedup target)."""
        with self._lock:
            run_id = self._by_digest.get(digest)
            return self._runs.get(run_id) if run_id is not None else None

    def runs(self) -> List[RunRecord]:
        """Every record, submission order."""
        with self._lock:
            return [self._runs[k] for k in sorted(self._runs)]

    # -- state machine ------------------------------------------------------
    def mark_running(self, record: RunRecord) -> None:
        with self._lock:
            record.state = "running"
            record.started_at = self._clock()

    def mark_done(self, record: RunRecord, payload: Dict[str, object],
                  payload_bytes: int) -> None:
        with self._lock:
            record.state = "done"
            record.finished_at = self._clock()
            record.payload = payload
            record.payload_bytes = payload_bytes
        # Outside the lock: closing wakes every waiting SSE stream.
        record.progress.close()

    def mark_failed(self, record: RunRecord, error: str) -> None:
        with self._lock:
            record.state = "failed"
            record.finished_at = self._clock()
            record.error = error
            # A failed digest must not satisfy future dedup lookups as
            # if it had a result; leave the index pointing here so the
            # app can see the failure and choose to re-run.
        record.progress.close()

    # -- cache eviction hook -------------------------------------------------
    def drop_payload(self, run_id: int) -> None:
        """Forget a finished run's result tree (cache eviction): the
        record and its metadata stay queryable, but an identical future
        submission re-runs instead of hitting the cache."""
        with self._lock:
            record = self._runs.get(run_id)
            if record is None:
                return
            record.payload = None
            record.payload_bytes = 0
            if self._by_digest.get(record.digest) == run_id:
                del self._by_digest[record.digest]

    def unlink(self, digest: str) -> None:
        """Remove a digest from the dedup index (e.g. before re-running
        a previously failed config)."""
        with self._lock:
            self._by_digest.pop(digest, None)

    # -- stats ----------------------------------------------------------------
    def counts(self) -> Dict[str, int]:
        """Run counts by state (every state present, zero-filled)."""
        with self._lock:
            out = {state: 0 for state in STATES}
            for record in self._runs.values():
                out[record.state] += 1
            out["total"] = len(self._runs)
            return out

    def now(self) -> float:
        return self._clock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._runs)
