"""Grid-as-a-service: the HTTP front end over the Grid3 simulator.

Grid2003's defining property was that it ran as a persistent, centrally
operated *service* consumed by applications (§3, §6) — not as scripts
people re-ran by hand.  This package is that step for the reproduction:
a stdlib-only HTTP API that accepts simulation requests, runs them on a
bounded job queue feeding an out-of-process worker pool, caches results
by the :meth:`~repro.Grid3Config.canonical_digest` of the requested
``(config, seed)`` — so a million identical what-if queries cost one
run — and serves the ops/troubleshooting/trace reports as paginated
sorted-key JSON built from the frozen :class:`~repro.ReportRecord`
types.

Layering (each module one concern):

* :mod:`~repro.service.schemas`     — request parsing/validation (400s)
  and the uniform error envelope;
* :mod:`~repro.service.store`       — the run registry and state machine;
* :mod:`~repro.service.persistence` — the durable journal the registry
  replays on restart (``--state-dir``);
* :mod:`~repro.service.admission`   — fair-share dispatch order, lanes,
  and per-client quotas;
* :mod:`~repro.service.cache`       — byte-budgeted LRU result cache;
* :mod:`~repro.service.queue`       — bounded queue + process worker pool;
* :mod:`~repro.service.reports`     — report payload builders (the byte-
  identity contract with the ``repro`` facade lives here);
* :mod:`~repro.service.app`         — versioned (``/v1``) routing +
  the HTTP server.

Typical use::

    from repro.service import ReproService

    svc = ReproService(port=8080, workers=4, state_dir="./state")
    svc.start()
    # POST /v1/runs, GET /v1/runs/{id}, GET /v1/runs/{id}/report/ops, ...
    svc.close(drain=True)

or from a shell: ``python -m repro serve --port 8080 --workers 4``;
the typed in-process client is :class:`repro.client.GridClient`.
"""

from .admission import LANES, AdmissionPolicy, QuotaExceededError
from .app import API_PREFIX, ReproService, ServiceApp, serve, strip_version
from .cache import ResultCache
from .persistence import JournalEntry, RunJournal
from .progress import (
    ProgressLog,
    ProgressSender,
    iter_sse_events,
    parse_sse_stream,
    sse_format,
)
from .queue import JobQueue, QueueFullError, execute_run
from .reports import REPORT_KINDS, collect_reports, summarize_run
from .schemas import (
    ERROR_CODES,
    ApiError,
    HealthView,
    RunEvents,
    RunRequest,
    RunSubmitted,
    RunView,
    SchemaError,
    parse_pagination,
    parse_run_request,
    parse_submission,
)
from .store import RunRecord, RunStore

__all__ = [
    "API_PREFIX",
    "AdmissionPolicy",
    "ApiError",
    "ERROR_CODES",
    "HealthView",
    "JobQueue",
    "JournalEntry",
    "LANES",
    "ProgressLog",
    "ProgressSender",
    "QueueFullError",
    "QuotaExceededError",
    "REPORT_KINDS",
    "ReproService",
    "ResultCache",
    "RunEvents",
    "RunJournal",
    "RunRecord",
    "RunRequest",
    "RunStore",
    "RunSubmitted",
    "RunView",
    "SchemaError",
    "ServiceApp",
    "collect_reports",
    "execute_run",
    "iter_sse_events",
    "parse_pagination",
    "parse_run_request",
    "parse_sse_stream",
    "parse_submission",
    "serve",
    "sse_format",
    "strip_version",
    "summarize_run",
]
