"""Grid-as-a-service: the HTTP front end over the Grid3 simulator.

Grid2003's defining property was that it ran as a persistent, centrally
operated *service* consumed by applications (§3, §6) — not as scripts
people re-ran by hand.  This package is that step for the reproduction:
a stdlib-only HTTP API that accepts simulation requests, runs them on a
bounded job queue feeding an out-of-process worker pool, caches results
by the :meth:`~repro.Grid3Config.canonical_digest` of the requested
``(config, seed)`` — so a million identical what-if queries cost one
run — and serves the ops/troubleshooting/trace reports as paginated
sorted-key JSON built from the frozen :class:`~repro.ReportRecord`
types.

Layering (each module one concern):

* :mod:`~repro.service.schemas` — request parsing/validation (400s);
* :mod:`~repro.service.store`   — the run registry and state machine;
* :mod:`~repro.service.cache`   — byte-budgeted LRU result cache;
* :mod:`~repro.service.queue`   — bounded queue + process worker pool;
* :mod:`~repro.service.reports` — report payload builders (the byte-
  identity contract with the ``repro`` facade lives here);
* :mod:`~repro.service.app`     — routing/dispatch + the HTTP server.

Typical use::

    from repro.service import ReproService

    svc = ReproService(port=8080, workers=4)
    svc.start()
    # POST /runs, GET /runs/{id}, GET /runs/{id}/report/ops, ...
    svc.close(drain=True)

or from a shell: ``python -m repro serve --port 8080 --workers 4``.
"""

from .app import ReproService, ServiceApp, serve
from .cache import ResultCache
from .progress import (
    ProgressLog,
    ProgressSender,
    iter_sse_events,
    parse_sse_stream,
    sse_format,
)
from .queue import JobQueue, QueueFullError, execute_run
from .reports import REPORT_KINDS, collect_reports, summarize_run
from .schemas import (
    ApiError,
    HealthView,
    RunEvents,
    RunSubmitted,
    RunView,
    SchemaError,
    parse_pagination,
    parse_run_request,
)
from .store import RunRecord, RunStore

__all__ = [
    "ApiError",
    "HealthView",
    "JobQueue",
    "ProgressLog",
    "ProgressSender",
    "QueueFullError",
    "REPORT_KINDS",
    "ReproService",
    "ResultCache",
    "RunEvents",
    "RunRecord",
    "RunStore",
    "RunSubmitted",
    "RunView",
    "SchemaError",
    "ServiceApp",
    "collect_reports",
    "execute_run",
    "iter_sse_events",
    "parse_pagination",
    "parse_run_request",
    "parse_sse_stream",
    "serve",
    "sse_format",
    "summarize_run",
]
