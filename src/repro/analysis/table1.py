"""Table 1: per-class Grid3 computational job statistics.

"Grid3 computational job statistics based on completed production jobs
from the period of October 23, 2003 to April 23, 2004 (source ACDC
University at Buffalo)."

The table's seven user classes are the six VOs plus the Exerciser (which
ran under the iVDGL VO but is reported separately); classification here
matches: exerciser-named jobs -> "Exerciser", everything else by VO.
Every column of the paper's table is computed from the ACDC records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..monitoring.acdc import ACDCDatabase, JobRecord
from ..sim.calendar import SimCalendar
from ..sim.units import CPU_DAY, HOUR
from .report import render_table

#: The paper's class labels, in Table 1 column order.
TABLE1_CLASSES = ["BTEV", "iVDGL", "LIGO", "SDSS", "USATLAS", "USCMS", "Exerciser"]

_VO_TO_CLASS = {
    "btev": "BTEV",
    "ivdgl": "iVDGL",
    "ligo": "LIGO",
    "sdss": "SDSS",
    "usatlas": "USATLAS",
    "uscms": "USCMS",
}

#: The paper's Table 1 values, for shape comparison in benches/tests.
PAPER_TABLE1 = {
    "BTEV":      {"users": 1,  "sites": 8,  "jobs": 2598,   "avg_runtime_hr": 1.77,  "max_runtime_hr": 118.27,  "total_cpu_days": 191.88,   "peak_month": "11-2003"},
    "iVDGL":     {"users": 24, "sites": 19, "jobs": 58145,  "avg_runtime_hr": 1.22,  "max_runtime_hr": 291.74,  "total_cpu_days": 2945.79,  "peak_month": "11-2003"},
    "LIGO":      {"users": 7,  "sites": 1,  "jobs": 3,      "avg_runtime_hr": 0.01,  "max_runtime_hr": 0.02,    "total_cpu_days": 0.01,     "peak_month": "12-2003"},
    "SDSS":      {"users": 9,  "sites": 13, "jobs": 5410,   "avg_runtime_hr": 1.46,  "max_runtime_hr": 152.90,  "total_cpu_days": 329.44,   "peak_month": "02-2004"},
    "USATLAS":   {"users": 25, "sites": 18, "jobs": 7455,   "avg_runtime_hr": 8.81,  "max_runtime_hr": 292.40,  "total_cpu_days": 2736.05,  "peak_month": "11-2003"},
    "USCMS":     {"users": 26, "sites": 18, "jobs": 19354,  "avg_runtime_hr": 41.85, "max_runtime_hr": 1238.93, "total_cpu_days": 33750.14, "peak_month": "11-2003"},
    "Exerciser": {"users": 3,  "sites": 14, "jobs": 198272, "avg_runtime_hr": 0.13,  "max_runtime_hr": 36.45,   "total_cpu_days": 1034.28,  "peak_month": "12-2003"},
}

#: The paper's total record count over the window.
PAPER_TOTAL_RECORDS = 291_052


def classify(record: JobRecord) -> str:
    """Map one record to its Table 1 user class."""
    if record.name.startswith("exerciser"):
        return "Exerciser"
    return _VO_TO_CLASS.get(record.vo, record.vo.upper())


@dataclass(frozen=True)
class Table1Row:
    """One column of the paper's Table 1 (we store it as a row)."""

    cls: str
    users: int
    sites_used: int
    jobs: int
    avg_runtime_hr: float
    max_runtime_hr: float
    total_cpu_days: float
    peak_month: str
    peak_month_jobs: int
    peak_resources: int
    max_single_resource_jobs: int
    max_single_resource_pct: float
    peak_month_cpu_days: float


def compute_table1(
    database: ACDCDatabase,
    calendar: Optional[SimCalendar] = None,
    since: float = -float("inf"),
    until: float = float("inf"),
) -> Dict[str, Table1Row]:
    """Compute every Table 1 statistic per user class."""
    calendar = calendar or SimCalendar()
    by_class: Dict[str, List[JobRecord]] = {}
    for record in database.records(since=since, until=until):
        by_class.setdefault(classify(record), []).append(record)

    rows: Dict[str, Table1Row] = {}
    for cls, records in by_class.items():
        runtimes = [r.runtime for r in records]
        months: Dict[str, List[JobRecord]] = {}
        for r in records:
            months.setdefault(calendar.month_label(r.finished_at), []).append(r)
        peak_month, peak_records = max(
            months.items(), key=lambda kv: len(kv[1])
        )
        peak_by_site: Dict[str, int] = {}
        for r in peak_records:
            peak_by_site[r.site] = peak_by_site.get(r.site, 0) + 1
        max_site_jobs = max(peak_by_site.values())
        rows[cls] = Table1Row(
            cls=cls,
            users=len({r.user for r in records}),
            sites_used=len({r.site for r in records}),
            jobs=len(records),
            avg_runtime_hr=(sum(runtimes) / len(runtimes)) / HOUR,
            max_runtime_hr=max(runtimes) / HOUR,
            total_cpu_days=sum(runtimes) / CPU_DAY,
            peak_month=peak_month,
            peak_month_jobs=len(peak_records),
            peak_resources=len(peak_by_site),
            max_single_resource_jobs=max_site_jobs,
            max_single_resource_pct=100.0 * max_site_jobs / len(peak_records),
            peak_month_cpu_days=sum(r.runtime for r in peak_records) / CPU_DAY,
        )
    return rows


def render_table1(rows: Dict[str, Table1Row]) -> str:
    """Table 1 as text, classes in the paper's order."""
    headers = [
        "class", "users", "sites", "jobs", "avg_hr", "max_hr",
        "cpu_days", "peak_jobs/mo", "peak_sites", "max_1res[%]",
        "peak_month", "peak_cpu_days",
    ]
    table_rows = []
    for cls in TABLE1_CLASSES:
        row = rows.get(cls)
        if row is None:
            continue
        table_rows.append([
            row.cls, row.users, row.sites_used, row.jobs,
            row.avg_runtime_hr, row.max_runtime_hr, row.total_cpu_days,
            row.peak_month_jobs, row.peak_resources,
            f"{row.max_single_resource_jobs} [{row.max_single_resource_pct:.1f}]",
            row.peak_month, row.peak_month_cpu_days,
        ])
    return render_table(headers, table_rows)
