"""Job-record export/import: the ACDC database as portable CSV.

The real ACDC database was "web-visible ... available for aggregated
queries and browsing" (§5.2); downstream users scraped it for their own
analyses (as the paper's authors did for Table 1).  This module provides
the equivalent: a stable CSV schema for :class:`JobRecord` rows, round-
trippable so simulated traces can be archived, diffed between runs, and
analysed outside the simulator.
"""

from __future__ import annotations

import csv
import io
from typing import Iterable, List, Optional, TextIO, Union

from ..monitoring.acdc import ACDCDatabase, JobRecord

#: The stable column order of the export schema.
CSV_FIELDS = [
    "job_id", "name", "vo", "user", "site",
    "submitted_at", "started_at", "finished_at",
    "runtime", "queue_time", "succeeded",
    "failure_category", "failure_type", "bytes_in", "bytes_out",
]


def record_to_row(record: JobRecord) -> List[str]:
    """One record as its CSV row (strings, in CSV_FIELDS order)."""
    return [
        str(record.job_id), record.name, record.vo, record.user, record.site,
        repr(record.submitted_at), repr(record.started_at),
        repr(record.finished_at), repr(record.runtime),
        repr(record.queue_time), "1" if record.succeeded else "0",
        record.failure_category, record.failure_type,
        repr(record.bytes_in), repr(record.bytes_out),
    ]


def row_to_record(row: List[str]) -> JobRecord:
    """Inverse of :func:`record_to_row`."""
    if len(row) != len(CSV_FIELDS):
        raise ValueError(
            f"expected {len(CSV_FIELDS)} columns, got {len(row)}"
        )
    return JobRecord(
        job_id=int(row[0]), name=row[1], vo=row[2], user=row[3], site=row[4],
        submitted_at=float(row[5]), started_at=float(row[6]),
        finished_at=float(row[7]), runtime=float(row[8]),
        queue_time=float(row[9]), succeeded=row[10] == "1",
        failure_category=row[11], failure_type=row[12],
        bytes_in=float(row[13]), bytes_out=float(row[14]),
    )


def export_records(
    records: Iterable[JobRecord],
    destination: Optional[TextIO] = None,
) -> str:
    """Write records as CSV; returns the text (also written to
    ``destination`` when given)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(CSV_FIELDS)
    for record in records:
        writer.writerow(record_to_row(record))
    text = buffer.getvalue()
    if destination is not None:
        destination.write(text)
    return text


def export_database(db: ACDCDatabase, destination: Optional[TextIO] = None) -> str:
    """Export a whole ACDC database."""
    return export_records(db.records(), destination)


def import_records(source: Union[str, TextIO]) -> ACDCDatabase:
    """Rebuild an ACDC database from exported CSV text or a file."""
    if isinstance(source, str):
        source = io.StringIO(source)
    reader = csv.reader(source)
    header = next(reader, None)
    if header != CSV_FIELDS:
        raise ValueError(f"unrecognised header {header!r}")
    db = ACDCDatabase()
    for row in reader:
        if row:
            db.add(row_to_record(row))
    return db
