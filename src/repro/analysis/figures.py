"""Figure regeneration: the paper's Figures 2-6 as data + text.

Each ``figure_N`` function computes the figure's underlying data from
the monitoring stack (via MDViewer) and returns ``(data, rendered
text)``.  Benches print the text and EXPERIMENTS.md records the
paper-vs-measured comparison.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..monitoring.mdviewer import MDViewer
from ..sim.units import DAY, TB, bytes_to_tb
from .report import render_bar_chart, render_grouped_series, render_series


def figure2_integrated_cpu(
    viewer: MDViewer, t0: float, t1: float, rescale: float = 1.0
) -> Tuple[Dict[str, float], str]:
    """Fig. 2: integrated CPU usage (CPU-days) by VO over the window."""
    data = {
        vo: cpu_days * rescale
        for vo, cpu_days in viewer.integrated_cpu_by_vo(t0, t1).items()
    }
    text = "Figure 2: integrated CPU usage by VO (CPU-days)\n" + render_bar_chart(
        data, unit=" cpu-d"
    )
    return data, text


def figure3_differential_cpu(
    viewer: MDViewer, t0: float, t1: float, bin_width: float = DAY,
    rescale: float = 1.0,
) -> Tuple[Dict[str, List[Tuple[float, float]]], str]:
    """Fig. 3: differential CPU usage (time-averaged CPUs) by VO."""
    raw = viewer.differential_cpu_series(t0, t1, bin_width)
    data = {
        vo: [(t - t0, cpus * rescale) for t, cpus in series]
        for vo, series in raw.items()
    }
    text = (
        "Figure 3: differential CPU usage by VO (time-averaged CPUs/day)\n"
        + render_grouped_series(data)
    )
    return data, text


def figure4_cms_by_site(
    viewer: MDViewer, t0: float, t1: float, vo: str = "uscms",
    rescale: float = 1.0,
) -> Tuple[Dict[str, float], str]:
    """Fig. 4: one VO's cumulative CPU-days by site over 150 days."""
    data = {
        site: cpu_days * rescale
        for site, cpu_days in viewer.cumulative_cpu_by_site(vo, t0, t1).items()
    }
    text = (
        f"Figure 4: {vo} cumulative usage by site (CPU-days)\n"
        + render_bar_chart(data, unit=" cpu-d")
    )
    return data, text


def figure5_data_consumed(
    viewer: MDViewer, t0: float, t1: float, rescale: float = 1.0
) -> Tuple[Dict[str, float], str]:
    """Fig. 5: data consumed by VO (TB) plus the cumulative total."""
    by_vo = {
        vo: bytes_to_tb(nbytes) * rescale
        for vo, nbytes in viewer.data_consumed_by_vo(t0, t1).items()
    }
    cumulative = viewer.cumulative_data_series(t0, t1)
    total_tb = bytes_to_tb(cumulative[-1][1]) * rescale if cumulative else 0.0
    text = (
        f"Figure 5: data consumed by VO (total {total_tb:.1f} TB)\n"
        + render_bar_chart(by_vo, unit=" TB")
    )
    data = dict(by_vo)
    data["__total__"] = total_tb
    return data, text


def figure6_jobs_by_month(
    viewer: MDViewer, rescale: float = 1.0
) -> Tuple[Dict[str, float], str]:
    """Fig. 6: jobs run on Grid3 by month (the 2003 ramp, 2004 plateau)."""
    data = {
        month: count * rescale
        for month, count in viewer.jobs_by_month().items()
    }
    ordered = dict(sorted(data.items(), key=lambda kv: (kv[0][3:], kv[0][:2])))
    text = "Figure 6: jobs per month\n" + render_bar_chart(
        ordered, unit=" jobs", sort=False
    )
    return ordered, text
