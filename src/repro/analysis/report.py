"""Plain-text rendering helpers for tables and series.

The paper's artefacts are figures and one large table; benches print
them as aligned text so a terminal diff against EXPERIMENTS.md is easy.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple


def fmt_cell(value) -> str:
    """Human-friendly cell formatting."""
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.2f}"
    return str(value)


def render_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """An aligned ASCII table."""
    cells = [[fmt_cell(c) for c in row] for row in rows]
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in cells)) if cells else len(str(headers[i]))
        for i in range(len(headers))
    ]
    def line(parts):
        return "  ".join(str(p).rjust(w) for p, w in zip(parts, widths))
    out = [line(headers), line("-" * w for w in widths)]
    out.extend(line(r) for r in cells)
    return "\n".join(out)


def render_bar_chart(
    data: Dict[str, float],
    width: int = 50,
    unit: str = "",
    sort: bool = True,
) -> str:
    """A horizontal ASCII bar chart (the figure stand-in)."""
    if not data:
        return "(no data)"
    items = sorted(data.items(), key=lambda kv: -kv[1]) if sort else list(data.items())
    peak = max(v for _k, v in items) or 1.0
    label_w = max(len(k) for k, _v in items)
    lines = []
    for key, value in items:
        bar = "#" * max(0, int(round(width * value / peak)))
        lines.append(f"{key.ljust(label_w)} | {bar} {fmt_cell(value)}{unit}")
    return "\n".join(lines)


def render_series(
    series: Sequence[Tuple[float, float]],
    label: str = "",
    width: int = 60,
    time_scale: float = 86400.0,
    time_unit: str = "d",
) -> str:
    """A vertical-time ASCII plot of one (time, value) series."""
    if not series:
        return f"{label}: (no data)"
    peak = max(v for _t, v in series) or 1.0
    lines = [f"{label} (peak {fmt_cell(peak)})"] if label else []
    for t, v in series:
        bar = "#" * max(0, int(round(width * v / peak)))
        lines.append(f"{t / time_scale:8.1f}{time_unit} | {bar} {fmt_cell(v)}")
    return "\n".join(lines)


def render_grouped_series(
    groups: Dict[str, Sequence[Tuple[float, float]]],
    width: int = 50,
    time_scale: float = 86400.0,
) -> str:
    """Multiple labelled series, one block each."""
    return "\n\n".join(
        render_series(series, label=name, width=width, time_scale=time_scale)
        for name, series in sorted(groups.items())
    )
