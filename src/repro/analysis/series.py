"""Time-series utilities shared by MDViewer and the benches.

Small, numpy-backed helpers for the recurring operations: fixed-width
binning of event streams, interval→occupancy conversion, cumulative
sums, moving averages, and percentile summaries.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np


def bin_events(
    times: Sequence[float],
    t0: float,
    t1: float,
    bin_width: float,
    weights: Optional[Sequence[float]] = None,
) -> List[Tuple[float, float]]:
    """Histogram point events into fixed bins over [t0, t1).

    Returns (bin_start, total_weight) for every bin, zeros included.
    """
    if bin_width <= 0:
        raise ValueError("bin_width must be positive")
    if t1 <= t0:
        raise ValueError("t1 must exceed t0")
    n_bins = int(np.ceil((t1 - t0) / bin_width))
    edges = t0 + np.arange(n_bins + 1) * bin_width
    counts, _ = np.histogram(
        np.asarray(times, dtype=float),
        bins=edges,
        weights=None if weights is None else np.asarray(weights, dtype=float),
    )
    return [(float(edges[i]), float(counts[i])) for i in range(n_bins)]


def interval_occupancy(
    intervals: Iterable[Tuple[float, float]],
    t0: float,
    t1: float,
    bin_width: float,
) -> List[Tuple[float, float]]:
    """Convert (start, end) intervals into mean-occupancy-per-bin.

    The value of a bin is the time-averaged number of intervals covering
    it — the Figure 3 "differential usage" operation.
    """
    if bin_width <= 0:
        raise ValueError("bin_width must be positive")
    n_bins = int(np.ceil((t1 - t0) / bin_width))
    acc = np.zeros(n_bins)
    for start, end in intervals:
        lo = max(start, t0)
        hi = min(end, t1)
        if hi <= lo:
            continue
        first = int((lo - t0) // bin_width)
        last = min(n_bins - 1, int((hi - t0) // bin_width))
        for b in range(first, last + 1):
            b0 = t0 + b * bin_width
            acc[b] += max(0.0, min(hi, b0 + bin_width) - max(lo, b0))
    return [
        (t0 + b * bin_width, float(acc[b] / bin_width)) for b in range(n_bins)
    ]


def cumulative(series: Sequence[Tuple[float, float]]) -> List[Tuple[float, float]]:
    """Running sum of a (time, value) series (assumed time-sorted)."""
    out: List[Tuple[float, float]] = []
    total = 0.0
    for t, v in series:
        total += v
        out.append((t, total))
    return out


def moving_average(
    series: Sequence[Tuple[float, float]], window: int
) -> List[Tuple[float, float]]:
    """Trailing moving average over the last ``window`` points."""
    if window < 1:
        raise ValueError("window must be >= 1")
    values = [v for _t, v in series]
    out: List[Tuple[float, float]] = []
    for i, (t, _v) in enumerate(series):
        lo = max(0, i - window + 1)
        out.append((t, float(np.mean(values[lo: i + 1]))))
    return out


def percentile_summary(
    values: Sequence[float],
    percentiles: Sequence[float] = (50, 90, 99),
) -> Dict[str, float]:
    """min/mean/max plus the requested percentiles."""
    if len(values) == 0:
        return {}
    arr = np.asarray(values, dtype=float)
    out = {
        "min": float(arr.min()),
        "mean": float(arr.mean()),
        "max": float(arr.max()),
    }
    for p in percentiles:
        out[f"p{int(p)}"] = float(np.percentile(arr, p))
    return out


def rate_per_day(series: Sequence[Tuple[float, float]]) -> float:
    """Mean daily rate of a binned (time, count) series."""
    if not series:
        return 0.0
    total = sum(v for _t, v in series)
    if len(series) < 2:
        return total
    span_days = (series[-1][0] - series[0][0]) / 86400.0 + 1e-12
    return total / max(span_days, 1e-12)
