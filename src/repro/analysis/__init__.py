"""Analysis: Table 1, Figures 2-6, and text rendering."""

from .compare import (
    ShapeCheck,
    agreement_report,
    compare_figure5,
    compare_figure6,
    compare_run,
    compare_table1,
)
from .export import (
    CSV_FIELDS,
    export_database,
    export_records,
    import_records,
    record_to_row,
    row_to_record,
)
from .figures import (
    figure2_integrated_cpu,
    figure3_differential_cpu,
    figure4_cms_by_site,
    figure5_data_consumed,
    figure6_jobs_by_month,
)
from .series import (
    bin_events,
    cumulative,
    interval_occupancy,
    moving_average,
    percentile_summary,
    rate_per_day,
)
from .report import (
    fmt_cell,
    render_bar_chart,
    render_grouped_series,
    render_series,
    render_table,
)
from .table1 import (
    PAPER_TABLE1,
    PAPER_TOTAL_RECORDS,
    TABLE1_CLASSES,
    Table1Row,
    classify,
    compute_table1,
    render_table1,
)

__all__ = [
    "CSV_FIELDS",
    "ShapeCheck",
    "agreement_report",
    "compare_figure5",
    "compare_figure6",
    "compare_run",
    "compare_table1",
    "PAPER_TABLE1",
    "bin_events",
    "cumulative",
    "export_database",
    "export_records",
    "import_records",
    "interval_occupancy",
    "moving_average",
    "percentile_summary",
    "rate_per_day",
    "record_to_row",
    "row_to_record",
    "PAPER_TOTAL_RECORDS",
    "TABLE1_CLASSES",
    "Table1Row",
    "classify",
    "compute_table1",
    "figure2_integrated_cpu",
    "figure3_differential_cpu",
    "figure4_cms_by_site",
    "figure5_data_consumed",
    "figure6_jobs_by_month",
    "fmt_cell",
    "render_bar_chart",
    "render_grouped_series",
    "render_series",
    "render_table",
    "render_table1",
]
