"""Shape comparison against the paper's reported results.

The reproduction contract (DESIGN.md §1) is *shape* agreement: who wins,
by roughly what factor, where peaks fall.  This module encodes those
claims as machine-checkable :class:`ShapeCheck` items so any run — not
just the benches — can be scored against the paper with one call.

    grid.run_full()
    checks = compare_run(grid)
    print(agreement_report(checks))
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..sim.units import DAY, bytes_to_tb
from .table1 import PAPER_TABLE1, Table1Row, compute_table1


@dataclass(frozen=True)
class ShapeCheck:
    """One verifiable shape claim from the paper."""

    name: str
    passed: bool
    detail: str
    #: Where the claim comes from ("Table 1", "Fig. 5", "§7", ...).
    source: str = ""


def _ordering_check(name: str, source: str, measured: Dict[str, float],
                    bigger: str, smaller: str, factor: float = 1.0) -> ShapeCheck:
    big = measured.get(bigger, 0.0)
    small = measured.get(smaller, 0.0)
    ok = big > small * factor
    return ShapeCheck(
        name=name,
        passed=ok,
        detail=f"{bigger}={big:.3g} vs {smaller}={small:.3g} (need >{factor:g}x)",
        source=source,
    )


def compare_table1(rows: Dict[str, Table1Row]) -> List[ShapeCheck]:
    """The Table 1 shape claims (orderings and concentrations)."""
    checks: List[ShapeCheck] = []
    jobs = {cls: row.jobs for cls, row in rows.items()}
    avg = {cls: row.avg_runtime_hr for cls, row in rows.items()}
    cpu = {cls: row.total_cpu_days for cls, row in rows.items()}

    present = set(rows)
    checks.append(ShapeCheck(
        "all seven user classes present",
        set(PAPER_TABLE1) <= present,
        f"missing: {sorted(set(PAPER_TABLE1) - present)}",
        "Table 1",
    ))
    if not set(PAPER_TABLE1) <= present:
        return checks

    checks.append(_ordering_check(
        "Exerciser dominates job count", "Table 1", jobs, "Exerciser", "iVDGL", 2.0))
    checks.append(_ordering_check(
        "iVDGL out-counts USCMS", "Table 1", jobs, "iVDGL", "USCMS"))
    checks.append(_ordering_check(
        "USCMS longest mean runtime", "Table 1", avg, "USCMS", "USATLAS", 2.0))
    checks.append(_ordering_check(
        "USATLAS second-longest runtime", "Table 1", avg, "USATLAS", "iVDGL", 2.0))
    checks.append(ShapeCheck(
        "USCMS majority of total CPU",
        cpu["USCMS"] > 0.5 * sum(cpu.values()),
        f"USCMS {cpu['USCMS']:.0f} of {sum(cpu.values()):.0f} CPU-days",
        "Table 1",
    ))
    for cls in ("USCMS", "USATLAS", "BTEV", "iVDGL"):
        checks.append(ShapeCheck(
            f"{cls} peaks in 11-2003",
            rows[cls].peak_month == "11-2003",
            f"measured peak {rows[cls].peak_month}",
            "Table 1",
        ))
    checks.append(ShapeCheck(
        "iVDGL favourite-resource concentration",
        rows["iVDGL"].max_single_resource_pct > 40.0,
        f"{rows['iVDGL'].max_single_resource_pct:.0f}% from one resource "
        "(paper: 88%)",
        "Table 1",
    ))
    checks.append(ShapeCheck(
        "USATLAS spread across resources",
        rows["USATLAS"].max_single_resource_pct < 60.0,
        f"{rows['USATLAS'].max_single_resource_pct:.0f}% max (paper: 28%)",
        "Table 1",
    ))
    # §6.4: "the peak production months for each application class did
    # not account for a substantial percentage of the total CPU days.
    # Thus, a substantial amount of the computational jobs are processed
    # on a continual basis" — for most science classes, the peak month
    # holds a minority-to-modest share of total CPU (BTeV, whose entire
    # campaign was one November push, is the paper's own outlier too).
    continual = {
        cls: rows[cls].peak_month_cpu_days / rows[cls].total_cpu_days
        for cls in ("USCMS", "USATLAS", "iVDGL", "SDSS")
        if rows[cls].total_cpu_days > 0
    }
    majority_continual = sum(1 for v in continual.values() if v < 0.6)
    checks.append(ShapeCheck(
        "continual production (peak month holds a minority of CPU)",
        majority_continual >= max(1, len(continual) - 1),
        ", ".join(f"{cls}={v:.0%}" for cls, v in continual.items()),
        "§6.4",
    ))
    return checks


def compare_figure5(ledger, t0: float, t1: float, rescale: float) -> List[ShapeCheck]:
    """Fig. 5 / §6.3 / §7 data-movement claims."""
    by_vo = ledger.bytes_by_vo(since=t0, until=t1)
    total_tb = bytes_to_tb(sum(by_vo.values())) * rescale
    demo_share = by_vo.get("ivdgl", 0.0) / max(1.0, sum(by_vo.values()))
    peak_tb = bytes_to_tb(ledger.peak_daily_bytes(t0, t1)) * rescale
    window_days = (t1 - t0) / DAY
    return [
        ShapeCheck(
            "order-100TB per 30 days",
            20.0 <= total_tb * (30.0 / max(window_days, 1e-9)) <= 300.0,
            f"{total_tb:.1f} TB over {window_days:.0f} d",
            "Fig. 5",
        ),
        ShapeCheck(
            "GridFTP demo accounts for most data",
            demo_share > 0.5,
            f"demo share {demo_share:.0%}",
            "Fig. 5",
        ),
        ShapeCheck(
            "2 TB/day target met",
            peak_tb >= 2.0,
            f"peak day {peak_tb:.2f} TB (paper: 4)",
            "§7",
        ),
    ]


def compare_figure6(jobs_by_month: Dict[str, float]) -> List[ShapeCheck]:
    """Fig. 6's ramp-then-sustain claims."""
    checks = []
    has_months = "10-2003" in jobs_by_month and "11-2003" in jobs_by_month
    checks.append(ShapeCheck(
        "window covers Oct+Nov 2003", has_months,
        f"months: {sorted(jobs_by_month)}", "Fig. 6",
    ))
    if has_months:
        checks.append(ShapeCheck(
            "2003 ramp (Oct < Nov)",
            jobs_by_month["10-2003"] < jobs_by_month["11-2003"],
            f"Oct {jobs_by_month['10-2003']:.0f} vs Nov {jobs_by_month['11-2003']:.0f}",
            "Fig. 6",
        ))
    y2004 = [v for m, v in jobs_by_month.items() if m.endswith("2004")]
    if len(y2004) >= 3:
        mean_2004 = sum(y2004) / len(y2004)
        checks.append(ShapeCheck(
            "sustained 2004 production",
            all(v > mean_2004 / 3 for v in y2004),
            f"2004 months: {[round(v) for v in y2004]}",
            "Fig. 6",
        ))
    return checks


def compare_run(grid, t0: float = 0.0, t1: Optional[float] = None) -> List[ShapeCheck]:
    """Score a completed Grid3 run against every codified shape claim."""
    t1 = t1 if t1 is not None else grid.engine.now
    viewer = grid.viewer()
    checks: List[ShapeCheck] = []
    checks.extend(compare_table1(compute_table1(grid.acdc_db, grid.calendar)))
    checks.extend(compare_figure5(grid.ledger, t0, t1, grid.config.scale))
    checks.extend(compare_figure6(viewer.jobs_by_month()))
    # §7 milestone posture: most met, utilisation allowed to miss.
    tracker = grid.milestones(t0, t1)
    met = sum(1 for m in tracker.milestones() if m.met)
    checks.append(ShapeCheck(
        "most §7 milestones met",
        met >= 6,
        f"{met}/9 met",
        "§7",
    ))
    return checks


def agreement_report(checks: List[ShapeCheck]) -> str:
    """Human-readable scorecard."""
    passed = sum(c.passed for c in checks)
    lines = [f"shape agreement: {passed}/{len(checks)} claims hold", "-" * 60]
    for check in checks:
        mark = "PASS" if check.passed else "MISS"
        lines.append(f"[{mark}] ({check.source}) {check.name}: {check.detail}")
    return "\n".join(lines)
