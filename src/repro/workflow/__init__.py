"""Workflow tools: DAGs, Chimera virtual data, Pegasus planning, CMS
MOP/MCRunJob, DIAL analysis."""

from .chimera import (
    Dax,
    Derivation,
    Transformation,
    VirtualDataCatalog,
    VirtualDataError,
)
from .dag import DAG, DagNode, NodeState
from .dial import Dataset, DatasetCatalog, analysis_dag
from .mop import MOP, ControlDatabase, MCRequest
from .pegasus import PegasusPlanner

__all__ = [
    "DAG",
    "DagNode",
    "Dataset",
    "DatasetCatalog",
    "Dax",
    "Derivation",
    "MCRequest",
    "MOP",
    "ControlDatabase",
    "NodeState",
    "PegasusPlanner",
    "Transformation",
    "VirtualDataCatalog",
    "VirtualDataError",
    "analysis_dag",
]
