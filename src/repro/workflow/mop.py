"""MCRunJob + MOP: the CMS production toolchain (§4.2).

"CMS Production jobs are specified by reading input parameters from a
control database and converting them to DAGs suitable for submission to
Condor-G/DAGMan."  CMS detector simulation "consists of 3 steps:
(1) event generation with Pythia, (2) event simulation with a
GEANT-based simulation application, and finally (3) reconstruction and
digitization with the additional pile-up events."

:class:`ControlDatabase` holds :class:`MCRequest` parameter sets;
:class:`MOP` (the DAG writer) turns one request into a three-step chain
whose runtimes scale with the event count.  OSCAR (the GEANT4
application) jobs are the long >30 h jobs "not all sites have been able
to accommodate" (§6.2).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.job import JobSpec
from ..sim.rng import RngRegistry
from ..sim.units import GB, HOUR, MB
from .dag import DAG

#: Per-event compute cost (reference 2 GHz CPU), calibrated so a typical
#: 250-event OSCAR full-simulation job runs >30 h (§6.2).
PYTHIA_SEC_PER_EVENT = 2.0
CMSIM_SEC_PER_EVENT = 180.0      # GEANT3, statically linked FORTRAN
OSCAR_SEC_PER_EVENT = 450.0      # GEANT4 full detector simulation
DIGI_SEC_PER_EVENT = 45.0        # reconstruction + pile-up digitisation

#: Per-event data volumes.
GEN_BYTES_PER_EVENT = 0.2 * MB
SIM_BYTES_PER_EVENT = 8.0 * MB
DIGI_BYTES_PER_EVENT = 2.5 * MB


@dataclass
class MCRequest:
    """One row of the CMS production control database."""

    request_id: str
    n_events: int
    #: "oscar" (GEANT4 C++, long) or "cmsim" (GEANT3 FORTRAN, shorter).
    simulator: str = "oscar"
    #: Beam luminosity tag (the 2x10^33 pile-up sample of §4.2).
    luminosity: str = "2e33"
    assigned: bool = False
    completed: bool = False

    def __post_init__(self) -> None:
        if self.n_events <= 0:
            raise ValueError("n_events must be positive")
        if self.simulator not in ("oscar", "cmsim"):
            raise ValueError(f"unknown simulator {self.simulator!r}")


class ControlDatabase:
    """The production bookkeeping DB MCRunJob reads."""

    def __init__(self) -> None:
        self._requests: Dict[str, MCRequest] = {}
        self._counter = itertools.count(1)

    def __len__(self) -> int:
        return len(self._requests)

    def add_request(self, n_events: int, simulator: str = "oscar") -> MCRequest:
        """Register a new production request."""
        req = MCRequest(f"req-{next(self._counter):05d}", n_events, simulator)
        self._requests[req.request_id] = req
        return req

    def next_pending(self) -> Optional[MCRequest]:
        """Claim the oldest unassigned request (None when drained)."""
        for req in self._requests.values():
            if not req.assigned:
                req.assigned = True
                return req
        return None

    def mark_completed(self, request_id: str) -> None:
        self._requests[request_id].completed = True

    def pending_count(self) -> int:
        return sum(1 for r in self._requests.values() if not r.assigned)

    def completed_events(self) -> int:
        """Total simulated events across completed requests (the paper's
        '14 million GEANT4 full detector simulation events' counter)."""
        return sum(r.n_events for r in self._requests.values() if r.completed)


class MOP:
    """The CMS DAG writer."""

    def __init__(self, rng: RngRegistry, archive_site: str = "FNAL_CMS") -> None:
        self.rng = rng
        #: "All datasets produced were archived through a Storage Element
        #: at the Tier1 facility at Fermilab" (§4.2).
        self.archive_site = archive_site
        self.dags_written = 0

    def _runtime(self, name: str, mean: float) -> float:
        return self.rng.lognormal_from_mean(f"mop.{name}", mean, 0.2)

    def dag_for(self, request: MCRequest, user: str = "cms-prod",
                app_failure_probability: float = 0.03) -> DAG:
        """The 3-step chain for one request: gen -> sim -> digi."""
        n = request.n_events
        rid = request.request_id
        dag = DAG(f"mop-{rid}")

        gen_out = ((f"/cms/{rid}/gen.ntpl", n * GEN_BYTES_PER_EVENT),)
        sim_out = ((f"/cms/{rid}/sim.fz", n * SIM_BYTES_PER_EVENT),)
        digi_out = ((f"/cms/{rid}/digi.db", n * DIGI_BYTES_PER_EVENT),)

        sim_rate = OSCAR_SEC_PER_EVENT if request.simulator == "oscar" else CMSIM_SEC_PER_EVENT
        sim_name = request.simulator

        gen = JobSpec(
            name=f"{rid}-pythia", vo="uscms", user=user,
            runtime=self._runtime("pythia", n * PYTHIA_SEC_PER_EVENT),
            walltime_request=max(2 * HOUR, n * PYTHIA_SEC_PER_EVENT * 3),
            outputs=gen_out, staging="minimal",
            archive_site=self.archive_site,
            app_failure_probability=app_failure_probability,
        )
        sim = JobSpec(
            name=f"{rid}-{sim_name}", vo="uscms", user=user,
            runtime=self._runtime(sim_name, n * sim_rate),
            walltime_request=n * sim_rate * 1.5,
            inputs=gen_out, outputs=sim_out, staging="heavy",
            archive_site=self.archive_site,
            app_failure_probability=app_failure_probability,
        )
        digi = JobSpec(
            name=f"{rid}-digi", vo="uscms", user=user,
            runtime=self._runtime("digi", n * DIGI_SEC_PER_EVENT),
            walltime_request=max(4 * HOUR, n * DIGI_SEC_PER_EVENT * 3),
            inputs=sim_out, outputs=digi_out, staging="heavy",
            archive_site=self.archive_site,
            app_failure_probability=app_failure_probability,
        )
        dag.add_job("gen", gen)
        dag.add_job("sim", sim)
        dag.add_job("digi", digi)
        dag.add_edge("gen", "sim")
        dag.add_edge("sim", "digi")
        self.dags_written += 1
        return dag
