"""Pegasus: abstract-to-concrete workflow planning (§4.1).

Pegasus takes a Chimera DAX and produces the executable DAG: it consults
RLS to find existing replicas, builds a :class:`JobSpec` per derivation
(drawing a concrete runtime from the transformation's distribution), and
attaches the data-movement obligations.

Fidelity note: real Pegasus inserts *separate* stage-in/stage-out DAG
nodes.  In Grid3 practice the staging ran inside the job wrapper — §6.1
enumerates a job's steps as "pre-stage, job execution producing the
output files, post-stage to the final storage element at BNL, and
registration to RLS" — and our execution harness
(:mod:`repro.core.runner`) does exactly those steps per job, so the
planner encodes staging as JobSpec inputs/outputs rather than extra
nodes.  The observable behaviour (bytes moved, failure points, gatekeeper
staging load) is identical; the DAG is smaller.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..core.job import JobSpec
from ..errors import ReplicaNotFoundError
from ..sim.rng import RngRegistry
from .chimera import Dax, Derivation, VirtualDataError
from .dag import DAG


class PegasusPlanner:
    """Plans DAXes into concrete, submittable DAGs.

    With a :class:`~repro.data.selector.ReplicaSelector` attached, input
    replicas resolve through rank-by-route-quality (liveness and
    bandwidth-aware); without one, the planner falls back to the
    deterministic site-name order — never the raw RLS list order, whose
    stability is an implementation detail of the index.
    """

    def __init__(self, rls, rng: RngRegistry, selector=None) -> None:
        self.rls = rls
        self.rng = rng
        #: Optional ReplicaSelector; None = deterministic fallback.
        self.selector = selector
        self.planned_workflows = 0

    def _input_size(self, lfn: str, internal_sizes: Dict[str, float]) -> float:
        """Bytes for an input: produced upstream, or looked up via the
        replica selector (deterministic fallback without one)."""
        if lfn in internal_sizes:
            return internal_sizes[lfn]
        try:
            if self.selector is not None:
                return self.selector.lookup_size(lfn)
            replicas = self.rls.locate(lfn)
        except ReplicaNotFoundError:
            raise VirtualDataError(
                f"planner: no replica and no producer for input {lfn}"
            ) from None
        # No selector: site-name order is the stable, explicit choice
        # (all replicas of an LFN share one logical size anyway).
        return min(replicas, key=lambda r: r.site).size

    def _spec_for(
        self,
        dv: Derivation,
        dax: Dax,
        vo: str,
        user: str,
        archive_site: Optional[str],
        internal_sizes: Dict[str, float],
        register_outputs: bool,
        app_failure_probability: float,
    ) -> JobSpec:
        tr = dax.vdc.transformation(dv.transformation)
        runtime = self.rng.lognormal_from_mean(
            f"pegasus.runtime.{tr.name}", tr.runtime, tr.runtime_sigma
        )
        inputs = tuple(
            (lfn, self._input_size(lfn, internal_sizes)) for lfn in dv.inputs
        )
        return JobSpec(
            name=dv.derivation_id,
            vo=vo,
            user=user,
            runtime=runtime,
            walltime_request=max(runtime, tr.runtime) * tr.walltime_factor,
            inputs=inputs,
            outputs=dv.outputs,
            staging=tr.staging,
            requires_outbound=tr.requires_outbound,
            archive_site=archive_site,
            register_outputs=register_outputs,
            app_failure_probability=app_failure_probability,
        )

    def plan(
        self,
        dax: Dax,
        vo: str,
        user: str,
        archive_site: Optional[str] = None,
        name: str = "workflow",
        retries: int = 2,
        register_outputs: bool = True,
        app_failure_probability: float = 0.0,
    ) -> DAG:
        """Produce the concrete DAG for ``dax``.

        Site selection is deferred to Condor-G's matchmaker at submit
        time (late binding), which is how the Grid3 frameworks worked in
        practice; callers can still pin individual nodes afterwards.
        """
        internal_sizes = dax.output_sizes()
        dag = DAG(name)
        for dv in dax.derivations.values():
            spec = self._spec_for(
                dv, dax, vo, user, archive_site, internal_sizes,
                register_outputs, app_failure_probability,
            )
            dag.add_job(dv.derivation_id, spec, retries=retries)
        for parent, child in dax.edges():
            dag.add_edge(parent, child)
        self.planned_workflows += 1
        return dag
