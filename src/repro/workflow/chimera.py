"""Chimera: the virtual data system (§4.1, §4.3, §4.5).

Chimera records *transformations* (typed programs) and *derivations*
(transformations with bound inputs/outputs).  Given target logical
files, the catalog derives an **abstract DAG** (a DAX) of the
derivations that must run to materialise everything that does not
already exist — "workflows with several thousand processing steps
organized by Chimera virtual data tools" (SDSS, §4.3).

Materialisation checks consult RLS: a file that already has a replica
anywhere on Grid3 is not re-derived (that is the virtual-data value
proposition).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..errors import GridError
from ..sim.units import HOUR
from .dag import DAG, DagNode


class VirtualDataError(GridError):
    """Catalog inconsistency: missing transformation/derivation."""


@dataclass(frozen=True)
class Transformation:
    """A typed executable registered in the VDC."""

    name: str
    #: Mean pure-compute runtime (seconds); per-derivation draws are
    #: lognormal around this.
    runtime: float
    runtime_sigma: float = 0.3
    #: Gatekeeper staging intensity class (§6.4).
    staging: str = "minimal"
    requires_outbound: bool = False
    #: Walltime requested = runtime * this safety factor.
    walltime_factor: float = 3.0

    def __post_init__(self) -> None:
        if self.runtime < 0:
            raise ValueError("runtime cannot be negative")


@dataclass(frozen=True)
class Derivation:
    """A transformation invocation with bound data."""

    derivation_id: str
    transformation: str
    inputs: Tuple[str, ...] = ()
    #: (lfn, bytes) pairs this derivation produces.
    outputs: Tuple[Tuple[str, float], ...] = ()
    params: Tuple[Tuple[str, str], ...] = ()

    @property
    def output_lfns(self) -> Tuple[str, ...]:
        return tuple(lfn for lfn, _size in self.outputs)


class VirtualDataCatalog:
    """The VDC: transformations + derivations + derive() planning."""

    def __init__(self) -> None:
        self._transformations: Dict[str, Transformation] = {}
        self._derivations: Dict[str, Derivation] = {}
        #: lfn -> derivation that produces it.
        self._producer: Dict[str, Derivation] = {}

    # -- registration -------------------------------------------------------
    def add_transformation(self, tr: Transformation) -> Transformation:
        """Register a transformation (replaces same-name entries)."""
        self._transformations[tr.name] = tr
        return tr

    def add_derivation(self, dv: Derivation) -> Derivation:
        """Register a derivation; every output gains a producer entry."""
        if dv.transformation not in self._transformations:
            raise VirtualDataError(
                f"derivation {dv.derivation_id} uses unknown transformation "
                f"{dv.transformation!r}"
            )
        for lfn in dv.output_lfns:
            other = self._producer.get(lfn)
            if other is not None and other.derivation_id != dv.derivation_id:
                raise VirtualDataError(
                    f"{lfn} produced by both {other.derivation_id} and "
                    f"{dv.derivation_id}"
                )
        self._derivations[dv.derivation_id] = dv
        for lfn in dv.output_lfns:
            self._producer[lfn] = dv
        return dv

    # -- lookup -----------------------------------------------------------------
    def transformation(self, name: str) -> Transformation:
        try:
            return self._transformations[name]
        except KeyError:
            raise VirtualDataError(f"unknown transformation {name!r}") from None

    def derivation(self, derivation_id: str) -> Derivation:
        try:
            return self._derivations[derivation_id]
        except KeyError:
            raise VirtualDataError(f"unknown derivation {derivation_id!r}") from None

    def producer_of(self, lfn: str) -> Optional[Derivation]:
        """The derivation producing ``lfn``, or None for raw inputs."""
        return self._producer.get(lfn)

    def derivations(self) -> List[Derivation]:
        return list(self._derivations.values())

    # -- planning ----------------------------------------------------------------
    def derive(
        self,
        targets: Sequence[str],
        materialized: Optional[Set[str]] = None,
    ) -> "Dax":
        """Build the abstract DAG producing ``targets``.

        ``materialized`` is the set of LFNs that already exist (usually
        from RLS); their producing derivations are pruned.  Raw inputs
        (no producer, not materialized) raise VirtualDataError — the
        workflow cannot run without them.
        """
        materialized = materialized or set()
        needed: Dict[str, Derivation] = {}
        missing_raw: List[str] = []

        def visit(lfn: str) -> None:
            if lfn in materialized:
                return
            dv = self._producer.get(lfn)
            if dv is None:
                missing_raw.append(lfn)
                return
            if dv.derivation_id in needed:
                return
            needed[dv.derivation_id] = dv
            for parent_lfn in dv.inputs:
                visit(parent_lfn)

        for target in targets:
            visit(target)
        if missing_raw:
            raise VirtualDataError(
                f"raw inputs not materialized anywhere: {sorted(set(missing_raw))}"
            )
        return Dax(self, needed)


class Dax:
    """An abstract workflow: derivations + their data dependencies."""

    def __init__(self, vdc: VirtualDataCatalog, derivations: Dict[str, Derivation]) -> None:
        self.vdc = vdc
        self.derivations = dict(derivations)

    def __len__(self) -> int:
        return len(self.derivations)

    def edges(self) -> List[Tuple[str, str]]:
        """(parent_id, child_id) pairs: child consumes parent's output."""
        out = []
        for child in self.derivations.values():
            for lfn in child.inputs:
                producer = self.vdc.producer_of(lfn)
                if producer is not None and producer.derivation_id in self.derivations:
                    out.append((producer.derivation_id, child.derivation_id))
        return sorted(set(out))

    def output_sizes(self) -> Dict[str, float]:
        """lfn -> bytes for every output produced inside this DAX."""
        sizes: Dict[str, float] = {}
        for dv in self.derivations.values():
            for lfn, size in dv.outputs:
                sizes[lfn] = size
        return sizes
