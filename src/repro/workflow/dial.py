"""DIAL: distributed interactive analysis of large datasets (§4.1, §6.1).

"A dataset catalog was created for produced samples, making them
available to the DIAL distributed analysis package.  Output datasets
were stored at BNL by the grid jobs, and continue to be analyzed by
DIAL developers and the SUSY physics working group."

:class:`DatasetCatalog` indexes produced datasets;
:func:`analysis_dag` fans an analysis task out over a dataset selection
(one histogram-filling job per dataset) with a final merge step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core.job import JobSpec
from ..sim.rng import RngRegistry
from ..sim.units import HOUR, MB
from .dag import DAG


@dataclass(frozen=True)
class Dataset:
    """A produced data sample registered for analysis."""

    name: str
    lfn: str
    size: float
    site: str        # where the sample is archived (BNL for ATLAS)
    events: int


class DatasetCatalog:
    """The DIAL-facing index of production output."""

    def __init__(self) -> None:
        self._datasets: Dict[str, Dataset] = {}

    def __len__(self) -> int:
        return len(self._datasets)

    def __contains__(self, name: str) -> bool:
        return name in self._datasets

    def register(self, dataset: Dataset) -> Dataset:
        """Add a dataset (idempotent by name)."""
        self._datasets[dataset.name] = dataset
        return dataset

    def lookup(self, name: str) -> Dataset:
        return self._datasets[name]

    def select(self, prefix: str = "") -> List[Dataset]:
        """Datasets whose name starts with ``prefix`` (sorted)."""
        return [
            self._datasets[name]
            for name in sorted(self._datasets)
            if name.startswith(prefix)
        ]


def analysis_dag(
    catalog: DatasetCatalog,
    rng: RngRegistry,
    user: str,
    prefix: str = "",
    name: str = "dial-analysis",
    seconds_per_event: float = 0.02,
    histogram_bytes: float = 20 * MB,
    max_datasets: Optional[int] = None,
) -> DAG:
    """Fan-out/fan-in analysis over catalogued datasets.

    One job per dataset reads the sample where it lives and produces a
    small histogram file; a final merge job combines them.  Raises
    ValueError when the selection is empty (nothing to analyse).
    """
    datasets = catalog.select(prefix)
    if max_datasets is not None:
        datasets = datasets[:max_datasets]
    if not datasets:
        raise ValueError(f"no datasets match prefix {prefix!r}")
    dag = DAG(name)
    hist_outputs = []
    for ds in datasets:
        runtime = rng.lognormal_from_mean(
            "dial.analysis", max(1.0, ds.events * seconds_per_event), 0.3
        )
        hist_lfn = f"/dial/{name}/{ds.name}.hist"
        hist_outputs.append((hist_lfn, histogram_bytes))
        dag.add_job(
            f"ana-{ds.name}",
            JobSpec(
                name=f"ana-{ds.name}", vo="usatlas", user=user,
                runtime=runtime,
                walltime_request=max(2 * HOUR, runtime * 4),
                inputs=((ds.lfn, ds.size),),
                outputs=((hist_lfn, histogram_bytes),),
                staging="heavy",
                archive_site=ds.site,
            ),
        )
    merge_runtime = rng.uniform("dial.merge", 60.0, 600.0)
    dag.add_job(
        "merge",
        JobSpec(
            name="merge", vo="usatlas", user=user,
            runtime=merge_runtime,
            walltime_request=2 * HOUR,
            inputs=tuple(hist_outputs),
            outputs=((f"/dial/{name}/merged.hist", histogram_bytes),),
            staging="minimal",
            archive_site=datasets[0].site,
        ),
    )
    for ds in datasets:
        dag.add_edge(f"ana-{ds.name}", "merge")
    return dag
