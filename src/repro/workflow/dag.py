"""Workflow DAGs: the unit Condor-G/DAGMan executes.

Both virtual-data planners (Chimera/Pegasus, §4.1) and the CMS tools
(MCRunJob/MOP, §4.2) produce these.  Nodes carry a :class:`JobSpec`
each; edges are parent→child dependencies.  Node state tracking supports
DAGMan-style retries and rescue DAGs.
"""

from __future__ import annotations

from enum import Enum
from typing import Dict, Iterable, List, Optional

import networkx as nx

from ..core.job import JobSpec


class NodeState(Enum):
    """DAGMan node lifecycle."""

    WAITING = "waiting"      # has unfinished parents
    READY = "ready"          # all parents done, not yet submitted
    SUBMITTED = "submitted"
    DONE = "done"
    FAILED = "failed"        # exhausted its retries
    UNREACHABLE = "unreachable"  # a parent failed


class DagNode:
    """One workflow step."""

    def __init__(self, node_id: str, spec: JobSpec, retries: int = 2,
                 pin_site: Optional[str] = None) -> None:
        self.node_id = node_id
        self.spec = spec
        #: DAGMan retries this node this many times before giving up.
        self.retries = retries
        #: Optional fixed target site (planners pin staging jobs).
        self.pin_site = pin_site
        self.state = NodeState.WAITING
        self.attempts_used = 0

    def __repr__(self) -> str:
        return f"<DagNode {self.node_id} {self.state.value}>"


class DAG:
    """A directed acyclic workflow graph."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._graph = nx.DiGraph()
        self._nodes: Dict[str, DagNode] = {}

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._nodes

    # -- construction ------------------------------------------------------
    def add_node(self, node: DagNode) -> DagNode:
        """Add a node; duplicate ids raise ValueError."""
        if node.node_id in self._nodes:
            raise ValueError(f"duplicate node id {node.node_id!r}")
        self._nodes[node.node_id] = node
        self._graph.add_node(node.node_id)
        return node

    def add_job(self, node_id: str, spec: JobSpec, **kwargs) -> DagNode:
        """Convenience: create-and-add a node."""
        return self.add_node(DagNode(node_id, spec, **kwargs))

    def add_edge(self, parent_id: str, child_id: str) -> None:
        """Declare ``child`` depends on ``parent``; cycles are rejected."""
        if parent_id not in self._nodes or child_id not in self._nodes:
            raise KeyError("both endpoints must be added before the edge")
        self._graph.add_edge(parent_id, child_id)
        if not nx.is_directed_acyclic_graph(self._graph):
            self._graph.remove_edge(parent_id, child_id)
            raise ValueError(f"edge {parent_id}->{child_id} creates a cycle")

    # -- queries -------------------------------------------------------------
    def node(self, node_id: str) -> DagNode:
        return self._nodes[node_id]

    def nodes(self) -> List[DagNode]:
        """All nodes (insertion order)."""
        return list(self._nodes.values())

    def parents(self, node_id: str) -> List[DagNode]:
        return [self._nodes[p] for p in self._graph.predecessors(node_id)]

    def children(self, node_id: str) -> List[DagNode]:
        return [self._nodes[c] for c in self._graph.successors(node_id)]

    def topological_order(self) -> List[DagNode]:
        """Nodes in a valid execution order."""
        return [self._nodes[n] for n in nx.topological_sort(self._graph)]

    def refresh_ready(self) -> List[DagNode]:
        """Promote WAITING nodes whose parents are all DONE; returns the
        nodes now in READY state (including previously promoted ones)."""
        for node in self._nodes.values():
            if node.state is NodeState.WAITING and all(
                p.state is NodeState.DONE for p in self.parents(node.node_id)
            ):
                node.state = NodeState.READY
        return [n for n in self._nodes.values() if n.state is NodeState.READY]

    def mark_unreachable_descendants(self, node_id: str) -> List[DagNode]:
        """After a node fails, mark everything downstream UNREACHABLE."""
        affected = []
        for desc_id in nx.descendants(self._graph, node_id):
            desc = self._nodes[desc_id]
            if desc.state in (NodeState.WAITING, NodeState.READY):
                desc.state = NodeState.UNREACHABLE
                affected.append(desc)
        return affected

    # -- outcome -----------------------------------------------------------
    @property
    def finished(self) -> bool:
        """No node can make further progress."""
        return all(
            n.state in (NodeState.DONE, NodeState.FAILED, NodeState.UNREACHABLE)
            for n in self._nodes.values()
        )

    @property
    def succeeded(self) -> bool:
        return all(n.state is NodeState.DONE for n in self._nodes.values())

    def rescue_dag(self) -> "DAG":
        """A new DAG containing only the un-done work (DAGMan's rescue
        file): failed/unreachable/unfinished nodes plus edges among them."""
        rescue = DAG(f"{self.name}-rescue")
        keep = {
            n.node_id
            for n in self._nodes.values()
            if n.state is not NodeState.DONE
        }
        for node_id in keep:
            old = self._nodes[node_id]
            rescue.add_node(DagNode(node_id, old.spec, retries=old.retries,
                                    pin_site=old.pin_site))
        for parent, child in self._graph.edges():
            if parent in keep and child in keep:
                rescue.add_edge(parent, child)
        return rescue

    def counts(self) -> Dict[str, int]:
        """Node counts by state name (for progress reporting)."""
        out: Dict[str, int] = {}
        for node in self._nodes.values():
            out[node.state.value] = out.get(node.state.value, 0) + 1
        return out

    def __repr__(self) -> str:
        return f"<DAG {self.name} {len(self)} nodes {self.counts()}>"
