"""A typed, stdlib-only client for the v1 grid-as-a-service API.

:class:`GridClient` wraps the HTTP surface :mod:`repro.service` exposes
— submit, poll, reports, events, health, metrics — against the
canonical ``/v1`` routes, and returns the same frozen
:class:`~repro.core.results.ReportRecord` types the server serialises
(:class:`~repro.service.schemas.RunSubmitted`,
:class:`~repro.service.schemas.RunView`, ...), so a client-side caller
and an embedded-``ServiceApp`` caller handle identical shapes.

Errors are typed too: every non-2xx response carries the uniform
``{"error": {"code", "message", "hint"}}`` envelope, which surfaces
here as :class:`GridServiceError` with ``status``, ``code``, ``hint``,
and (for 429s) ``retry_after`` attributes — so callers branch on
``exc.code == "quota_exceeded"`` instead of parsing message strings.

Only :mod:`urllib.request` under the hood: the client imports cleanly
anywhere the package does.

Typical use::

    from repro.client import GridClient

    client = GridClient("http://127.0.0.1:8080")
    submitted = client.submit({"scale": 6000}, client_id="alice",
                              lane="interactive")
    view = client.wait(submitted.run_id)
    page = client.report(view.run_id, "ops")
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.parse
import urllib.request
from typing import Dict, Iterator, List, Optional, Tuple

from .core.results import ReportPage
from .errors import GridError
from .service.schemas import HealthView, RunEvents, RunSubmitted, RunView

#: The API version prefix the client speaks (matches the server's).
API_PREFIX = "/v1"


class GridServiceError(GridError):
    """A non-2xx response, decoded from the v1 error envelope.

    ``status`` is the HTTP status; ``code`` is the stable slug from
    :data:`~repro.service.schemas.ERROR_CODES`; ``hint`` is the
    server's what-to-do-about-it text; ``retry_after`` is the parsed
    ``Retry-After`` header in seconds (None unless the server sent
    one — 429s always do).
    """

    def __init__(self, status: int, code: str, message: str,
                 hint: str = "", retry_after: Optional[int] = None) -> None:
        text = f"[{status} {code}] {message}"
        if hint:
            text += f" (hint: {hint})"
        super().__init__(text)
        self.status = status
        self.code = code
        self.hint = hint
        self.retry_after = retry_after


class GridClient:
    """Typed access to one grid service at ``base_url``."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- transport -------------------------------------------------------------
    def _request(self, method: str, path: str,
                 query: Optional[Dict[str, object]] = None,
                 body: Optional[Dict[str, object]] = None,
                 ) -> Tuple[int, Dict[str, str], bytes]:
        url = f"{self.base_url}{API_PREFIX}{path}"
        if query:
            url += "?" + urllib.parse.urlencode(
                {k: v for k, v in query.items() if v is not None})
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body, sort_keys=True).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            url, data=data, method=method, headers=headers)
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as rsp:
                return rsp.status, dict(rsp.headers), rsp.read()
        except urllib.error.HTTPError as exc:
            raw = exc.read()
            raise self._decode_error(
                exc.code, dict(exc.headers), raw) from exc

    @staticmethod
    def _decode_error(status: int, headers: Dict[str, str],
                      raw: bytes) -> GridServiceError:
        code, message, hint = "internal_error", raw.decode(
            "utf-8", "replace"), ""
        try:
            envelope = json.loads(raw).get("error", {})
            code = str(envelope.get("code", code))
            message = str(envelope.get("message", message))
            hint = str(envelope.get("hint", ""))
        except (ValueError, AttributeError):
            pass  # not an envelope (shouldn't happen on a v1 server)
        retry_after: Optional[int] = None
        raw_retry = headers.get("Retry-After")
        if raw_retry is not None:
            try:
                retry_after = int(raw_retry)
            except ValueError:
                retry_after = None
        return GridServiceError(status, code, message, hint,
                                retry_after=retry_after)

    def _get_json(self, path: str,
                  query: Optional[Dict[str, object]] = None) -> Dict:
        _status, _headers, raw = self._request("GET", path, query=query)
        return json.loads(raw)

    # -- submission & polling --------------------------------------------------
    def submit(self, config: Optional[Dict[str, object]] = None,
               scenario: Optional[str] = None,
               client_id: str = "anonymous",
               lane: str = "batch") -> RunSubmitted:
        """``POST /v1/runs``: submit (or dedup-join) one simulation.

        ``config`` is a dict of :class:`~repro.Grid3Config` knobs (on
        top of ``scenario`` when both are given); ``client_id``/``lane``
        are the admission identity.  Raises :class:`GridServiceError`
        with ``code="quota_exceeded"`` (and ``retry_after`` set) on a
        quota breach.
        """
        body: Dict[str, object] = {"client": client_id, "lane": lane}
        if config is not None:
            body["config"] = config
        if scenario is not None:
            body["scenario"] = scenario
        _status, _headers, raw = self._request("POST", "/runs", body=body)
        return RunSubmitted(**json.loads(raw))

    def run(self, run_id: int) -> RunView:
        """``GET /v1/runs/{id}``: the run's current state snapshot."""
        return RunView(**self._get_json(f"/runs/{run_id}"))

    def runs(self, offset: int = 0, limit: int = 500) -> ReportPage:
        """``GET /v1/runs``: the paginated run listing (raw dict rows)."""
        data = self._get_json("/runs", {"offset": offset, "limit": limit})
        return self._page(data)

    def wait(self, run_id: int, timeout: float = 600.0,
             poll_s: float = 0.2) -> RunView:
        """Poll ``/v1/runs/{id}`` until the run is terminal.

        Returns the terminal :class:`RunView` whatever the outcome —
        callers check ``view.state`` (``done``/``failed``/
        ``interrupted``).  Raises :class:`TimeoutError` if the run is
        still going when ``timeout`` elapses.
        """
        deadline = time.monotonic() + timeout
        while True:
            view = self.run(run_id)
            if view.state in ("done", "failed", "interrupted"):
                return view
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"run {run_id} still {view.state!r} after {timeout}s")
            time.sleep(poll_s)

    # -- results ---------------------------------------------------------------
    @staticmethod
    def _page(data: Dict) -> ReportPage:
        """A served pagination envelope back as the frozen ReportPage
        (the wire shape nests offset/limit under ``slice``)."""
        slice_ = data["slice"]
        return ReportPage(rows=tuple(data["items"]), total=data["total"],
                          offset=slice_["offset"], limit=slice_["limit"])

    def report(self, run_id: int, kind: str, offset: int = 0,
               limit: int = 500) -> ReportPage:
        """``GET /v1/runs/{id}/report/{kind}``: one paginated report."""
        data = self._get_json(f"/runs/{run_id}/report/{kind}",
                              {"offset": offset, "limit": limit})
        return self._page(data)

    def report_rows(self, run_id: int, kind: str,
                    page_size: int = 500) -> Iterator[Dict[str, object]]:
        """Every row of one report, walking the pagination for you."""
        offset = 0
        while True:
            page = self.report(run_id, kind, offset=offset, limit=page_size)
            for row in page.rows:
                yield row
            offset += len(page.rows)
            if offset >= page.total or not page.rows:
                return

    def events(self, run_id: int, since: int = -1) -> RunEvents:
        """``GET /v1/runs/{id}/events?since=N``: the progress delta."""
        data = self._get_json(f"/runs/{run_id}/events", {"since": since})
        return RunEvents(**data)

    def run_metrics(self, run_id: int) -> str:
        """``GET /v1/runs/{id}/metrics``: the run's Prometheus text."""
        _status, _headers, raw = self._request(
            "GET", f"/runs/{run_id}/metrics")
        return raw.decode("utf-8")

    # -- service-level surfaces ------------------------------------------------
    def health(self) -> HealthView:
        """``GET /v1/healthz`` as the typed record."""
        return HealthView(**self._get_json("/healthz"))

    def metrics(self) -> Dict[str, float]:
        """``GET /v1/metrics?format=json``: the flat gauge snapshot."""
        return self._get_json("/metrics", {"format": "json"})

    def metrics_text(self) -> str:
        """``GET /v1/metrics``: the Prometheus text exposition."""
        _status, _headers, raw = self._request("GET", "/metrics")
        return raw.decode("utf-8")

    def alerts(self) -> List[Dict[str, object]]:
        """``GET /v1/alerts``: the live alert-rule state rows."""
        return self._get_json("/alerts")["rules"]
