"""The computer-science laboratory side of Grid3 (§1, §4.7).

The paper's first stated goal: "a platform for experimental computer
science research by GriPhyN and other grid researchers."  This
subpackage is that platform for the simulated grid: declarative
experiment specs, parameter sweeps over :class:`Grid3Config`, and
result tables."""

from .experiment import (
    ExperimentResult,
    ExperimentSpec,
    UnpicklableSpecWarning,
    render_results,
    run_experiment,
    sweep,
)

__all__ = [
    "ExperimentResult",
    "ExperimentSpec",
    "UnpicklableSpecWarning",
    "render_results",
    "run_experiment",
    "sweep",
]
