"""Experiment harness: declarative sweeps over grid configurations.

Grid3's charter included being a laboratory for grid-computing research
(§1); the §4.7 demonstrators were exactly such experiments run against
the production system.  This module makes the simulated grid usable the
same way:

    spec = ExperimentSpec(
        name="failure-sensitivity",
        base=dict(scale=400, duration_days=10, apps=["ivdgl"]),
        variants={
            "calm":  dict(failures=FailureProfile.calm()),
            "noisy": dict(failures=FailureProfile.early()),
        },
        metrics={
            "success": lambda grid: grid.acdc_db.success_rate(),
            "cpu_days": lambda grid: grid.acdc_db.total_cpu_days(),
        },
        repeats=3,
    )
    results = run_experiment(spec)
    print(render_results(results))

Each (variant, seed) cell builds a fresh :class:`Grid3`, runs the full
window, evaluates every metric, and reports mean ± spread across
repeats.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.report import render_table
from ..core.grid3 import Grid3, Grid3Config


@dataclass
class ExperimentSpec:
    """One declarative experiment."""

    name: str
    #: Keyword arguments shared by every variant (Grid3Config fields).
    base: Dict[str, object]
    #: variant name -> config overrides.
    variants: Dict[str, Dict[str, object]]
    #: metric name -> fn(grid) -> float, evaluated post-run.
    metrics: Dict[str, Callable[[Grid3], float]]
    #: Independent seeds per variant.
    repeats: int = 1
    #: Base seed; repeat ``i`` uses ``seed0 + i``.
    seed0: int = 1000

    def __post_init__(self) -> None:
        if self.repeats < 1:
            raise ValueError("repeats must be >= 1")
        if not self.variants:
            raise ValueError("need at least one variant")
        if not self.metrics:
            raise ValueError("need at least one metric")


@dataclass(frozen=True)
class ExperimentResult:
    """Aggregated outcomes for one variant."""

    variant: str
    repeats: int
    #: metric -> per-repeat values.
    samples: Dict[str, tuple]

    def mean(self, metric: str) -> float:
        return float(np.mean(self.samples[metric]))

    def std(self, metric: str) -> float:
        return float(np.std(self.samples[metric]))

    def minmax(self, metric: str) -> tuple:
        values = self.samples[metric]
        return (min(values), max(values))


def _run_cell(spec: ExperimentSpec, variant: str, repeat: int) -> Grid3:
    kwargs = dict(spec.base)
    kwargs.update(spec.variants[variant])
    kwargs["seed"] = spec.seed0 + repeat
    grid = Grid3(Grid3Config(**kwargs))
    grid.run_full()
    return grid


def _run_cell_metrics(
    spec: ExperimentSpec, variant: str, repeat: int
) -> Dict[str, float]:
    """Worker body: run one cell, evaluate every metric in-process.

    Only floats cross the process boundary — a full Grid3 (engine,
    generators, open simulation state) does not pickle and should not.
    """
    grid = _run_cell(spec, variant, repeat)
    return {metric: float(fn(grid)) for metric, fn in spec.metrics.items()}


def _cells_parallel(
    spec: ExperimentSpec,
    cells: List[Tuple[str, int]],
    workers: int,
    progress: Optional[Callable[[str], None]],
) -> Dict[Tuple[str, int], Dict[str, float]]:
    """Fan cells out over a process pool; collect by (variant, repeat)."""
    values: Dict[Tuple[str, int], Dict[str, float]] = {}
    with ProcessPoolExecutor(max_workers=min(workers, len(cells))) as pool:
        futures = {
            pool.submit(_run_cell_metrics, spec, variant, repeat): (variant, repeat)
            for variant, repeat in cells
        }
        pending = set(futures)
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                variant, repeat = futures[future]
                values[(variant, repeat)] = future.result()
                if progress is not None:
                    progress(
                        f"{spec.name}: {variant} repeat "
                        f"{repeat + 1}/{spec.repeats} done"
                    )
    return values


def run_experiment(
    spec: ExperimentSpec,
    progress: Optional[Callable[[str], None]] = None,
    workers: int = 1,
) -> List[ExperimentResult]:
    """Run every (variant × repeat) cell and aggregate the metrics.

    ``workers`` > 1 fans the cells out over a
    :class:`~concurrent.futures.ProcessPoolExecutor` (each worker builds
    its own :class:`Grid3`, so cells stay bit-identical to a sequential
    run); ``workers=None`` means one per CPU.  Results are assembled in
    declaration order regardless of completion order.  Specs that do not
    pickle (e.g. lambda metrics) silently run sequentially — correctness
    first, speedup when the spec allows it.
    """
    if workers is None:
        workers = os.cpu_count() or 1
    cells = [
        (variant, repeat)
        for variant in spec.variants
        for repeat in range(spec.repeats)
    ]
    values: Dict[Tuple[str, int], Dict[str, float]] = {}
    parallel = workers > 1 and len(cells) > 1
    if parallel:
        try:
            pickle.dumps(spec)
        except Exception:  # noqa: BLE001 - lambdas, closures, local classes
            parallel = False
    if parallel:
        values = _cells_parallel(spec, cells, workers, progress)
    else:
        for variant, repeat in cells:
            if progress is not None:
                progress(f"{spec.name}: {variant} repeat {repeat + 1}/{spec.repeats}")
            values[(variant, repeat)] = _run_cell_metrics(spec, variant, repeat)
    results: List[ExperimentResult] = []
    for variant in spec.variants:
        collected: Dict[str, List[float]] = {m: [] for m in spec.metrics}
        for repeat in range(spec.repeats):
            cell = values[(variant, repeat)]
            for metric in spec.metrics:
                collected[metric].append(cell[metric])
        results.append(ExperimentResult(
            variant=variant,
            repeats=spec.repeats,
            samples={m: tuple(v) for m, v in collected.items()},
        ))
    return results


def sweep(
    name: str,
    base: Dict[str, object],
    parameter: str,
    values: Sequence[object],
    metrics: Dict[str, Callable[[Grid3], float]],
    repeats: int = 1,
    seed0: int = 1000,
    workers: int = 1,
) -> List[ExperimentResult]:
    """Convenience: a one-parameter sweep (variant per value)."""
    variants = {f"{parameter}={value!r}": {parameter: value} for value in values}
    spec = ExperimentSpec(
        name=name, base=base, variants=variants,
        metrics=metrics, repeats=repeats, seed0=seed0,
    )
    return run_experiment(spec, workers=workers)


def render_results(results: List[ExperimentResult]) -> str:
    """Mean ± std table across variants."""
    if not results:
        return "(no results)"
    metric_names = sorted(results[0].samples)
    headers = ["variant", "n"] + metric_names
    rows = []
    for result in results:
        cells = [result.variant, result.repeats]
        for metric in metric_names:
            mean = result.mean(metric)
            std = result.std(metric)
            cells.append(f"{mean:.3g}±{std:.2g}" if result.repeats > 1 else f"{mean:.3g}")
        rows.append(cells)
    return render_table(headers, rows)
