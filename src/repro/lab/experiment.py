"""Experiment harness: declarative sweeps over grid configurations.

Grid3's charter included being a laboratory for grid-computing research
(§1); the §4.7 demonstrators were exactly such experiments run against
the production system.  This module makes the simulated grid usable the
same way:

    spec = ExperimentSpec(
        name="failure-sensitivity",
        base=dict(scale=400, duration_days=10, apps=["ivdgl"]),
        variants={
            "calm":  dict(failures=FailureProfile.calm()),
            "noisy": dict(failures=FailureProfile.early()),
        },
        metrics={
            "success": lambda grid: grid.acdc_db.success_rate(),
            "cpu_days": lambda grid: grid.acdc_db.total_cpu_days(),
        },
        repeats=3,
    )
    results = run_experiment(spec)
    print(render_results(results))

Each (variant, seed) cell builds a fresh :class:`Grid3`, runs the full
window, evaluates every metric, and reports mean ± spread across
repeats.

Parallelism model (``workers``):

* ``workers=None`` asks for one worker per *available* core —
  ``os.sched_getaffinity(0)`` where the platform has it (it respects
  container cpusets and taskset masks), ``os.cpu_count()`` otherwise.
* ``workers`` larger than the available cores is clamped down with a
  note through ``progress`` — oversubscribing cores never helps a
  CPU-bound simulation.
* Cells are submitted to a **persistent** process pool (reused across
  ``run_experiment`` calls in the same process) in **chunks** sized to
  amortize task overhead while still load-balancing.
* Before fanning out on a cold pool, the first cell runs in-process as
  a *calibration cell*: its wall time feeds a cost model that keeps
  tiny sweeps sequential (worker spawn + import costs more than it
  saves).  On a warm pool the fan-out starts immediately.
* Cells are always independent full runs, so parallel results are
  bit-identical to a sequential run and are assembled in declaration
  order regardless of completion order.
* A spec that cannot pickle (lambda metrics, closures) falls back to
  sequential with an :class:`UnpicklableSpecWarning` naming the
  offending attribute — never silently.
"""

from __future__ import annotations

import atexit
import os
import pickle
import time
import warnings
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.report import render_table
from ..core.grid3 import Grid3, Grid3Config

#: Chunks submitted per worker: small enough to amortize per-task
#: overhead, large enough that an unlucky slow chunk can be balanced
#: by the others.
_CHUNKS_PER_WORKER = 4

#: Cost-model estimates (seconds) for bringing up a process pool:
#: cold = spawn + interpreter start + ``import repro`` per worker;
#: warm = dispatch overhead on an already-running pool.
_COLD_POOL_COST_S = 0.5
_WARM_POOL_COST_S = 0.05


class UnpicklableSpecWarning(UserWarning):
    """A spec attribute does not pickle, so the sweep ran sequentially."""


@dataclass
class ExperimentSpec:
    """One declarative experiment."""

    name: str
    #: Keyword arguments shared by every variant (Grid3Config fields).
    base: Dict[str, object]
    #: variant name -> config overrides.
    variants: Dict[str, Dict[str, object]]
    #: metric name -> fn(grid) -> float, evaluated post-run.
    metrics: Dict[str, Callable[[Grid3], float]]
    #: Independent seeds per variant.
    repeats: int = 1
    #: Base seed; repeat ``i`` uses ``seed0 + i``.
    seed0: int = 1000

    def __post_init__(self) -> None:
        if self.repeats < 1:
            raise ValueError("repeats must be >= 1")
        if not self.variants:
            raise ValueError("need at least one variant")
        if not self.metrics:
            raise ValueError("need at least one metric")


@dataclass(frozen=True)
class ExperimentResult:
    """Aggregated outcomes for one variant."""

    variant: str
    repeats: int
    #: metric -> per-repeat values.
    samples: Dict[str, tuple]

    def mean(self, metric: str) -> float:
        return float(np.mean(self.samples[metric]))

    def std(self, metric: str) -> float:
        return float(np.std(self.samples[metric]))

    def minmax(self, metric: str) -> tuple:
        values = self.samples[metric]
        return (min(values), max(values))


# -- worker budgeting ---------------------------------------------------------

def _available_cores() -> int:
    """Cores this process may actually run on.

    ``os.sched_getaffinity(0)`` respects cgroup cpusets and taskset
    masks (the container case where ``os.cpu_count()`` over-reports);
    platforms without it fall back to ``os.cpu_count()``.
    """
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        try:
            return len(getaffinity(0)) or 1
        except OSError:  # pragma: no cover - exotic platforms
            pass
    return os.cpu_count() or 1


def _effective_workers(
    workers: Optional[int],
    n_cells: int,
    progress: Optional[Callable[[str], None]],
) -> int:
    """Resolve the ``workers`` request against the core budget."""
    cores = _available_cores()
    if workers is None:
        workers = cores
    elif workers > cores:
        note = (
            f"workers={workers} exceeds {cores} available core(s); "
            f"using {cores} (oversubscription never helps CPU-bound cells)"
        )
        if progress is not None:
            progress(note)
        workers = cores
    return max(1, min(workers, n_cells))


# -- the persistent pool ------------------------------------------------------

_pool: Optional[ProcessPoolExecutor] = None
_pool_size = 0


def _get_pool(workers: int) -> Tuple[ProcessPoolExecutor, bool]:
    """A process pool with at least ``workers`` workers.

    Returns ``(pool, was_warm)``.  The pool persists across
    ``run_experiment`` calls (spawn + ``import repro`` is the dominant
    fan-out cost, paid once per process instead of once per sweep); a
    too-small pool is replaced by a bigger one.
    """
    global _pool, _pool_size
    if _pool is not None and _pool_size >= workers:
        return _pool, True
    if _pool is not None:
        _pool.shutdown(wait=False, cancel_futures=True)
    _pool = ProcessPoolExecutor(max_workers=workers)
    _pool_size = workers
    return _pool, False


def _discard_pool() -> None:
    global _pool, _pool_size
    if _pool is not None:
        _pool.shutdown(wait=False, cancel_futures=True)
        _pool = None
        _pool_size = 0


atexit.register(_discard_pool)


# -- pickling pre-flight ------------------------------------------------------

def _find_unpicklable(spec: ExperimentSpec) -> str:
    """Name the spec attribute that fails to pickle (best effort)."""
    probes: List[Tuple[str, object]] = []
    for metric, fn in spec.metrics.items():
        probes.append((f"metrics[{metric!r}]", fn))
    for variant, overrides in spec.variants.items():
        for key, value in overrides.items():
            probes.append((f"variants[{variant!r}][{key!r}]", value))
    for key, value in spec.base.items():
        probes.append((f"base[{key!r}]", value))
    for path, obj in probes:
        try:
            pickle.dumps(obj)
        except Exception as exc:  # noqa: BLE001 - reporting, not handling
            return f"{path} = {obj!r} ({type(exc).__name__}: {exc})"
    return "the spec as a whole (no single attribute identified)"


def _spec_is_picklable(
    spec: ExperimentSpec, progress: Optional[Callable[[str], None]]
) -> bool:
    try:
        pickle.dumps(spec)
        return True
    except Exception:  # noqa: BLE001 - lambdas, closures, local classes
        culprit = _find_unpicklable(spec)
        message = (
            f"experiment {spec.name!r}: spec does not pickle — {culprit}; "
            f"running sequentially (move the offender to module level to "
            f"enable workers)"
        )
        warnings.warn(message, UnpicklableSpecWarning, stacklevel=4)
        if progress is not None:
            progress(message)
        return False


# -- cell execution -----------------------------------------------------------

def _run_cell(spec: ExperimentSpec, variant: str, repeat: int) -> Grid3:
    kwargs = dict(spec.base)
    kwargs.update(spec.variants[variant])
    kwargs["seed"] = spec.seed0 + repeat
    grid = Grid3(Grid3Config(**kwargs))
    grid.run_full()
    return grid


def _run_cell_metrics(
    spec: ExperimentSpec, variant: str, repeat: int
) -> Dict[str, float]:
    """Run one cell, evaluate every metric in-process.

    Only floats cross the process boundary — a full Grid3 (engine,
    generators, open simulation state) does not pickle and should not.
    """
    grid = _run_cell(spec, variant, repeat)
    return {metric: float(fn(grid)) for metric, fn in spec.metrics.items()}


def _run_cell_batch(
    spec: ExperimentSpec, chunk: List[Tuple[str, int]]
) -> List[Tuple[str, int, Dict[str, float]]]:
    """Worker body: run a chunk of cells, return tagged metric dicts."""
    return [
        (variant, repeat, _run_cell_metrics(spec, variant, repeat))
        for variant, repeat in chunk
    ]


def _chunk_cells(
    cells: List[Tuple[str, int]], workers: int
) -> List[List[Tuple[str, int]]]:
    """Split cells into round-robin-sized contiguous chunks.

    One future per cell maximizes scheduling overhead; one future per
    worker loses all load balancing.  ``_CHUNKS_PER_WORKER`` chunks per
    worker is the usual compromise.
    """
    n = len(cells)
    size = max(1, -(-n // (workers * _CHUNKS_PER_WORKER)))
    return [cells[i:i + size] for i in range(0, n, size)]


def _cells_parallel(
    spec: ExperimentSpec,
    cells: List[Tuple[str, int]],
    workers: int,
    progress: Optional[Callable[[str], None]],
    done_offset: int = 0,
    total: Optional[int] = None,
    executor: Optional[ProcessPoolExecutor] = None,
) -> Dict[Tuple[str, int], Dict[str, float]]:
    """Fan cell chunks out over a process pool; collect by cell key.

    Progress messages carry completed/total *counts* only, so their
    content is identical no matter which worker finishes first.
    ``executor`` is injectable for tests; by default the persistent
    pool is used.
    """
    values: Dict[Tuple[str, int], Dict[str, float]] = {}
    total = total if total is not None else len(cells)
    if executor is None:
        executor, _warm = _get_pool(workers)
    futures = {
        executor.submit(_run_cell_batch, spec, chunk): chunk
        for chunk in _chunk_cells(cells, workers)
    }
    done_cells = done_offset
    pending = set(futures)
    while pending:
        finished, pending = wait(pending, return_when=FIRST_COMPLETED)
        for future in finished:
            for variant, repeat, metrics in future.result():
                values[(variant, repeat)] = metrics
                done_cells += 1
                if progress is not None:
                    progress(f"{spec.name}: {done_cells}/{total} cells done")
    return values


def run_experiment(
    spec: ExperimentSpec,
    progress: Optional[Callable[[str], None]] = None,
    workers: Optional[int] = 1,
) -> List[ExperimentResult]:
    """Run every (variant × repeat) cell and aggregate the metrics.

    ``workers`` > 1 fans cell chunks out over a persistent
    :class:`~concurrent.futures.ProcessPoolExecutor` (each worker builds
    its own :class:`Grid3`, so cells stay bit-identical to a sequential
    run); ``workers=None`` means one per available core (see
    :func:`_available_cores`).  Requests beyond the core budget are
    clamped with a ``progress`` note.  Results are assembled in
    declaration order regardless of completion order.

    Specs that do not pickle (e.g. lambda metrics) run sequentially
    with an :class:`UnpicklableSpecWarning` naming the offender.  On a
    cold pool the first cell runs in-process as a calibration cell; if
    the measured remaining work cannot beat the pool spawn cost, the
    sweep stays sequential (tiny sweeps must never get slower).  A pool
    that dies mid-sweep (:class:`BrokenProcessPool`) degrades to
    sequential for the unfinished cells instead of failing the sweep.
    """
    cells = [
        (variant, repeat)
        for variant in spec.variants
        for repeat in range(spec.repeats)
    ]
    total = len(cells)
    workers = _effective_workers(workers, total, progress)
    parallel = workers > 1 and total > 1 and _spec_is_picklable(spec, progress)

    values: Dict[Tuple[str, int], Dict[str, float]] = {}
    done = 0

    def _sequential(remaining: List[Tuple[str, int]]) -> None:
        nonlocal done
        for variant, repeat in remaining:
            values[(variant, repeat)] = _run_cell_metrics(spec, variant, repeat)
            done += 1
            if progress is not None:
                progress(f"{spec.name}: {done}/{total} cells done")

    if parallel:
        _pool_obj, warm = _get_pool(workers)
        remaining = cells
        if not warm:
            # Calibration cell: measure one cell in-process (the result
            # is kept, not thrown away) and only fan out if the saved
            # wall time beats the pool bring-up cost.  This is what
            # keeps a 9-small-cell sweep from the historical 0.79x
            # slowdown.
            t0 = time.perf_counter()
            _sequential(cells[:1])
            cell_s = time.perf_counter() - t0
            remaining = cells[1:]
            saved_s = cell_s * len(remaining) * (1.0 - 1.0 / workers)
            if saved_s <= _COLD_POOL_COST_S:
                if progress is not None:
                    progress(
                        f"{spec.name}: sweep too small to amortize worker "
                        f"spawn (~{cell_s:.2f}s/cell × {len(remaining)} "
                        f"cells); staying sequential"
                    )
                parallel = False
        if parallel:
            try:
                values.update(_cells_parallel(
                    spec, remaining, workers, progress,
                    done_offset=done, total=total,
                ))
                done = total
            except BrokenProcessPool:
                _discard_pool()
                if progress is not None:
                    progress(
                        f"{spec.name}: worker pool died; finishing "
                        f"sequentially"
                    )
                _sequential([c for c in remaining if c not in values])
        else:
            _sequential(remaining)
    else:
        _sequential(cells)

    results: List[ExperimentResult] = []
    for variant in spec.variants:
        collected: Dict[str, List[float]] = {m: [] for m in spec.metrics}
        for repeat in range(spec.repeats):
            cell = values[(variant, repeat)]
            for metric in spec.metrics:
                collected[metric].append(cell[metric])
        results.append(ExperimentResult(
            variant=variant,
            repeats=spec.repeats,
            samples={m: tuple(v) for m, v in collected.items()},
        ))
    return results


def sweep(
    name: str,
    base: Dict[str, object],
    parameter: str,
    values: Sequence[object],
    metrics: Dict[str, Callable[[Grid3], float]],
    repeats: int = 1,
    seed0: int = 1000,
    workers: Optional[int] = 1,
) -> List[ExperimentResult]:
    """Convenience: a one-parameter sweep (variant per value)."""
    variants = {f"{parameter}={value!r}": {parameter: value} for value in values}
    spec = ExperimentSpec(
        name=name, base=base, variants=variants,
        metrics=metrics, repeats=repeats, seed0=seed0,
    )
    return run_experiment(spec, workers=workers)


def render_results(results: List[ExperimentResult]) -> str:
    """Mean ± std table across variants."""
    if not results:
        return "(no results)"
    metric_names = sorted(results[0].samples)
    headers = ["variant", "n"] + metric_names
    rows = []
    for result in results:
        cells = [result.variant, result.repeats]
        for metric in metric_names:
            mean = result.mean(metric)
            std = result.std(metric)
            cells.append(f"{mean:.3g}±{std:.2g}" if result.repeats > 1 else f"{mean:.3g}")
        rows.append(cells)
    return render_table(headers, rows)
