"""Experiment harness: declarative sweeps over grid configurations.

Grid3's charter included being a laboratory for grid-computing research
(§1); the §4.7 demonstrators were exactly such experiments run against
the production system.  This module makes the simulated grid usable the
same way:

    spec = ExperimentSpec(
        name="failure-sensitivity",
        base=dict(scale=400, duration_days=10, apps=["ivdgl"]),
        variants={
            "calm":  dict(failures=FailureProfile.calm()),
            "noisy": dict(failures=FailureProfile.early()),
        },
        metrics={
            "success": lambda grid: grid.acdc_db.success_rate(),
            "cpu_days": lambda grid: grid.acdc_db.total_cpu_days(),
        },
        repeats=3,
    )
    results = run_experiment(spec)
    print(render_results(results))

Each (variant, seed) cell builds a fresh :class:`Grid3`, runs the full
window, evaluates every metric, and reports mean ± spread across
repeats.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..analysis.report import render_table
from ..core.grid3 import Grid3, Grid3Config


@dataclass
class ExperimentSpec:
    """One declarative experiment."""

    name: str
    #: Keyword arguments shared by every variant (Grid3Config fields).
    base: Dict[str, object]
    #: variant name -> config overrides.
    variants: Dict[str, Dict[str, object]]
    #: metric name -> fn(grid) -> float, evaluated post-run.
    metrics: Dict[str, Callable[[Grid3], float]]
    #: Independent seeds per variant.
    repeats: int = 1
    #: Base seed; repeat ``i`` uses ``seed0 + i``.
    seed0: int = 1000

    def __post_init__(self) -> None:
        if self.repeats < 1:
            raise ValueError("repeats must be >= 1")
        if not self.variants:
            raise ValueError("need at least one variant")
        if not self.metrics:
            raise ValueError("need at least one metric")


@dataclass(frozen=True)
class ExperimentResult:
    """Aggregated outcomes for one variant."""

    variant: str
    repeats: int
    #: metric -> per-repeat values.
    samples: Dict[str, tuple]

    def mean(self, metric: str) -> float:
        return float(np.mean(self.samples[metric]))

    def std(self, metric: str) -> float:
        return float(np.std(self.samples[metric]))

    def minmax(self, metric: str) -> tuple:
        values = self.samples[metric]
        return (min(values), max(values))


def _run_cell(spec: ExperimentSpec, variant: str, repeat: int) -> Grid3:
    kwargs = dict(spec.base)
    kwargs.update(spec.variants[variant])
    kwargs["seed"] = spec.seed0 + repeat
    grid = Grid3(Grid3Config(**kwargs))
    grid.run_full()
    return grid


def run_experiment(
    spec: ExperimentSpec,
    progress: Optional[Callable[[str], None]] = None,
) -> List[ExperimentResult]:
    """Run every (variant × repeat) cell and aggregate the metrics."""
    results: List[ExperimentResult] = []
    for variant in spec.variants:
        collected: Dict[str, List[float]] = {m: [] for m in spec.metrics}
        for repeat in range(spec.repeats):
            if progress is not None:
                progress(f"{spec.name}: {variant} repeat {repeat + 1}/{spec.repeats}")
            grid = _run_cell(spec, variant, repeat)
            for metric, fn in spec.metrics.items():
                collected[metric].append(float(fn(grid)))
        results.append(ExperimentResult(
            variant=variant,
            repeats=spec.repeats,
            samples={m: tuple(v) for m, v in collected.items()},
        ))
    return results


def sweep(
    name: str,
    base: Dict[str, object],
    parameter: str,
    values: Sequence[object],
    metrics: Dict[str, Callable[[Grid3], float]],
    repeats: int = 1,
    seed0: int = 1000,
) -> List[ExperimentResult]:
    """Convenience: a one-parameter sweep (variant per value)."""
    variants = {f"{parameter}={value!r}": {parameter: value} for value in values}
    spec = ExperimentSpec(
        name=name, base=base, variants=variants,
        metrics=metrics, repeats=repeats, seed0=seed0,
    )
    return run_experiment(spec)


def render_results(results: List[ExperimentResult]) -> str:
    """Mean ± std table across variants."""
    if not results:
        return "(no results)"
    metric_names = sorted(results[0].samples)
    headers = ["variant", "n"] + metric_names
    rows = []
    for result in results:
        cells = [result.variant, result.repeats]
        for metric in metric_names:
            mean = result.mean(metric)
            std = result.std(metric)
            cells.append(f"{mean:.3g}±{std:.2g}" if result.repeats > 1 else f"{mean:.3g}")
        rows.append(cells)
    return render_table(headers, rows)
