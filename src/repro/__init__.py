"""repro: a full-system reproduction of "The Grid2003 Production Grid:
Principles and Practice" (HPDC 2004) as a discrete-event simulation.

The public API surface:

* :class:`Grid3` / :class:`Grid3Config` — build and run the whole grid;
* :mod:`repro.sim` — the simulation kernel;
* :mod:`repro.fabric` — sites, clusters, storage, WAN;
* :mod:`repro.middleware` — GSI, GRAM, GridFTP, RLS, MDS, VOMS, Pacman, SRM;
* :mod:`repro.scheduling` — PBS/Condor/LSF, Condor-G, DAGMan, matchmaking;
* :mod:`repro.workflow` — Chimera, Pegasus, MOP, DIAL;
* :mod:`repro.monitoring` — Ganglia, MonALISA, ACDC, status catalog, MDViewer;
* :mod:`repro.apps` — the seven application demonstrator classes;
* :mod:`repro.failures`, :mod:`repro.ops`, :mod:`repro.analysis`.
"""

from .core.grid3 import APP_CLASSES, EXERCISER_SITES, Grid3, Grid3Config
from .core.job import Job, JobSpec, JobState
from .core.runner import Grid3Runner
from .scenarios import SCENARIOS, build_scenario

__version__ = "1.0.0"

__all__ = [
    "APP_CLASSES",
    "EXERCISER_SITES",
    "Grid3",
    "Grid3Config",
    "Grid3Runner",
    "SCENARIOS",
    "build_scenario",
    "Job",
    "JobSpec",
    "JobState",
    "__version__",
]
