"""repro: a full-system reproduction of "The Grid2003 Production Grid:
Principles and Practice" (HPDC 2004) as a discrete-event simulation.

This package is the curated public facade — import from ``repro``
directly::

    from repro import Grid3, Grid3Config, build_scenario, run_experiment

Everything in ``__all__`` below is stable API.  The subpackages remain
importable for advanced use (one level deep: ``repro.sim``,
``repro.scheduling``, ...), but docs and examples stick to the facade:

* :class:`Grid3` / :class:`Grid3Config` — build and run the whole grid;
* :data:`SCENARIOS` / :func:`build_scenario` — canned operating periods;
* :class:`ExperimentSpec` / :func:`run_experiment` — multi-run studies;
* :class:`UsagePolicy` / :class:`FairShareLedger` — the §5/§7 multi-VO
  policy and fair-share scheduling layer;
* :class:`ReportRecord` / :class:`ReportPage` — the shared
  frozen-dataclass result convention every ops query surface returns,
  and its paginated-slice form;
* :class:`ReproService` / :class:`ServiceApp` — the grid-as-a-service
  HTTP front end (versioned ``/v1`` API: submit runs, poll, fetch
  paginated reports, with result caching keyed by
  :meth:`Grid3Config.canonical_digest`, a durable run registry under
  ``--state-dir``, and fair-share admission control);
* :class:`GridClient` / :class:`GridServiceError` — the typed
  stdlib-only client for that v1 API;
* :mod:`repro.sim` — the simulation kernel;
* :mod:`repro.fabric` — sites, clusters, storage, WAN;
* :mod:`repro.middleware` — GSI, GRAM, GridFTP, RLS, MDS, VOMS, Pacman, SRM;
* :mod:`repro.scheduling` — PBS/Condor/LSF, Condor-G, DAGMan, matchmaking,
  usage policies, fair-share;
* :mod:`repro.workflow` — Chimera, Pegasus, MOP, DIAL;
* :mod:`repro.monitoring` — Ganglia, MonALISA, ACDC, status catalog, MDViewer;
* :mod:`repro.apps` — the seven application demonstrator classes;
* :mod:`repro.failures`, :mod:`repro.ops`, :mod:`repro.analysis`.
"""

from .client import GridClient, GridServiceError
from .core.grid3 import APP_CLASSES, EXERCISER_SITES, Grid3, Grid3Config
from .core.job import Job, JobSpec, JobState
from .core.results import ReportPage, ReportRecord, paginate
from .core.runner import Grid3Runner
from .errors import ConfigurationError, GridError
from .lab import ExperimentSpec, run_experiment, sweep
from .scenarios import SCENARIOS, build_scenario
from .scheduling import (
    FairShareLedger,
    FairShareStatus,
    PolicyEngine,
    UsagePolicy,
)
from .service import ReproService, ServiceApp, collect_reports

__version__ = "1.0.0"

__all__ = [
    "APP_CLASSES",
    "ConfigurationError",
    "EXERCISER_SITES",
    "ExperimentSpec",
    "FairShareLedger",
    "FairShareStatus",
    "Grid3",
    "Grid3Config",
    "Grid3Runner",
    "GridClient",
    "GridError",
    "GridServiceError",
    "Job",
    "JobSpec",
    "JobState",
    "PolicyEngine",
    "ReportPage",
    "ReportRecord",
    "ReproService",
    "SCENARIOS",
    "ServiceApp",
    "UsagePolicy",
    "build_scenario",
    "collect_reports",
    "paginate",
    "run_experiment",
    "sweep",
    "__version__",
]
