"""Canned simulation scenarios: the paper's named operating periods.

Each scenario is a ready-made :class:`~repro.core.grid3.Grid3Config`
capturing one regime the paper describes:

* :func:`sc2003_week` — the Nov 15-21 2003 push: everything running at
  once, pre-stabilisation failure rates, the 30-day Fig. 2/3/5 window.
* :func:`full_observation_window` — the 183-day Table 1 window.
* :func:`stabilized_2004` — §7's "the infrastructure has been stable
  since November": calm failures, sustained production.
* :func:`chaos_deployment` — the October shake-out: high
  misconfiguration, noisy failures, no automation.
* :func:`lesson_applied` — the §8 future: SRM on, auto-validation
  recommended (returned alongside the config flag).
* :func:`disk_pressure` — the §6.2 disk-filling regime on shrunken
  disks, with or without the managed data subsystem.
* :func:`contention` — multi-VO contention on shared facilities, with
  or without the usage-policy / fair-share scheduling layer.
"""

from __future__ import annotations

from typing import Optional

from .apps.base import OBSERVATION_DAYS
from .core.grid3 import Grid3, Grid3Config
from .failures import FailureProfile, FailureSchedule
from .sim.units import DAY, HOUR


def sc2003_week(seed: int = 42, scale: float = 100.0) -> Grid3Config:
    """The SC2003 demonstration period: full mix, 37 days covering the
    Fig. 2/3/5 window (Oct 25 + 30 d), period-appropriate failures."""
    return Grid3Config(
        seed=seed,
        scale=scale,
        duration_days=37.0,
        failures=FailureProfile(),       # the noisy era
        misconfig_probability=0.2,
    )


def full_observation_window(seed: int = 42, scale: float = 50.0) -> Grid3Config:
    """The Table 1 window: 2003-10-23 .. 2004-04-23, all demonstrators."""
    return Grid3Config(
        seed=seed,
        scale=scale,
        duration_days=OBSERVATION_DAYS,
    )


def stabilized_2004(seed: int = 42, scale: float = 100.0) -> Grid3Config:
    """§7's steady state: calm failure rates, low misconfiguration, the
    ops load under 2 FTE."""
    return Grid3Config(
        seed=seed,
        scale=scale,
        duration_days=60.0,
        failures=FailureProfile.calm(),
        misconfig_probability=0.03,
    )


def chaos_deployment(seed: int = 42, scale: float = 200.0) -> Grid3Config:
    """The initial shake-out: every §6 failure class hot, half the
    installs misconfigured, humans not keeping up."""
    return Grid3Config(
        seed=seed,
        scale=scale,
        duration_days=14.0,
        failures=FailureProfile(
            service_failure_interval=2 * DAY,
            network_interruption_interval=4 * DAY,
            node_mtbf=100 * DAY,
            nightly_rollover={"UB_ACDC": 0.4},
        ),
        misconfig_probability=0.5,
        ops_team=False,
    )


def lesson_applied(seed: int = 42, scale: float = 100.0) -> Grid3Config:
    """The §8 lessons folded back in: SRM storage reservation enabled
    (pair with :class:`repro.ops.autovalidate.AutoValidator` for the
    full effect)."""
    return Grid3Config(
        seed=seed,
        scale=scale,
        duration_days=60.0,
        use_srm=True,
        failures=FailureProfile.calm(),
        misconfig_probability=0.1,
    )


def disk_pressure(seed: int = 42, scale: float = 400.0,
                  managed: bool = True) -> Grid3Config:
    """The §6.2 disk-filling regime, reproducible on demand: shrunken
    disks (``disk_scale``) under the output-heavy ivdgl and sdss
    workloads, so failed-job residue and registered outputs genuinely
    fill SEs.  ``managed=True`` turns the data subsystem on; run the
    same seed with ``managed=False`` for the unmanaged baseline the
    StorageAgent is measured against."""
    return Grid3Config(
        seed=seed,
        scale=scale,
        duration_days=21.0,
        apps=["ivdgl", "sdss"],
        disk_scale=200000.0,
        data_management=managed,
        failures=FailureProfile.calm(),
        misconfig_probability=0.05,
    )


def contention(seed: int = 42, scale: float = 400.0,
               fair_share: bool = True) -> Grid3Config:
    """Multi-VO contention on shared facilities (§5/§7): three
    production VOs fight over the same CPU pool with tight per-site
    submission throttles, so a heavy VO can monopolise the in-flight
    slots and starve the lighter ones.  ``fair_share=True`` turns on
    the usage-policy + fair-share layer; run the same seed with
    ``fair_share=False`` for the starvation baseline it is measured
    against (compare the max/min per-VO completed-job ratio)."""
    return Grid3Config(
        seed=seed,
        scale=scale,
        duration_days=7.0,
        apps=["uscms", "usatlas", "sdss"],
        per_site_throttle=24,
        fair_share=fair_share,
        failures=FailureProfile.calm(),
        misconfig_probability=0.05,
    )


def scale_out(seed: int = 42, scale: float = 400.0, sites: int = 500,
              budget_mb: float = 64.0) -> Grid3Config:
    """Break the 27-site ceiling (§8: "the infrastructure must scale"):
    a synthetic ``sites``-site fabric from
    :func:`repro.fabric.synthesize`, traced, with every MetricStore
    under one ``budget_mb`` memory budget.  Run the same seed at
    ``fabric=None`` (the 27-site catalog) next to this config for the
    27-vs-500 comparison; ``scale`` divides workload sizes only —
    site CPUs come from the generator."""
    return Grid3Config(
        seed=seed,
        scale=scale,
        duration_days=3.0,
        fabric={"sites": sites},
        metrics_memory_budget_mb=budget_mb,
        tracing=True,
        apps=["usatlas", "ivdgl", "exerciser"],
        failures=FailureProfile.calm(),
        misconfig_probability=0.05,
    )


def paper_timeline(seed: int = 42, scale: float = 50.0) -> Grid3Config:
    """The full Grid3 arc in one run: §6.1's rough October/November
    shake-out transitioning to §7's stable regime mid-December, over the
    complete Table 1 window."""
    return Grid3Config(
        seed=seed,
        scale=scale,
        duration_days=OBSERVATION_DAYS,
        failures=FailureSchedule.paper_timeline(stabilize_day=50.0),
        misconfig_probability=0.25,
    )


SCENARIOS = {
    "sc2003": sc2003_week,
    "full-window": full_observation_window,
    "stabilized-2004": stabilized_2004,
    "chaos-deployment": chaos_deployment,
    "lesson-applied": lesson_applied,
    "disk-pressure": disk_pressure,
    "contention": contention,
    "scale-out": scale_out,
    "paper-timeline": paper_timeline,
}


def build_scenario(name: str, seed: Optional[int] = None,
                   scale: Optional[float] = None) -> Grid3:
    """Instantiate a Grid3 for a named scenario (KeyError if unknown)."""
    factory = SCENARIOS[name]
    kwargs = {}
    if seed is not None:
        kwargs["seed"] = seed
    if scale is not None:
        kwargs["scale"] = scale
    return Grid3(factory(**kwargs))
