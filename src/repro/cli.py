"""Command-line interface: run Grid3 simulations from a shell.

Subcommands
-----------

``run``        deploy + run a full-mix simulation, print summary/milestones
``figures``    run and print any of the paper's figures (2-6) and Table 1
``catalog``    print the reconstructed 27-site catalog
``fabric``     generate + summarise a synthetic N-site catalog
``export``     run and dump the ACDC job records as CSV
``health``     run and print the per-site, per-service availability table
``data``       run with the managed data subsystem, print storage tables
``trace``      run with tracing on; render a job's span tree + phase breakdown
``fairshare``  run with fair-share scheduling, print per-VO share accounting
``serve``      run the grid-as-a-service HTTP API (submit/poll/report)
``alerts``     run with the iGOC alert engine; print firings + tickets
               (``--lint`` checks the shipped rule sets, ``--url``
               queries a live service's /alerts)
``top``        live terminal dashboard for a run on a service (SSE
               stream; ``--poll`` uses the ?since= delta poll)

Examples::

    python -m repro run --scale 200 --days 14
    python -m repro figures --scale 100 --days 45 --figure 2 --figure 6
    python -m repro catalog
    python -m repro export --scale 300 --days 10 --output records.csv
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis import (
    compute_table1,
    export_database,
    figure2_integrated_cpu,
    figure3_differential_cpu,
    figure4_cms_by_site,
    figure5_data_consumed,
    figure6_jobs_by_month,
    render_table,
    render_table1,
)
from .core.grid3 import APP_CLASSES, Grid3, Grid3Config
from .failures import FailureProfile
from .fabric import GRID3_SITES
from .monitoring.statusmap import status_map_for_catalog
from .scenarios import SCENARIOS
from .sim import DAY, bytes_to_tb


def _add_run_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", type=float, default=200.0,
                        help="CPU/workload divisor (default 200)")
    parser.add_argument("--days", type=float, default=14.0,
                        help="simulated days (default 14)")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--srm", action="store_true",
                        help="enable SRM storage reservation (§8 lesson)")
    parser.add_argument("--random-matchmaking", action="store_true",
                        help="ablation: ignore the §6.4 selection criteria")
    parser.add_argument("--no-failures", action="store_true",
                        help="disable injected failures")
    parser.add_argument(
        "--apps", nargs="*", choices=sorted(APP_CLASSES), default=None,
        help="application subset (default: all)",
    )
    parser.add_argument(
        "--scenario", choices=sorted(SCENARIOS), default=None,
        help="start from a canned scenario config (other flags override "
             "seed/scale/days/apps on top of it)",
    )


def _build_grid(args) -> Grid3:
    if args.scenario is not None:
        config = SCENARIOS[args.scenario](seed=args.seed, scale=args.scale)
        config.duration_days = args.days
        if args.apps is not None:
            config.apps = args.apps
        if args.srm:
            config.use_srm = True
        if args.random_matchmaking:
            config.matchmaking = "random"
        if args.no_failures:
            config.failures = FailureProfile.disabled()
        return Grid3(config)
    config = Grid3Config(
        seed=args.seed,
        scale=args.scale,
        duration_days=args.days,
        use_srm=args.srm,
        matchmaking="random" if args.random_matchmaking else "smart",
        failures=(
            FailureProfile.disabled() if args.no_failures else FailureProfile()
        ),
        apps=args.apps,
    )
    return Grid3(config)


def cmd_run(args, out=print) -> int:
    grid = _build_grid(args)
    out(f"deploying Grid3 (27 sites, scale {args.scale:g})...")
    grid.deploy()
    grid.start_applications()
    out(f"simulating {args.days:g} days...")
    grid.run()
    grid.monitors["acdc"].poll_once()
    db = grid.acdc_db
    out(f"\njob records: {len(db)}  success rate: {db.success_rate():.1%}")
    out(f"failure breakdown: {db.failure_breakdown()}")
    out(f"data moved: {bytes_to_tb(grid.ledger.total_bytes()):.2f} TB (scaled)")
    rows = [
        (vo, len(db.records(vo=vo)), f"{db.success_rate(vo=vo):.0%}",
         round(db.total_cpu_days(vo=vo), 1))
        for vo in db.vos()
    ]
    out("\n" + render_table(["vo", "jobs", "success", "cpu-days"], rows))
    out("\n" + grid.milestones().render())
    if args.map:
        out("\nsite status map (§5.2):")
        out(status_map_for_catalog(grid.monitors["status"].status_page()))
    return 0


def cmd_figures(args, out=print) -> int:
    grid = _build_grid(args)
    grid.run_full()
    viewer = grid.viewer()
    t0, t1 = 0.0, grid.engine.now
    scale = args.scale
    wanted = args.figure or [2, 3, 4, 5, 6]
    for fig in wanted:
        if fig == 2:
            _d, text = figure2_integrated_cpu(viewer, t0, t1, rescale=scale)
        elif fig == 3:
            _d, text = figure3_differential_cpu(viewer, t0, t1, rescale=scale)
        elif fig == 4:
            _d, text = figure4_cms_by_site(viewer, t0, t1, rescale=scale)
        elif fig == 5:
            _d, text = figure5_data_consumed(viewer, t0, t1, rescale=scale)
        else:
            _d, text = figure6_jobs_by_month(viewer, rescale=scale)
        out("\n" + text)
    if args.table1:
        out("\n" + render_table1(compute_table1(grid.acdc_db, grid.calendar)))
    return 0


def cmd_catalog(args, out=print) -> int:
    rows = [
        (s.name, s.institution, s.owner_vo, s.cpus, s.batch_system,
         "shared" if s.shared else "dedicated", s.disk_tb,
         s.max_walltime_hours, "yes" if s.outbound_connectivity else "no")
        for s in GRID3_SITES
    ]
    out(render_table(
        ["site", "institution", "vo", "cpus", "batch", "type",
         "disk TB", "walltime h", "outbound"],
        rows,
    ))
    total = sum(s.cpus for s in GRID3_SITES)
    out(f"\n{len(GRID3_SITES)} sites, {total} CPUs peak")
    return 0


def cmd_fabric(args, out=print) -> int:
    """Generate and summarise a synthetic site catalog (no simulation)."""
    from .fabric import summarize, synthesize
    specs = synthesize(
        sites=args.sites, total_cpus=args.cpus, seed=args.seed,
        regions=args.regions,
    )
    info = summarize(specs)
    out(render_table(
        ["statistic", "value"],
        [(k, v) for k, v in info.items() if not isinstance(v, (dict, list))],
    ))
    out("\nsites per owner VO: " + ", ".join(
        f"{vo}={n}" for vo, n in info["sites_by_vo"].items()))
    out("sites per region: " + ", ".join(
        f"{r}={n}" for r, n in info["sites_by_region"].items()))
    out(f"\nlargest {args.top} sites:")
    ranked = sorted(specs, key=lambda s: -s.cpus)[:args.top]
    out(render_table(
        ["site", "vo", "cpus", "batch", "type", "region", "mbit"],
        [(s.name, s.owner_vo, s.cpus, s.batch_system,
          "shared" if s.shared else "dedicated", s.region or "-",
          f"{s.bandwidth_mbit:g}")
         for s in ranked],
    ))
    return 0


def cmd_export(args, out=print) -> int:
    grid = _build_grid(args)
    grid.run_full()
    text = export_database(grid.acdc_db)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text)
        out(f"wrote {len(grid.acdc_db)} records to {args.output}")
    else:
        out(text)
    return 0


def cmd_health(args, out=print) -> int:
    from .services import render_availability, total_downtime
    grid = _build_grid(args)
    grid.run_full()
    rows = grid.availability_report()
    if args.site:
        rows = [r for r in rows if r.site == args.site]
    out(render_availability(rows))
    out(f"\ntotal downtime: {total_downtime(rows) / 3600.0:.1f} h "
        f"across {sum(r.outages for r in rows)} outages")
    return 0


def cmd_data(args, out=print) -> int:
    """Run with the managed data subsystem and print its accounting."""
    grid = _build_grid(args)
    grid.config.data_management = True
    if args.disk_scale is not None:
        grid.config.disk_scale = args.disk_scale
    # Config edits above must land before construction side-effects; the
    # builder read them in __init__, so rebuild with the final config.
    grid = Grid3(grid.config)
    grid.run_full()
    rows = [
        (r.site, r.files, f"{bytes_to_tb(r.capacity):.2f}",
         f"{r.occupancy:.0%}", r.evictions,
         f"{bytes_to_tb(r.evicted_bytes):.3f}", r.replicas_received)
        for r in grid.data.report()
    ]
    out(render_table(
        ["site", "files", "cap TB", "occupancy", "evictions",
         "evicted TB", "replicas in"],
        rows,
    ))
    hot = grid.data.hot_datasets(args.top)
    if hot:
        out(f"\ntop {len(hot)} hot datasets:")
        out(render_table(
            ["dataset", "vo", "files", "accesses"],
            [(d.name, d.vo, len(d.files), d.accesses) for d in hot],
        ))
    else:
        out("\nno dataset accesses recorded")
    counters = grid.data.counters()
    out("\n" + render_table(
        ["counter", "value"],
        [(k, f"{v:g}") for k, v in sorted(counters.items())],
    ))
    return 0


def cmd_trace(args, out=print) -> int:
    """Run with end-to-end tracing and answer "where did the time go?"."""
    from .trace import (
        render_breakdown,
        render_span_tree,
        slowest_traces,
        write_chrome_trace,
        write_jsonl,
    )
    grid = _build_grid(args)
    grid.config.tracing = True
    # Config edits above must land before construction side-effects; the
    # builder read them in __init__, so rebuild with the final config.
    grid = Grid3(grid.config)
    grid.run_full()
    store = grid.tracer.store
    ops = grid.troubleshooting()

    if args.job_id is not None:
        root = store.trace_for_job(args.job_id)
        if root is None:
            out(f"no trace for execution-side job id {args.job_id} "
                f"({len(store)} traces retained)")
            return 1
        for line in render_span_tree(root):
            out(line)
    else:
        rows = [
            (r.trace_id, r.name, r.vo, r.status,
             f"{r.makespan:.0f}s", r.critical_phase,
             ",".join(str(j) for j in r.job_ids) or "-")
            for r in ops.slowest_jobs(args.top)
        ]
        out(f"slowest {len(rows)} of {len(store)} traced jobs:")
        out(render_table(
            ["trace", "job", "vo", "status", "makespan", "critical phase",
             "exec ids"],
            rows,
        ))

    out("")
    for line in render_breakdown(ops.phase_breakdown(args.vo)):
        out(line)

    if args.perfetto:
        n = write_chrome_trace(store, args.perfetto,
                               clip_open_at=grid.engine.now)
        out(f"\nwrote {n} trace events to {args.perfetto} "
            f"(load in chrome://tracing or ui.perfetto.dev)")
    if args.jsonl:
        n = write_jsonl(store, args.jsonl)
        out(f"wrote {n} spans to {args.jsonl}")
    return 0


def cmd_fairshare(args, out=print) -> int:
    """Run with the fair-share layer and print its accounting; with
    ``--compare``, run the same seed without it and contrast per-VO
    completions."""
    grid = _build_grid(args)
    grid.config.fair_share = True
    # Config edits above must land before construction side-effects; the
    # builder read them in __init__, so rebuild with the final config.
    grid = Grid3(grid.config)
    grid.run_full()

    rows = [
        (r.vo, f"{r.target_share:.0%}", f"{r.observed_share:.0%}",
         f"{r.decayed_usage / 3600.0:.1f}", f"{r.priority_factor:.2f}",
         r.charges)
        for r in grid.fairshare_report()
    ]
    out(render_table(
        ["vo", "target", "observed", "decayed cpu-h", "priority", "charges"],
        rows,
    ))
    rejects = grid.policy_report()
    if rejects:
        out("\npolicy rejections (never submitted):")
        out(render_table(
            ["site", "vo", "reason", "count"],
            [(r.site, r.vo, r.reason, r.count) for r in rejects],
        ))
    else:
        out("\nno policy rejections")
    caps = grid.policy_engine.share_rows()
    hot = [r for r in caps if r.peak >= r.cap]
    if hot:
        out("\nshare slots that ran at their cap:")
        out(render_table(
            ["site", "vo", "cap", "peak"],
            [(r.site, r.vo, r.cap, r.peak) for r in hot],
        ))

    if args.compare:
        baseline_cfg = _build_grid(args).config
        baseline_cfg.fair_share = False
        baseline = Grid3(baseline_cfg)
        baseline.run_full()

        def per_vo(g):
            return {
                vo: g.condorg[vo].completed
                for vo in sorted(g.condorg)
                if g.condorg[vo].submitted
            }

        def ratio(done):
            if not done:
                return 0.0
            return max(done.values()) / max(1, min(done.values()))

        with_fs, without = per_vo(grid), per_vo(baseline)
        out("\nsame-seed comparison (completed jobs per VO):")
        out(render_table(
            ["vo", "fair-share", "baseline"],
            [(vo, with_fs.get(vo, 0), without.get(vo, 0))
             for vo in sorted(set(with_fs) | set(without))],
        ))
        out(f"max/min completion ratio: {ratio(with_fs):.2f} with "
            f"fair-share vs {ratio(without):.2f} without")
    return 0


def cmd_serve(args, out=print) -> int:
    """Run the HTTP service until interrupted (Ctrl-C drains the queue)."""
    from .service import serve
    return serve(
        port=args.port,
        workers=args.workers,
        host=args.host,
        queue_depth=args.queue_depth,
        cache_bytes=int(args.cache_mb * 1024 * 1024),
        state_dir=args.state_dir,
        quota_per_client=args.quota,
        out=out,
    )


def cmd_alerts(args, out=print) -> int:
    """In-sim alert/ticket loop, rule-set lint, or live /alerts query."""
    from .ops.alerts import default_rules, lint_rules, service_rules

    if args.url:
        import json as _json
        from urllib.request import urlopen
        with urlopen(args.url.rstrip("/") + "/alerts", timeout=10) as resp:
            payload = _json.loads(resp.read().decode("utf-8"))
        rows = payload["rules"]
        out(render_table(
            ["rule", "metric", "severity", "firing", "value", "threshold"],
            [(r["name"], r["metric"], r["severity"],
              "FIRING" if r["firing"] else "ok",
              "-" if r["value"] is None else f"{r['value']:g}",
              f"{r['threshold']:g}")
             for r in rows],
        ))
        out(f"\n{payload['firing']} of {len(rows)} rule(s) firing")
        return 1 if payload["firing"] else 0

    if args.lint:
        # Real metric names: a tiny simulation for the in-sim estate
        # (long enough for the hourly service-health cadence to have
        # produced samples), a real (idle) ServiceApp for the service
        # scrape names.
        grid = Grid3(Grid3Config(
            seed=args.seed, scale=3000.0, duration_days=0.25,
            apps=["exerciser"],
        ))
        grid.run_full()
        sim_names = grid.monitors["service-health"].store.names()
        problems = lint_rules(default_rules(), sim_names)
        from .service.app import ServiceApp
        app = ServiceApp(workers=1, queue_depth=8)
        try:
            service_names = list(app.service_metrics())
        finally:
            app.close(drain=False)
        problems += lint_rules(service_rules(8, 1), service_names)
        for problem in problems:
            out(f"LINT: {problem}")
        total = len(default_rules()) + len(service_rules(8, 1))
        if problems:
            out(f"{len(problems)} problem(s) in {total} shipped rule(s)")
            return 1
        out(f"{total} shipped alert rule(s) lint clean")
        return 0

    grid = _build_grid(args)
    grid.config.alerts = True
    # Config edits above must land before construction side-effects; the
    # builder read them in __init__, so rebuild with the final config.
    grid = Grid3(grid.config)
    grid.run_full()
    engine = grid.alert_monitor.alert_engine
    out(render_table(
        ["rule", "metric", "severity", "firing", "transitions"],
        [(row.name, row.metric, row.severity,
          "FIRING" if row.firing else "ok", row.transitions)
         for row in engine.status_rows()],
    ))
    if engine.history:
        out("\nalert transitions:")
        out(render_table(
            ["sim day", "rule", "event", "value"],
            [(f"{t.time / DAY:.2f}", t.rule, t.event,
              "-" if t.value is None else f"{t.value:.3f}")
             for t in engine.history],
        ))
    else:
        out("\nno alert transitions (the grid stayed inside every rule)")
    tickets = grid.igoc.tickets.all_tickets(site="grid")
    out(f"\n{len(tickets)} alert ticket(s) opened; "
        f"{sum(1 for t in tickets if t.resolved_at >= 0)} resolved")
    return 0


def cmd_top(args, out=print) -> int:
    """Render a run's live progress stream as a terminal dashboard."""
    import json as _json
    import time as _time
    from urllib.request import urlopen

    from .monitoring.progress import render_progress_line
    from .service.progress import iter_sse_events

    base = args.url.rstrip("/")
    if args.poll:
        since = -1
        while True:
            with urlopen(f"{base}/runs/{args.run_id}/events?since={since}",
                         timeout=30) as resp:
                payload = _json.loads(resp.read().decode("utf-8"))
            for event in payload["events"]:
                out(render_progress_line(event))
            since = payload["next_since"]
            if payload["closed"]:
                out(f"run {args.run_id} finished ({payload['state']})")
                return 0
            _time.sleep(args.interval)
    with urlopen(f"{base}/runs/{args.run_id}/events", timeout=60) as resp:
        for event in iter_sse_events(resp):
            out(render_progress_line(event))
    out(f"run {args.run_id} finished")
    return 0


def cmd_report(args, out=print) -> int:
    from .ops.reports import weekly_report
    grid = _build_grid(args)
    grid.run_full()
    weeks = max(1, int(args.days // 7))
    for week in range(weeks):
        out(weekly_report(grid, week_index=week))
        out("")
    return 0


def cmd_score(args, out=print) -> int:
    from .analysis.compare import agreement_report, compare_run
    grid = _build_grid(args)
    grid.run_full()
    checks = compare_run(grid)
    out(agreement_report(checks))
    # Exit nonzero when the run drifts badly from the paper's shapes —
    # usable as a CI regression gate.
    passed = sum(c.passed for c in checks)
    return 0 if passed >= len(checks) - 2 else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Grid2003 reproduction: simulate the Grid3 production grid",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run a simulation, print the summary")
    _add_run_options(p_run)
    p_run.add_argument("--map", action="store_true",
                       help="also print the §5.2 site status map")
    p_run.set_defaults(func=cmd_run)

    p_fig = sub.add_parser("figures", help="regenerate the paper's figures")
    _add_run_options(p_fig)
    p_fig.add_argument("--figure", type=int, action="append",
                       choices=[2, 3, 4, 5, 6],
                       help="which figure(s); repeatable (default: all)")
    p_fig.add_argument("--table1", action="store_true",
                       help="also print Table 1")
    p_fig.set_defaults(func=cmd_figures)

    p_cat = sub.add_parser("catalog", help="print the 27-site catalog")
    p_cat.set_defaults(func=cmd_catalog)

    p_fab = sub.add_parser(
        "fabric", help="generate + summarise a synthetic site catalog"
    )
    p_fab.add_argument("--sites", type=int, default=500,
                       help="catalog size (default 500)")
    p_fab.add_argument("--cpus", type=int, default=None,
                       help="total CPUs (default sites*104)")
    p_fab.add_argument("--seed", type=int, default=42)
    p_fab.add_argument("--regions", type=int, default=8,
                       help="synthetic WAN regions (default 8)")
    p_fab.add_argument("--top", type=int, default=10,
                       help="largest sites to list (default 10)")
    p_fab.set_defaults(func=cmd_fabric)

    p_exp = sub.add_parser("export", help="dump ACDC job records as CSV")
    _add_run_options(p_exp)
    p_exp.add_argument("--output", "-o", help="destination file (default stdout)")
    p_exp.set_defaults(func=cmd_export)

    p_health = sub.add_parser(
        "health", help="per-site, per-service availability from the ledgers"
    )
    _add_run_options(p_health)
    p_health.add_argument("--site", help="restrict the table to one site")
    p_health.set_defaults(func=cmd_health)

    p_rep = sub.add_parser("report", help="weekly iGOC operations reports")
    _add_run_options(p_rep)
    p_rep.set_defaults(func=cmd_report)

    p_data = sub.add_parser(
        "data", help="run with managed data; print per-site storage table"
    )
    _add_run_options(p_data)
    p_data.add_argument("--top", type=int, default=5,
                        help="hot datasets to list (default 5)")
    p_data.add_argument("--disk-scale", type=float, default=None,
                        help="divide SE capacities (pressure regimes)")
    p_data.set_defaults(func=cmd_data)

    p_trace = sub.add_parser(
        "trace", help="run with tracing; span trees + phase breakdown"
    )
    _add_run_options(p_trace)
    p_trace.add_argument(
        "job_id", nargs="?", type=int, default=None,
        help="execution-side job id to render (default: slowest-jobs table)",
    )
    p_trace.add_argument("--top", type=int, default=10,
                         help="rows in the slowest-jobs table (default 10)")
    p_trace.add_argument("--vo", default=None,
                         help="restrict the phase breakdown to one VO")
    p_trace.add_argument("--perfetto", metavar="PATH",
                         help="write a Chrome trace-event JSON file")
    p_trace.add_argument("--jsonl", metavar="PATH",
                         help="write a JSONL span dump")
    p_trace.set_defaults(func=cmd_trace)

    p_fair = sub.add_parser(
        "fairshare",
        help="run with fair-share scheduling; print per-VO shares, "
             "priorities, and policy rejections",
    )
    _add_run_options(p_fair)
    p_fair.add_argument("--compare", action="store_true",
                        help="also run the same seed without fair-share "
                             "and contrast per-VO completions")
    p_fair.set_defaults(func=cmd_fairshare)

    p_serve = sub.add_parser(
        "serve",
        help="run the grid-as-a-service HTTP API (submit, poll, reports)",
    )
    p_serve.add_argument("--port", type=int, default=8080,
                         help="listen port (default 8080; 0 = ephemeral)")
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="bind address (default 127.0.0.1)")
    p_serve.add_argument("--workers", type=int, default=2,
                         help="simulation worker processes (default 2)")
    p_serve.add_argument("--queue-depth", type=int, default=64,
                         help="max runs queued or running (default 64)")
    p_serve.add_argument("--cache-mb", type=float, default=64.0,
                         help="result-cache byte budget in MB (default 64)")
    p_serve.add_argument("--state-dir", default=None,
                         help="directory for the durable run registry "
                              "(sqlite journal; restarts resume every "
                              "run; default: in-memory only)")
    p_serve.add_argument("--quota", type=int, default=16,
                         help="per-client active-run quota; breaches get "
                              "429 + Retry-After (0 = unlimited; "
                              "default 16)")
    p_serve.set_defaults(func=cmd_serve)

    p_alerts = sub.add_parser(
        "alerts",
        help="run with the iGOC alert engine and print firings/tickets; "
             "--lint checks the shipped rule sets; --url queries a live "
             "service",
    )
    _add_run_options(p_alerts)
    p_alerts.add_argument("--lint", action="store_true",
                          help="validate the shipped rule sets against the "
                               "real metric namespaces and exit")
    p_alerts.add_argument("--url", default=None,
                          help="query a running service's /alerts instead "
                               "of simulating")
    p_alerts.set_defaults(func=cmd_alerts)

    p_top = sub.add_parser(
        "top",
        help="live progress dashboard for a run on a running service",
    )
    p_top.add_argument("run_id", type=int, help="run id to watch")
    p_top.add_argument("--url", default="http://127.0.0.1:8080",
                       help="service base URL (default http://127.0.0.1:8080)")
    p_top.add_argument("--poll", action="store_true",
                       help="use the ?since= delta poll instead of SSE")
    p_top.add_argument("--interval", type=float, default=1.0,
                       help="poll interval in seconds (default 1)")
    p_top.set_defaults(func=cmd_top)

    p_score = sub.add_parser(
        "score", help="score a run against the paper's shape claims"
    )
    _add_run_options(p_score)
    p_score.set_defaults(func=cmd_score)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output piped into `head` etc. closed early — normal CLI usage.
        import os
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
