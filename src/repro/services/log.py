"""Bounded structured service logs with stable cursors.

Grid3 services kept logs that monitoring agents tailed (the MonALISA
GRAM-log sensor, NetLogger's per-server event stream).  The seed code
hand-capped plain lists in each service (``if len(log) > N: del
log[:N//2]``), which silently breaks any consumer holding a list index
across an eviction.  :class:`ServiceLog` centralises the ring-buffer
logic and gives every entry a stable **absolute sequence number**, so a
tailer's cursor survives eviction: :meth:`since` returns exactly the
entries appended after the cursor, however many were evicted meanwhile.
"""

from __future__ import annotations

from collections import deque
from itertools import islice
from typing import Any, Iterable, Iterator, List, Optional, Tuple, Union


class ServiceLog:
    """A bounded FIFO of structured log entries.

    List-compatible surface (``append``/``extend``/``len``/iteration/
    indexing and slicing over the *retained* window) plus the
    cursor-stable :meth:`since` API for log tailers.
    """

    __slots__ = ("_entries", "_capacity", "_seq0")

    def __init__(self, capacity: Optional[int] = 10_000) -> None:
        if capacity is not None and capacity < 0:
            raise ValueError("capacity cannot be negative")
        self._entries: deque = deque()
        self._capacity = capacity
        self._seq0 = 0  # absolute sequence number of _entries[0]

    # -- capacity ---------------------------------------------------------
    @property
    def capacity(self) -> Optional[int]:
        """Retained-entry bound (None = unbounded)."""
        return self._capacity

    @capacity.setter
    def capacity(self, value: Optional[int]) -> None:
        self._capacity = value
        self._trim()

    def _trim(self) -> None:
        if self._capacity is None:
            return
        entries = self._entries
        while len(entries) > self._capacity:
            entries.popleft()
            self._seq0 += 1

    # -- list surface -----------------------------------------------------
    def append(self, entry: Any) -> int:
        """Add one entry; returns its absolute sequence number."""
        seq = self._seq0 + len(self._entries)
        self._entries.append(entry)
        self._trim()
        return seq

    def extend(self, entries: Iterable[Any]) -> None:
        for entry in entries:
            self.append(entry)

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._entries)

    def __getitem__(self, index: Union[int, slice]) -> Any:
        if isinstance(index, slice):
            return list(self._entries)[index]
        return self._entries[index]

    # -- cursor API -------------------------------------------------------
    @property
    def first_seq(self) -> int:
        """Absolute sequence number of the oldest retained entry."""
        return self._seq0

    @property
    def end_seq(self) -> int:
        """One past the newest entry — the cursor for "read everything"."""
        return self._seq0 + len(self._entries)

    def since(self, cursor: int) -> Tuple[List[Any], int]:
        """Entries with sequence number >= ``cursor`` and the new cursor.

        Entries already evicted are simply gone (the tailer was too
        slow); the returned cursor always equals :attr:`end_seq`, so the
        next call resumes where this one left off.
        """
        skip = max(0, cursor - self._seq0)
        entries = list(islice(self._entries, skip, None))
        return entries, self._seq0 + len(self._entries)

    def tail(self, n: int) -> List[Any]:
        """The newest ``n`` retained entries, oldest first."""
        if n <= 0:
            return []
        return list(self._entries)[-n:]

    def __repr__(self) -> str:
        cap = "∞" if self._capacity is None else self._capacity
        return f"<ServiceLog {len(self._entries)}/{cap} seq0={self._seq0}>"
