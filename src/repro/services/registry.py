"""Queries over a grid's service population: health probes and the
per-site, per-role availability report.

The Site Status Catalog (§5.2) and the iGOC operations loop both need
one answer to "is this service up?" — :func:`service_is_up` gives it
uniformly through the :meth:`~repro.services.base.GridService.health`
snapshot (falling back to duck-typing for the rare non-migrated
object).  :func:`availability_rows` turns the downtime ledgers into the
per-site, per-role availability table the paper's operations sections
describe but deployed Grid3 could only sample with probes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..core.results import ReportRecord
from .base import GridService


def service_is_up(service) -> bool:
    """Whether a service answers requests, via its health() snapshot.

    Non-GridService objects (legacy stubs, plain test doubles) fall back
    to their ``available`` flag, defaulting to up — the same defaulted
    read for every role, so no probe path can AttributeError.
    """
    health = getattr(service, "health", None)
    if callable(health):
        return bool(health()["available"])
    return bool(getattr(service, "available", True))


def grid_services(site) -> Dict[str, GridService]:
    """The GridService instances attached to a site, keyed by role."""
    return {
        role: service
        for role, service in site.services.items()
        if isinstance(service, GridService)
    }


@dataclass(frozen=True)
class AvailabilityRow(ReportRecord):
    """One (site, role) line of the availability report."""

    site: str
    role: str
    availability: float
    downtime: float       # seconds within the window
    outages: int          # outages that started within the window
    mttr: float           # seconds; 0 with no outages
    mtbf: float           # seconds; inf with no outages


def availability_rows(
    sites: Iterable,
    since: float = 0.0,
    until: Optional[float] = None,
    extra_services: Optional[Dict[str, GridService]] = None,
) -> List[AvailabilityRow]:
    """The per-site, per-role availability table over [since, until].

    ``until=None`` means "now" (each service's engine clock).
    ``extra_services`` adds off-site services (the RLS index, VOMS
    servers, ...) keyed by a display name used as their "site".
    """
    rows: List[AvailabilityRow] = []

    def row_for(site_name: str, role: str, service: GridService) -> AvailabilityRow:
        ledger = service.ledger
        horizon = until if until is not None else service.now
        starts = sum(1 for o in ledger.outages() if since <= o.start <= horizon)
        return AvailabilityRow(
            site=site_name,
            role=role,
            availability=ledger.availability(since, horizon),
            downtime=ledger.downtime(since, horizon),
            outages=starts,
            mttr=ledger.mttr(horizon),
            mtbf=ledger.mtbf(since, horizon),
        )

    for site in sites:
        for role, service in sorted(grid_services(site).items()):
            rows.append(row_for(site.name, role, service))
    for name, service in sorted((extra_services or {}).items()):
        rows.append(row_for(name, service.role, service))
    rows.sort(key=lambda r: (r.site, r.role))
    return rows


def render_availability(rows: List[AvailabilityRow]) -> str:
    """The availability report as a text table (hours for durations)."""
    lines = [
        f"{'site':<18} {'service':<12} {'avail':>7} {'down(h)':>8} "
        f"{'outages':>7} {'mttr(h)':>8} {'mtbf(h)':>9}",
        "-" * 74,
    ]
    for r in rows:
        mtbf = "-" if r.mtbf == float("inf") else f"{r.mtbf / 3600.0:9.1f}"
        lines.append(
            f"{r.site:<18} {r.role:<12} {r.availability:>6.1%} "
            f"{r.downtime / 3600.0:>8.1f} {r.outages:>7d} "
            f"{r.mttr / 3600.0:>8.1f} {mtbf:>9}"
        )
    return "\n".join(lines)


def total_downtime(rows: List[AvailabilityRow]) -> float:
    """Summed downtime seconds across a report's rows."""
    return sum(r.downtime for r in rows)
