"""The GridService lifecycle base: state machine + downtime ledger.

The paper's operational story (§5.2 Site Status Catalog, §6.1–6.2
failure classes, §7 "once a site becomes stable, it usually remains
so") is about *service* health over time.  Every Grid3 service model —
gatekeeper, GridFTP, GRIS/GIIS, RLS, VOMS, SRM, dCache pools — derives
from :class:`GridService`, which provides:

* an UP / DEGRADED / DOWN state machine (:meth:`fail`, :meth:`degrade`,
  :meth:`restore`, :meth:`require_available`);
* a per-service **downtime ledger** (:class:`DowntimeLedger`): every
  outage interval is recorded with its cause, so availability %, MTTR,
  and MTBF are computable per site and per role afterwards — the
  accounting deployed Grid3 could only approximate by probing;
* a declarative counters registry (``_counter_names``) that the
  monitoring layer auto-publishes into a ``MetricStore`` under
  ``service.<role>.*`` metric names.

``service.available = False`` still works (tests and ad-hoc scripts use
it) but routes through :meth:`fail`/:meth:`restore`, so *every* state
flip — however it is expressed — lands in the ledger.  Direct attribute
writes that bypass the ledger are impossible by construction and a
repo-consistency test greps the source tree to keep it that way.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import ServiceUnavailableError


class ServiceState(Enum):
    """The three lifecycle states of a Grid3 service."""

    UP = "up"
    DEGRADED = "degraded"
    DOWN = "down"


@dataclass
class Outage:
    """One downtime interval in a service's ledger.

    ``end`` is ``None`` while the outage is still open; duration
    queries clamp open outages to the query horizon.
    """

    start: float
    end: Optional[float]
    cause: str = ""

    @property
    def closed(self) -> bool:
        return self.end is not None

    def duration(self, until: Optional[float] = None) -> float:
        """Length of the interval, clamping an open end to ``until``."""
        end = self.end if self.end is not None else until
        if end is None:
            return 0.0
        return max(0.0, end - self.start)

    def overlap(self, since: float, until: float) -> float:
        """Downtime this outage contributes to the window [since, until]."""
        end = self.end if self.end is not None else until
        lo = max(self.start, since)
        hi = min(end, until)
        return max(0.0, hi - lo)


class DowntimeLedger:
    """Outage intervals for one service, with availability statistics.

    The ledger answers the questions the paper's operations sections ask
    of the Site Status Catalog — what fraction of the window a service
    was up, how long repairs took (MTTR), and how long it ran between
    failures (MTBF) — exactly, from recorded intervals rather than probe
    sampling.
    """

    def __init__(self) -> None:
        self._outages: List[Outage] = []
        self._open: Optional[Outage] = None

    def __len__(self) -> int:
        return len(self._outages)

    @property
    def current(self) -> Optional[Outage]:
        """The open outage, or None while the service is up."""
        return self._open

    def open(self, time: float, cause: str = "") -> Outage:
        """Start an outage (idempotent: a second open is the first one)."""
        if self._open is not None:
            return self._open
        outage = Outage(start=time, end=None, cause=cause)
        self._outages.append(outage)
        self._open = outage
        return outage

    def close(self, time: float) -> Optional[Outage]:
        """End the open outage; returns it (None if nothing was open)."""
        outage = self._open
        if outage is None:
            return None
        outage.end = max(time, outage.start)
        self._open = None
        return outage

    def outages(self) -> List[Outage]:
        """All recorded intervals, oldest first (last may be open)."""
        return list(self._outages)

    def downtime(self, since: float = 0.0, until: float = 0.0) -> float:
        """Total seconds down within [since, until]."""
        return sum(o.overlap(since, until) for o in self._outages)

    def availability(self, since: float = 0.0, until: float = 0.0) -> float:
        """Fraction of [since, until] the service was up (1.0 for an
        empty window)."""
        window = until - since
        if window <= 0:
            return 1.0
        return 1.0 - self.downtime(since, until) / window

    def mttr(self, until: Optional[float] = None) -> float:
        """Mean time to repair over recorded outages (0 if none).

        With ``until`` given, an open outage counts at its clamped
        duration; otherwise only closed outages are averaged.
        """
        durations = [
            o.duration(until) for o in self._outages
            if o.closed or until is not None
        ]
        if not durations:
            return 0.0
        return sum(durations) / len(durations)

    def mtbf(self, since: float = 0.0, until: float = 0.0) -> float:
        """Mean up-time between failures over [since, until].

        Defined as total up-time divided by the number of outages that
        *started* in the window; ``inf`` when nothing failed.
        """
        starts = sum(1 for o in self._outages if since <= o.start <= until)
        if starts == 0:
            return float("inf")
        uptime = max(0.0, (until - since) - self.downtime(since, until))
        return uptime / starts


class GridService:
    """Base class every Grid3 service model derives from.

    Subclasses call ``super().__init__(role=..., owner=..., engine=...)``
    first; ``owner`` names the site (or VO, or pool) the instance
    belongs to, ``role`` is the service kind used in metric names and
    probe tables.  Services built without an engine (bare unit-test
    construction) run on a zero clock until one is adopted via
    :meth:`adopt_engine`.
    """

    #: Default role; subclasses set their own (also overridable per
    #: instance through ``__init__``).
    role: str = "service"
    #: Attribute names auto-published as ``service.<role>.<name>``
    #: counters by the monitoring layer.  Subclasses list their
    #: lifetime counters here; :meth:`counters` may add computed ones.
    _counter_names: Tuple[str, ...] = ()

    def __init__(
        self,
        role: Optional[str] = None,
        owner: str = "",
        engine=None,
    ) -> None:
        if role is not None:
            self.role = role
        self.owner = owner
        self.engine = engine
        self._state = ServiceState.UP
        self._state_since = self.now
        self._degraded_cause = ""
        self.ledger = DowntimeLedger()
        #: Observers called as ``fn(service, old_state, new_state)`` on
        #: every actual state change (no call when a transition is a
        #: no-op, e.g. restoring an UP service).  Index layers (the GIIS
        #: sweep cache) subscribe here to invalidate on availability
        #: flips without polling every service per event.
        self.on_transition: List[Callable[["GridService", ServiceState, ServiceState], None]] = []

    # -- clock ------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current sim-time (0.0 for engineless unit construction)."""
        return self.engine.now if self.engine is not None else 0.0

    def adopt_engine(self, engine) -> None:
        """Late-bind a clock (e.g. an LRC attached to a live index)."""
        if self.engine is None and engine is not None:
            self.engine = engine

    # -- state machine ----------------------------------------------------
    @property
    def state(self) -> ServiceState:
        return self._state

    @property
    def available(self) -> bool:
        """Whether the service answers requests (UP or DEGRADED)."""
        return self._state is not ServiceState.DOWN

    @available.setter
    def available(self, value: bool) -> None:
        # Legacy surface: flag writes route through the ledger so no
        # outage can ever go unrecorded.
        if value:
            self.restore(note="available flag set")
        else:
            self.fail("available flag cleared")

    def fail(self, cause: str = "") -> Optional[Outage]:
        """Take the service DOWN, opening a ledger outage.

        Idempotent: failing an already-DOWN service keeps the original
        outage (and its cause) and returns it.
        """
        if self._state is ServiceState.DOWN:
            return self.ledger.current
        old = self._state
        self._state = ServiceState.DOWN
        self._state_since = self.now
        outage = self.ledger.open(self.now, cause)
        for observer in self.on_transition:
            observer(self, old, ServiceState.DOWN)
        return outage

    def degrade(self, cause: str = "") -> None:
        """Mark the service DEGRADED (still answering, but unhealthy).

        No ledger outage opens — degraded time is not downtime — but the
        state shows up in :meth:`health` so probes and operators see it.
        """
        if self._state is ServiceState.DOWN:
            return
        old = self._state
        self._state = ServiceState.DEGRADED
        self._state_since = self.now
        self._degraded_cause = cause
        if old is not ServiceState.DEGRADED:
            for observer in self.on_transition:
                observer(self, old, ServiceState.DEGRADED)

    def restore(self, note: str = "") -> Optional[Outage]:
        """Bring the service back UP, closing the open outage (if any).

        Returns the closed :class:`Outage` so repair paths (iGOC
        tickets, the auto-validator) can attribute and time the fix;
        None when the service was not DOWN.
        """
        old = self._state
        self._state = ServiceState.UP
        self._state_since = self.now
        self._degraded_cause = ""
        if old is not ServiceState.UP:
            for observer in self.on_transition:
                observer(self, old, ServiceState.UP)
        if old is not ServiceState.DOWN:
            return None
        return self.ledger.close(self.now)

    def require_available(self, action: str = "") -> None:
        """Raise :class:`ServiceUnavailableError` unless the service is
        answering — the one uniform precondition check every request
        path uses."""
        if self._state is ServiceState.DOWN:
            raise ServiceUnavailableError(self.unavailable_message(action))

    def unavailable_message(self, action: str = "") -> str:
        """The error text for a request against a DOWN service."""
        where = f" at {self.owner}" if self.owner else ""
        doing = f" (during {action})" if action else ""
        return f"{self.role}{where} is down{doing}"

    # -- introspection ----------------------------------------------------
    def health(self) -> Dict[str, object]:
        """One uniform health snapshot — what probes and catalogs read.

        Keys: ``role``, ``owner``, ``state``, ``available``, ``since``
        (when the current state was entered), ``cause`` (of the open
        outage, if any), ``outages`` (lifetime count), ``downtime``
        (lifetime seconds, open outage clamped to now).
        """
        current = self.ledger.current
        if current is not None:
            cause = current.cause
        elif self._state is ServiceState.DEGRADED:
            cause = self._degraded_cause
        else:
            cause = ""
        return {
            "role": self.role,
            "owner": self.owner,
            "state": self._state.value,
            "available": self.available,
            "since": self._state_since,
            "cause": cause,
            "outages": len(self.ledger),
            "downtime": self.ledger.downtime(0.0, self.now),
        }

    def counters(self) -> Dict[str, float]:
        """The service's lifetime counters, by name.

        The default implementation reads ``_counter_names`` attributes;
        subclasses extend with computed values (current load, member
        counts, ...).  The monitoring layer publishes each entry as
        ``service.<role>.<name>``.
        """
        return {
            name: float(getattr(self, name, 0.0))
            for name in self._counter_names
        }

    def availability(self, since: float = 0.0, until: Optional[float] = None) -> float:
        """Ledger availability over [since, until] (until defaults now)."""
        return self.ledger.availability(
            since, until if until is not None else self.now
        )
