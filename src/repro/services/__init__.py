"""The unified service substrate every Grid3 service model builds on.

* :class:`GridService` — UP/DEGRADED/DOWN lifecycle, per-service
  downtime ledger, uniform ``health()`` snapshot and counters registry;
* :class:`ServiceLog` — bounded structured log ring buffer with
  eviction-stable cursors;
* :func:`service_is_up` / :func:`availability_rows` — the probe and
  reporting queries built on the substrate.

This package is the only place ``available`` state is allowed to
change; a repo-consistency test greps for flag writes elsewhere.
"""

from .base import DowntimeLedger, GridService, Outage, ServiceState
from .log import ServiceLog
from .registry import (
    AvailabilityRow,
    availability_rows,
    grid_services,
    render_availability,
    service_is_up,
    total_downtime,
)

__all__ = [
    "AvailabilityRow",
    "DowntimeLedger",
    "GridService",
    "Outage",
    "ServiceLog",
    "ServiceState",
    "availability_rows",
    "grid_services",
    "render_availability",
    "service_is_up",
    "total_downtime",
]
