"""Optional execution tracing for the simulation kernel.

Debugging a deadlocked or misbehaving simulation usually starts with
"what ran, when?".  :class:`Tracer` hooks an :class:`~repro.sim.engine.Engine`
and records a bounded ring of (seq, time, kind, label, span) entries for
processed events — cheap enough to leave on during test debugging,
structured enough to assert against.

    tracer = Tracer(engine, capacity=10_000)
    ... run ...
    print(tracer.render_tail(20))
    tracer.detach()

Every entry carries a monotone sequence number (its absolute position
in the event stream), so entries keep a stable identity after the ring
wraps: ``entry.seq`` never shifts, ``dropped`` says exactly how many
earlier entries the bound discarded, and :meth:`render_tail` reports
the gap instead of silently pretending the trace starts at zero.

``span_source`` bridges the kernel view to the distributed-tracing
layer: pass a zero-argument callable (typically
``JobTracer.current_label``) and each entry records which job-lifecycle
span was active when the event processed.
"""

from __future__ import annotations

from collections import deque
from itertools import islice
from typing import Callable, Deque, List, Optional, Tuple

from .engine import Engine, Event, Process, Timeout


class TraceEntry(tuple):
    """(seq, time, kind, label, span) — a plain tuple with named
    accessors.  ``seq`` is the entry's absolute index in the event
    stream (stable across ring wraparound); ``span`` is the active
    distributed-tracing span label ("" without a span_source)."""

    __slots__ = ()

    def __new__(cls, seq: int, time: float, kind: str, label: str,
                span: str = ""):
        return super().__new__(cls, (seq, time, kind, label, span))

    @property
    def seq(self) -> int:
        return self[0]

    @property
    def time(self) -> float:
        return self[1]

    @property
    def kind(self) -> str:
        return self[2]

    @property
    def label(self) -> str:
        return self[3]

    @property
    def span(self) -> str:
        return self[4]


def _describe(event: Event) -> Tuple[str, str]:
    if isinstance(event, Process):
        state = "ok" if event.ok else "failed"
        return f"process-{state}", event.name
    if isinstance(event, Timeout):
        return "timeout", f"delay={event.delay:g}"
    return "event", type(event).__name__


class Tracer:
    """Bounded event-trace recorder attached to an engine.

    ``span_source``: optional zero-argument callable returning the
    currently active distributed-tracing span label (e.g.
    ``grid.tracer.current_label``); recorded per entry when given.
    """

    def __init__(
        self,
        engine: Engine,
        capacity: int = 10_000,
        span_source: Optional[Callable[[], str]] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.engine = engine
        self.capacity = capacity
        self.span_source = span_source
        self.entries: Deque[TraceEntry] = deque(maxlen=capacity)
        self.events_seen = 0
        self._original_step = engine.step
        engine.step = self._traced_step  # type: ignore[method-assign]
        self._attached = True

    def _traced_step(self) -> bool:
        upcoming = self.engine.peek_event()
        progressed = self._original_step()
        if progressed and upcoming is not None and upcoming.processed:
            kind, label = _describe(upcoming)
            span = self.span_source() if self.span_source is not None else ""
            self.entries.append(
                TraceEntry(self.events_seen, self.engine.now, kind, label, span)
            )
            self.events_seen += 1
        return progressed

    def detach(self) -> None:
        """Restore the engine's untraced step."""
        if self._attached:
            self.engine.step = self._original_step  # type: ignore[method-assign]
            self._attached = False

    # -- queries ----------------------------------------------------------
    @property
    def dropped(self) -> int:
        """Entries lost to the ring bound so far."""
        return self.events_seen - len(self.entries)

    def tail(self, n: int = 20) -> List[TraceEntry]:
        """The last ``n`` entries (no full-ring copy)."""
        count = len(self.entries)
        return list(islice(self.entries, max(0, count - n), count))

    def matching(self, substring: str) -> List[TraceEntry]:
        """Entries whose label contains ``substring``."""
        return [e for e in self.entries if substring in e.label]

    def in_span(self, substring: str) -> List[TraceEntry]:
        """Entries recorded while a matching span was active."""
        return [e for e in self.entries if substring in e.span]

    def render_tail(self, n: int = 20) -> str:
        """Human-readable tail, newest last.

        After wraparound a header line reports how many earlier entries
        the ring dropped, and each line leads with the entry's absolute
        sequence number — the render stays stable and honest no matter
        how far past capacity the run went.
        """
        rows = self.tail(n)
        lines = []
        if self.dropped and rows:
            lines.append(
                f"... {self.dropped} earlier entries dropped by the ring "
                f"(capacity {self.capacity}) ..."
            )
        for e in rows:
            span = f"  [{e.span}]" if e.span else ""
            lines.append(
                f"#{e.seq:<8d} {e.time:>14.3f}  {e.kind:<16} {e.label}{span}"
            )
        return "\n".join(lines)
