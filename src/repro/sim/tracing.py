"""Optional execution tracing for the simulation kernel.

Debugging a deadlocked or misbehaving simulation usually starts with
"what ran, when?".  :class:`Tracer` hooks an :class:`~repro.sim.engine.Engine`
and records a bounded ring of (time, kind, label) entries for processed
events — cheap enough to leave on during test debugging, structured
enough to assert against.

    tracer = Tracer(engine, capacity=10_000)
    ... run ...
    print(tracer.render_tail(20))
    tracer.detach()
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

from .engine import Engine, Event, Process, Timeout


class TraceEntry(tuple):
    """(time, kind, label) — a plain tuple with named accessors."""

    __slots__ = ()

    def __new__(cls, time: float, kind: str, label: str):
        return super().__new__(cls, (time, kind, label))

    @property
    def time(self) -> float:
        return self[0]

    @property
    def kind(self) -> str:
        return self[1]

    @property
    def label(self) -> str:
        return self[2]


def _describe(event: Event) -> Tuple[str, str]:
    if isinstance(event, Process):
        state = "ok" if event.ok else "failed"
        return f"process-{state}", event.name
    if isinstance(event, Timeout):
        return "timeout", f"delay={event.delay:g}"
    return "event", type(event).__name__


class Tracer:
    """Bounded event-trace recorder attached to an engine."""

    def __init__(self, engine: Engine, capacity: int = 10_000) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.engine = engine
        self.entries: Deque[TraceEntry] = deque(maxlen=capacity)
        self.events_seen = 0
        self._original_step = engine.step
        engine.step = self._traced_step  # type: ignore[method-assign]
        self._attached = True

    def _traced_step(self) -> bool:
        heap = self.engine._heap
        upcoming = heap[0][-1] if heap else None
        progressed = self._original_step()
        if progressed and upcoming is not None and upcoming.processed:
            kind, label = _describe(upcoming)
            self.entries.append(TraceEntry(self.engine.now, kind, label))
            self.events_seen += 1
        return progressed

    def detach(self) -> None:
        """Restore the engine's untraced step."""
        if self._attached:
            self.engine.step = self._original_step  # type: ignore[method-assign]
            self._attached = False

    # -- queries ----------------------------------------------------------
    def tail(self, n: int = 20) -> List[TraceEntry]:
        """The last ``n`` entries."""
        return list(self.entries)[-n:]

    def matching(self, substring: str) -> List[TraceEntry]:
        """Entries whose label contains ``substring``."""
        return [e for e in self.entries if substring in e.label]

    def render_tail(self, n: int = 20) -> str:
        """Human-readable tail, newest last."""
        return "\n".join(
            f"{e.time:>14.3f}  {e.kind:<16} {e.label}" for e in self.tail(n)
        )
