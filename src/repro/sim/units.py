"""Physical units used throughout the Grid3 simulation.

Simulation time is a float number of **seconds** since the simulation
epoch.  Data sizes are floats in **bytes**.  Bandwidths are **bytes per
second**.  Keeping everything in base SI units avoids a whole class of
unit-mixing bugs; these constants exist so call sites read naturally
(``4 * GB``, ``30 * DAY``).
"""

from __future__ import annotations

# --- time ---------------------------------------------------------------
SECOND = 1.0
MINUTE = 60.0 * SECOND
HOUR = 60.0 * MINUTE
DAY = 24.0 * HOUR
WEEK = 7.0 * DAY

# --- data ---------------------------------------------------------------
BYTE = 1.0
KB = 1000.0 * BYTE
MB = 1000.0 * KB
GB = 1000.0 * MB
TB = 1000.0 * GB

# --- bandwidth ----------------------------------------------------------
BPS = 1.0
KBPS = 1000.0 * BPS
MBPS = 1000.0 * KBPS
GBPS = 1000.0 * MBPS

# Conventional conversions used in reporting (the paper reports CPU-days
# and TB/day).
CPU_DAY = DAY


def seconds_to_days(seconds: float) -> float:
    """Convert a duration in seconds to days."""
    return seconds / DAY


def seconds_to_hours(seconds: float) -> float:
    """Convert a duration in seconds to hours."""
    return seconds / HOUR


def bytes_to_tb(nbytes: float) -> float:
    """Convert a byte count to terabytes (SI)."""
    return nbytes / TB


def bytes_to_gb(nbytes: float) -> float:
    """Convert a byte count to gigabytes (SI)."""
    return nbytes / GB


def fmt_duration(seconds: float) -> str:
    """Render a duration human-readably (e.g. ``"2d 03:04:05"``)."""
    if seconds < 0:
        return "-" + fmt_duration(-seconds)
    whole = int(round(seconds))
    days, rem = divmod(whole, int(DAY))
    hours, rem = divmod(rem, int(HOUR))
    minutes, secs = divmod(rem, int(MINUTE))
    if days:
        return f"{days}d {hours:02d}:{minutes:02d}:{secs:02d}"
    return f"{hours:02d}:{minutes:02d}:{secs:02d}"


def fmt_bytes(nbytes: float) -> str:
    """Render a byte count with an SI suffix (``"4.0 GB"``)."""
    value = float(nbytes)
    for unit, name in ((TB, "TB"), (GB, "GB"), (MB, "MB"), (KB, "KB")):
        if abs(value) >= unit:
            return f"{value / unit:.1f} {name}"
    return f"{value:.0f} B"
