"""Discrete-event simulation kernel for the Grid3 reproduction.

Everything in :mod:`repro` runs on this kernel: a deterministic event
heap (:class:`~repro.sim.engine.Engine`), generator-based processes,
shared resources, item stores, named RNG streams, and calendar helpers.
"""

from .calendar import GRID3_EPOCH, SC2003_START, SimCalendar
from .engine import (
    AllOf,
    AnyOf,
    Engine,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
)
from .resources import Container, ContainerError, Request, Resource
from .rng import RngRegistry
from .store import PriorityStore, Store
from .units import (
    BPS,
    DAY,
    GB,
    GBPS,
    HOUR,
    KB,
    MB,
    MBPS,
    MINUTE,
    SECOND,
    TB,
    WEEK,
    bytes_to_gb,
    bytes_to_tb,
    fmt_bytes,
    fmt_duration,
    seconds_to_days,
    seconds_to_hours,
)

__all__ = [
    "AllOf",
    "AnyOf",
    "Container",
    "ContainerError",
    "Engine",
    "Event",
    "GRID3_EPOCH",
    "Interrupt",
    "PriorityStore",
    "Process",
    "Request",
    "Resource",
    "RngRegistry",
    "SC2003_START",
    "SimCalendar",
    "SimulationError",
    "Store",
    "Timeout",
    "BPS",
    "DAY",
    "GB",
    "GBPS",
    "HOUR",
    "KB",
    "MB",
    "MBPS",
    "MINUTE",
    "SECOND",
    "TB",
    "WEEK",
    "bytes_to_gb",
    "bytes_to_tb",
    "fmt_bytes",
    "fmt_duration",
    "seconds_to_days",
    "seconds_to_hours",
]
