"""Deterministic, named random-number streams.

A large simulation draws randomness in many places (job runtimes, failure
arrivals, site selection jitter, ...).  If every component pulled from one
global generator, adding a new component would perturb *every* stream and
make runs impossible to compare.  ``RngRegistry`` hands each named
component its own independent :class:`numpy.random.Generator`, derived
from a single master seed via ``SeedSequence.spawn`` keyed on the
component name — so streams are stable under unrelated code changes and
the whole simulation is reproducible from one integer.
"""

from __future__ import annotations

import zlib
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np


def _name_key(name: str) -> int:
    """Map a stream name to a stable 32-bit integer key."""
    return zlib.crc32(name.encode("utf-8")) & 0xFFFFFFFF


class RngRegistry:
    """Factory for named, independent random streams.

    Parameters
    ----------
    master_seed:
        Single integer from which all streams derive.  Two registries
        built with the same seed produce identical streams for identical
        names, regardless of creation order.
    """

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = int(master_seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        gen = self._streams.get(name)
        if gen is None:
            seq = np.random.SeedSequence([self.master_seed, _name_key(name)])
            gen = np.random.default_rng(seq)
            self._streams[name] = gen
        return gen

    def names(self) -> List[str]:
        """Names of streams created so far (for debugging)."""
        return sorted(self._streams)

    # -- distribution helpers -------------------------------------------
    # Thin wrappers so call sites stay terse and guard against the
    # degenerate parameters that crop up when calibration constants are
    # scaled down for tests.

    def exponential(self, name: str, mean: float) -> float:
        """One draw from Exp(mean); returns 0 for non-positive mean."""
        if mean <= 0:
            return 0.0
        return float(self.stream(name).exponential(mean))

    def lognormal_from_mean(self, name: str, mean: float, sigma: float) -> float:
        """Lognormal draw parameterised by its *arithmetic* mean.

        ``sigma`` is the shape parameter of the underlying normal.  The
        location ``mu`` is solved so the distribution's mean equals
        ``mean`` — convenient when the paper reports mean runtimes.
        """
        if mean <= 0:
            return 0.0
        mu = np.log(mean) - 0.5 * sigma * sigma
        return float(self.stream(name).lognormal(mu, sigma))

    def uniform(self, name: str, low: float, high: float) -> float:
        """One uniform draw on [low, high)."""
        if high <= low:
            return low
        return float(self.stream(name).uniform(low, high))

    def bernoulli(self, name: str, p: float) -> bool:
        """True with probability ``p`` (clamped to [0, 1])."""
        p = min(max(p, 0.0), 1.0)
        return bool(self.stream(name).random() < p)

    def choice(self, name: str, options: Sequence, weights: Optional[Iterable[float]] = None):
        """Pick one element of ``options``, optionally weighted."""
        options = list(options)
        if not options:
            raise ValueError("choice() from empty sequence")
        gen = self.stream(name)
        if weights is None:
            idx = int(gen.integers(0, len(options)))
        else:
            w = np.asarray(list(weights), dtype=float)
            if len(w) != len(options):
                raise ValueError("weights length must match options length")
            total = w.sum()
            if total <= 0:
                idx = int(gen.integers(0, len(options)))
            else:
                idx = int(gen.choice(len(options), p=w / total))
        return options[idx]

    def integers(self, name: str, low: int, high: int) -> int:
        """One integer draw on [low, high)."""
        return int(self.stream(name).integers(low, high))

    def shuffled(self, name: str, items: Sequence) -> list:
        """Return a new shuffled list of ``items``."""
        out = list(items)
        self.stream(name).shuffle(out)
        return out
