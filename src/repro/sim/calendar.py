"""Mapping between simulation time and the Grid3 calendar.

The paper's figures are anchored to real dates — Fig. 2/3 start
2003-10-25, Fig. 4 covers 150 days from November 2003, Fig. 6 bins jobs
by month from October 2003, Table 1 covers 2003-10-23 .. 2004-04-23.
``SimCalendar`` pins simulation second 0 to a chosen epoch date and
provides month binning on top of :mod:`datetime`.
"""

from __future__ import annotations

import datetime as _dt
from typing import List, Tuple

from .units import DAY

#: The default simulation epoch: start of the Table 1 observation window.
GRID3_EPOCH = _dt.datetime(2003, 10, 23)

#: SC2003 week (the paper's sustained-operations kickoff).
SC2003_START = _dt.datetime(2003, 11, 15)
SC2003_END = _dt.datetime(2003, 11, 21)


class SimCalendar:
    """Convert sim-seconds to calendar dates and month labels."""

    def __init__(self, epoch: _dt.datetime = GRID3_EPOCH) -> None:
        self.epoch = epoch

    def datetime_of(self, sim_time: float) -> _dt.datetime:
        """The wall-clock datetime corresponding to ``sim_time`` seconds."""
        return self.epoch + _dt.timedelta(seconds=sim_time)

    def sim_time_of(self, when: _dt.datetime) -> float:
        """Seconds since the epoch for calendar instant ``when``."""
        return (when - self.epoch).total_seconds()

    def month_label(self, sim_time: float) -> str:
        """``"MM-YYYY"`` label in the paper's Table 1 style (e.g. 11-2003)."""
        dt = self.datetime_of(sim_time)
        return f"{dt.month:02d}-{dt.year}"

    def month_index(self, sim_time: float) -> int:
        """Months elapsed since the epoch's month (0-based)."""
        dt = self.datetime_of(sim_time)
        return (dt.year - self.epoch.year) * 12 + (dt.month - self.epoch.month)

    def month_labels(self, horizon: float) -> List[str]:
        """Labels of all months touched by [0, horizon) sim-seconds."""
        labels = []
        n_months = self.month_index(max(horizon - 1e-9, 0.0)) + 1
        year, month = self.epoch.year, self.epoch.month
        for _ in range(n_months):
            labels.append(f"{month:02d}-{year}")
            month += 1
            if month > 12:
                month, year = 1, year + 1
        return labels

    def day_index(self, sim_time: float) -> int:
        """Whole days elapsed since the epoch (0-based)."""
        return int(sim_time // DAY)

    def window(self, start: _dt.datetime, days: float) -> Tuple[float, float]:
        """(start, end) sim-times for ``days`` days beginning at ``start``."""
        t0 = self.sim_time_of(start)
        return t0, t0 + days * DAY
