"""Item-passing channels between processes.

:class:`Store` is an unbounded FIFO of arbitrary items with blocking
``get`` — the building block for batch-queue feeds, monitoring pipelines
and trouble-ticket inboxes.  :class:`PriorityStore` serves the smallest
item first (items must be orderable, e.g. ``(priority, seq, payload)``
tuples).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, List

from .engine import Engine, Event


class Store:
    """Unbounded FIFO item store with blocking get."""

    def __init__(self, engine: Engine) -> None:
        self.engine = engine
        self._items: deque = deque()
        self._getters: deque = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> list:
        """Snapshot of queued items (oldest first)."""
        return list(self._items)

    def put(self, item: Any) -> None:
        """Deposit an item; wakes the oldest waiting getter, if any."""
        self._items.append(item)
        self._serve()

    def get(self) -> Event:
        """Event that fires with the next item."""
        event = Event(self.engine)
        self._getters.append(event)
        self._serve()
        return event

    def try_get(self) -> Any:
        """Pop an item immediately, or ``None`` when empty (and no waiter
        contention is possible because waiters are always served first)."""
        if self._getters or not self._items:
            return None
        return self._pop()

    def _pop(self) -> Any:
        return self._items.popleft()

    def _serve(self) -> None:
        while self._getters and self._items:
            event = self._getters.popleft()
            event.succeed(self._pop())


class PriorityStore(Store):
    """Store serving the smallest item first."""

    def __init__(self, engine: Engine) -> None:
        super().__init__(engine)
        self._items: List = []

    @property
    def items(self) -> list:
        """Snapshot of queued items in heap order (smallest first)."""
        return sorted(self._items)

    def put(self, item: Any) -> None:
        """Deposit an item; smallest item is always served first."""
        heapq.heappush(self._items, item)
        self._serve()

    def _pop(self) -> Any:
        return heapq.heappop(self._items)
