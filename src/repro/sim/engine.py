"""The discrete-event simulation core.

This is a calendar + generator-process kernel, written from scratch for
this reproduction (the project depends only on numpy / networkx).  The
design mirrors the well-known process-interaction style:

* :class:`Engine` owns the clock and the pending-event calendar.
* :class:`Event` is a one-shot occurrence that processes can wait on.
* :class:`Process` wraps a Python generator; every value the generator
  yields must be an :class:`Event`, and the process resumes when that
  event fires (receiving the event's value, or having the event's
  exception thrown into it).
* :class:`AllOf` / :class:`AnyOf` compose events.

Pending work lives in two structures (see :mod:`repro.sim.timewheel`):

* an **urgent FIFO** of triggered events (``succeed``/``fail``,
  interrupts, process initialisation) — these are always scheduled for
  the *current* instant, so a plain deque preserves both time order and
  insertion order with no keys at all;
* a **time wheel** of exact-time buckets for scheduled occurrences
  (timeouts) — same-instant events share one bucket in insertion
  order, and the engine batch-dispatches a whole bucket per clock
  store.

Determinism: urgent entries fire before bucket entries at the same
instant, and each lane preserves insertion order, which reproduces the
classic ``(time, priority, insertion-seq)`` heap order exactly — so
repeated runs with the same seeds are bit-identical.
"""

from __future__ import annotations

import heapq
import sys
from typing import Any, Callable, Deque, Generator, Iterable, List, Optional

from collections import deque

from .timewheel import TimeWheel

#: Priority for "process a triggered event now" entries — these must
#: run before ordinary timeouts scheduled at the same instant.  Kept as
#: the public vocabulary for :meth:`Engine._push`.
URGENT = 0
#: Priority for ordinary scheduled occurrences.
NORMAL = 1

PENDING = object()

#: CPython exposes refcounts, which lets the run loop prove a popped
#: Timeout is unreachable from user code and recycle it.  On other
#: implementations the pool simply stays empty (0 never matches a real
#: refcount test).
_getrefcount = getattr(sys, "getrefcount", None) or (lambda _obj: 0)

#: Upper bound on recycled Timeout objects kept per engine.
_POOL_CAP = 1024

_INF = float("inf")


class Interrupt(Exception):
    """Thrown into a process generator by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class SimulationError(RuntimeError):
    """An unhandled failure escaped a process and reached the engine."""


class Event:
    """A one-shot occurrence in simulated time.

    An event starts *pending*, becomes *triggered* when
    :meth:`succeed`/:meth:`fail` is called (its callbacks are then
    scheduled to run at the current instant), and is *processed* once the
    callbacks have run.
    """

    __slots__ = ("engine", "callbacks", "_value", "_ok", "_processed", "_defused")

    def __init__(self, engine: "Engine") -> None:
        self.engine = engine
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: Optional[bool] = None
        self._processed = False
        self._defused = False

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once succeed()/fail() has been called."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only meaningful once triggered."""
        return bool(self._ok)

    @property
    def value(self) -> Any:
        """The success value or failure exception."""
        if self._value is PENDING:
            raise RuntimeError("event value not yet available")
        return self._value

    def defuse(self) -> None:
        """Mark a failed event as handled so it does not crash the run."""
        self._defused = True

    # -- triggering ---------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        engine = self.engine
        engine._urgent.append((engine._now, self))
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with ``exception``."""
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        engine = self.engine
        engine._urgent.append((engine._now, self))
        return self

    def trigger(self, event: "Event") -> None:
        """Mirror another event's outcome onto this one (callback form)."""
        if event._ok:
            self.succeed(event._value)
        else:
            event.defuse()
            self.fail(event._value)

    # -- internals ----------------------------------------------------------
    def _process(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        self._processed = True
        for callback in callbacks or ():
            callback(self)
        if self._ok is False and not self._defused:
            raise SimulationError(
                f"unhandled failure in {self!r}: {self._value!r}"
            ) from self._value

    def __repr__(self) -> str:
        state = "pending" if not self.triggered else ("ok" if self._ok else "failed")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires automatically after ``delay`` sim-seconds.

    This is the kernel's dominant allocation (every sleep, queue poll,
    and monitoring tick is one), so construction is inlined: no
    ``super().__init__`` chain, one direct bucket insert into the
    engine's time wheel.
    """

    __slots__ = ("delay",)

    def __init__(self, engine: "Engine", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay {delay!r}")
        self.engine = engine
        self.callbacks = []
        self._value = value
        self._ok = True
        self._processed = False
        self._defused = False
        self.delay = delay
        wheel = engine._wheel
        time = engine._now + delay
        bucket = wheel.buckets.get(time)
        if bucket is None:
            wheel.buckets[time] = [self]
            heapq.heappush(wheel.times, time)
        else:
            bucket.append(self)

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay}>"


class Initialize(Event):
    """Internal: kicks a freshly created process on the next step."""

    __slots__ = ()

    def __init__(self, engine: "Engine", process: "Process") -> None:
        self.engine = engine
        self.callbacks = [process]
        self._value = None
        self._ok = True
        self._processed = False
        self._defused = False
        engine._urgent.append((engine._now, self))


class Process(Event):
    """A running generator.  The event fires when the generator finishes.

    The generator's ``return`` value becomes the event's value; an
    uncaught exception becomes the event's failure.
    """

    __slots__ = ("generator", "name", "_target", "_gen_send", "_gen_throw")

    def __init__(self, engine: "Engine", generator: Generator, name: str = "") -> None:
        if not hasattr(generator, "send"):
            raise TypeError(f"process body must be a generator, got {generator!r}")
        super().__init__(engine)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        # Parking appends the process itself to an event's callback
        # list (it is callable, below); Engine.run() recognises it there
        # and drives the generator without an intermediate frame, using
        # these prebound send/throw.
        self._gen_send = generator.send
        self._gen_throw = generator.throw
        self._target: Optional[Event] = Initialize(engine, self)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._value is PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current instant.

        Interrupting a dead process is an error; interrupting a process
        that is waiting on an event detaches it from that event.
        """
        if not self.is_alive:
            raise RuntimeError(f"cannot interrupt dead process {self.name!r}")
        if self._target is self:
            raise RuntimeError("a process cannot interrupt itself synchronously")
        interrupt_event = Event(self.engine)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event._defused = True
        interrupt_event.callbacks.append(self)
        self.engine._push(self.engine.now, URGENT, interrupt_event)

    def _resume(self, event: Event) -> None:
        if self._value is not PENDING:
            # An interrupt raced with normal completion at the same
            # instant; the process already finished, nothing to deliver.
            return
        # Detach from the event we were waiting on (relevant for
        # interrupts, which bypass the waited-on event).
        target = self._target
        if target is not None and target is not event and target.callbacks is not None:
            try:
                target.callbacks.remove(self)
            except ValueError:
                pass
        self._target = None
        engine = self.engine
        engine._active_process = self
        send = self._gen_send
        throw = self._gen_throw
        try:
            while True:
                if event._ok:
                    next_event = send(event._value)
                else:
                    event._defused = True
                    next_event = throw(event._value)
                if next_event.__class__ is not Timeout and not isinstance(
                    next_event, Event
                ):
                    raise TypeError(
                        f"process {self.name!r} yielded non-event {next_event!r}"
                    )
                callbacks = next_event.callbacks
                if callbacks is not None:
                    # Event still pending or triggered-but-unprocessed:
                    # park until it fires.
                    callbacks.append(self)
                    self._target = next_event
                    break
                # Event already processed: feed its outcome straight back
                # into the generator on this same stack frame.
                event = next_event
        except StopIteration as stop:
            self.succeed(stop.value)
        except BaseException as exc:  # noqa: BLE001 - becomes the failure value
            self.fail(exc)
        finally:
            engine._active_process = None

    #: Parked processes sit directly in event callback lists; the
    #: generic dispatch path simply calls them.
    __call__ = _resume

    def __repr__(self) -> str:
        state = "alive" if self.is_alive else ("ok" if self._ok else "failed")
        return f"<Process {self.name!r} {state}>"


class ConditionEvent(Event):
    """Base for :class:`AllOf` / :class:`AnyOf`."""

    __slots__ = ("events", "_count")

    def __init__(self, engine: "Engine", events: Iterable[Event]) -> None:
        super().__init__(engine)
        self.events = list(events)
        self._count = 0
        for ev in self.events:
            if ev.engine is not engine:
                raise ValueError("cannot mix events from different engines")
        if not self.events:
            self._ok = True
            self._value = {}
            engine._push(engine.now, URGENT, self)
            return
        for ev in self.events:
            if ev.callbacks is None:
                self._check(ev)
            else:
                ev.callbacks.append(self._check)

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(ConditionEvent):
    """Fires when *all* component events succeed (value: dict event→value).

    Fails as soon as any component fails, with that component's exception.
    """

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            if not event._ok:
                event._defused = True
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._count += 1
        if self._count == len(self.events):
            self.succeed({ev: ev._value for ev in self.events})


class AnyOf(ConditionEvent):
    """Fires when the *first* component event triggers (success or failure
    mirrored)."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            if not event._ok:
                event._defused = True
            return
        if event._ok:
            self.succeed(event)
        else:
            event._defused = True
            self.fail(event._value)


class Engine:
    """The simulation engine: clock, urgent FIFO, and time wheel.

    Invariants the two lanes maintain (see module docstring):

    * every urgent entry is scheduled for the instant it was pushed, so
      the deque is monotone in time and always due no later than any
      wheel bucket;
    * wheel buckets hold scheduled occurrences (timeouts) in insertion
      order; the bucket currently being dispatched is detached, so
      same-instant events scheduled *during* dispatch land in a fresh
      bucket behind it.
    """

    # Slots for the per-event-hot attributes; __dict__ stays so the
    # instance-bound timeout() closure and external instrumentation
    # (e.g. Tracer patching step) keep working.
    __slots__ = (
        "_now", "_urgent", "_wheel", "_bucket", "_bucket_i", "_bucket_time",
        "_active_process", "_timeout_pool", "__dict__", "__weakref__",
    )

    def __init__(self) -> None:
        self._now = 0.0
        self._urgent: Deque = deque()
        self._wheel = TimeWheel()
        #: The bucket currently being consumed by step()/run(), with the
        #: index of the next un-dispatched entry and the bucket's
        #: instant.  run() claims whole buckets; step() walks them one
        #: entry at a time; both leave a partially consumed bucket here
        #: so the other can pick up exactly where it stopped.
        self._bucket: List = []
        self._bucket_i = 0
        self._bucket_time = 0.0
        self._active_process: Optional[Process] = None
        #: Recycled Timeout objects (see :meth:`run`), kept pre-reset:
        #: empty attached callbacks list, _ok True, not processed.
        self._timeout_pool: List[Timeout] = []
        #: Lifetime count of dispatched events (kept cheap: one add per
        #: claimed bucket in run(), one per urgent/stepped event).  The
        #: scale benchmarks divide this by wall time for events/s.
        self.dispatched = 0

        # timeout() is the kernel's hottest factory (every sleep, queue
        # poll, and monitoring tick), so each engine binds a closure
        # with the wheel and pool preloaded into cells; the instance
        # attribute shadows the plain method below.
        wheel = self._wheel
        buckets = wheel.buckets
        btimes = wheel.times
        pool = self._timeout_pool

        def timeout(
            delay: float,
            value: Any = None,
            _push=heapq.heappush,
            _bget=buckets.get,
            _pop=pool.pop,
            _new=Timeout,
            _engine=self,
        ) -> "Timeout":
            # Pooled timeouts come back pre-reset (empty callbacks
            # list, _ok True, not processed) — see run().
            if pool:
                if delay < 0:
                    raise ValueError(f"negative timeout delay {delay!r}")
                t = _pop()
                t._value = value
                t.delay = delay
                time = _engine._now + delay
                bucket = _bget(time)
                if bucket is None:
                    buckets[time] = [t]
                    _push(btimes, time)
                else:
                    bucket.append(t)
                return t
            return _new(_engine, delay, value)

        self.timeout = timeout  # type: ignore[method-assign]

    # -- clock --------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds since the epoch."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_process

    # -- event factories ------------------------------------------------------
    def event(self) -> Event:
        """A fresh pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires ``delay`` seconds from now.

        Reuses a pooled Timeout when one is available — the run loop
        recycles timeouts it can prove are unreachable, so the dominant
        "single waiter sleeps" pattern allocates nothing per cycle.
        (Each instance shadows this method with a preloaded closure; see
        ``__init__``.  This definition keeps the API discoverable and
        serves subclasses that override ``__init__``.)
        """
        pool = self._timeout_pool
        if pool:
            if delay < 0:
                raise ValueError(f"negative timeout delay {delay!r}")
            t = pool.pop()
            t._value = value
            t.delay = delay
            self._wheel.schedule(self._now + delay, t)
            return t
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start a new process running ``generator``."""
        return Process(self, generator, name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event firing when all of ``events`` succeed."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event firing when the first of ``events`` triggers."""
        return AnyOf(self, events)

    # -- scheduling internals -------------------------------------------------
    def _push(self, time: float, priority: int, event: Event) -> None:
        """Queue ``event``.  URGENT entries must be scheduled for the
        current instant (every internal caller does); NORMAL entries go
        to the wheel at any future time."""
        if priority == URGENT:
            self._urgent.append((time, event))
        else:
            self._wheel.schedule(time, event)

    def _schedule_event(self, event: Event) -> None:
        """Queue a just-triggered event's callback processing."""
        self._urgent.append((self._now, event))

    # -- execution --------------------------------------------------------------
    def step(self) -> bool:
        """Process one event.  Returns False if nothing is pending.

        Dispatch order: the urgent FIFO first (always due at or before
        the current instant), then the partially consumed active bucket,
        then the wheel's next bucket.
        """
        urgent = self._urgent
        if urgent:
            time, event = urgent.popleft()
            self._now = time
            if event._value is PENDING:
                # A cancelled entry: it stores its outcome eagerly, so
                # PENDING here means nothing to deliver.
                return True
            self.dispatched += 1
            event._process()
            return True
        bucket = self._bucket
        i = self._bucket_i
        if i >= len(bucket):
            wheel = self._wheel
            if not wheel.times:
                return False
            time, bucket = wheel.pop()
            if time < self._now:
                raise SimulationError("event scheduled in the past")
            self._bucket = bucket
            self._bucket_time = time
            self._now = time
            i = 0
            # Wheel buckets are counted whole at the claim (see run()).
            self.dispatched += len(bucket)
        event = bucket[i]
        self._bucket_i = i + 1
        if event._value is PENDING:
            return True
        event._process()
        return True

    def peek(self) -> float:
        """Time of the next pending event, or ``float('inf')``."""
        if self._urgent:
            return self._urgent[0][0]
        if self._bucket_i < len(self._bucket):
            return self._bucket_time
        return self._wheel.peek()

    def peek_event(self) -> Optional[Event]:
        """The next event :meth:`step` would dispatch, or ``None``.

        Used by instrumentation (e.g. the Tracer) that wants to
        describe the upcoming event before it runs.
        """
        if self._urgent:
            return self._urgent[0][1]
        if self._bucket_i < len(self._bucket):
            return self._bucket[self._bucket_i]
        wheel = self._wheel
        if wheel.times:
            return wheel.buckets[wheel.times[0]][0]
        return None

    def run(self, until: Optional[float] = None) -> None:
        """Run until nothing is pending or the clock reaches ``until``.

        When ``until`` is given the clock is advanced to exactly that
        time even if no event falls on it.

        This is the kernel's hottest loop, so dispatch is inlined: the
        urgent FIFO drains first, then whole wheel buckets are claimed
        and batch-dispatched (one clock store per distinct instant).
        The dominant pattern — a single parked process sleeping on a
        Timeout that nothing else references — takes a *lean* path: the
        refcount proves no user code can ever observe the Timeout
        again, so the processed-state flips are skipped entirely and
        the object goes straight back to the engine pool (CPython only;
        elsewhere the pool stays empty and behavior is identical).

        Note: while a bucket is being batch-dispatched, :meth:`peek` /
        :meth:`peek_event` (called from inside an event callback) report
        the bucket's own instant rather than looking past it.
        """
        if "step" in self.__dict__:
            # step() has been instance-patched (e.g. by a Tracer): take
            # the slow path so the instrumentation sees every event.
            return self._run_stepped(until)
        if until is None:
            limit = _INF
        else:
            if until < self._now:
                raise ValueError(f"until={until} is in the past (now={self._now})")
            limit = until
        urgent = self._urgent
        upop = urgent.popleft
        wheel = self._wheel
        buckets = wheel.buckets
        btimes = wheel.times
        pop = heapq.heappop
        pool = self._timeout_pool
        padd = pool.append
        getref = _getrefcount
        pending = PENDING
        timeout_cls = Timeout
        process_cls = Process
        pool_cap = _POOL_CAP
        _len = len
        # Urgent entries were pushed at the instant the clock already
        # shows (now only advances at bucket acquisition, which requires
        # the FIFO to be empty), so the drains below never store _now.
        try:
            while True:
                # Urgent entries are always due now (<= any bucket).
                while urgent:
                    _t, event = upop()
                    if event._value is pending:
                        continue
                    self.dispatched += 1
                    callbacks = event.callbacks
                    event.callbacks = None
                    event._processed = True
                    for callback in callbacks or ():
                        callback(event)
                    if event._ok is False and not event._defused:
                        raise SimulationError(
                            f"unhandled failure in {event!r}: {event._value!r}"
                        ) from event._value
                # Claim the next bucket: first any bucket step() left
                # partially consumed, then the wheel's earliest.
                i = self._bucket_i
                bucket = self._bucket
                if i < len(bucket):
                    if i:
                        bucket = bucket[i:]
                        self._bucket = bucket
                        self._bucket_i = 0
                    # Its instant is the current clock (step() set it),
                    # so it is within any valid ``until``.
                elif btimes:
                    time = btimes[0]
                    if time > limit:
                        break
                    pop(btimes)
                    bucket = buckets.pop(time)
                    self._now = time
                    self._bucket = bucket
                    self._bucket_time = time
                    self._bucket_i = 0
                    # Count each wheel bucket exactly once, at the claim
                    # (partial handoffs to/from step() are not recounted).
                    self.dispatched += _len(bucket)
                else:
                    break
                try:
                    for ev in bucket:
                        cbs = ev.callbacks
                        if ev.__class__ is timeout_cls and _len(cbs) == 1:
                            cb = cbs[0]
                            if cb.__class__ is process_cls and getref(ev) == 4:
                                # The dominant pattern, lean path.  The
                                # four references are exactly: this
                                # bucket, the ``ev`` local, the parked
                                # process's _target, and getrefcount's
                                # argument — so no user code can ever
                                # observe ``ev`` again and the
                                # processed-state flips are skipped.
                                # Timeouts are born succeeded (no
                                # _ok/_defused checks needed).
                                self._active_process = cb
                                try:
                                    nxt = cb._gen_send(ev._value)
                                except StopIteration as stop:
                                    ev.callbacks = None
                                    ev._processed = True
                                    cb._target = None
                                    cb.succeed(stop.value)
                                except BaseException as exc:  # noqa: BLE001
                                    ev.callbacks = None
                                    ev._processed = True
                                    cb._target = None
                                    cb.fail(exc)
                                else:
                                    if nxt.__class__ is timeout_cls:
                                        ncbs = nxt.callbacks
                                        if ncbs is not None:
                                            # Park on the fresh timeout
                                            # and recycle this one:
                                            # detaching cb leaves it
                                            # pre-reset already.  The
                                            # pool cap is enforced per
                                            # bucket, not per event.
                                            ncbs.append(cb)
                                            cb._target = nxt
                                            cbs.pop()
                                            padd(ev)
                                        else:
                                            ev.callbacks = None
                                            ev._processed = True
                                            cb._target = None
                                            cb._resume(nxt)
                                    elif isinstance(nxt, Event):
                                        ncbs = nxt.callbacks
                                        if ncbs is not None:
                                            ncbs.append(cb)
                                            cb._target = nxt
                                            cbs.pop()
                                            padd(ev)
                                        else:
                                            ev.callbacks = None
                                            ev._processed = True
                                            cb._target = None
                                            cb._resume(nxt)
                                    else:
                                        ev.callbacks = None
                                        ev._processed = True
                                        cb._target = None
                                        cb.fail(TypeError(
                                            f"process {cb.name!r} yielded "
                                            f"non-event {nxt!r}"
                                        ))
                                # Events triggered by this dispatch
                                # fire before later bucket entries.
                                while urgent:
                                    _t, event = upop()
                                    if event._value is pending:
                                        continue
                                    callbacks = event.callbacks
                                    event.callbacks = None
                                    event._processed = True
                                    for callback in callbacks or ():
                                        callback(event)
                                    if event._ok is False and not event._defused:
                                        raise SimulationError(
                                            f"unhandled failure in {event!r}: "
                                            f"{event._value!r}"
                                        ) from event._value
                                continue
                        # Generic path: cancelled entries, multi-callback
                        # events, user-held timeouts.
                        if ev._value is pending:
                            continue
                        ev.callbacks = None
                        ev._processed = True
                        for callback in cbs or ():
                            callback(ev)
                        if ev._ok is False and not ev._defused:
                            raise SimulationError(
                                f"unhandled failure in {ev!r}: {ev._value!r}"
                            ) from ev._value
                        if (
                            ev.__class__ is timeout_cls
                            and getref(ev) == 3
                        ):
                            # Only this bucket, the local, and the
                            # getrefcount argument hold it: recycle.
                            cbs.clear()
                            ev.callbacks = cbs
                            ev._processed = False
                            if len(pool) < pool_cap:
                                pool.append(ev)
                        while urgent:
                            _t, event = upop()
                            if event._value is pending:
                                continue
                            callbacks = event.callbacks
                            event.callbacks = None
                            event._processed = True
                            for callback in callbacks or ():
                                callback(event)
                            if event._ok is False and not event._defused:
                                raise SimulationError(
                                    f"unhandled failure in {event!r}: "
                                    f"{event._value!r}"
                                ) from event._value
                except BaseException:
                    # Leave the un-dispatched remainder claimable by a
                    # later run()/step().  ``ev`` is the entry whose
                    # dispatch raised; objects appear in a bucket at
                    # most once, so index() is unambiguous.
                    self._bucket_i = bucket.index(ev) + 1
                    raise
                self._bucket_i = len(bucket)
                if len(pool) > pool_cap:
                    del pool[pool_cap:]
        finally:
            self._active_process = None
        if until is not None:
            self._now = max(self._now, until)

    def _run_stepped(self, until: Optional[float] = None) -> None:
        """The un-inlined run loop, one ``self.step()`` call per event."""
        if until is None:
            while self.step():
                pass
            return
        if until < self._now:
            raise ValueError(f"until={until} is in the past (now={self._now})")
        while self.peek() <= until:
            if not self.step():
                break
        self._now = max(self._now, until)

    def run_process(self, generator: Generator, name: str = "") -> Any:
        """Convenience: run a single process to completion, return its value."""
        proc = self.process(generator, name)
        while proc.is_alive:
            if not self.step():
                raise SimulationError(
                    f"deadlock: process {proc.name!r} never finished"
                )
        if not proc.ok:
            raise proc.value
        return proc.value
