"""The discrete-event simulation core.

This is a classic event-heap + generator-process kernel, written from
scratch for this reproduction (the project depends only on numpy /
networkx).  The design mirrors the well-known process-interaction style:

* :class:`Engine` owns the clock and the pending-event heap.
* :class:`Event` is a one-shot occurrence that processes can wait on.
* :class:`Process` wraps a Python generator; every value the generator
  yields must be an :class:`Event`, and the process resumes when that
  event fires (receiving the event's value, or having the event's
  exception thrown into it).
* :class:`AllOf` / :class:`AnyOf` compose events.

Determinism: events scheduled for the same instant fire in (priority,
insertion-order) order, so repeated runs with the same seeds are
bit-identical.
"""

from __future__ import annotations

import heapq
import sys
from typing import Any, Callable, Generator, Iterable, List, Optional

#: Heap priority for "process a triggered event now" entries — these must
#: run before ordinary timeouts scheduled at the same instant.
URGENT = 0
#: Heap priority for ordinary scheduled occurrences.
NORMAL = 1

#: Heap entries are (time, key, event) 3-tuples where
#: ``key = priority * _PRIO_BASE + seq`` — priority dominates, insertion
#: order breaks ties, and the tuple stays one slot smaller than the
#: naive (time, priority, seq, event) layout on the hottest path.
_PRIO_BASE = 1 << 52
_NORMAL_BASE = NORMAL * _PRIO_BASE

PENDING = object()

#: CPython exposes refcounts, which lets the run loop prove a popped
#: Timeout is unreachable from user code and recycle it.  On other
#: implementations the pool simply stays empty.
_getrefcount = getattr(sys, "getrefcount", None)

#: Upper bound on recycled Timeout objects kept per engine.
_POOL_CAP = 1024


class Interrupt(Exception):
    """Thrown into a process generator by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class SimulationError(RuntimeError):
    """An unhandled failure escaped a process and reached the engine."""


class Event:
    """A one-shot occurrence in simulated time.

    An event starts *pending*, becomes *triggered* when
    :meth:`succeed`/:meth:`fail` is called (its callbacks are then
    scheduled to run at the current instant), and is *processed* once the
    callbacks have run.
    """

    __slots__ = ("engine", "callbacks", "_value", "_ok", "_processed", "_defused")

    def __init__(self, engine: "Engine") -> None:
        self.engine = engine
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: Optional[bool] = None
        self._processed = False
        self._defused = False

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once succeed()/fail() has been called."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only meaningful once triggered."""
        return bool(self._ok)

    @property
    def value(self) -> Any:
        """The success value or failure exception."""
        if self._value is PENDING:
            raise RuntimeError("event value not yet available")
        return self._value

    def defuse(self) -> None:
        """Mark a failed event as handled so it does not crash the run."""
        self._defused = True

    # -- triggering ---------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.engine._schedule_event(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with ``exception``."""
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.engine._schedule_event(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Mirror another event's outcome onto this one (callback form)."""
        if event._ok:
            self.succeed(event._value)
        else:
            event.defuse()
            self.fail(event._value)

    # -- internals ----------------------------------------------------------
    def _process(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        self._processed = True
        for callback in callbacks or ():
            callback(self)
        if self._ok is False and not self._defused:
            raise SimulationError(
                f"unhandled failure in {self!r}: {self._value!r}"
            ) from self._value

    def __repr__(self) -> str:
        state = "pending" if not self.triggered else ("ok" if self._ok else "failed")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires automatically after ``delay`` sim-seconds.

    This is the kernel's dominant allocation (every sleep, queue poll,
    and monitoring tick is one), so construction is inlined: no
    ``super().__init__`` / ``_push`` call chain, one direct heappush.
    """

    __slots__ = ("delay",)

    def __init__(self, engine: "Engine", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay {delay!r}")
        self.engine = engine
        self.callbacks = []
        self._value = value
        self._ok = True
        self._processed = False
        self._defused = False
        self.delay = delay
        engine._seq = seq = engine._seq + 1
        heapq.heappush(engine._heap, (engine._now + delay, seq + _NORMAL_BASE, self))

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay}>"


class Initialize(Event):
    """Internal: kicks a freshly created process on the next step."""

    __slots__ = ()

    def __init__(self, engine: "Engine", process: "Process") -> None:
        self.engine = engine
        self.callbacks = [process]
        self._value = None
        self._ok = True
        self._processed = False
        self._defused = False
        engine._seq = seq = engine._seq + 1
        heapq.heappush(engine._heap, (engine._now, seq, self))


class Process(Event):
    """A running generator.  The event fires when the generator finishes.

    The generator's ``return`` value becomes the event's value; an
    uncaught exception becomes the event's failure.
    """

    __slots__ = ("generator", "name", "_target", "_gen_send", "_gen_throw")

    def __init__(self, engine: "Engine", generator: Generator, name: str = "") -> None:
        if not hasattr(generator, "send"):
            raise TypeError(f"process body must be a generator, got {generator!r}")
        super().__init__(engine)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        # Parking appends the process itself to an event's callback
        # list (it is callable, below); Engine.run() recognises it there
        # and drives the generator without an intermediate frame, using
        # these prebound send/throw.
        self._gen_send = generator.send
        self._gen_throw = generator.throw
        self._target: Optional[Event] = Initialize(engine, self)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._value is PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current instant.

        Interrupting a dead process is an error; interrupting a process
        that is waiting on an event detaches it from that event.
        """
        if not self.is_alive:
            raise RuntimeError(f"cannot interrupt dead process {self.name!r}")
        if self._target is self:
            raise RuntimeError("a process cannot interrupt itself synchronously")
        interrupt_event = Event(self.engine)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event._defused = True
        interrupt_event.callbacks.append(self)
        self.engine._push(self.engine.now, URGENT, interrupt_event)

    def _resume(self, event: Event) -> None:
        if self._value is not PENDING:
            # An interrupt raced with normal completion at the same
            # instant; the process already finished, nothing to deliver.
            return
        # Detach from the event we were waiting on (relevant for
        # interrupts, which bypass the waited-on event).
        target = self._target
        if target is not None and target is not event and target.callbacks is not None:
            try:
                target.callbacks.remove(self)
            except ValueError:
                pass
        self._target = None
        engine = self.engine
        engine._active_process = self
        send = self._gen_send
        throw = self._gen_throw
        try:
            while True:
                if event._ok:
                    next_event = send(event._value)
                else:
                    event._defused = True
                    next_event = throw(event._value)
                if next_event.__class__ is not Timeout and not isinstance(
                    next_event, Event
                ):
                    raise TypeError(
                        f"process {self.name!r} yielded non-event {next_event!r}"
                    )
                callbacks = next_event.callbacks
                if callbacks is not None:
                    # Event still pending or triggered-but-unprocessed:
                    # park until it fires.
                    callbacks.append(self)
                    self._target = next_event
                    break
                # Event already processed: feed its outcome straight back
                # into the generator on this same stack frame.
                event = next_event
        except StopIteration as stop:
            self.succeed(stop.value)
        except BaseException as exc:  # noqa: BLE001 - becomes the failure value
            self.fail(exc)
        finally:
            engine._active_process = None

    #: Parked processes sit directly in event callback lists; the
    #: generic dispatch path simply calls them.
    __call__ = _resume

    def __repr__(self) -> str:
        state = "alive" if self.is_alive else ("ok" if self._ok else "failed")
        return f"<Process {self.name!r} {state}>"


class ConditionEvent(Event):
    """Base for :class:`AllOf` / :class:`AnyOf`."""

    __slots__ = ("events", "_count")

    def __init__(self, engine: "Engine", events: Iterable[Event]) -> None:
        super().__init__(engine)
        self.events = list(events)
        self._count = 0
        for ev in self.events:
            if ev.engine is not engine:
                raise ValueError("cannot mix events from different engines")
        if not self.events:
            self._ok = True
            self._value = {}
            engine._push(engine.now, URGENT, self)
            return
        for ev in self.events:
            if ev.callbacks is None:
                self._check(ev)
            else:
                ev.callbacks.append(self._check)

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(ConditionEvent):
    """Fires when *all* component events succeed (value: dict event→value).

    Fails as soon as any component fails, with that component's exception.
    """

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            if not event._ok:
                event._defused = True
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._count += 1
        if self._count == len(self.events):
            self.succeed({ev: ev._value for ev in self.events})


class AnyOf(ConditionEvent):
    """Fires when the *first* component event triggers (success or failure
    mirrored)."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            if not event._ok:
                event._defused = True
            return
        if event._ok:
            self.succeed(event)
        else:
            event._defused = True
            self.fail(event._value)


class Engine:
    """The simulation engine: clock plus pending-event heap."""

    # Slots for the per-event-hot attributes; __dict__ stays so the
    # instance-bound timeout() closure and external instrumentation
    # (e.g. Tracer patching step) keep working.
    __slots__ = (
        "_now", "_heap", "_seq", "_active_process", "_timeout_pool",
        "_pool1", "__dict__", "__weakref__",
    )

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: List = []
        self._seq = 0
        self._active_process: Optional[Process] = None
        #: Recycled Timeout objects: a single-slot L1 (the common
        #: recycle-then-create-next-tick rhythm alternates through it)
        #: plus an overflow list (see :meth:`run`).
        self._pool1: Optional[Timeout] = None
        self._timeout_pool: List[Timeout] = []

        # timeout() is the kernel's hottest factory (every sleep, queue
        # poll, and monitoring tick), so each engine binds a closure
        # with the heap and pool preloaded into cells; the instance
        # attribute shadows the plain method below.
        heap = self._heap
        pool = self._timeout_pool

        def timeout(
            delay: float,
            value: Any = None,
            _push=heapq.heappush,
            _nbase=_NORMAL_BASE,
            _new=Timeout,
            _engine=self,
        ) -> "Timeout":
            # Pooled timeouts come back pre-reset (empty callbacks
            # list, _ok True, not processed) — see run().
            t = _engine._pool1
            if t is not None:
                if delay < 0:
                    raise ValueError(f"negative timeout delay {delay!r}")
                _engine._pool1 = None
                t._value = value
                t.delay = delay
                _engine._seq = seq = _engine._seq + 1
                _push(heap, (_engine._now + delay, seq + _nbase, t))
                return t
            if pool:
                if delay < 0:
                    raise ValueError(f"negative timeout delay {delay!r}")
                t = pool.pop()
                t._value = value
                t.delay = delay
                _engine._seq = seq = _engine._seq + 1
                _push(heap, (_engine._now + delay, seq + _nbase, t))
                return t
            return _new(_engine, delay, value)

        self.timeout = timeout  # type: ignore[method-assign]

    # -- clock --------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds since the epoch."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_process

    # -- event factories ------------------------------------------------------
    def event(self) -> Event:
        """A fresh pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires ``delay`` seconds from now.

        Reuses a pooled Timeout when one is available — the run loop
        recycles timeouts it can prove are unreachable, so the dominant
        "single waiter sleeps" pattern allocates nothing per cycle.
        (Each instance shadows this method with a preloaded closure; see
        ``__init__``.  This definition keeps the API discoverable and
        serves subclasses that override ``__init__``.)
        """
        t = self._pool1
        if t is None and self._timeout_pool:
            t = self._timeout_pool.pop()
        elif t is not None:
            self._pool1 = None
        if t is not None:
            if delay < 0:
                raise ValueError(f"negative timeout delay {delay!r}")
            t._value = value
            t.delay = delay
            self._seq = seq = self._seq + 1
            heapq.heappush(self._heap, (self._now + delay, seq + _NORMAL_BASE, t))
            return t
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start a new process running ``generator``."""
        return Process(self, generator, name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event firing when all of ``events`` succeed."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event firing when the first of ``events`` triggers."""
        return AnyOf(self, events)

    # -- scheduling internals -------------------------------------------------
    def _push(self, time: float, priority: int, event: Event) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (time, priority * _PRIO_BASE + self._seq, event))

    def _schedule_event(self, event: Event) -> None:
        """Queue a just-triggered event's callback processing."""
        self._push(self._now, URGENT, event)

    # -- execution --------------------------------------------------------------
    def step(self) -> bool:
        """Process one event.  Returns False if the heap is empty."""
        if not self._heap:
            return False
        time, _key, event = heapq.heappop(self._heap)
        if time < self._now:
            raise SimulationError("event scheduled in the past")
        self._now = time
        if event._value is PENDING:
            # A Timeout-like entry reaching its due time: it stores its
            # outcome eagerly, so PENDING here means a cancelled entry.
            return True
        event._process()
        return True

    def peek(self) -> float:
        """Time of the next pending event, or ``float('inf')``."""
        return self._heap[0][0] if self._heap else float("inf")

    def run(self, until: Optional[float] = None) -> None:
        """Run until the heap empties or the clock reaches ``until``.

        When ``until`` is given the clock is advanced to exactly that
        time even if no event falls on it.

        This is the kernel's hottest loop, so :meth:`step` and
        :meth:`Event._process` are inlined here: one heappop, one clock
        store, and the callback sweep per event, with heap/pool bound to
        locals.  After an event's callbacks have run, a Timeout whose
        refcount proves nothing else can ever observe it again is
        recycled into the engine pool (CPython only; elsewhere the pool
        stays empty and behavior is identical).
        """
        if "step" in self.__dict__:
            # step() has been instance-patched (e.g. by a Tracer): take
            # the slow path so the instrumentation sees every event.
            return self._run_stepped(until)
        if until is None:
            limit = float("inf")
        else:
            if until < self._now:
                raise ValueError(f"until={until} is in the past (now={self._now})")
            limit = until
        heap = self._heap
        pop = heapq.heappop
        pool = self._timeout_pool
        getref = _getrefcount
        pending = PENDING
        timeout_cls = Timeout
        process_cls = Process
        pool_cap = _POOL_CAP
        while heap:
            time, _key, event = pop(heap)
            if time > limit:
                # Past the horizon: put the entry back (at most once per
                # run() call) and stop.
                heapq.heappush(heap, (time, _key, event))
                break
            self._now = time
            callbacks = event.callbacks
            event.callbacks = None
            event._processed = True
            if event.__class__ is timeout_cls and len(callbacks) == 1:
                # The dominant pattern: one waiter sleeping on a
                # timeout.  Timeouts are born succeeded (no _ok/_defused
                # checks needed) and are pool candidates afterwards.
                cb = callbacks[0]
                if cb.__class__ is process_cls:
                    # A parked process: it is alive, waiting on exactly
                    # this event.  Drive its generator right here — no
                    # _resume frame, no detach bookkeeping.
                    self._active_process = cb
                    try:
                        next_event = cb._gen_send(event._value)
                    except StopIteration as stop:
                        self._active_process = None
                        cb._target = None
                        cb.succeed(stop.value)
                    except BaseException as exc:  # noqa: BLE001
                        self._active_process = None
                        cb._target = None
                        cb.fail(exc)
                    else:
                        self._active_process = None
                        if next_event.__class__ is timeout_cls:
                            ncbs = next_event.callbacks
                            if ncbs is not None:
                                # Park on the fresh timeout.
                                ncbs.append(cb)
                                cb._target = next_event
                            else:
                                # Already-processed timeout: continue
                                # inline through the generic path.
                                cb._target = None
                                cb._resume(next_event)
                        elif isinstance(next_event, Event):
                            ncbs = next_event.callbacks
                            if ncbs is not None:
                                ncbs.append(cb)
                                cb._target = next_event
                            else:
                                cb._target = None
                                cb._resume(next_event)
                        else:
                            cb._target = None
                            cb.fail(TypeError(
                                f"process {cb.name!r} yielded non-event "
                                f"{next_event!r}"
                            ))
                else:
                    cb(event)
                if getref is not None and getref(event) == 2:
                    # Two references: the ``event`` local and
                    # getrefcount's argument.  Anything user-visible
                    # would add a third.  Reset in place (reusing the
                    # detached callbacks list) so timeout()'s pooled
                    # path is a few stores.
                    callbacks.clear()
                    event.callbacks = callbacks
                    event._processed = False
                    if self._pool1 is None:
                        self._pool1 = event
                    elif len(pool) < pool_cap:
                        pool.append(event)
                continue
            if event._value is pending:
                # A cancelled entry (see :meth:`step`).
                event.callbacks = callbacks
                event._processed = False
                continue
            for callback in callbacks or ():
                callback(event)
            if event._ok is False and not event._defused:
                raise SimulationError(
                    f"unhandled failure in {event!r}: {event._value!r}"
                ) from event._value
            if (
                event.__class__ is timeout_cls
                and getref is not None
                and getref(event) == 2
            ):
                callbacks.clear()
                event.callbacks = callbacks
                event._processed = False
                if self._pool1 is None:
                    self._pool1 = event
                elif len(pool) < pool_cap:
                    pool.append(event)
        if until is not None:
            self._now = max(self._now, until)

    def _run_stepped(self, until: Optional[float] = None) -> None:
        """The pre-inlining run loop, one ``self.step()`` call per event."""
        if until is None:
            while self.step():
                pass
            return
        if until < self._now:
            raise ValueError(f"until={until} is in the past (now={self._now})")
        while self._heap and self._heap[0][0] <= until:
            self.step()
        self._now = max(self._now, until)

    def run_process(self, generator: Generator, name: str = "") -> Any:
        """Convenience: run a single process to completion, return its value."""
        proc = self.process(generator, name)
        while proc.is_alive:
            if not self.step():
                raise SimulationError(
                    f"deadlock: process {proc.name!r} never finished"
                )
        if not proc.ok:
            raise proc.value
        return proc.value
