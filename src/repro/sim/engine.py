"""The discrete-event simulation core.

This is a classic event-heap + generator-process kernel, written from
scratch for this reproduction (the project depends only on numpy /
networkx).  The design mirrors the well-known process-interaction style:

* :class:`Engine` owns the clock and the pending-event heap.
* :class:`Event` is a one-shot occurrence that processes can wait on.
* :class:`Process` wraps a Python generator; every value the generator
  yields must be an :class:`Event`, and the process resumes when that
  event fires (receiving the event's value, or having the event's
  exception thrown into it).
* :class:`AllOf` / :class:`AnyOf` compose events.

Determinism: events scheduled for the same instant fire in (priority,
insertion-order) order, so repeated runs with the same seeds are
bit-identical.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional

#: Heap priority for "process a triggered event now" entries — these must
#: run before ordinary timeouts scheduled at the same instant.
URGENT = 0
#: Heap priority for ordinary scheduled occurrences.
NORMAL = 1

PENDING = object()


class Interrupt(Exception):
    """Thrown into a process generator by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class SimulationError(RuntimeError):
    """An unhandled failure escaped a process and reached the engine."""


class Event:
    """A one-shot occurrence in simulated time.

    An event starts *pending*, becomes *triggered* when
    :meth:`succeed`/:meth:`fail` is called (its callbacks are then
    scheduled to run at the current instant), and is *processed* once the
    callbacks have run.
    """

    __slots__ = ("engine", "callbacks", "_value", "_ok", "_processed", "_defused")

    def __init__(self, engine: "Engine") -> None:
        self.engine = engine
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: Optional[bool] = None
        self._processed = False
        self._defused = False

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once succeed()/fail() has been called."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only meaningful once triggered."""
        return bool(self._ok)

    @property
    def value(self) -> Any:
        """The success value or failure exception."""
        if self._value is PENDING:
            raise RuntimeError("event value not yet available")
        return self._value

    def defuse(self) -> None:
        """Mark a failed event as handled so it does not crash the run."""
        self._defused = True

    # -- triggering ---------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.engine._schedule_event(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with ``exception``."""
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.engine._schedule_event(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Mirror another event's outcome onto this one (callback form)."""
        if event._ok:
            self.succeed(event._value)
        else:
            event.defuse()
            self.fail(event._value)

    # -- internals ----------------------------------------------------------
    def _process(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        self._processed = True
        for callback in callbacks or ():
            callback(self)
        if self._ok is False and not self._defused:
            raise SimulationError(
                f"unhandled failure in {self!r}: {self._value!r}"
            ) from self._value

    def __repr__(self) -> str:
        state = "pending" if not self.triggered else ("ok" if self._ok else "failed")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires automatically after ``delay`` sim-seconds."""

    __slots__ = ("delay",)

    def __init__(self, engine: "Engine", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay {delay!r}")
        super().__init__(engine)
        self.delay = delay
        self._ok = True
        self._value = value
        engine._push(engine.now + delay, NORMAL, self)

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay}>"


class Initialize(Event):
    """Internal: kicks a freshly created process on the next step."""

    __slots__ = ()

    def __init__(self, engine: "Engine", process: "Process") -> None:
        super().__init__(engine)
        self.callbacks.append(process._resume)
        self._ok = True
        self._value = None
        engine._push(engine.now, URGENT, self)


class Process(Event):
    """A running generator.  The event fires when the generator finishes.

    The generator's ``return`` value becomes the event's value; an
    uncaught exception becomes the event's failure.
    """

    __slots__ = ("generator", "name", "_target")

    def __init__(self, engine: "Engine", generator: Generator, name: str = "") -> None:
        if not hasattr(generator, "send"):
            raise TypeError(f"process body must be a generator, got {generator!r}")
        super().__init__(engine)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Optional[Event] = Initialize(engine, self)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._value is PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current instant.

        Interrupting a dead process is an error; interrupting a process
        that is waiting on an event detaches it from that event.
        """
        if not self.is_alive:
            raise RuntimeError(f"cannot interrupt dead process {self.name!r}")
        if self._target is self:
            raise RuntimeError("a process cannot interrupt itself synchronously")
        interrupt_event = Event(self.engine)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event._defused = True
        interrupt_event.callbacks.append(self._resume)
        self.engine._push(self.engine.now, URGENT, interrupt_event)

    def _resume(self, event: Event) -> None:
        if not self.is_alive:
            # An interrupt raced with normal completion at the same
            # instant; the process already finished, nothing to deliver.
            return
        # Detach from the event we were waiting on (relevant for
        # interrupts, which bypass the waited-on event).
        target = self._target
        if target is not None and target is not event and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None
        self.engine._active_process = self
        try:
            while True:
                if event._ok:
                    next_event = self.generator.send(event._value)
                else:
                    event._defused = True
                    exc = event._value
                    next_event = self.generator.throw(exc)
                if not isinstance(next_event, Event):
                    raise TypeError(
                        f"process {self.name!r} yielded non-event {next_event!r}"
                    )
                if next_event.callbacks is not None:
                    # Event still pending or triggered-but-unprocessed:
                    # park until it fires.
                    next_event.callbacks.append(self._resume)
                    self._target = next_event
                    break
                # Event already processed: feed its outcome straight back
                # into the generator on this same stack frame.
                event = next_event
        except StopIteration as stop:
            self.succeed(stop.value)
        except BaseException as exc:  # noqa: BLE001 - becomes the failure value
            self.fail(exc)
        finally:
            self.engine._active_process = None

    def __repr__(self) -> str:
        state = "alive" if self.is_alive else ("ok" if self._ok else "failed")
        return f"<Process {self.name!r} {state}>"


class ConditionEvent(Event):
    """Base for :class:`AllOf` / :class:`AnyOf`."""

    __slots__ = ("events", "_count")

    def __init__(self, engine: "Engine", events: Iterable[Event]) -> None:
        super().__init__(engine)
        self.events = list(events)
        self._count = 0
        for ev in self.events:
            if ev.engine is not engine:
                raise ValueError("cannot mix events from different engines")
        if not self.events:
            self._ok = True
            self._value = {}
            engine._push(engine.now, URGENT, self)
            return
        for ev in self.events:
            if ev.callbacks is None:
                self._check(ev)
            else:
                ev.callbacks.append(self._check)

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(ConditionEvent):
    """Fires when *all* component events succeed (value: dict event→value).

    Fails as soon as any component fails, with that component's exception.
    """

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            if not event._ok:
                event._defused = True
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._count += 1
        if self._count == len(self.events):
            self.succeed({ev: ev._value for ev in self.events})


class AnyOf(ConditionEvent):
    """Fires when the *first* component event triggers (success or failure
    mirrored)."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            if not event._ok:
                event._defused = True
            return
        if event._ok:
            self.succeed(event)
        else:
            event._defused = True
            self.fail(event._value)


class Engine:
    """The simulation engine: clock plus pending-event heap."""

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: List = []
        self._seq = 0
        self._active_process: Optional[Process] = None

    # -- clock --------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds since the epoch."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_process

    # -- event factories ------------------------------------------------------
    def event(self) -> Event:
        """A fresh pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start a new process running ``generator``."""
        return Process(self, generator, name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event firing when all of ``events`` succeed."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event firing when the first of ``events`` triggers."""
        return AnyOf(self, events)

    # -- scheduling internals -------------------------------------------------
    def _push(self, time: float, priority: int, event: Event) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (time, priority, self._seq, event))

    def _schedule_event(self, event: Event) -> None:
        """Queue a just-triggered event's callback processing."""
        self._push(self._now, URGENT, event)

    # -- execution --------------------------------------------------------------
    def step(self) -> bool:
        """Process one event.  Returns False if the heap is empty."""
        if not self._heap:
            return False
        time, _prio, _seq, event = heapq.heappop(self._heap)
        if time < self._now:
            raise SimulationError("event scheduled in the past")
        self._now = time
        if event._value is PENDING:
            # A Timeout-like entry reaching its due time: it stores its
            # outcome eagerly, so PENDING here means a cancelled entry.
            return True
        event._process()
        return True

    def peek(self) -> float:
        """Time of the next pending event, or ``float('inf')``."""
        return self._heap[0][0] if self._heap else float("inf")

    def run(self, until: Optional[float] = None) -> None:
        """Run until the heap empties or the clock reaches ``until``.

        When ``until`` is given the clock is advanced to exactly that
        time even if no event falls on it.
        """
        if until is None:
            while self.step():
                pass
            return
        if until < self._now:
            raise ValueError(f"until={until} is in the past (now={self._now})")
        while self._heap and self._heap[0][0] <= until:
            self.step()
        self._now = max(self._now, until)

    def run_process(self, generator: Generator, name: str = "") -> Any:
        """Convenience: run a single process to completion, return its value."""
        proc = self.process(generator, name)
        while proc.is_alive:
            if not self.step():
                raise SimulationError(
                    f"deadlock: process {proc.name!r} never finished"
                )
        if not proc.ok:
            raise proc.value
        return proc.value
