"""Shared-resource primitives built on the event kernel.

:class:`Resource` models a fixed number of identical slots (CPUs in a
cluster, GridFTP server connections, gatekeeper jobmanager slots).
:class:`Container` models a continuous quantity (disk space on a storage
element).  Both hand out events that processes ``yield`` on.
"""

from __future__ import annotations

import heapq
from typing import Any, List, Optional

from .engine import Engine, Event


class Request(Event):
    """A pending claim on a :class:`Resource` slot.

    The event fires when the slot is granted.  Lower ``priority`` wins;
    ties break FIFO.
    """

    __slots__ = ("resource", "priority", "key")

    def __init__(self, resource: "Resource", priority: int = 0) -> None:
        super().__init__(resource.engine)
        self.resource = resource
        self.priority = priority
        resource._seq += 1
        self.key = (priority, resource._seq)
        resource._admit(self)

    def cancel(self) -> None:
        """Withdraw an ungranted request (granted requests must release)."""
        self.resource._cancel(self)


class Resource:
    """``capacity`` identical slots with a priority waiting queue."""

    def __init__(self, engine: Engine, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.engine = engine
        self._capacity = int(capacity)
        self._in_use = 0
        self._queue: List = []  # heap of (key, Request)
        self._seq = 0

    # -- introspection ----------------------------------------------------
    @property
    def capacity(self) -> int:
        """Total slot count."""
        return self._capacity

    @property
    def in_use(self) -> int:
        """Currently granted slots."""
        return self._in_use

    @property
    def available(self) -> int:
        """Free slots."""
        return self._capacity - self._in_use

    @property
    def queue_length(self) -> int:
        """Requests waiting for a slot."""
        return len(self._queue)

    # -- protocol ---------------------------------------------------------
    def request(self, priority: int = 0) -> Request:
        """Claim a slot.  Yield the returned event to wait for the grant."""
        return Request(self, priority)

    def release(self, request: Request) -> None:
        """Return a granted slot.  Wakes the highest-priority waiter."""
        if not request.triggered:
            raise RuntimeError("cannot release an ungranted request; cancel() it")
        self._in_use -= 1
        self._dispatch()

    def resize(self, new_capacity: int) -> None:
        """Change capacity (sites add/withdraw nodes, §7).  Shrinking below
        current use is allowed; excess drains as jobs finish."""
        if new_capacity < 0:
            raise ValueError("capacity cannot be negative")
        self._capacity = int(new_capacity)
        self._dispatch()

    # -- internals ----------------------------------------------------------
    def _admit(self, request: Request) -> None:
        heapq.heappush(self._queue, (request.key, request))
        self._dispatch()

    def _cancel(self, request: Request) -> None:
        if request.triggered:
            raise RuntimeError("request already granted; release() instead")
        # Lazy deletion: mark by failing silently and skip at dispatch.
        request._ok = False
        request._value = RuntimeError("cancelled")
        request._defused = True

    def _dispatch(self) -> None:
        while self._queue and self._in_use < self._capacity:
            _key, request = heapq.heappop(self._queue)
            if request.triggered:  # cancelled entry
                continue
            self._in_use += 1
            request.succeed(self)


class ContainerError(RuntimeError):
    """Raised on invalid container operations (overdraw, overfill)."""


class Container:
    """A continuous quantity with bounded capacity (e.g. disk space).

    ``try_put``/``try_get`` are non-blocking and return success — the
    Grid3 failure model wants disk-full to be an observable *error*, not
    an invisible wait.  Blocking ``get`` (wait until enough available) is
    provided for consumers that legitimately wait, with FIFO service.
    """

    def __init__(self, engine: Engine, capacity: float, initial: float = 0.0) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0 <= initial <= capacity:
            raise ValueError("initial level out of range")
        self.engine = engine
        self.capacity = float(capacity)
        self._level = float(initial)
        self._getters: List = []  # FIFO of (amount, Event)

    @property
    def level(self) -> float:
        """Current stored amount."""
        return self._level

    @property
    def free(self) -> float:
        """Remaining capacity."""
        return self.capacity - self._level

    def try_put(self, amount: float) -> bool:
        """Add ``amount`` if it fits; False (and no change) otherwise."""
        if amount < 0:
            raise ContainerError(f"negative put {amount}")
        if self._level + amount > self.capacity + 1e-9:
            return False
        self._level = min(self.capacity, self._level + amount)
        self._serve_getters()
        return True

    def put(self, amount: float) -> None:
        """Add ``amount``; raises :class:`ContainerError` if it overflows."""
        if not self.try_put(amount):
            raise ContainerError(
                f"container overflow: level={self._level} + {amount} > {self.capacity}"
            )

    def try_get(self, amount: float) -> bool:
        """Remove ``amount`` if present; False (and no change) otherwise."""
        if amount < 0:
            raise ContainerError(f"negative get {amount}")
        if amount > self._level + 1e-9:
            return False
        self._level = max(0.0, self._level - amount)
        return True

    def get(self, amount: float) -> Event:
        """Event that fires once ``amount`` has been removed (FIFO)."""
        event = Event(self.engine)
        self._getters.append((amount, event))
        self._serve_getters()
        return event

    def _serve_getters(self) -> None:
        while self._getters:
            amount, event = self._getters[0]
            if amount > self._level + 1e-9:
                break
            self._getters.pop(0)
            self._level -= amount
            event.succeed(amount)
