"""Bucket-calendar ("time wheel") for the simulation kernel.

The kernel's scheduled-occurrence population is dominated by dense
bands of short timeouts (heartbeats, poll loops, queue waits) that
frequently collide on the exact same firing instant.  A classic binary
heap pays ``O(log n)`` per event and carries a per-entry sequence key
just to keep same-instant ties in insertion order.

:class:`TimeWheel` replaces that with a calendar of *exact-time
buckets*:

* ``buckets`` maps each distinct pending fire time (a float) to the
  list of events scheduled for that instant, in insertion order.
* ``times`` is a small heap of the distinct pending times only.

Scheduling an event whose fire time already has a bucket is an O(1)
``list.append``; only the *first* event at a new time pays the heap
push.  Because a Python list preserves insertion order, same-instant
ties need no sequence numbers at all — the bucket *is* the tie-break —
and the engine can batch-dispatch a whole bucket after a single clock
store.  Far-future (and even ``inf``) times need no special casing:
they are just buckets that sort late in ``times``, so the heap doubles
as the fallback calendar for sparse long-range events.

Ordering contract (relied on by the engine's determinism guarantee):
events scheduled for the same instant fire in insertion order, and the
engine drains its urgent FIFO (triggered events, which are always
scheduled for the *current* instant) before opening the next bucket —
together this reproduces exactly the old heap's
``(time, priority, insertion-seq)`` order.

The engine inlines the hot-path insert (see ``Engine.__init__`` and
``Timeout.__init__``) by touching ``buckets``/``times`` directly; the
methods here are the readable reference implementation and serve the
non-hot paths (``step``, ``peek``, diagnostics).
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Dict, List, Tuple

_INF = float("inf")


class TimeWheel:
    """Exact-time bucket calendar: ``{fire_time: [event, ...]}`` plus a
    heap of the distinct pending times."""

    __slots__ = ("buckets", "times")

    def __init__(self) -> None:
        self.buckets: Dict[float, List[Any]] = {}
        self.times: List[float] = []

    def schedule(self, time: float, event: Any) -> None:
        """Add ``event`` to the bucket for ``time`` (creating it, and
        registering the time in the heap, if this is the first event at
        that instant)."""
        bucket = self.buckets.get(time)
        if bucket is None:
            self.buckets[time] = [event]
            heappush(self.times, time)
        else:
            bucket.append(event)

    def peek(self) -> float:
        """Earliest pending time, or ``inf`` when empty."""
        return self.times[0] if self.times else _INF

    def pop(self) -> Tuple[float, List[Any]]:
        """Remove and return ``(time, bucket)`` for the earliest time.

        The bucket is detached: an event scheduled for the same float
        time *during* dispatch lands in a fresh bucket (correctly after
        every already-scheduled event at that instant).
        """
        time = heappop(self.times)
        return time, self.buckets.pop(time)

    def __len__(self) -> int:
        return sum(len(b) for b in self.buckets.values())

    def __bool__(self) -> bool:
        return bool(self.times)

    def __repr__(self) -> str:
        return f"<TimeWheel {len(self.times)} times / {len(self)} events>"
