"""Operations: the iGOC, trouble tickets, policies, and §7 milestones."""

from .alerts import (
    AlertEngine,
    AlertMonitor,
    AlertRule,
    AlertStatusRow,
    AlertTransition,
    default_rules,
    lint_rules,
    service_rules,
)
from .autovalidate import AutoValidator, ValidationReport
from .igoc import IGOC, OperationsTeam
from .metrics import (
    DIRECTION,
    PAPER_ACTUALS,
    PAPER_TARGETS,
    Milestone,
    MilestonesTracker,
)
from .reports import (
    failure_hotspots,
    production_summary,
    ticket_summary,
    weekly_report,
)
from .policy import (
    AcceptableUsePolicy,
    PolicyViolation,
    SitePolicy,
    audit_policy,
    policy_for_site,
)
from .results import (
    DataSummary,
    GramAccounting,
    GridFTPAccounting,
    SlowJobRow,
    StorageAccounting,
)
from .tickets import RESPONSIBILITY_MATRIX, Ticket, TroubleTicketSystem, responsible_party
from .troubleshooting import (
    JobLink,
    JobLinkIndex,
    TroubleshootingAPI,
)

__all__ = [
    "AcceptableUsePolicy",
    "AlertEngine",
    "AlertMonitor",
    "AlertRule",
    "AlertStatusRow",
    "AlertTransition",
    "default_rules",
    "lint_rules",
    "service_rules",
    "AutoValidator",
    "DataSummary",
    "GramAccounting",
    "GridFTPAccounting",
    "SlowJobRow",
    "StorageAccounting",
    "JobLink",
    "JobLinkIndex",
    "TroubleshootingAPI",
    "ValidationReport",
    "DIRECTION",
    "IGOC",
    "Milestone",
    "MilestonesTracker",
    "OperationsTeam",
    "PAPER_ACTUALS",
    "PAPER_TARGETS",
    "PolicyViolation",
    "SitePolicy",
    "RESPONSIBILITY_MATRIX",
    "Ticket",
    "responsible_party",
    "TroubleTicketSystem",
    "audit_policy",
    "failure_hotspots",
    "production_summary",
    "ticket_summary",
    "weekly_report",
    "policy_for_site",
]
