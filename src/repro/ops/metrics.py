"""The §7 milestones-and-metrics tracker.

"At the outset of Grid2003, we defined milestones for use in tracking
progress and evaluating success."  Each :class:`Milestone` pairs the
paper's target with the value achieved by a simulation run; the module
reproduces the §7 bullet list as a table.

Paper targets and reported actuals (for reference in tests/benches):

  ==============================  ========  ===================
  metric                           target    paper actual
  ==============================  ========  ===================
  number of CPUs                   400       2163 (peak 2800)
  number of users                  10        102
  number of applications           >4        10
  concurrent-application sites     >10       17
  data transferred per day         2-3 TB    4 TB
  percentage of resources used     90 %      40-70 %
  efficiency of job completion     75 %      varies; >90 % at
                                             well-run sites
  peak concurrent jobs             1000      1300
  operations support load          <2 FTE    <2 FTE sustained
  ==============================  ========  ===================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

#: The §7 targets, machine-readable.
PAPER_TARGETS: Dict[str, float] = {
    "cpus": 400,
    "users": 10,
    "applications": 4,          # target "> 4"
    "concurrent_app_sites": 10,  # target "> 10"
    "data_tb_per_day": 2.0,
    "resource_utilisation": 0.90,
    "job_efficiency": 0.75,
    "peak_concurrent_jobs": 1000,
    "support_fte": 2.0,          # target "< 2"
}

#: The actuals the paper reports, for shape comparison.
PAPER_ACTUALS: Dict[str, float] = {
    "cpus": 2163,
    "users": 102,
    "applications": 10,
    "concurrent_app_sites": 17,
    "data_tb_per_day": 4.0,
    "resource_utilisation": 0.55,   # mid of the 40-70 % band
    "job_efficiency": 0.70,         # "varies"; CMS/ATLAS ~70 %
    "peak_concurrent_jobs": 1300,
    "support_fte": 2.0,
}

#: Whether bigger is better ("+") or smaller ("-") per metric.
DIRECTION: Dict[str, str] = {
    "cpus": "+", "users": "+", "applications": "+",
    "concurrent_app_sites": "+", "data_tb_per_day": "+",
    "resource_utilisation": "+", "job_efficiency": "+",
    "peak_concurrent_jobs": "+", "support_fte": "-",
}


@dataclass(frozen=True)
class Milestone:
    """One row of the milestones table."""

    key: str
    description: str
    target: float
    achieved: float
    unit: str = ""

    @property
    def met(self) -> bool:
        """Whether the achieved value satisfies the target."""
        if DIRECTION.get(self.key, "+") == "+":
            return self.achieved >= self.target
        return self.achieved <= self.target

    @property
    def paper_actual(self) -> Optional[float]:
        return PAPER_ACTUALS.get(self.key)


class MilestonesTracker:
    """Collects achieved values and renders the §7 comparison table."""

    DESCRIPTIONS = {
        "cpus": "Number of CPUs",
        "users": "Number of users",
        "applications": "Number of applications",
        "concurrent_app_sites": "Sites running concurrent applications",
        "data_tb_per_day": "Data transferred per day (TB)",
        "resource_utilisation": "Percentage of resources used",
        "job_efficiency": "Efficiency of job completion",
        "peak_concurrent_jobs": "Peak number of concurrent jobs",
        "support_fte": "Operations support load (FTE)",
    }

    def __init__(self) -> None:
        self._achieved: Dict[str, float] = {}

    def record(self, key: str, value: float) -> None:
        """Set the achieved value for a metric."""
        if key not in PAPER_TARGETS:
            raise KeyError(f"unknown milestone {key!r}")
        self._achieved[key] = float(value)

    def milestone(self, key: str) -> Milestone:
        return Milestone(
            key=key,
            description=self.DESCRIPTIONS[key],
            target=PAPER_TARGETS[key],
            achieved=self._achieved.get(key, 0.0),
        )

    def milestones(self) -> List[Milestone]:
        """All rows, in the paper's §7 order."""
        return [self.milestone(key) for key in self.DESCRIPTIONS]

    def met_count(self) -> int:
        """How many §7 targets the run met ('met and even surpassed
        most of these milestones')."""
        return sum(1 for m in self.milestones() if m.met and m.key in self._achieved)

    def render(self) -> str:
        """The §7 comparison table as text."""
        lines = [
            f"{'milestone':<42} {'target':>10} {'achieved':>10} "
            f"{'paper':>10} {'met':>5}",
            "-" * 82,
        ]
        for m in self.milestones():
            paper = m.paper_actual
            lines.append(
                f"{m.description:<42} {m.target:>10.2f} {m.achieved:>10.2f} "
                f"{(paper if paper is not None else float('nan')):>10.2f} "
                f"{'yes' if m.met else 'NO':>5}"
            )
        return "\n".join(lines)
