"""Automated site validation and remediation — the first §8 lesson.

"Automated configuration, testing, and tuning scripts are needed to
give immediate feedback regarding potential software installation
issues, and to further reduce the cost of operating Grid3."

Deployed Grid3 found misconfigured sites the slow way: jobs failed, a
human investigated, a ticket crawled to resolution.
:class:`AutoValidator` is the lesson applied — immediately after a
Pacman install (and on a short cadence afterwards) it runs the full
verification battery and *fixes what scripts can fix* (clears
misconfiguration, restarts dead services), escalating only what needs a
human.  The ablation bench measures the payoff as time-to-stable-site
and jobs saved from misconfiguration failures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..middleware.pacman import fix_misconfiguration, validate_site
from ..middleware.vdt import REQUIRED_PACKAGES
from ..services import service_is_up
from ..sim.engine import Engine
from ..sim.units import MINUTE


@dataclass
class ValidationReport:
    """One automated validation pass over one site."""

    time: float
    site: str
    problems_found: Tuple[str, ...]
    auto_fixed: Tuple[str, ...]
    escalated: Tuple[str, ...]

    @property
    def clean(self) -> bool:
        return not self.problems_found


class AutoValidator:
    """The §8 automated test-and-tune loop."""

    def __init__(
        self,
        engine: Engine,
        sites: Iterable,
        interval: float = 30 * MINUTE,
        fix_time: float = 5 * MINUTE,
        required_packages: Optional[List[str]] = None,
        escalate=None,
    ) -> None:
        self.engine = engine
        self.sites = list(sites)
        self.interval = interval
        self.fix_time = fix_time
        self.required_packages = required_packages or list(REQUIRED_PACKAGES)
        #: Optional callback(site_name, problems) for human escalation
        #: (e.g. wired to the trouble-ticket system).
        self.escalate = escalate
        self.reports: List[ValidationReport] = []
        self.fixes_applied = 0
        self.escalations = 0
        self.process = engine.process(self._run(), name="auto-validator")

    # -- one pass ------------------------------------------------------------
    def validate_one(self, site):
        """Generator: validate a site, auto-fixing what scripts can.

        Auto-fixable: misconfiguration flags, dead services (restart).
        Escalated: missing packages/services, full storage.
        """
        problems = tuple(validate_site(site, self.required_packages))
        fixed: List[str] = []
        escalated: List[str] = []
        # Dead-service restarts aren't in validate_site's list (it checks
        # presence); probe availability here.
        for role in ("gatekeeper", "gridftp", "gris"):
            service = site.services.get(role)
            if service is not None and not service_is_up(service):
                problems = problems + (f"{role} not responding",)
        for problem in problems:
            if "misconfigured" in problem:
                yield self.engine.timeout(self.fix_time)
                fix_misconfiguration(site)
                fixed.append(problem)
            elif "not responding" in problem:
                role = problem.split()[0]
                yield self.engine.timeout(self.fix_time)
                # Restart via the lifecycle so the repair closes the
                # service's ledger outage instead of hiding it.
                site.services[role].restore(note="auto-validator restart")
                fixed.append(problem)
            else:
                escalated.append(problem)
        if escalated and self.escalate is not None:
            self.escalate(site.name, escalated)
        self.fixes_applied += len(fixed)
        self.escalations += len(escalated)
        report = ValidationReport(
            time=self.engine.now,
            site=site.name,
            problems_found=problems,
            auto_fixed=tuple(fixed),
            escalated=tuple(escalated),
        )
        self.reports.append(report)
        return report

    def _run(self):
        while True:
            for site in self.sites:
                yield from self.validate_one(site)
            yield self.engine.timeout(self.interval)

    # -- metrics ----------------------------------------------------------------
    def time_to_stable(self, site_name: str) -> float:
        """Time of the first clean report for a site (-1 if never)."""
        for report in self.reports:
            if report.site == site_name and report.clean:
                return report.time
        return -1.0

    def stable_sites(self) -> List[str]:
        """Sites whose most recent report was clean."""
        latest: Dict[str, ValidationReport] = {}
        for report in self.reports:
            latest[report.site] = report
        return sorted(
            name for name, report in latest.items() if report.clean
        )
