"""The iGOC trouble-ticket system (§5.4).

"A simple trouble ticket system was used intermittently during the
project."  Tickets are opened (by operators or by the automated
site-status watcher), accumulate effort, and are resolved; the system's
aggregate statistics feed the §7 "operations support load" milestone.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..sim.engine import Engine
from ..sim.units import HOUR

#: §5.4 support factorisation: "Site administrators provide for the
#: operation and support of their sites.  The VO central support
#: organizations provide the organization and effort for the support and
#: maintenance of their applications and virtual facilities."  Central
#: services belong to the iGOC.  §8 asks for this factorisation to be
#: made explicit "perhaps at the service level" — this matrix is that.
RESPONSIBILITY_MATRIX = {
    # site fabric and site services -> the site administrator
    "StorageFullError": "site-admin",
    "GatekeeperOverloadError": "site-admin",
    "NodeFailureError": "site-admin",
    "SiteMisconfigurationError": "site-admin",
    "ServiceFailureError": "site-admin",
    "ServiceUnavailableError": "site-admin",
    "WalltimeExceededError": "site-admin",
    "NetworkInterruptionError": "site-admin",
    # the application itself -> the VO support organisation
    "ApplicationError": "vo-support",
    "SubmissionError": "vo-support",
    # shared/central infrastructure -> the operations centre
    "ReplicaNotFoundError": "igoc",
    "AuthenticationError": "igoc",
    "AuthorizationError": "igoc",
    "TransferError": "igoc",
    "PackagingError": "igoc",
    "ReservationError": "igoc",
}


def responsible_party(failure_type: str) -> str:
    """Which support organisation owns a failure class (§5.4/§8).

    Unknown classes land at the iGOC, which triages.
    """
    return RESPONSIBILITY_MATRIX.get(failure_type, "igoc")


@dataclass
class Ticket:
    """One trouble ticket."""

    ticket_id: int
    opened_at: float
    site: str
    description: str
    severity: str = "normal"      # "low" | "normal" | "critical"
    state: str = "open"           # "open" | "assigned" | "resolved"
    assignee: str = ""
    resolved_at: float = -1.0
    #: Person-hours logged against the ticket.
    effort_hours: float = 0.0
    #: Free-form work notes (repair attributions, outage references).
    notes: List[str] = field(default_factory=list)

    @property
    def open(self) -> bool:
        return self.state != "resolved"

    def add_note(self, note: str) -> None:
        """Append a work note to the ticket history."""
        self.notes.append(note)

    @property
    def time_to_resolve(self) -> float:
        """Seconds open (−1 while unresolved)."""
        if self.resolved_at < 0:
            return -1.0
        return self.resolved_at - self.opened_at


class TroubleTicketSystem:
    """Ticket CRUD plus the aggregate operations metrics."""

    def __init__(self, engine: Engine) -> None:
        self.engine = engine
        self._tickets: Dict[int, Ticket] = {}
        self._ids = itertools.count(1)

    def __len__(self) -> int:
        return len(self._tickets)

    def open_ticket(self, site: str, description: str, severity: str = "normal",
                    failure_type: str = "") -> Ticket:
        """File a new ticket.  With ``failure_type`` given, the ticket is
        auto-routed to the responsible support organisation (§5.4)."""
        ticket = Ticket(
            ticket_id=next(self._ids),
            opened_at=self.engine.now,
            site=site,
            description=description,
            severity=severity,
        )
        if failure_type:
            ticket.state = "assigned"
            ticket.assignee = responsible_party(failure_type)
        self._tickets[ticket.ticket_id] = ticket
        return ticket

    def assign(self, ticket_id: int, assignee: str) -> None:
        ticket = self._tickets[ticket_id]
        if ticket.state == "resolved":
            raise ValueError(f"ticket {ticket_id} already resolved")
        ticket.state = "assigned"
        ticket.assignee = assignee

    def log_effort(self, ticket_id: int, hours: float) -> None:
        """Record person-hours spent on a ticket."""
        if hours < 0:
            raise ValueError("effort cannot be negative")
        self._tickets[ticket_id].effort_hours += hours

    def add_note(self, ticket_id: int, note: str) -> None:
        """Append a work note to a ticket's history."""
        self._tickets[ticket_id].add_note(note)

    def resolve(self, ticket_id: int) -> None:
        ticket = self._tickets[ticket_id]
        ticket.state = "resolved"
        ticket.resolved_at = self.engine.now

    # -- queries ----------------------------------------------------------
    def ticket(self, ticket_id: int) -> Ticket:
        return self._tickets[ticket_id]

    def all_tickets(self, site: Optional[str] = None) -> List[Ticket]:
        """Every ticket ever filed (optionally one site's), id order."""
        return [
            t for _tid, t in sorted(self._tickets.items())
            if site is None or t.site == site
        ]

    def open_tickets(self, site: Optional[str] = None) -> List[Ticket]:
        return [
            t for t in self._tickets.values()
            if t.open and (site is None or t.site == site)
        ]

    def open_ticket_for_site(self, site: str) -> Optional[Ticket]:
        """The oldest open ticket for a site, if any (dedup helper)."""
        candidates = self.open_tickets(site)
        return min(candidates, key=lambda t: t.opened_at) if candidates else None

    def mean_time_to_resolve(self) -> float:
        """Average resolution latency over resolved tickets (0 if none)."""
        resolved = [t for t in self._tickets.values() if not t.open]
        if not resolved:
            return 0.0
        return sum(t.time_to_resolve for t in resolved) / len(resolved)

    def total_effort_hours(self, since: float = -float("inf"), until: float = float("inf")) -> float:
        """Person-hours logged on tickets opened in the window."""
        return sum(
            t.effort_hours
            for t in self._tickets.values()
            if since <= t.opened_at <= until
        )

    def support_fte(self, t0: float, t1: float, hours_per_fte_week: float = 40.0) -> float:
        """Average FTEs implied by logged effort over [t0, t1] — the §7
        'operations support load' metric (target < 2 FTEs)."""
        if t1 <= t0:
            return 0.0
        weeks = (t1 - t0) / (7 * 24 * HOUR)
        if weeks <= 0:
            return 0.0
        return self.total_effort_hours(t0, t1) / (hours_per_fte_week * weeks)
