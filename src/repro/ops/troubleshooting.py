"""Troubleshooting and accounting APIs — the §8 lessons, implemented.

The paper asks for exactly these, which deployed Grid3 lacked:

* "API for accessing troubleshooting and accounting information are
  needed, particularly for the GRAM job submission and GridFTP file
  transfer systems.  These APIs should provide direct information
  without the necessity of parsing log files."
* "the ability to link a job ID on the execution side with a job ID at
  the submit (VO) side."
* "tools for analyzing and querying log files."

:class:`JobLinkIndex` provides the submit-side ↔ execution-side ID join;
:class:`TroubleshootingAPI` answers the per-job timeline, error
aggregation, and gatekeeper/GridFTP accounting queries directly from the
live services — no log parsing.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.job import Job
from ..scheduling.condorg import CondorG, GridJobHandle
from ..services import AvailabilityRow, availability_rows, grid_services
from ..sim.units import HOUR
from .results import (
    DataSummary,
    GramAccounting,
    GridFTPAccounting,
    SlowJobRow,
    StorageAccounting,
)


@dataclass(frozen=True)
class JobLink:
    """One submit-side handle joined to its execution-side attempts."""

    submit_id: int                  # client-side (Condor-G handle) id
    vo: str
    spec_name: str
    execution_job_ids: Tuple[int, ...]   # GRAM/LRM job ids, per attempt
    sites_tried: Tuple[str, ...]
    final_state: str


class JobLinkIndex:
    """The §8 submit-side ↔ execution-side job-ID join.

    Register Condor-G handles as campaigns run; query in either
    direction afterwards.
    """

    def __init__(self) -> None:
        self._by_submit: Dict[int, JobLink] = {}
        self._by_execution: Dict[int, int] = {}
        self._counter = 0

    def register(self, handle: GridJobHandle) -> JobLink:
        """Index one finished (or in-flight) handle."""
        self._counter += 1
        exec_ids = tuple(
            [handle.job.job_id] if handle.job is not None else []
        )
        link = JobLink(
            submit_id=self._counter,
            vo=handle.spec.vo,
            spec_name=handle.spec.name,
            execution_job_ids=exec_ids,
            sites_tried=tuple(handle.sites_tried),
            final_state=handle.job.state.value if handle.job else "pending",
        )
        self._by_submit[link.submit_id] = link
        for exec_id in exec_ids:
            self._by_execution[exec_id] = link.submit_id
        return link

    def submit_side(self, execution_job_id: int) -> Optional[JobLink]:
        """Execution-side id -> the submit-side link (§8's missing join)."""
        submit_id = self._by_execution.get(execution_job_id)
        return self._by_submit.get(submit_id) if submit_id is not None else None

    def execution_side(self, submit_id: int) -> Tuple[int, ...]:
        """Submit-side id -> execution-side job ids."""
        link = self._by_submit.get(submit_id)
        return link.execution_job_ids if link else ()

    def __len__(self) -> int:
        return len(self._by_submit)


class TroubleshootingAPI:
    """Direct (no-log-parsing) troubleshooting queries over a built grid."""

    def __init__(
        self, sites: Dict[str, object], acdc_db, data=None, trace=None,
        fairshare=None, policy=None,
    ) -> None:
        self.sites = sites
        self.acdc_db = acdc_db
        #: Optional DataManager: storage/data queries answer from it.
        self.data = data
        #: Optional SpanStore: trace-backed queries (slowest_jobs,
        #: phase_breakdown, trace_for_job) answer from it.
        self.trace = trace
        #: Optional FairShareLedger / PolicyEngine: the fair-share and
        #: policy-rejection queries answer from them.
        self.fairshare = fairshare
        self.policy = policy

    # -- per-job ------------------------------------------------------------
    def job_timeline(self, job_id: int) -> List[Tuple[float, str]]:
        """(time, event) pairs for one execution-side job: queue entry,
        start, completion — joined from the ACDC record."""
        for record in self.acdc_db.records():
            if record.job_id == job_id:
                timeline = [(record.submitted_at, "submitted")]
                if record.started_at >= 0:
                    timeline.append((record.started_at, "started"))
                outcome = (
                    "completed" if record.succeeded
                    else f"failed: {record.failure_type}"
                )
                timeline.append((record.finished_at, outcome))
                return timeline
        return []

    # -- trace-backed queries (the tracing pipeline's ops surface) ------------
    def trace_for_job(self, job_id: int):
        """Root span of the trace owning an execution-side job id
        (None without tracing, or for an unknown/evicted id)."""
        if self.trace is None:
            return None
        return self.trace.trace_for_job(job_id)

    def slowest_jobs(self, n: int = 10) -> List[SlowJobRow]:
        """The ``n`` longest-makespan job traces, slowest first.

        Each row joins the submit-side trace identity to its
        execution-side job ids — the §8 cross-side link, ranked the way
        an operator chasing "why is this VO slow?" wants it.  Empty
        without tracing.
        """
        if self.trace is None:
            return []
        from ..trace.analysis import job_breakdown, slowest_traces
        rows = []
        for makespan, root in slowest_traces(self.trace, n):
            breakdown = job_breakdown(root)
            rows.append(SlowJobRow(
                trace_id=root.trace_id,
                name=root.name,
                vo=str(root.attrs.get("vo", "")),
                status=root.status,
                makespan=makespan,
                job_ids=tuple(self.trace.jobs_for(root.trace_id)),
                critical_phase=max(
                    ("queue", "stage-in", "compute", "stage-out", "retry",
                     "other"),
                    key=lambda p: breakdown[p],
                ),
            ))
        return rows

    def phase_breakdown(self, vo: Optional[str] = None) -> Dict[str, object]:
        """Grid-wide makespan attribution by phase (optionally one VO):
        the aggregate critical-path view over every retained job trace.
        Empty without tracing."""
        if self.trace is None:
            return {}
        from ..trace.analysis import aggregate_breakdown
        return aggregate_breakdown(self.trace.roots(), vo=vo)

    # -- GRAM accounting (the §8 ask, no log parsing) -------------------------
    def gram_accounting(self, site_name: str) -> Optional[GramAccounting]:
        """Submission/rejection/load counters for one gatekeeper.
        None for a site without one."""
        gatekeeper = self.sites[site_name].services.get("gatekeeper")
        if gatekeeper is None:
            return None
        return GramAccounting(
            site=site_name,
            accepted=gatekeeper.submissions_accepted,
            rejected=gatekeeper.submissions_rejected,
            overload_rejections=gatekeeper.overload_rejections,
            current_load=gatekeeper.load(),
            peak_load=gatekeeper.peak_load,
            managed_jobs=gatekeeper.managed_count,
        )

    # -- GridFTP accounting -----------------------------------------------------
    def gridftp_accounting(self, site_name: str) -> Optional[GridFTPAccounting]:
        """Transfer counters for one GridFTP endpoint.  None for a site
        without one."""
        server = self.sites[site_name].services.get("gridftp")
        if server is None:
            return None
        total = server.transfers_ok + server.transfers_failed
        return GridFTPAccounting(
            site=site_name,
            transfers_ok=server.transfers_ok,
            transfers_failed=server.transfers_failed,
            failure_rate=server.transfers_failed / total if total else 0.0,
            bytes_sent=server.bytes_sent,
            bytes_received=server.bytes_received,
        )

    # -- storage / data-management accounting ---------------------------------
    def storage_accounting(self, site_name: str) -> Optional[StorageAccounting]:
        """Occupancy and churn counters for one site's SE — the query
        the §6.2 "disk filled up" tickets needed answered directly.
        None for a site without storage."""
        storage = getattr(self.sites[site_name], "storage", None)
        if storage is None:
            return None
        return StorageAccounting(
            site=site_name,
            capacity=storage.capacity,
            used=storage.used,
            utilisation=storage.utilisation,
            files=len(storage.files()),
            bytes_written=storage.bytes_written,
            bytes_deleted=storage.bytes_deleted,
            write_failures=storage.write_failures,
        )

    def data_summary(self) -> Optional[DataSummary]:
        """Grid-wide data-management counters (evictions, replications,
        managed-transfer outcomes).  None when the subsystem is off."""
        if self.data is None:
            return None
        return DataSummary(counters=tuple(sorted(self.data.counters().items())))

    # -- fair-share / policy queries ------------------------------------------
    def fairshare_report(self) -> List:
        """Per-VO fair-share rows
        (:class:`~repro.scheduling.fairshare.FairShareStatus`); empty
        when fair-share scheduling is off."""
        if self.fairshare is None:
            return []
        return self.fairshare.report(self._engine_now())

    def policy_rejects(self) -> List:
        """Policy-rejection rows
        (:class:`~repro.scheduling.policy.PolicyRejectRow`); empty when
        fair-share scheduling is off."""
        if self.policy is None:
            return []
        return self.policy.reject_rows()

    def share_caps(self) -> List:
        """Peak-vs-cap rows per (site, VO) share slot
        (:class:`~repro.scheduling.policy.ShareCapRow`); empty when
        fair-share scheduling is off."""
        if self.policy is None:
            return []
        return self.policy.share_rows()

    def _engine_now(self) -> float:
        """The simulation clock, recovered from any attached site."""
        for site in self.sites.values():
            engine = getattr(site, "engine", None)
            if engine is not None:
                return engine.now
        return 0.0

    def pressure_sites(self, threshold: float = 0.85) -> List[Tuple[str, float]]:
        """Sites whose SE occupancy exceeds ``threshold``, worst first —
        the proactive version of waiting for StorageFullError tickets."""
        rows = [
            (name, site.storage.utilisation)
            for name, site in sorted(self.sites.items())
            if getattr(site, "storage", None) is not None
            and site.storage.utilisation >= threshold
        ]
        rows.sort(key=lambda pair: (-pair[1], pair[0]))
        return rows

    # -- service health (downtime-ledger queries) ---------------------------
    def service_health(self, site_name: str) -> Dict[str, Dict]:
        """Lifecycle snapshot for every GridService at one site:
        role -> the service's ``health()`` dict (state, open-outage
        cause, outage count, cumulative downtime)."""
        site = self.sites[site_name]
        return {
            role: service.health()
            for role, service in grid_services(site).items()
        }

    def service_availability(
        self,
        site_name: str,
        role: str,
        since: float = 0.0,
        until: Optional[float] = None,
    ) -> float:
        """Availability fraction for one service over a window, straight
        from its downtime ledger (1.0 for roles a site doesn't run)."""
        service = grid_services(self.sites[site_name]).get(role)
        if service is None:
            return 1.0
        return service.availability(since=since, until=until)

    def availability_report(
        self,
        since: float = 0.0,
        until: Optional[float] = None,
    ) -> List[AvailabilityRow]:
        """Per-(site, role) availability/MTTR/MTBF rows over a window —
        the grid-wide ledger view the iGOC status page needs."""
        return availability_rows(self.sites.values(), since=since, until=until)

    # -- error analytics ----------------------------------------------------------
    def error_summary(
        self,
        vo: Optional[str] = None,
        site: Optional[str] = None,
    ) -> Dict[str, int]:
        """Failure counts by exception type over matching records."""
        counter: Counter = Counter()
        for record in self.acdc_db.records(vo=vo, site=site, succeeded=False):
            counter[record.failure_type] += 1
        return dict(counter)

    def worst_sites(self, min_jobs: int = 5) -> List[Tuple[str, float]]:
        """Sites ranked by failure rate (the ops team's hit list)."""
        per_site: Dict[str, List[bool]] = {}
        for record in self.acdc_db.records():
            per_site.setdefault(record.site, []).append(record.succeeded)
        ranked = [
            (site, 1.0 - sum(oks) / len(oks))
            for site, oks in per_site.items()
            if len(oks) >= min_jobs
        ]
        ranked.sort(key=lambda pair: -pair[1])
        return ranked

    def stuck_jobs(self, now: float, max_queue_age: float = 24 * HOUR) -> List[Job]:
        """Jobs sitting in some LRM queue longer than ``max_queue_age``."""
        stuck = []
        for site in self.sites.values():
            lrm = site.services.get("lrm")
            if lrm is None:
                continue
            for job in lrm.queued_jobs():
                if job.submitted_at >= 0 and now - job.submitted_at > max_queue_age:
                    stuck.append(job)
        return stuck
