"""Typed result records for the ops/troubleshooting query surfaces.

Every :class:`~repro.ops.troubleshooting.TroubleshootingAPI` accounting
query used to return an ad-hoc ``dict`` with its own shape.  These are
the replacement records — frozen dataclasses on the shared
:class:`~repro.core.results.ReportRecord` convention (``as_dict()``,
sorted-key ``to_json()``, deprecated dict-style access for the old
shapes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Tuple

from ..core.results import ReportRecord


@dataclass(frozen=True)
class GramAccounting(ReportRecord):
    """Submission/rejection/load counters for one gatekeeper (§8)."""

    site: str
    accepted: int
    rejected: int
    overload_rejections: int
    current_load: float
    peak_load: float
    managed_jobs: int


@dataclass(frozen=True)
class GridFTPAccounting(ReportRecord):
    """Transfer counters for one GridFTP endpoint (§8)."""

    site: str
    transfers_ok: int
    transfers_failed: int
    failure_rate: float
    bytes_sent: float
    bytes_received: float


@dataclass(frozen=True)
class StorageAccounting(ReportRecord):
    """Occupancy and churn counters for one site's storage element."""

    site: str
    capacity: float
    used: float
    utilisation: float
    files: int
    bytes_written: float
    bytes_deleted: float
    write_failures: int


@dataclass(frozen=True)
class SlowJobRow(ReportRecord):
    """One row of the slowest-traced-jobs ranking (§8 cross-side view)."""

    trace_id: int
    name: str
    vo: str
    status: str
    makespan: float
    job_ids: Tuple[int, ...]
    critical_phase: str


@dataclass(frozen=True)
class DataSummary(ReportRecord):
    """Grid-wide data-management counters.

    The counter key set belongs to the data subsystem
    (``agent.*`` / ``transfers.*`` / ``selector.*``), so it is carried
    as sorted (name, value) pairs; ``as_dict()`` returns the flat
    ``{name: value}`` mapping — exactly the old return shape.
    """

    counters: Tuple[Tuple[str, float], ...]

    def as_dict(self) -> Dict[str, Any]:
        """The flat counter mapping (the pre-redesign return shape)."""
        return dict(self.counters)

    def counter(self, name: str, default: float = 0.0) -> float:
        """One counter by name."""
        for key, value in self.counters:
            if key == name:
                return value
        return default
