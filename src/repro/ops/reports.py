"""Operations reporting: the iGOC's periodic summary.

The operations centre's job (§5.4) was "information gathering and
dissemination for all aspects of the project".  This module renders the
weekly operations report a Grid3 shift would have produced: grid health,
per-VO production, failure hot-spots, ticket flow, and milestone
posture — all computed from the monitoring stack, no log spelunking.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..analysis.report import render_table
from ..monitoring.acdc import ACDCDatabase
from ..sim.units import DAY, HOUR, bytes_to_tb
from .tickets import TroubleTicketSystem


def production_summary(
    db: ACDCDatabase, since: float, until: float
) -> List[Tuple[str, int, float, float]]:
    """(vo, jobs, success_rate, cpu_days) rows for the window."""
    rows = []
    for vo in db.vos():
        records = db.records(vo=vo, since=since, until=until)
        if not records:
            continue
        rows.append((
            vo,
            len(records),
            sum(r.succeeded for r in records) / len(records),
            sum(r.runtime for r in records) / (24 * HOUR),
        ))
    rows.sort(key=lambda r: -r[3])
    return rows


def failure_hotspots(
    db: ACDCDatabase, since: float, until: float, min_jobs: int = 5
) -> List[Tuple[str, int, float, str]]:
    """(site, jobs, failure_rate, dominant_failure) for struggling sites."""
    by_site: Dict[str, List] = {}
    for record in db.records(since=since, until=until):
        by_site.setdefault(record.site, []).append(record)
    rows = []
    for site, records in by_site.items():
        if len(records) < min_jobs:
            continue
        failures = [r for r in records if not r.succeeded]
        rate = len(failures) / len(records)
        if rate <= 0.05:
            continue
        kinds: Dict[str, int] = {}
        for r in failures:
            kinds[r.failure_type] = kinds.get(r.failure_type, 0) + 1
        dominant = max(kinds, key=kinds.get) if kinds else ""
        rows.append((site, len(records), rate, dominant))
    rows.sort(key=lambda r: -r[2])
    return rows


def ticket_summary(tickets: TroubleTicketSystem, since: float, until: float) -> Dict[str, float]:
    """Ticket flow statistics for the window."""
    opened = [
        t for t in tickets._tickets.values() if since <= t.opened_at <= until
    ]
    resolved = [t for t in opened if not t.open]
    return {
        "opened": len(opened),
        "resolved": len(resolved),
        "still_open": len(opened) - len(resolved),
        "mean_hours_to_resolve": (
            sum(t.time_to_resolve for t in resolved) / len(resolved) / HOUR
            if resolved else 0.0
        ),
        "effort_hours": sum(t.effort_hours for t in opened),
    }


def weekly_report(grid, week_index: int = 0) -> str:
    """The full weekly report for a built-and-run Grid3.

    ``week_index`` 0 is the first simulated week; the last (possibly
    partial) week is ``week_index=-1`` style negative indexing via the
    caller clamping — here indices beyond the run clamp to the run end.
    """
    t0 = week_index * 7 * DAY
    t1 = min(grid.engine.now, t0 + 7 * DAY)
    if t1 <= t0:
        t0 = max(0.0, grid.engine.now - 7 * DAY)
        t1 = grid.engine.now
    cal = grid.calendar
    db = grid.acdc_db
    lines = [
        "=" * 70,
        f"Grid3 Operations Report — week of {cal.datetime_of(t0).date()}",
        "=" * 70,
    ]

    # Grid health.
    status = grid.monitors["status"].status_page()
    passing = sum(1 for _s, st, _p in status if st == "PASS")
    lines.append(f"\nSite health: {passing}/{len(status)} passing verification")
    failing = [(s, p) for s, st, p in status if st == "FAIL"]
    for site, problems in failing[:5]:
        lines.append(f"  FAIL {site}: {'; '.join(problems)}")

    # Production.
    rows = production_summary(db, t0, t1)
    lines.append("\nProduction by VO (this week):")
    if rows:
        lines.append(render_table(
            ["vo", "jobs", "success", "cpu-days"],
            [(vo, jobs, f"{rate:.0%}", round(cpu, 1)) for vo, jobs, rate, cpu in rows],
        ))
    else:
        lines.append("  (no completed jobs)")

    # Data movement.
    moved = grid.ledger.total_bytes(since=t0, until=t1)
    lines.append(f"\nData moved: {bytes_to_tb(moved):.2f} TB "
                 f"({bytes_to_tb(moved) / max((t1 - t0) / DAY, 1e-9):.2f} TB/day)")

    # Hotspots.
    hotspots = failure_hotspots(db, t0, t1)
    lines.append("\nFailure hotspots:")
    if hotspots:
        lines.append(render_table(
            ["site", "jobs", "failure rate", "dominant cause"],
            [(s, n, f"{r:.0%}", d) for s, n, r, d in hotspots[:6]],
        ))
    else:
        lines.append("  (none above threshold)")

    # Tickets.
    tix = ticket_summary(grid.igoc.tickets, t0, t1)
    lines.append(
        f"\nTickets: {tix['opened']} opened, {tix['resolved']} resolved, "
        f"{tix['still_open']} open; mean resolution "
        f"{tix['mean_hours_to_resolve']:.1f} h; "
        f"effort {tix['effort_hours']:.1f} person-hours"
    )
    return "\n".join(lines)
