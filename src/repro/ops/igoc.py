"""The iVDGL Grid Operations Center (§5, §5.4).

"Where appropriate, VO-level services were combined into top-layer
services at the iVDGL Grid Operations Center (iGOC), which provided
monitoring applications, display clients, and verification tasks and an
aggregate view of the collective Grid3 resource and performance."

:class:`IGOC` is the registry of those central services.
:class:`OperationsTeam` is the human loop: it watches the Site Status
Catalog, opens trouble tickets for failing sites, spends (simulated)
effort, and repairs them — restarting dead services, clearing
misconfiguration, purging full disks.  Without this loop a long
simulation decays monotonically; with it, sites behave as §7 observed:
"Once a site becomes stable, it usually remains so."
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..middleware.pacman import fix_misconfiguration
from ..services import service_is_up
from ..sim.engine import Engine
from ..sim.rng import RngRegistry
from ..sim.units import HOUR
from .tickets import TroubleTicketSystem


class IGOC:
    """The central-services registry."""

    def __init__(self, engine: Engine) -> None:
        self.engine = engine
        self._services: Dict[str, object] = {}
        self.tickets = TroubleTicketSystem(engine)

    def host(self, name: str, service: object) -> None:
        """Register a centrally hosted service (pacman cache, top GIIS,
        MonALISA repository, Ganglia web, site catalog, ...)."""
        self._services[name] = service

    def service(self, name: str):
        """Look up a hosted service (KeyError if absent)."""
        return self._services[name]

    def services(self) -> List[str]:
        return sorted(self._services)


class OperationsTeam:
    """Distributed support (§5.4): detects problems, tickets, repairs."""

    def __init__(
        self,
        engine: Engine,
        igoc: IGOC,
        sites: Iterable,
        rng: RngRegistry,
        check_interval: float = 2 * HOUR,
        mean_response_time: float = 6 * HOUR,
        purge_threshold: float = 0.95,
    ) -> None:
        self.engine = engine
        self.igoc = igoc
        self.sites = list(sites)
        self.rng = rng
        self.check_interval = check_interval
        self.mean_response_time = mean_response_time
        self.purge_threshold = purge_threshold
        self.repairs: Dict[str, int] = {}
        self._in_progress: set = set()
        self.process = engine.process(self._run(), name="operations-team")

    def _problems(self, site) -> List[str]:
        problems = []
        for role in ("gatekeeper", "gridftp", "gris"):
            service = site.services.get(role)
            if service is not None and not service_is_up(service):
                problems.append(f"{role} down")
        if site.services.get("misconfigured"):
            problems.append("misconfigured")
        if site.storage.capacity and site.storage.used / site.storage.capacity >= self.purge_threshold:
            problems.append("disk nearly full")
        return problems

    def _run(self):
        while True:
            yield self.engine.timeout(self.check_interval)
            for site in self.sites:
                if site.name in self._in_progress:
                    continue
                problems = self._problems(site)
                if problems:
                    self._in_progress.add(site.name)
                    self.engine.process(
                        self._repair(site, problems), name=f"repair-{site.name}"
                    )

    def _repair(self, site, problems: List[str]):
        ticket = self.igoc.tickets.open_ticket(
            site.name, "; ".join(problems),
            severity="critical" if len(problems) > 1 else "normal",
        )
        self.igoc.tickets.assign(ticket.ticket_id, f"{site.name}-admin")
        response = self.rng.exponential(
            f"ops.response.{site.name}", self.mean_response_time
        )
        yield self.engine.timeout(response)
        # Apply the fixes.  Restarts route through the service lifecycle
        # so the repair lands in the downtime ledger and the ticket
        # history, rather than silently flipping a flag.
        for role in ("gatekeeper", "gridftp", "gris"):
            service = site.services.get(role)
            if service is None or service_is_up(service):
                continue
            outage = service.restore(note=f"igoc ticket {ticket.ticket_id}")
            if outage is not None:
                self.igoc.tickets.add_note(
                    ticket.ticket_id,
                    f"restarted {role} after "
                    f"{outage.duration(self.engine.now) / HOUR:.1f} h "
                    f"({outage.cause or 'unknown cause'})",
                )
        if site.services.get("misconfigured"):
            fix_misconfiguration(site)
        if site.storage.capacity and site.storage.used / site.storage.capacity >= self.purge_threshold:
            # Operators clean scratch space (§7: disks replaced/cleaned
            # without perturbing operations).
            site.storage.purge(fraction=0.6)
        self.igoc.tickets.log_effort(ticket.ticket_id, response / HOUR * 0.25)
        self.igoc.tickets.resolve(ticket.ticket_id)
        self.repairs[site.name] = self.repairs.get(site.name, 0) + 1
        self._in_progress.discard(site.name)
